//! §3.4 of the paper: "the delivery semantics for Signals is required to be
//! at least once … an Action may receive the same Signal from an Activity
//! multiple times, and must ensure that such invocations are idempotent."
//!
//! These tests drive signal delivery through the fault-injecting network so
//! duplication *actually happens*, and verify that the framework's stock
//! Actions hold the idempotence contract — and show what breaks when an
//! action violates it.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use activity_service::{
    ActionServant, ActivityService, FnAction, Outcome, RemoteActionProxy, Signal,
};
use orb::{DedupServant, DedupWindow, NetworkConfig, Orb, Request, Servant, Value};

fn lossy_orb(drop: f64, duplicate: f64, seed: u64) -> Orb {
    Orb::builder()
        .network(NetworkConfig::lossy(drop, duplicate, seed))
        .retry_budget(256)
        .build()
}

#[test]
fn duplication_delivers_signals_more_than_once() {
    let orb = lossy_orb(0.0, 1.0, 1);
    let node = orb.add_node("server").unwrap();
    let deliveries = Arc::new(AtomicU32::new(0));
    let deliveries2 = Arc::clone(&deliveries);
    let action: Arc<dyn activity_service::Action> =
        Arc::new(FnAction::new("observer", move |_s: &Signal| {
            deliveries2.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }));
    let obj = node.activate("Action", ActionServant::new(action)).unwrap();
    let proxy = RemoteActionProxy::new("p", orb, "client", obj);
    activity_service::Action::process_signal(&proxy, &Signal::new("ping", "set")).unwrap();
    assert_eq!(
        deliveries.load(Ordering::SeqCst),
        2,
        "100% duplication probability must deliver twice"
    );
}

#[test]
fn idempotent_action_converges_under_chaos() {
    // A "debit" that guards itself with a processed-flag (idempotent),
    // versus a naive counter (not idempotent). Chaos network: the
    // idempotent one ends exactly once; the naive one overshoots.
    let orb = lossy_orb(0.25, 0.35, 777);
    let node = orb.add_node("bank").unwrap();

    let naive_total = Arc::new(AtomicU32::new(0));
    let guarded_total = Arc::new(AtomicU32::new(0));
    let processed = Arc::new(parking_lot::Mutex::new(std::collections::HashSet::<String>::new()));

    let naive2 = Arc::clone(&naive_total);
    let naive: Arc<dyn activity_service::Action> =
        Arc::new(FnAction::new("naive", move |_s: &Signal| {
            naive2.fetch_add(10, Ordering::SeqCst);
            Ok(Outcome::done())
        }));
    let guarded2 = Arc::clone(&guarded_total);
    let processed2 = Arc::clone(&processed);
    let guarded: Arc<dyn activity_service::Action> =
        Arc::new(FnAction::new("guarded", move |s: &Signal| {
            // Deduplicate on the signal's unique id, as a real recoverable
            // action would.
            let key = s.data().as_str().unwrap_or("?").to_owned();
            if processed2.lock().insert(key) {
                guarded2.fetch_add(10, Ordering::SeqCst);
            }
            Ok(Outcome::done())
        }));

    let naive_obj = node.activate("Naive", ActionServant::new(naive)).unwrap();
    let guarded_obj = node.activate("Guarded", ActionServant::new(guarded)).unwrap();
    let naive_proxy = RemoteActionProxy::new("naive", orb.clone(), "client", naive_obj);
    let guarded_proxy = RemoteActionProxy::new("guarded", orb.clone(), "client", guarded_obj);

    for i in 0..20 {
        let signal = Signal::new("debit", "set").with_data(Value::from(format!("debit-{i}")));
        let _ = activity_service::Action::process_signal(&naive_proxy, &signal);
        let _ = activity_service::Action::process_signal(&guarded_proxy, &signal);
    }

    let stats = orb.network().stats();
    assert!(stats.duplicated > 0, "chaos must have duplicated something");
    assert!(stats.dropped > 0, "chaos must have dropped something");
    // The guarded action's total is exact for every signal that was
    // delivered at least once; the naive one counted duplicates.
    let unique_delivered = processed.lock().len() as u32;
    assert_eq!(guarded_total.load(Ordering::SeqCst), unique_delivered * 10);
    assert!(
        naive_total.load(Ordering::SeqCst) > guarded_total.load(Ordering::SeqCst),
        "the naive action over-counts under at-least-once delivery \
         (naive {} vs guarded {})",
        naive_total.load(Ordering::SeqCst),
        guarded_total.load(Ordering::SeqCst)
    );
}

#[test]
fn dropped_reply_reexecutes_servant() {
    // The classic at-least-once hazard: the servant runs, the reply drops,
    // the client retries, the servant runs AGAIN.
    let orb = Orb::builder()
        // Drop ~half of all messages; with retries the call eventually
        // completes but the servant usually executes more than once.
        .network(NetworkConfig::lossy(0.5, 0.0, 99))
        .retry_budget(512)
        .build();
    let node = orb.add_node("server").unwrap();
    let executions = Arc::new(AtomicU32::new(0));
    let executions2 = Arc::clone(&executions);
    let obj = node
        .activate("Op", move |_req: &Request| {
            executions2.fetch_add(1, Ordering::SeqCst);
            Ok(Value::Null)
        })
        .unwrap();
    let mut reexecuted = false;
    for _ in 0..30 {
        executions.store(0, Ordering::SeqCst);
        if orb
            .invoke_at_least_once(orb::node::EXTERNAL_CALLER, &obj, Request::new("op"))
            .is_ok()
            && executions.load(Ordering::SeqCst) > 1
        {
            reexecuted = true;
            break;
        }
    }
    assert!(
        reexecuted,
        "across 30 attempts on a 50%-loss network, at least one logical \
         call must have executed the servant more than once"
    );
}

/// Regression for the dedup window's eviction EDGE. With capacity N, ids
/// d0..d(N-1) fill the window exactly; the off-by-one bug class this pins
/// down is evicting at `len == capacity` instead of `len > capacity`, which
/// would forget d0 one insertion too early. At the edge every id must still
/// replay its memo; only the (N+1)-th distinct id may push d0 out — and
/// must push out ONLY d0, never its FIFO neighbour d1.
#[test]
fn dedup_window_eviction_edge_forgets_exactly_the_oldest() {
    const N: usize = 4;
    let executions = Arc::new(AtomicU32::new(0));
    let executions2 = Arc::clone(&executions);
    let inner: Arc<dyn Servant> = Arc::new(move |req: &Request| {
        executions2.fetch_add(1, Ordering::SeqCst);
        Ok(req.arg("v").cloned().unwrap_or(Value::Null))
    });
    let servant = DedupServant::new(inner, Arc::new(DedupWindow::new(N)));

    let stamped = |i: usize| {
        Request::new("apply")
            .with_arg("v", Value::from(i as i64))
            .with_delivery_id(format!("d{i}"))
    };

    // Fill the window to exactly its capacity: d0..d(N-1).
    for i in 0..N {
        assert_eq!(servant.dispatch(&stamped(i)).unwrap(), Value::from(i as i64));
    }
    assert_eq!(executions.load(Ordering::SeqCst), N as u32);
    assert_eq!(servant.window().len(), N);

    // The eviction edge: the window is full but nothing has been evicted,
    // so a redelivery of the OLDEST id must still replay its memo.
    assert_eq!(servant.dispatch(&stamped(0)).unwrap(), Value::from(0i64));
    assert_eq!(
        executions.load(Ordering::SeqCst),
        N as u32,
        "redelivery of d0 at the eviction edge must be memoized, not re-executed"
    );

    // One past the edge: dN is new, so exactly one eviction (d0) happens.
    assert_eq!(servant.dispatch(&stamped(N)).unwrap(), Value::from(N as i64));
    assert_eq!(executions.load(Ordering::SeqCst), N as u32 + 1);
    assert_eq!(servant.window().len(), N, "the window stays bounded at capacity");

    // d1 survived the eviction: still deduplicated.
    assert_eq!(servant.dispatch(&stamped(1)).unwrap(), Value::from(1i64));
    assert_eq!(
        executions.load(Ordering::SeqCst),
        N as u32 + 1,
        "evicting d0 must not take its FIFO neighbour d1 with it"
    );

    // d0 was genuinely forgotten: a late redelivery re-executes, which the
    // at-least-once contract allows once the sender's retry horizon (the
    // window bound) has passed.
    assert_eq!(servant.dispatch(&stamped(0)).unwrap(), Value::from(0i64));
    assert_eq!(executions.load(Ordering::SeqCst), N as u32 + 2);
}

#[test]
fn activity_completion_with_remote_actions_survives_chaos() {
    // End-to-end: an activity's completion broadcast reaches both remote
    // actions exactly-once *logically* despite drops and duplicates.
    let orb = lossy_orb(0.2, 0.3, 4242);
    let service = ActivityService::new();
    service.attach_to_orb(&orb);
    orb.add_node("coordinator").unwrap();
    let activity = service.begin("chaotic").unwrap();
    activity
        .coordinator()
        .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
            "Done",
            "finished",
            Value::Null,
        )))
        .unwrap();
    activity.set_completion_signal_set("Done");

    let mut flags = Vec::new();
    for i in 0..2 {
        let node = orb.add_node(format!("worker-{i}")).unwrap();
        let flag = Arc::new(parking_lot::Mutex::new(false));
        let flag2 = Arc::clone(&flag);
        let action: Arc<dyn activity_service::Action> =
            Arc::new(FnAction::new(format!("worker-{i}"), move |_s: &Signal| {
                *flag2.lock() = true; // naturally idempotent
                Ok(Outcome::done())
            }));
        let obj = node.activate("Action", ActionServant::new(action)).unwrap();
        activity.coordinator().register_action(
            "Done",
            Arc::new(RemoteActionProxy::new(
                format!("proxy-{i}"),
                orb.clone(),
                "coordinator",
                obj,
            )) as _,
        );
        flags.push(flag);
    }
    let outcome = service.complete().unwrap();
    assert!(outcome.is_done());
    for flag in flags {
        assert!(*flag.lock(), "every action eventually processed the signal");
    }
}
