//! Introspection across a severed link (DESIGN.md §15 meets §13): querying
//! a node's [`orb::Introspection`] surface while that node sits inside an
//! open partition window must fail with a *structured* [`orb::OrbError`] —
//! never a hang or a panic — and the operator-side failure detector must
//! record the resulting health transitions in its flight recorder and
//! metrics, exactly as it would for a dead participant.

use std::sync::Arc;
use std::time::Duration;

use orb::{
    DetectorConfig, FailureDetector, HealthStatus, Introspection, NetworkConfig, Orb,
    OrbError, Request, SimClock, Value,
};

fn query(probe: &str) -> Request {
    Request::new("query").with_arg("probe", Value::from(probe))
}

#[test]
fn query_inside_an_open_partition_window_is_a_structured_error() {
    let clock = SimClock::new();
    let orb = Orb::builder().network(NetworkConfig::reliable()).clock(clock.clone()).build();
    let ops = orb.add_node("ops").expect("ops node");
    let target = orb.add_node("target").expect("target node");
    let (surface, object) = Introspection::install(&target).expect("install surface");
    surface.register("status", || "alive\n".to_owned());

    // Sanity: the surface answers over the wire before the window opens.
    let reply = ops.invoke(&object, query("status")).expect("pre-partition query");
    assert_eq!(reply.result.as_str(), Some("alive\n"));

    // Operator-side detector, wired like a real deployment: transitions
    // mirror into the recorder and count in the metrics registry.
    let recorder = telemetry::FlightRecorder::new("ops", 64);
    let telemetry = telemetry::Telemetry::with_time(Arc::new(clock.clone()));
    let detector = FailureDetector::with_config(
        clock.clone(),
        DetectorConfig { suspect_after: 1, quarantine_after: 2, ..DetectorConfig::default() },
    );
    detector.set_recorder(recorder.clone());
    detector.set_telemetry(telemetry.clone());

    // Cut the target off for a window that covers "now".
    let window = Duration::from_micros(2_000);
    orb.network().schedule_partition(clock.now(), clock.now() + window, &[&["target"]]);

    // Inside the window every query returns promptly with the structured
    // partition error; feed each failure to the detector as an operator's
    // probe loop would.
    for _ in 0..2 {
        match ops.invoke(&object, query("status")) {
            Err(OrbError::Partitioned { from, to }) => {
                assert_eq!((from.as_str(), to.as_str()), ("ops", "target"));
                detector.record_failure("target");
            }
            other => panic!("expected a structured partition error, got {other:?}"),
        }
    }
    assert_eq!(detector.status("target"), HealthStatus::Quarantined);

    // The detector's black box shows the full healthy → suspect →
    // quarantined walk...
    let transitions: Vec<String> = recorder
        .events()
        .iter()
        .filter(|e| e.kind == telemetry::RecordKind::Detector)
        .map(|e| e.detail.clone())
        .collect();
    assert_eq!(
        transitions,
        vec![
            "target: healthy -> suspect".to_owned(),
            "target: suspect -> quarantined".to_owned(),
        ]
    );
    // ...and the transitions are counted in the metrics registry.
    let rendered = telemetry.metrics().render_prometheus();
    assert!(
        rendered
            .contains("detector_transitions_total{from=\"healthy\",to=\"suspect\"} 1"),
        "{rendered}"
    );

    // Heal by letting the window lapse: the same query answers again and
    // the detector rehabilitates the node.
    clock.advance(window);
    let reply = ops.invoke(&object, query("status")).expect("post-heal query");
    assert_eq!(reply.result.as_str(), Some("alive\n"));
    detector.record_success("target");
    assert_eq!(detector.status("target"), HealthStatus::Healthy);
    assert!(recorder
        .events()
        .iter()
        .any(|e| e.detail == "target: quarantined -> healthy"));
}
