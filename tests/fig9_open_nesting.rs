//! Fig. 9 / §4.2 end-to-end with real stores: nested top-level transactions
//! ("open nesting") where B commits early inside A and is undone by !B only
//! if A later rolls back. This is the paper's §2.1(i) bulletin-board
//! requirement: release resources early, compensate on failure.

use std::sync::Arc;

use activity_service::{Activity, ActivityService, CompletionStatus};
use orb::Value;
use ots::{TransactionFactory, TransactionalKv, TxError};
use tx_models::{
    ActivityRegistry, CompensationAction, CompletionSignalSet, InMemoryActivityRegistry,
    COMPLETION_SET,
};

struct OpenNested {
    service: ActivityService,
    factory: TransactionFactory,
    board: Arc<TransactionalKv>,
    registry: Arc<InMemoryActivityRegistry>,
}

impl OpenNested {
    fn new() -> Self {
        OpenNested {
            service: ActivityService::new(),
            factory: TransactionFactory::new(),
            board: Arc::new(TransactionalKv::new("bulletin-board")),
            registry: InMemoryActivityRegistry::new(),
        }
    }

    /// Start enclosing activity A with its CompletionSignalSet.
    fn begin_a(&self) -> Activity {
        let a = self.service.begin("A").unwrap();
        a.coordinator().add_signal_set(Box::new(CompletionSignalSet::new())).unwrap();
        a.set_completion_signal_set(COMPLETION_SET);
        self.registry.register(&a);
        a
    }

    /// Run B: an independent top-level transaction that posts to the board
    /// and commits immediately, protected by a CompensationAction that will
    /// delete the post if A ultimately fails.
    fn run_b(&self, a: &Activity) -> Arc<CompensationAction> {
        let b_activity = a.begin_child("B").unwrap();
        b_activity
            .coordinator()
            .add_signal_set(Box::new(CompletionSignalSet::propagating_to(a.id())))
            .unwrap();
        b_activity.set_completion_signal_set(COMPLETION_SET);

        // B is a REAL top-level transaction: it commits now, releasing its
        // locks long before A finishes.
        let tb = self.factory.create().unwrap();
        self.board.enlist(&tb).unwrap();
        self.board
            .write(tb.id(), "post-1", Value::from("selling bicycle"))
            .unwrap();
        tb.terminator().commit().unwrap();

        // !B: the compensating transaction, kept ready in an Action.
        let board = Arc::clone(&self.board);
        let factory_undo = TransactionFactory::new();
        let undo = CompensationAction::new(
            "undo-B",
            Arc::clone(&self.registry) as Arc<dyn ActivityRegistry>,
            move || {
                let t = factory_undo.create().map_err(|e| e.to_string())?;
                board.enlist(&t).map_err(|e| e.to_string())?;
                board.delete(t.id(), "post-1").map_err(|e| e.to_string())?;
                t.terminator().commit().map_err(|e| e.to_string())?;
                Ok(())
            },
        );
        b_activity
            .coordinator()
            .register_action(COMPLETION_SET, Arc::clone(&undo) as _);
        b_activity.complete().unwrap(); // propagate → undo enlists with A
        undo
    }
}

#[test]
fn b_released_resources_early() {
    let fixture = OpenNested::new();
    let a = fixture.begin_a();

    // A holds its own lock on "audit".
    let ta = fixture.factory.create().unwrap();
    fixture.board.enlist(&ta).unwrap();
    fixture.board.write(ta.id(), "audit", Value::from("A-was-here")).unwrap();

    let _undo = fixture.run_b(&a);
    // B's post is already visible and its lock released — a third party can
    // read AND write it while A is still running. That is the whole point
    // of open nesting (§2.1(i)).
    assert_eq!(
        fixture.board.read_committed("post-1"),
        Some(Value::from("selling bicycle"))
    );
    let t_other = fixture.factory.create().unwrap();
    fixture.board.enlist(&t_other).unwrap();
    fixture
        .board
        .write(t_other.id(), "post-2", Value::from("another post"))
        .unwrap();
    t_other.terminator().commit().unwrap();
    // But A's own lock is still held.
    let t_blocked = fixture.factory.create().unwrap();
    fixture.board.enlist(&t_blocked).unwrap();
    assert!(matches!(
        fixture.board.write(t_blocked.id(), "audit", Value::from("x")),
        Err(TxError::LockConflict { .. })
    ));
    t_blocked.terminator().rollback().unwrap();

    ta.terminator().commit().unwrap();
    fixture.service.complete().unwrap();
}

#[test]
fn a_commits_b_stays() {
    let fixture = OpenNested::new();
    let a = fixture.begin_a();
    let undo = fixture.run_b(&a);
    fixture.service.complete().unwrap(); // A succeeds → Success signal
    assert!(!undo.compensated());
    assert_eq!(
        fixture.board.read_committed("post-1"),
        Some(Value::from("selling bicycle"))
    );
}

#[test]
fn a_aborts_b_compensated() {
    let fixture = OpenNested::new();
    let a = fixture.begin_a();
    let undo = fixture.run_b(&a);
    // A's own transactional work fails, so A completes in failure…
    a.set_completion_status(CompletionStatus::FailOnly).unwrap();
    fixture.service.complete().unwrap();
    // …and !B ran: the early-committed post is gone again.
    assert!(undo.compensated());
    assert_eq!(fixture.board.read_committed("post-1"), None);
}

#[test]
fn b_rolls_back_no_compensation_needed() {
    let fixture = OpenNested::new();
    let a = fixture.begin_a();

    // B aborts on its own: nothing to protect.
    let b_activity = a.begin_child("B").unwrap();
    b_activity
        .coordinator()
        .add_signal_set(Box::new(CompletionSignalSet::propagating_to(a.id())))
        .unwrap();
    b_activity.set_completion_signal_set(COMPLETION_SET);
    let tb = fixture.factory.create().unwrap();
    fixture.board.enlist(&tb).unwrap();
    fixture.board.write(tb.id(), "post-1", Value::from("draft")).unwrap();
    tb.terminator().rollback().unwrap();
    let undo = CompensationAction::new(
        "undo-B",
        Arc::clone(&fixture.registry) as Arc<dyn ActivityRegistry>,
        || panic!("must never run: B never committed"),
    );
    b_activity
        .coordinator()
        .register_action(COMPLETION_SET, Arc::clone(&undo) as _);
    b_activity.complete_with_status(CompletionStatus::Fail).unwrap();
    assert!(undo.retired(), "failure signal retired the action quietly");

    // A then fails too — still nothing runs.
    a.set_completion_status(CompletionStatus::FailOnly).unwrap();
    fixture.service.complete().unwrap();
    assert_eq!(fixture.board.read_committed("post-1"), None);
}
