//! Property tests over BTP cohesions: for any interleaving of enrol /
//! prepare / cancel and any confirm-set choice, the cohesion's outcome
//! partitions its inferiors correctly and participants end in states
//! consistent with the decision.

use std::sync::Arc;

use activity_service::Activity;
use btp::{BtpError, BtpParticipant, BtpVote, Cohesion, Reservation, ReservationState};
use orb::SimClock;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cohesion_confirm_partitions_inferiors(
        // Per inferior: (participant refuses prepare?, do we prepare it?,
        // is it wanted in the confirm-set?)
        spec in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 1..7),
    ) {
        let activity = Activity::new_root("prop-trip", SimClock::new());
        let cohesion = Cohesion::new("prop-trip", activity);

        let mut reservations = Vec::new();
        let mut prepared_ok = Vec::new();
        for (i, (refuses, do_prepare, _)) in spec.iter().enumerate() {
            let name = format!("atom-{i}");
            let atom = cohesion.enroll_atom(&name).unwrap();
            let vote = if *refuses { BtpVote::Cancelled } else { BtpVote::Prepared };
            let r = Reservation::voting(format!("res-{i}"), vote);
            atom.enroll(Arc::clone(&r) as Arc<dyn BtpParticipant>).unwrap();
            if *do_prepare {
                match cohesion.prepare(&name) {
                    Ok(()) => {
                        prop_assert!(!refuses);
                        prepared_ok.push(name.clone());
                    }
                    Err(BtpError::Cancelled) => prop_assert!(refuses),
                    Err(other) => prop_assert!(false, "unexpected {other}"),
                }
            }
            reservations.push((name, r, *refuses, *do_prepare));
        }

        // Desired confirm-set: the wanted ∩ actually-prepared inferiors.
        let confirm_set: Vec<&str> = reservations
            .iter()
            .zip(spec.iter())
            .filter(|((name, _, _, _), (_, _, wanted))| {
                *wanted && prepared_ok.contains(name)
            })
            .map(|((name, _, _, _), _)| name.as_str())
            .collect();

        let report = cohesion.confirm(&confirm_set).unwrap();

        // Partition invariants.
        for name in &report.confirmed {
            prop_assert!(confirm_set.contains(&name.as_str()));
            prop_assert!(!report.cancelled.contains(name));
        }
        prop_assert_eq!(report.confirmed.len(), confirm_set.len());

        // Participant end states match the decision.
        for (name, r, refused, _prepared) in &reservations {
            if report.confirmed.contains(name) {
                prop_assert_eq!(r.state(), ReservationState::Confirmed);
            } else if *refused {
                // Its own refusal already cancelled it (when prepared), or
                // the sweep cancelled it.
                prop_assert_ne!(r.state(), ReservationState::Confirmed);
            } else {
                prop_assert_ne!(r.state(), ReservationState::Confirmed);
            }
        }
    }

    /// Confirming a set containing any unprepared inferior must change
    /// NOTHING (decision atomicity).
    #[test]
    fn invalid_confirm_sets_are_all_or_nothing(size in 2usize..6) {
        let activity = Activity::new_root("prop-trip", SimClock::new());
        let cohesion = Cohesion::new("prop-trip", activity);
        let mut reservations = Vec::new();
        for i in 0..size {
            let name = format!("atom-{i}");
            let atom = cohesion.enroll_atom(&name).unwrap();
            let r = Reservation::new(format!("res-{i}"));
            atom.enroll(Arc::clone(&r) as Arc<dyn BtpParticipant>).unwrap();
            // Prepare all but the last.
            if i + 1 < size {
                cohesion.prepare(&name).unwrap();
            }
            reservations.push(r);
        }
        let all: Vec<String> = (0..size).map(|i| format!("atom-{i}")).collect();
        let all_refs: Vec<&str> = all.iter().map(String::as_str).collect();
        let err = cohesion.confirm(&all_refs).unwrap_err();
        prop_assert!(matches!(err, BtpError::NotPrepared(_)));
        // Nothing was confirmed or swept.
        for (i, r) in reservations.iter().enumerate() {
            if i + 1 < size {
                prop_assert_eq!(r.state(), ReservationState::Prepared);
            } else {
                prop_assert_eq!(r.state(), ReservationState::Pending);
            }
        }
        // And the cohesion is still usable.
        cohesion.prepare(&all[size - 1]).unwrap();
        cohesion.confirm(&all_refs).unwrap();
        for r in &reservations {
            prop_assert_eq!(r.state(), ReservationState::Confirmed);
        }
    }
}
