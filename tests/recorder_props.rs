//! Property tests over the flight recorder's ring (DESIGN.md §15):
//!
//! 1. **Bounded, tail-exact wraparound** — for arbitrary capacities and
//!    event counts, the ring never holds more than `capacity` events, and
//!    the survivors are exactly the newest-`capacity` suffix of the full
//!    history with their original sequence numbers intact and strictly
//!    ascending. Eviction is oldest-first; it never reorders, duplicates
//!    or fabricates.
//! 2. **Wrapped dumps stay causally whole** — when the ring's capacity
//!    aligns with whole per-transaction 2PC journals, a wrapped recorder
//!    still retains only *complete* journals: every surviving transaction
//!    replays through the reference models without a violation. This is
//!    the property oracle #11 leans on — ring eviction may lose history,
//!    but the window it keeps is a causally-contiguous suffix, never a
//!    gap-riddled one.
//! 3. **Deterministic fingerprints** — replaying the identical history
//!    into a fresh recorder reproduces the fingerprint bit-identically,
//!    and the dump header carries the eviction count.

use harness::model::{self, Event, Vote};
use proptest::prelude::*;
use telemetry::{FlightRecorder, RecordKind};

/// One complete, model-clean 2PC journal over `participants` resources:
/// prepare + vote for each, one forced decision, outcome + forget for
/// each, one completion. Fixed length `4 * participants + 2` so a ring
/// capacity that is a multiple of it aligns with transaction boundaries.
fn tx_journal(tx: usize, participants: usize, commit: bool) -> Vec<Event> {
    let name = |p: usize| format!("tx{tx}-res{p}");
    let mut events = Vec::with_capacity(4 * participants + 2);
    for p in 0..participants {
        events.push(Event::PrepareSent { participant: name(p) });
        events.push(Event::VoteRecorded {
            participant: name(p),
            vote: if commit { Vote::Commit } else { Vote::Rollback },
        });
    }
    events.push(Event::DecisionForced { commit });
    for p in 0..participants {
        events.push(Event::OutcomeDelivered { participant: name(p), commit });
        events.push(Event::Forgotten { participant: name(p) });
    }
    events.push(Event::TxCompleted { committed: commit });
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: the ring is bounded and the survivors are the exact
    /// newest-`capacity` suffix, seqs ascending and contiguous.
    fn wraparound_keeps_the_exact_tail(
        capacity in 1usize..48,
        total in 0usize..400,
    ) {
        let rec = FlightRecorder::new("node", capacity);
        for i in 0..total {
            rec.record(RecordKind::Trace, || format!("event-{i}"));
        }
        let retained = rec.events();

        prop_assert_eq!(rec.total_recorded(), total as u64);
        prop_assert_eq!(retained.len(), total.min(capacity));
        prop_assert!(rec.len() <= rec.capacity(), "ring exceeded its bound");

        // Survivors are the suffix `total - retained .. total`, in order,
        // with the sequence numbers they were assigned at record time.
        let first_kept = total - retained.len();
        for (offset, event) in retained.iter().enumerate() {
            let source = first_kept + offset;
            prop_assert_eq!(event.seq, source as u64);
            prop_assert_eq!(&event.detail, &format!("event-{source}"));
        }
        for pair in retained.windows(2) {
            prop_assert!(pair[0].seq + 1 == pair[1].seq, "eviction tore a causal gap");
        }
    }

    /// Property 2: a capacity aligned to whole per-transaction journals
    /// means a wrapped dump holds only complete journals — each retained
    /// transaction replays through the reference models cleanly.
    fn wrapped_window_holds_only_complete_journals(
        participants in 1usize..4,
        window_txs in 1usize..4,
        extra_txs in 1usize..5,
        commit_bits in proptest::collection::vec(0u8..2, 8),
    ) {
        let journal_len = 4 * participants + 2;
        let capacity = journal_len * window_txs;
        let total_txs = window_txs + extra_txs;

        // Flat source history: `total_txs` back-to-back journals, mixing
        // commits and aborts, recorded as protocol events.
        let mut source = Vec::new();
        for tx in 0..total_txs {
            let commit = commit_bits[tx % commit_bits.len()] == 1;
            source.extend(tx_journal(tx, participants, commit));
        }
        let rec = FlightRecorder::new("coordinator", capacity);
        for event in &source {
            rec.record(RecordKind::Protocol, || format!("{event:?}"));
        }

        let retained = rec.events();
        prop_assert_eq!(retained.len(), capacity, "the history must wrap the ring");
        // The window starts on a transaction boundary by construction;
        // check the seq arithmetic agrees.
        let first_kept = retained[0].seq as usize;
        prop_assert_eq!(first_kept % journal_len, 0, "window misaligned with journals");

        // Reconstruct each surviving transaction from the source via the
        // retained seqs (the details were checked against the source in
        // property 1) and replay it through every reference model.
        for chunk in retained.chunks(journal_len) {
            let events: Vec<Event> =
                chunk.iter().map(|e| source[e.seq as usize].clone()).collect();
            for (kept, rebuilt) in chunk.iter().zip(events.iter()) {
                prop_assert_eq!(&kept.detail, &format!("{rebuilt:?}"));
            }
            let violations = model::replay_all(&events);
            prop_assert!(
                violations.is_empty(),
                "a wrapped-but-aligned window must replay cleanly: {violations:?}"
            );
        }
    }

    /// Property 3: identical histories fingerprint identically, and the
    /// dump header reports exactly how much history eviction lost.
    fn rebuilt_history_reproduces_the_fingerprint(
        capacity in 1usize..32,
        total in 1usize..200,
    ) {
        let build = || {
            let rec = FlightRecorder::new("node", capacity);
            for i in 0..total {
                rec.record(RecordKind::Trace, || format!("event-{i}"));
            }
            rec
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.dump(), b.dump());
        let evicted = total.saturating_sub(capacity);
        if evicted > 0 {
            prop_assert!(
                a.dump().contains(&format!("{evicted} earlier events evicted")),
                "dump must account for the lost prefix: {}",
                a.dump()
            );
        }
    }
}
