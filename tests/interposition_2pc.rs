//! Interposition end-to-end: a signal-driven 2PC (fig. 8) spanning three
//! organisations, each behind a subordinate relay, so the superior
//! coordinator sends each protocol signal over the network exactly once
//! per *organisation* rather than once per *participant*.

use std::sync::Arc;

use activity_service::{interpose, Activity};
use orb::{NetworkConfig, Orb, SimClock, Value};
use ots::{Resource, TransactionalKv, TxId};
use tx_models::{ResourceAction, TwoPhaseCommitSignalSet, TWO_PC_SET};

const PARTICIPANTS_PER_ORG: usize = 4;

struct Org {
    stores: Vec<Arc<TransactionalKv>>,
}

fn build(
    orb: &Orb,
    activity: &Activity,
    tx: &TxId,
    org_names: &[&str],
    interposed: bool,
) -> Vec<Org> {
    let mut orgs = Vec::new();
    for org_name in org_names {
        let node = orb.add_node(*org_name).unwrap();
        let mut stores = Vec::new();
        let relay = if interposed {
            Some(
                interpose(
                    activity.coordinator(),
                    TWO_PC_SET,
                    orb,
                    &node,
                    format!("{org_name}-relay"),
                )
                .unwrap(),
            )
        } else {
            None
        };
        for i in 0..PARTICIPANTS_PER_ORG {
            let store = Arc::new(TransactionalKv::new(format!("{org_name}-{i}")));
            store.write(tx, "k", Value::from(i as i64)).unwrap();
            let action = Arc::new(ResourceAction::new(
                format!("{org_name}-{i}"),
                tx.clone(),
                Arc::clone(&store) as Arc<dyn Resource>,
            ));
            match &relay {
                Some(relay) => relay.register_local(action as _),
                None => {
                    // Flat: every participant is a separate remote action.
                    let servant = activity_service::ActionServant::new(action as _);
                    let obj = node.activate("Action", servant).unwrap();
                    let proxy = activity_service::RemoteActionProxy::new(
                        format!("{org_name}-{i}"),
                        orb.clone(),
                        "superior",
                        obj,
                    );
                    activity.coordinator().register_action(TWO_PC_SET, Arc::new(proxy) as _);
                }
            }
            stores.push(store);
        }
        orgs.push(Org { stores });
    }
    orgs
}

fn run(interposed: bool) -> (u64, Vec<Org>) {
    let orb = Orb::builder().network(NetworkConfig::reliable()).build();
    orb.add_node("superior").unwrap();
    let activity = Activity::new_root("cross-org-commit", SimClock::new());
    activity
        .coordinator()
        .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
        .unwrap();
    activity.set_completion_signal_set(TWO_PC_SET);
    let tx = TxId::top_level(1);
    let orgs = build(&orb, &activity, &tx, &["org-a", "org-b", "org-c"], interposed);

    let before = orb.network().stats().sent;
    let outcome = activity.complete().unwrap();
    assert_eq!(outcome.name(), "committed");
    (orb.network().stats().sent - before, orgs)
}

#[test]
fn interposed_commit_is_correct_and_cheaper_on_the_wire() {
    let (flat_msgs, flat_orgs) = run(false);
    let (interposed_msgs, interposed_orgs) = run(true);

    // Correctness: every store in every org committed in both layouts.
    for orgs in [&flat_orgs, &interposed_orgs] {
        for org in orgs.iter() {
            for (i, store) in org.stores.iter().enumerate() {
                assert_eq!(store.read_committed("k"), Some(Value::from(i as i64)));
            }
        }
    }

    // Economics: 2 signals × (request+reply) × targets.
    // Flat: targets = 12 participants → 48 messages.
    // Interposed: targets = 3 orgs → 12 messages.
    assert_eq!(flat_msgs, 48);
    assert_eq!(interposed_msgs, 12);
}

#[test]
fn subordinate_abort_vote_aborts_the_whole_transaction() {
    let orb = Orb::new();
    orb.add_node("superior").unwrap();
    let node = orb.add_node("org-a").unwrap();
    let activity = Activity::new_root("doomed", SimClock::new());
    activity
        .coordinator()
        .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
        .unwrap();
    activity.set_completion_signal_set(TWO_PC_SET);
    let tx = TxId::top_level(1);

    let relay =
        interpose(activity.coordinator(), TWO_PC_SET, &orb, &node, "org-a-relay").unwrap();
    let healthy = Arc::new(TransactionalKv::new("healthy"));
    healthy.write(&tx, "k", Value::from(1i64)).unwrap();
    relay.register_local(Arc::new(ResourceAction::new(
        "healthy",
        tx.clone(),
        Arc::clone(&healthy) as Arc<dyn Resource>,
    )) as _);
    // A local refuser buried inside the org.
    relay.register_local(Arc::new(activity_service::FnAction::new(
        "refuser",
        |s: &activity_service::Signal| {
            if s.name() == "prepare" {
                Ok(activity_service::Outcome::abort())
            } else {
                Ok(activity_service::Outcome::done())
            }
        },
    )) as _);

    let outcome = activity.complete().unwrap();
    assert_eq!(outcome.name(), "rolled_back");
    assert_eq!(healthy.read_committed("k"), None, "the healthy local was rolled back too");
}

#[test]
fn interposed_spans_continue_the_superior_trace() {
    // Span propagation across interposition: the superior's 2PC signals
    // cross the wire to the subordinate node, and the `serve:` spans on
    // the far side must continue the superior's trace id — one causal
    // trace spanning both organisations, not one per node.
    let telemetry = telemetry::Telemetry::new();
    let orb = Orb::builder()
        .network(NetworkConfig::reliable())
        .telemetry(telemetry.clone())
        .build();
    orb.add_node("superior").unwrap();
    let node = orb.add_node("org-a").unwrap();
    let activity = Activity::new_root("cross-org-commit", SimClock::new());
    activity
        .coordinator()
        .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
        .unwrap();
    activity.set_completion_signal_set(TWO_PC_SET);
    activity.coordinator().set_telemetry(telemetry.clone());
    let tx = TxId::top_level(1);
    let relay =
        interpose(activity.coordinator(), TWO_PC_SET, &orb, &node, "org-a-relay").unwrap();
    let store = Arc::new(TransactionalKv::new("store"));
    store.write(&tx, "k", Value::from(9i64)).unwrap();
    relay.register_local(Arc::new(ResourceAction::new(
        "store",
        tx,
        Arc::clone(&store) as Arc<dyn Resource>,
    )) as _);

    let outcome = activity.complete().unwrap();
    assert_eq!(outcome.name(), "committed");

    let tree = telemetry.span_tree();
    assert_eq!(tree.verify(), Vec::<String>::new());

    // Everything recorded — protocol drive, client calls, remote serves —
    // belongs to the single trace rooted at the superior's signal-set span.
    assert_eq!(tree.trace_ids().len(), 1, "expected one causal trace");
    let roots = tree.roots();
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].name, format!("signal_set:{TWO_PC_SET}"));
    let trace = roots[0].context.trace_id;

    // Prepare and commit each crossed the wire once: two server-side spans,
    // each adopted into the superior's trace and parented under the client
    // call that carried the context.
    let serves: Vec<_> =
        tree.spans().iter().filter(|s| s.name == "serve:process_signal").collect();
    assert_eq!(serves.len(), 2, "one serve per protocol phase");
    for serve in serves {
        assert_eq!(serve.context.trace_id, trace, "subordinate must continue the trace");
        let parent_id = serve.context.parent.expect("serve span has a remote parent");
        let parent = tree
            .spans()
            .iter()
            .find(|s| s.context.span_id == parent_id)
            .expect("parent is in the same recorder");
        assert_eq!(parent.name, "call:process_signal");
    }
}

#[test]
fn interposition_survives_a_lossy_network() {
    let orb = Orb::builder()
        .network(NetworkConfig::lossy(0.25, 0.25, 777))
        .retry_budget(256)
        .build();
    orb.add_node("superior").unwrap();
    let node = orb.add_node("org-a").unwrap();
    let activity = Activity::new_root("chaotic", SimClock::new());
    activity
        .coordinator()
        .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
        .unwrap();
    activity.set_completion_signal_set(TWO_PC_SET);
    let tx = TxId::top_level(1);
    let relay =
        interpose(activity.coordinator(), TWO_PC_SET, &orb, &node, "org-a-relay").unwrap();
    let store = Arc::new(TransactionalKv::new("store"));
    store.write(&tx, "k", Value::from(5i64)).unwrap();
    relay.register_local(Arc::new(ResourceAction::new(
        "store",
        tx,
        Arc::clone(&store) as Arc<dyn Resource>,
    )) as _);
    let outcome = activity.complete().unwrap();
    assert_eq!(outcome.name(), "committed");
    assert_eq!(store.read_committed("k"), Some(Value::from(5i64)));
}
