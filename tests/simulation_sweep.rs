//! Tier-1 bounded simulation sweep: the deterministic chaos explorer runs
//! a fixed population of seeded fault schedules against every scenario
//! adapter and checks the twelve §3.4 invariant oracles after each run.
//!
//! Two properties are pinned here:
//!
//! 1. **Soundness** — no generated schedule violates any oracle on the
//!    well-behaved scenarios, and the whole sweep is bit-reproducible
//!    (identical fingerprints on two consecutive executions);
//! 2. **Sensitivity** — the intentionally broken fixture (non-idempotent
//!    action registered without `ExactlyOnceAction`) IS caught, and the
//!    violating schedule shrinks to a minimal reproducer of at most five
//!    fault events, printed with its seed.

use harness::scenarios::{self, BrokenWorkflowScenario};
use harness::scenarios::{TwoPhaseGroupCommitScenario, TwoPhaseScenario};
use harness::{generate, sweep, FaultSchedule, Scenario, ScheduleSpace, SweepConfig};

/// 7 scenarios × 40 seeds = 280 distinct fault schedules, plus the broken
/// fixture's own 40 below.
const SEEDS_PER_SCENARIO: u64 = 40;

fn config() -> SweepConfig {
    SweepConfig {
        seed_start: 0x20260806,
        schedules: SEEDS_PER_SCENARIO,
        max_events: 4,
        shrink: true,
    }
}

#[test]
fn bounded_sweep_holds_every_oracle_and_is_reproducible() {
    let config = config();
    let mut total = 0;
    for scenario in scenarios::all() {
        let first = sweep(scenario.as_ref(), &config);
        let second = sweep(scenario.as_ref(), &config);
        assert_eq!(
            first.fingerprint, second.fingerprint,
            "{}: two consecutive sweeps diverged — simulation is not deterministic",
            first.scenario
        );
        assert!(
            first.failures.is_empty(),
            "{}: oracle violations:\n{}",
            first.scenario,
            first
                .failures
                .iter()
                .map(harness::FailureReport::repro)
                .collect::<Vec<_>>()
                .join("\n")
        );
        total += first.schedules_run;
    }
    assert!(
        total >= 240,
        "the tier-1 sweep must cover at least 240 distinct fault schedules, ran {total}"
    );
}

/// Tier-1 regression guard for the group-commit pipeline: the wal
/// configuration must be protocol-invisible. Fault-free runs produce
/// byte-identical traces with per-record sync and group commit; under every
/// seeded fault schedule of the sweep space the two configurations agree on
/// the terminal outcome and the participants' durable states, and both stay
/// oracle-green. (Crash-schedule *traces* may legitimately differ — the
/// group log loses its staged, never-acked tail — but the decision the
/// recovery reaches may not.)
#[test]
fn group_commit_is_protocol_invisible_across_the_sweep() {
    let per_record = TwoPhaseScenario;
    let grouped = TwoPhaseGroupCommitScenario;

    let probe_a = per_record.run(&FaultSchedule::empty());
    let probe_b = grouped.run(&FaultSchedule::empty());
    assert_eq!(
        probe_a.trace, probe_b.trace,
        "fault-free traces must be byte-identical across wal configurations"
    );
    assert_eq!(probe_a.participant_commits, probe_b.participant_commits);
    assert_eq!(
        probe_a.observed_sites, probe_b.observed_sites,
        "both configurations must expose the same schedule space"
    );

    let space = ScheduleSpace {
        sites: probe_a.observed_sites.clone(),
        remote_messages: probe_a.remote_messages,
        max_events: 4,
        ..ScheduleSpace::default()
    };
    for offset in 0..SEEDS_PER_SCENARIO {
        let seed = 0x20260806 + offset;
        let sched = generate(seed, &space);
        let a = per_record.run(&sched);
        let b = grouped.run(&sched);
        assert_eq!(
            a.outcome, b.outcome,
            "seed {seed}: outcomes diverged across wal configurations"
        );
        assert_eq!(
            a.participant_commits, b.participant_commits,
            "seed {seed}: participant states diverged across wal configurations"
        );
        assert!(
            harness::check_all(&a).is_empty(),
            "seed {seed}: per-record run violated an oracle"
        );
        assert!(
            harness::check_all(&b).is_empty(),
            "seed {seed}: group-commit run violated an oracle: {:?}",
            harness::check_all(&b)
        );
    }
}

#[test]
fn broken_fixture_is_caught_and_shrunk_to_a_tiny_reproducer() {
    let report = sweep(&BrokenWorkflowScenario, &config());
    assert!(
        !report.failures.is_empty(),
        "the sweep failed to catch the planted exactly-once bug"
    );
    for failure in &report.failures {
        // Print the copy-pasteable reproducer (visible with --nocapture
        // and in CI logs on failure).
        println!("{}", failure.repro());
        assert!(failure.seed.is_some(), "only seeded schedules may fail, not the probe");
        assert!(
            failure.violations.iter().any(|v| v.oracle == "exactly-once"),
            "the planted bug is an exactly-once violation, got {:?}",
            failure.violations
        );
        assert!(
            failure.minimized.len() <= 5,
            "shrinking must reach ≤5 fault events, got {}:\n{}",
            failure.minimized.len(),
            failure.minimized
        );
        assert!(
            !failure.minimized.is_empty(),
            "the broken fixture passes fault-free runs; the reproducer needs an event"
        );
        assert!(failure.repro().contains("seed"), "the reproducer must name its seed");
    }
    // The same sweep is reproducible, failures included.
    let again = sweep(&BrokenWorkflowScenario, &config());
    assert_eq!(report.fingerprint, again.fingerprint);
    assert_eq!(report.failures.len(), again.failures.len());
}
