//! Tier-1 bounded simulation sweep: the deterministic chaos explorer runs
//! a fixed population of seeded fault schedules against every scenario
//! adapter and checks the six §3.4 invariant oracles after each run.
//!
//! Two properties are pinned here:
//!
//! 1. **Soundness** — no generated schedule violates any oracle on the
//!    well-behaved scenarios, and the whole sweep is bit-reproducible
//!    (identical fingerprints on two consecutive executions);
//! 2. **Sensitivity** — the intentionally broken fixture (non-idempotent
//!    action registered without `ExactlyOnceAction`) IS caught, and the
//!    violating schedule shrinks to a minimal reproducer of at most five
//!    fault events, printed with its seed.

use harness::scenarios::{self, BrokenWorkflowScenario};
use harness::{sweep, SweepConfig};

/// 5 scenarios × 40 seeds = 200 distinct fault schedules, plus the broken
/// fixture's own 40 below.
const SEEDS_PER_SCENARIO: u64 = 40;

fn config() -> SweepConfig {
    SweepConfig {
        seed_start: 0x20260806,
        schedules: SEEDS_PER_SCENARIO,
        max_events: 4,
        shrink: true,
    }
}

#[test]
fn bounded_sweep_holds_every_oracle_and_is_reproducible() {
    let config = config();
    let mut total = 0;
    for scenario in scenarios::all() {
        let first = sweep(scenario.as_ref(), &config);
        let second = sweep(scenario.as_ref(), &config);
        assert_eq!(
            first.fingerprint, second.fingerprint,
            "{}: two consecutive sweeps diverged — simulation is not deterministic",
            first.scenario
        );
        assert!(
            first.failures.is_empty(),
            "{}: oracle violations:\n{}",
            first.scenario,
            first
                .failures
                .iter()
                .map(harness::FailureReport::repro)
                .collect::<Vec<_>>()
                .join("\n")
        );
        total += first.schedules_run;
    }
    assert!(
        total >= 200,
        "the tier-1 sweep must cover at least 200 distinct fault schedules, ran {total}"
    );
}

#[test]
fn broken_fixture_is_caught_and_shrunk_to_a_tiny_reproducer() {
    let report = sweep(&BrokenWorkflowScenario, &config());
    assert!(
        !report.failures.is_empty(),
        "the sweep failed to catch the planted exactly-once bug"
    );
    for failure in &report.failures {
        // Print the copy-pasteable reproducer (visible with --nocapture
        // and in CI logs on failure).
        println!("{}", failure.repro());
        assert!(failure.seed.is_some(), "only seeded schedules may fail, not the probe");
        assert!(
            failure.violations.iter().any(|v| v.oracle == "exactly-once"),
            "the planted bug is an exactly-once violation, got {:?}",
            failure.violations
        );
        assert!(
            failure.minimized.len() <= 5,
            "shrinking must reach ≤5 fault events, got {}:\n{}",
            failure.minimized.len(),
            failure.minimized
        );
        assert!(
            !failure.minimized.is_empty(),
            "the broken fixture passes fault-free runs; the reproducer needs an event"
        );
        assert!(failure.repro().contains("seed"), "the reproducer must name its seed");
    }
    // The same sweep is reproducible, failures included.
    let again = sweep(&BrokenWorkflowScenario, &config());
    assert_eq!(report.fingerprint, again.fingerprint);
    assert_eq!(report.failures.len(), again.failures.len());
}
