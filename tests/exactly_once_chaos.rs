//! §3.4's stronger guarantee, end to end: "exactly once — can be provided
//! by the activity service itself making use of the underlying transaction
//! service." An `ExactlyOnceAction` sits on a remote node behind a
//! duplicating, lossy network; however many times the network re-executes
//! the servant, the wrapped action's *effect* happens once per logical
//! signal.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use activity_service::{
    ActionServant, ActivityService, BroadcastSignalSet, ExactlyOnceAction, FnAction,
    Outcome, RemoteActionProxy, Signal,
};
use orb::{NetworkConfig, Orb, Value};
use recovery_log::{MemWal, Wal};

fn effectful_inner() -> (Arc<dyn activity_service::Action>, Arc<AtomicU32>) {
    let effects = Arc::new(AtomicU32::new(0));
    let effects2 = Arc::clone(&effects);
    let inner: Arc<dyn activity_service::Action> =
        Arc::new(FnAction::new("debit", move |_s: &Signal| {
            effects2.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }));
    (inner, effects)
}

#[test]
fn network_duplication_cannot_double_the_effect() {
    // Every message is duplicated: the servant runs twice per delivery,
    // but the exactly-once wrapper pins the effect to one execution.
    let orb = Orb::builder().network(NetworkConfig::lossy(0.0, 1.0, 5)).build();
    let node = orb.add_node("bank").unwrap();
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let (inner, effects) = effectful_inner();
    let action = ExactlyOnceAction::new("eo-debit", inner, wal).unwrap();
    let obj = node
        .activate("Action", ActionServant::new(action as Arc<dyn activity_service::Action>))
        .unwrap();
    let proxy = RemoteActionProxy::new("proxy", orb, "client", obj);

    let signal = Signal::new("debit", "set").with_delivery_id("payment-1");
    let reply = activity_service::Action::process_signal(&proxy, &signal).unwrap();
    assert!(reply.is_done());
    assert_eq!(effects.load(Ordering::SeqCst), 1, "one logical signal, one effect");

    // A distinct logical signal is a distinct effect.
    let signal2 = Signal::new("debit", "set").with_delivery_id("payment-2");
    activity_service::Action::process_signal(&proxy, &signal2).unwrap();
    assert_eq!(effects.load(Ordering::SeqCst), 2);
}

#[test]
fn chaos_retries_converge_to_one_effect_per_signal() {
    let orb = Orb::builder()
        .network(NetworkConfig::lossy(0.3, 0.4, 20260707))
        .retry_budget(256)
        .build();
    let node = orb.add_node("bank").unwrap();
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let (inner, effects) = effectful_inner();
    let action = ExactlyOnceAction::new("eo-debit", inner, wal).unwrap();
    let obj = node
        .activate("Action", ActionServant::new(action as Arc<dyn activity_service::Action>))
        .unwrap();
    let proxy = RemoteActionProxy::new("proxy", orb.clone(), "client", obj);

    let mut delivered = 0;
    for i in 0..40 {
        let signal = Signal::new("debit", "set").with_delivery_id(format!("payment-{i}"));
        if activity_service::Action::process_signal(&proxy, &signal).is_ok() {
            delivered += 1;
        }
    }
    let stats = orb.network().stats();
    assert!(stats.duplicated > 0 && stats.dropped > 0, "chaos actually fired");
    // The retry budget is generous, so every logical signal got through at
    // least once; effects must equal logical deliveries exactly.
    assert_eq!(delivered, 40);
    assert_eq!(effects.load(Ordering::SeqCst), 40);
}

#[test]
fn activity_completion_is_exactly_once_under_duplication() {
    // Full stack: the coordinator stamps delivery ids; the remote
    // exactly-once action dedups even though the network duplicates every
    // message.
    let orb = Orb::builder().network(NetworkConfig::lossy(0.0, 1.0, 9)).build();
    let service = ActivityService::new();
    orb.add_node("coordinator").unwrap();
    let node = orb.add_node("worker").unwrap();
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let (inner, effects) = effectful_inner();
    let eo = ExactlyOnceAction::new("eo", inner, wal).unwrap();
    let obj = node
        .activate("Action", ActionServant::new(Arc::clone(&eo) as Arc<dyn activity_service::Action>))
        .unwrap();

    let activity = service.begin("billing-run").unwrap();
    activity
        .coordinator()
        .add_signal_set(Box::new(BroadcastSignalSet::new("Bill", "charge", Value::U64(25))))
        .unwrap();
    activity.set_completion_signal_set("Bill");
    activity.coordinator().register_action(
        "Bill",
        Arc::new(RemoteActionProxy::new("remote", orb.clone(), "coordinator", obj)) as _,
    );
    let outcome = service.complete().unwrap();
    assert!(outcome.is_done());
    assert_eq!(
        effects.load(Ordering::SeqCst),
        1,
        "the duplicated charge signal produced exactly one charge"
    );
    assert_eq!(eo.processed_count(), 1);
    assert!(orb.network().stats().duplicated > 0);
}

#[test]
fn restart_between_redeliveries_still_dedups() {
    // The processed-set is durable: a redelivery arriving AFTER the action
    // "process" restarted over the same log is still suppressed.
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let (inner, effects) = effectful_inner();
    let signal = Signal::new("debit", "set").with_delivery_id("payment-1");
    {
        let action = ExactlyOnceAction::new("eo", Arc::clone(&inner), Arc::clone(&wal)).unwrap();
        activity_service::Action::process_signal(&*action, &signal).unwrap();
    }
    let action = ExactlyOnceAction::new("eo", inner, wal).unwrap();
    let replayed = activity_service::Action::process_signal(&*action, &signal).unwrap();
    assert!(replayed.is_done());
    assert_eq!(effects.load(Ordering::SeqCst), 1);
}
