//! Fig. 10 of the paper: activity `a` coordinating the parallel execution
//! of `b` and `c` followed by `d`, with the full
//! `start`/`start_ack`/`outcome`/`outcome_ack` exchange — 12 messages in
//! the figure, asserted here exactly.

use std::sync::Arc;

use activity_service::{ActivityService, TraceEvent, TraceLog};
use orb::Value;
use parking_lot::Mutex;
use tx_models::common::{SIG_OUTCOME, SIG_OUTCOME_ACK, SIG_START, SIG_START_ACK};
use tx_models::workflow_signals::{
    CompletedSignalSet, OutcomeCollector, TaskAction, TaskStartSignalSet, COMPLETED_SET,
    TASK_START_SET,
};
use wfengine::{script, FailurePolicy, TaskInput, TaskRegistry, TaskResult, WorkflowEngine};

/// The raw-signal reproduction: every one of fig. 10's 12 messages, in
/// order, as (message, from, to) triples.
#[test]
fn fig10_exact_message_sequence() {
    let service = ActivityService::new();
    let a = service.begin("a").unwrap();
    let log: Arc<Mutex<Vec<(String, String, String)>>> = Arc::new(Mutex::new(Vec::new()));

    // a → b, a → c: one TaskStartSignalSet both register with; then a → d.
    // Each registered TaskAction records start/start_ack itself.
    let mk_task = |name: &str| {
        let log = Arc::clone(&log);
        let name_owned = name.to_owned();
        TaskAction::new(name, move |_p: &Value| {
            log.lock().push((SIG_START.into(), "a".into(), name_owned.clone()));
            log.lock().push((SIG_START_ACK.into(), name_owned.clone(), "a".into()));
            Ok(Value::Null)
        })
    };

    a.coordinator()
        .add_signal_set(Box::new(TaskStartSignalSet::new(Value::from("order"))))
        .unwrap();
    a.coordinator().register_action(TASK_START_SET, mk_task("b") as _);
    a.coordinator().register_action(TASK_START_SET, mk_task("c") as _);
    a.signal(TASK_START_SET).unwrap();

    // b and c complete (in parallel in the figure; the outcome order b, c
    // matches the figure's drawing).
    for child_name in ["b", "c"] {
        let child = a.begin_child(child_name).unwrap();
        child
            .coordinator()
            .add_signal_set(Box::new(CompletedSignalSet::new(Value::Null)))
            .unwrap();
        child.set_completion_signal_set(COMPLETED_SET);
        let log2 = Arc::clone(&log);
        let child_owned = child_name.to_owned();
        let collector = activity_service::FnAction::new("a", move |s: &activity_service::Signal| {
            log2.lock().push((SIG_OUTCOME.into(), child_owned.clone(), "a".into()));
            log2.lock().push((SIG_OUTCOME_ACK.into(), "a".into(), child_owned.clone()));
            assert_eq!(s.name(), SIG_OUTCOME);
            Ok(activity_service::Outcome::new(SIG_OUTCOME_ACK))
        });
        child.coordinator().register_action(COMPLETED_SET, Arc::new(collector) as _);
        child.complete().unwrap();
    }

    // d: started after both outcomes arrive, then completes.
    let second_stage = TaskStartSignalSet::new(Value::Null);
    // A fresh set instance (the first ended); the coordinator allows
    // replacement of ended sets.
    a.coordinator().add_signal_set(Box::new(second_stage)).unwrap();
    a.coordinator().unregister_action(TASK_START_SET, "b");
    a.coordinator().unregister_action(TASK_START_SET, "c");
    a.coordinator().register_action(TASK_START_SET, mk_task("d") as _);
    a.signal(TASK_START_SET).unwrap();

    let d = a.begin_child("d").unwrap();
    d.coordinator()
        .add_signal_set(Box::new(CompletedSignalSet::new(Value::Null)))
        .unwrap();
    d.set_completion_signal_set(COMPLETED_SET);
    let log2 = Arc::clone(&log);
    d.coordinator().register_action(
        COMPLETED_SET,
        Arc::new(activity_service::FnAction::new("a", move |_s: &activity_service::Signal| {
            log2.lock().push((SIG_OUTCOME.into(), "d".into(), "a".into()));
            log2.lock().push((SIG_OUTCOME_ACK.into(), "a".into(), "d".into()));
            Ok(activity_service::Outcome::new(SIG_OUTCOME_ACK))
        })) as _,
    );
    d.complete().unwrap();
    service.complete().unwrap();

    let expected: Vec<(String, String, String)> = vec![
        (SIG_START.into(), "a".into(), "b".into()),
        (SIG_START_ACK.into(), "b".into(), "a".into()),
        (SIG_START.into(), "a".into(), "c".into()),
        (SIG_START_ACK.into(), "c".into(), "a".into()),
        (SIG_OUTCOME.into(), "b".into(), "a".into()),
        (SIG_OUTCOME_ACK.into(), "a".into(), "b".into()),
        (SIG_OUTCOME.into(), "c".into(), "a".into()),
        (SIG_OUTCOME_ACK.into(), "a".into(), "c".into()),
        (SIG_START.into(), "a".into(), "d".into()),
        (SIG_START_ACK.into(), "d".into(), "a".into()),
        (SIG_OUTCOME.into(), "d".into(), "a".into()),
        (SIG_OUTCOME_ACK.into(), "a".into(), "d".into()),
    ];
    assert_eq!(*log.lock(), expected, "the 12 messages of fig. 10, in order");
}

/// The engine-level reproduction: the same a→(b∥c)→d shape through the
/// workflow engine, checking the collector-side bookkeeping.
#[test]
fn fig10_through_the_engine() {
    let graph = script::parse(
        "task b;
         task c;
         task d after b, c;",
    )
    .unwrap();
    let mut registry = TaskRegistry::new();
    for t in ["b", "c"] {
        let t_owned = t.to_owned();
        registry.register(t, move |_i: &TaskInput| TaskResult::ok(Value::from(t_owned.as_str())));
    }
    registry.register("d", |input: &TaskInput| {
        // d sees both upstream outputs — proof the outcome signals carried
        // the data.
        assert_eq!(input.upstream["b"].as_str(), Some("b"));
        assert_eq!(input.upstream["c"].as_str(), Some("c"));
        TaskResult::ok(Value::from("d"))
    });
    let engine = WorkflowEngine::new(graph, registry).unwrap();
    let service = ActivityService::new();
    let report = engine.run_parallel(&service, "fig10", Value::Null).unwrap();
    assert!(report.succeeded());
    assert_eq!(report.completed.last().map(String::as_str), Some("d"));
}

/// §4.4's failure variant: "if t4 sends a failure outcome … the parent
/// activity can use this information to start tc1 in order to do the
/// compensation."
#[test]
fn fig10_failure_triggers_tc1() {
    let graph = script::parse(
        "task t1;
         task t2 after t1;
         task t3 after t1;
         task t4 after t2, t3;
         compensate t2 with tc1;",
    )
    .unwrap();
    let compensated = Arc::new(Mutex::new(false));
    let compensated2 = Arc::clone(&compensated);
    let mut registry = TaskRegistry::new();
    for t in ["t1", "t2", "t3"] {
        registry.register(t, |_i: &TaskInput| TaskResult::ok(Value::Null));
    }
    registry.register("t4", |_i: &TaskInput| TaskResult::failed("crash"));
    registry.register("tc1", move |_i: &TaskInput| {
        *compensated2.lock() = true;
        TaskResult::ok(Value::Null)
    });
    let engine = WorkflowEngine::new(graph, registry)
        .unwrap()
        .with_policy(FailurePolicy::CompensateAndStop);
    let service = ActivityService::new();
    let report = engine.run(&service, "fig2-workflow", Value::Null).unwrap();
    assert_eq!(report.failed, vec!["t4"]);
    assert!(*compensated.lock(), "tc1 ran");
    assert_eq!(report.compensations.len(), 1);
}

/// The outcome collector used standalone records multiple children.
#[test]
fn outcome_collector_accumulates_children() {
    let service = ActivityService::new();
    let parent = service.begin("parent").unwrap();
    let collector = OutcomeCollector::new("parent-collector");
    let trace = TraceLog::new();
    for (i, name) in ["x", "y"].iter().enumerate() {
        let child = parent.begin_child(*name).unwrap();
        child.coordinator().set_trace(trace.clone());
        child
            .coordinator()
            .add_signal_set(Box::new(CompletedSignalSet::new(Value::U64(i as u64))))
            .unwrap();
        child.set_completion_signal_set(COMPLETED_SET);
        child.coordinator().register_action(COMPLETED_SET, Arc::clone(&collector) as _);
        child.complete().unwrap();
    }
    assert_eq!(
        collector.received(),
        vec![(true, Value::U64(0)), (true, Value::U64(1))]
    );
    let outcome_count = trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Transmit { signal, .. } if signal == SIG_OUTCOME))
        .count();
    assert_eq!(outcome_count, 2);
    service.complete().unwrap();
}
