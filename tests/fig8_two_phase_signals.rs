//! Fig. 8 end-to-end and *distributed*: the signal-based two-phase commit
//! driven across the simulated ORB, with the participants' Actions hosted
//! on remote nodes and signalled through `RemoteActionProxy` (at-least-once
//! delivery).

use std::sync::Arc;

use activity_service::{
    ActionServant, Activity, ActivityService, CompletionStatus, RemoteActionProxy, TraceEvent,
    TraceLog,
};
use orb::{NetworkConfig, Orb, Value};
use ots::{Resource, TransactionalKv, TxId};
use tx_models::common::{OUT_COMMITTED, OUT_ROLLED_BACK, SIG_COMMIT, SIG_PREPARE};
use tx_models::{ResourceAction, TwoPhaseCommitSignalSet, TWO_PC_SET};

/// Build a coordinator node plus two participant nodes, each hosting a
/// transactional store behind an Action servant.
fn distributed_2pc(
    network: NetworkConfig,
) -> (Orb, Activity, Vec<Arc<TransactionalKv>>, TxId, TraceLog) {
    let orb = Orb::builder().network(network).retry_budget(128).build();
    let service = ActivityService::new();
    service.attach_to_orb(&orb);
    orb.add_node("coordinator").unwrap();

    let activity = service.begin("distributed-commit").unwrap();
    let trace = TraceLog::new();
    activity.coordinator().set_trace(trace.clone());
    activity
        .coordinator()
        .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
        .unwrap();
    activity.set_completion_signal_set(TWO_PC_SET);

    let tx = TxId::top_level(1);
    let mut stores = Vec::new();
    for (i, node_name) in ["participant-a", "participant-b"].iter().enumerate() {
        let node = orb.add_node(*node_name).unwrap();
        let store = Arc::new(TransactionalKv::new(format!("store-{i}")));
        store.write(&tx, "balance", Value::I64(100 + i as i64)).unwrap();
        let action = Arc::new(ResourceAction::new(
            format!("action-{i}"),
            tx.clone(),
            Arc::clone(&store) as Arc<dyn Resource>,
        ));
        let object = node.activate("Action", ActionServant::new(action)).unwrap();
        let proxy = RemoteActionProxy::new(
            format!("remote-action-{i}"),
            orb.clone(),
            "coordinator",
            object,
        );
        activity.coordinator().register_action(TWO_PC_SET, Arc::new(proxy) as _);
        stores.push(store);
    }
    // Detach from the test thread so we can complete the activity directly.
    let _ = service.suspend().unwrap();
    (orb, activity, stores, tx, trace)
}

#[test]
fn fig8_commit_across_nodes() {
    let (orb, activity, stores, _tx, trace) = distributed_2pc(NetworkConfig::reliable());
    let outcome = activity.complete().unwrap();
    assert_eq!(outcome.name(), OUT_COMMITTED);
    for (i, store) in stores.iter().enumerate() {
        assert_eq!(
            store.read_committed("balance"),
            Some(Value::I64(100 + i as i64)),
            "participant {i} must have committed"
        );
    }
    // Exact fig. 8 signal order, across the network.
    let transmits: Vec<(String, String)> = trace
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Transmit { signal, action } => Some((signal, action)),
            _ => None,
        })
        .collect();
    assert_eq!(
        transmits,
        vec![
            (SIG_PREPARE.to_string(), "remote-action-0".to_string()),
            (SIG_PREPARE.to_string(), "remote-action-1".to_string()),
            (SIG_COMMIT.to_string(), "remote-action-0".to_string()),
            (SIG_COMMIT.to_string(), "remote-action-1".to_string()),
        ]
    );
    // Every signal cost one request + reply per participant, all delivered.
    let stats = orb.network().stats();
    assert_eq!(stats.dropped, 0);
    assert!(stats.delivered >= 8, "2 signals x 2 participants x 2 legs");
}

#[test]
fn fig8_commit_survives_lossy_network() {
    // 30% drop, 20% duplication: at-least-once retries push the protocol
    // through, and the idempotent participants keep the result exact.
    let (orb, activity, stores, _tx, _trace) =
        distributed_2pc(NetworkConfig::lossy(0.3, 0.2, 20260707));
    let outcome = activity.complete().unwrap();
    assert_eq!(outcome.name(), OUT_COMMITTED);
    for (i, store) in stores.iter().enumerate() {
        assert_eq!(store.read_committed("balance"), Some(Value::I64(100 + i as i64)));
    }
    let stats = orb.network().stats();
    assert!(stats.dropped > 0 || stats.duplicated > 0, "the fault model actually fired");
}

#[test]
fn fig8_failure_completion_rolls_back_across_nodes() {
    let (_orb, activity, stores, _tx, _trace) = distributed_2pc(NetworkConfig::reliable());
    activity.set_completion_status(CompletionStatus::FailOnly).unwrap();
    let outcome = activity.complete().unwrap();
    assert_eq!(outcome.name(), OUT_ROLLED_BACK);
    for store in &stores {
        assert_eq!(store.read_committed("balance"), None, "writes must be undone");
    }
}

#[test]
fn fig8_partition_prevents_commit_but_retry_after_heal_succeeds() {
    let (orb, activity, stores, _tx, _trace) = distributed_2pc(NetworkConfig::reliable());
    orb.network().partition(&[&["coordinator", "participant-a"], &["participant-b"]]);
    // Completion drives prepare; participant-b is unreachable, its proxy
    // reports an error, and the 2PC set rolls everyone back.
    let outcome = activity.complete().unwrap();
    assert_eq!(outcome.name(), OUT_ROLLED_BACK);
    orb.network().heal();
    for store in &stores {
        assert_eq!(store.read_committed("balance"), None);
    }
}
