//! Model-based conformance checking: exhaustive bounded-schedule
//! exploration of the real 2PC protocol against the executable reference
//! models, the measured DPOR reduction factor, and the planted
//! spec-violation fixture the refinement oracle must catch and shrink.
//!
//! The CI `model-check` job runs this file with `--nocapture` and
//! uploads the printed reports as the divergence-repro artifact.

use std::time::Duration;

use harness::scenarios::{BrokenAtomicCommitScenario, ExplorableTwoPhase};
use harness::{explore, ChoiceDriver, Explorable, ExploreConfig, ExploreSchedule};

/// The wall-clock ceiling the CI job enforces; exploration must finish
/// (untruncated) well inside it.
const CI_BUDGET: Duration = Duration::from_secs(120);

#[test]
fn exhaustive_exploration_of_three_participant_2pc_finds_no_divergence() {
    let config = ExploreConfig { budget: Some(CI_BUDGET), ..ExploreConfig::default() };
    let report = explore(&ExplorableTwoPhase, &config);
    println!(
        "2pc dpor: executions={} pruned_subtrees={} fault_plans={} max_choice_points={}",
        report.executions, report.pruned_subtrees, report.fault_plans, report.max_choice_points
    );
    // The wall-clock budget guard: coverage claims are void if the budget
    // truncated enumeration, so the claim below is only as good as this.
    assert!(!report.truncated, "exploration exceeded the CI budget");
    // One fault-free plan plus one single-crash plan per ots site.
    assert_eq!(report.fault_plans, 1 + ots::failpoints::FAILPOINT_SITES.len());
    // The deepest execution decides two rounds of three deliveries.
    assert_eq!(report.max_choice_points, 4);
    for divergence in &report.divergences {
        eprintln!("{}", divergence.repro());
    }
    assert!(report.divergences.is_empty(), "{:?}", report.divergences);
}

#[test]
fn dpor_reduction_factor_is_at_least_five() {
    let naive = explore(
        &ExplorableTwoPhase,
        &ExploreConfig { dpor: false, budget: Some(CI_BUDGET), ..ExploreConfig::default() },
    );
    let reduced = explore(
        &ExplorableTwoPhase,
        &ExploreConfig { dpor: true, budget: Some(CI_BUDGET), ..ExploreConfig::default() },
    );
    assert!(!naive.truncated && !reduced.truncated);
    assert!(naive.divergences.is_empty() && reduced.divergences.is_empty());
    let factor = naive.executions as f64 / reduced.executions as f64;
    println!(
        "reduction factor: {factor:.1}x ({} naive executions, {} with dpor, {} subtrees pruned)",
        naive.executions, reduced.executions, reduced.pruned_subtrees
    );
    // Every delivery in a clean or crash-interrupted 2PC round commutes,
    // so the reduced enumeration collapses to one execution per fault
    // plan; the naive one pays 6 orders per two-choice round.
    assert!(
        factor >= 5.0,
        "DPOR reduced {} naive executions only to {}",
        naive.executions,
        reduced.executions
    );
}

/// Every shrink move the explorer knows: used to certify 1-minimality.
fn single_step_reductions(schedule: &ExploreSchedule) -> Vec<ExploreSchedule> {
    let mut candidates = Vec::new();
    for index in 0..schedule.faults.len() {
        candidates.push(ExploreSchedule {
            faults: schedule.faults.without_event(index),
            choices: schedule.choices.clone(),
        });
    }
    if !schedule.choices.is_empty() {
        candidates.push(ExploreSchedule {
            faults: schedule.faults.clone(),
            choices: schedule.choices[..schedule.choices.len() - 1].to_vec(),
        });
    }
    for index in 0..schedule.choices.len() {
        if schedule.choices[index] > 0 {
            let mut choices = schedule.choices.clone();
            choices[index] -= 1;
            candidates.push(ExploreSchedule { faults: schedule.faults.clone(), choices });
        }
    }
    candidates
}

fn diverges(scenario: &dyn Explorable, schedule: &ExploreSchedule) -> bool {
    let driver = ChoiceDriver::new(schedule.choices.clone());
    !harness::check_all(&scenario.run_exploration(&schedule.faults, &driver)).is_empty()
}

#[test]
fn the_planted_commit_after_abort_vote_is_caught_and_shrunk_to_one_minimal() {
    let config = ExploreConfig { budget: Some(CI_BUDGET), ..ExploreConfig::default() };
    let report = explore(&BrokenAtomicCommitScenario, &config);
    assert!(!report.truncated);
    // Registration order hides the bug; reordering exposes it — only the
    // explorer's enumeration can find it, and only oracle #9 sees it.
    assert!(!report.divergences.is_empty(), "the planted violation was not caught");
    for divergence in &report.divergences {
        println!("{}", divergence.repro());
        for violation in &divergence.violations {
            assert_eq!(violation.oracle, "refinement", "{violation}");
            assert!(violation.detail.contains("presumed abort"), "{violation}");
        }
        // Every shrunk reproducer carries the coordinator's black box —
        // the flight-recorder dump re-captured from the minimized
        // execution, not the original failing one.
        let repro = divergence.repro();
        assert!(
            repro.contains("flight recorder at failure:")
                && repro.contains("flight-recorder node=broken-coordinator"),
            "repro is missing the recorder dump:\n{repro}"
        );
        // The minimized execution still reproduces, and no single shrink
        // move does: 1-minimal.
        assert!(diverges(&BrokenAtomicCommitScenario, &divergence.minimized));
        for candidate in single_step_reductions(&divergence.minimized) {
            assert!(
                !diverges(&BrokenAtomicCommitScenario, &candidate),
                "shrink was not 1-minimal: {candidate} still diverges (from {})",
                divergence.minimized
            );
        }
    }
    // The sharpest repro is a single prescribed choice: poll the vetoing
    // participant first.
    assert!(
        report
            .divergences
            .iter()
            .any(|d| d.minimized.faults.is_empty() && d.minimized.choices == vec![2]),
        "expected a one-choice reproducer among {:?}",
        report.divergences.iter().map(|d| &d.minimized).collect::<Vec<_>>()
    );
}

#[test]
fn a_tight_wall_clock_budget_truncates_instead_of_overrunning() {
    let config = ExploreConfig {
        budget: Some(Duration::from_millis(0)),
        ..ExploreConfig::default()
    };
    let report = explore(&ExplorableTwoPhase, &config);
    assert!(report.truncated, "a zero budget must truncate");
}
