//! Property tests over [`GroupCommitWal`]'s durability contract: for
//! ARBITRARY interleavings of appends, durable appends and flushes, with
//! a sync crash injected at an arbitrary point,
//!
//! 1. the durable watermark ([`GroupCommitWal::durable_lsn`]) is
//!    monotone — a flush barrier never moves backwards;
//! 2. every LSN the wal acknowledged as durable (an `append_durable`
//!    return, or any LSN at or below the watermark) survives the crash in
//!    the sink — acked ⊆ synced prefix, whatever the staged tail did;
//! 3. a failed flush poisons the wal: every subsequent operation fails
//!    until [`GroupCommitWal::recover_from_sink`], after which the wal
//!    works again.

use proptest::prelude::*;
use recovery_log::{
    CrashingWal, GroupCommitConfig, GroupCommitWal, Lsn, MemWal, Wal,
};

/// Operation vocabulary for the generated sequences.
const OP_APPEND: u8 = 0;
const OP_APPEND_DURABLE: u8 = 1;
const OP_FLUSH_ALL: u8 = 2;

fn build(crash_after_syncs: u32) -> GroupCommitWal<CrashingWal<MemWal>> {
    GroupCommitWal::with_config(
        CrashingWal::with_sync_crash(MemWal::new(), crash_after_syncs),
        // A small record threshold so generated sequences cross it and
        // appends themselves trigger leader flushes.
        GroupCommitConfig { max_batch_records: 4, max_batch_bytes: 1 << 20 },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants 1–3 over one generated op sequence with one injected
    /// sync crash.
    fn durability_contract_holds_under_arbitrary_schedules(
        ops in proptest::collection::vec(0u8..3, 1..24),
        crash_after_syncs in 0u32..6,
    ) {
        let wal = build(crash_after_syncs);
        let mut acked: u64 = 0;
        let mut last_watermark: u64 = 0;
        let mut poisoned = false;

        for (i, op) in ops.iter().enumerate() {
            let payload = vec![i as u8; i % 5];
            let result = match *op {
                OP_APPEND => wal.append(1 + (i as u32 % 7), &payload).map(|_| None),
                OP_APPEND_DURABLE => {
                    wal.append_durable(1 + (i as u32 % 7), &payload).map(Some)
                }
                OP_FLUSH_ALL => wal.sync().map(|()| None),
                _ => unreachable!("op codes are 0..3"),
            };

            // Invariant 1: the barrier is monotone, poisoned or not.
            let watermark = wal.durable_lsn().raw();
            prop_assert!(
                watermark >= last_watermark,
                "durable watermark moved backwards: {last_watermark} -> {watermark}"
            );
            last_watermark = watermark;

            if poisoned {
                // Invariant 3, first half: a poisoned wal refuses
                // everything until recovery.
                prop_assert!(result.is_err(), "op #{i} succeeded on a poisoned wal");
                continue;
            }
            match result {
                Ok(Some(lsn)) => {
                    // A durable append's ack is covered by the watermark
                    // the moment it returns.
                    prop_assert!(watermark >= lsn.raw());
                    acked = acked.max(lsn.raw());
                }
                Ok(None) => {}
                Err(_) => poisoned = true,
            }
            // Anything at or below the watermark counts as acknowledged.
            acked = acked.max(watermark);
        }

        // Invariant 2: the crash discards the staged tail, never the
        // acknowledged prefix. Read the sink as a restart would.
        let survivors: Vec<u64> = wal
            .inner()
            .inner()
            .scan(Lsn::new(0))
            .expect("scan sink")
            .iter()
            .map(|r| r.lsn.raw())
            .collect();
        for lsn in 1..=acked {
            prop_assert!(
                survivors.contains(&lsn),
                "acked LSN {lsn} missing after crash; survivors: {survivors:?}"
            );
        }

        // Invariant 3, second half: recovery adopts the sink's truth and
        // un-poisons the wal.
        wal.inner().defuse();
        wal.recover_from_sink();
        prop_assert_eq!(wal.durable_lsn().raw(), survivors.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(wal.staged_len(), 0);
        let lsn = wal.append_durable(9, b"post-recovery").expect("recovered wal accepts work");
        prop_assert!(wal.durable_lsn() >= lsn);
    }

    /// `flush_lsn` is a targeted barrier: on success everything at or
    /// below the requested LSN (clamped to what was appended) is durable,
    /// and repeating the call never regresses the watermark.
    fn flush_lsn_barrier_is_monotone_and_sufficient(
        records in 1usize..12,
        barriers in proptest::collection::vec(0u64..16, 1..8),
    ) {
        let wal = build(u32::MAX); // no crash in this property
        let mut appended = 0u64;
        for i in 0..records {
            appended = wal.append(1, &[i as u8]).expect("append").raw();
        }
        let mut last_watermark = wal.durable_lsn().raw();
        for barrier in barriers {
            wal.flush_lsn(Lsn::new(barrier)).expect("flush_lsn");
            let watermark = wal.durable_lsn().raw();
            prop_assert!(watermark >= barrier.min(appended));
            prop_assert!(watermark >= last_watermark);
            last_watermark = watermark;
        }
    }
}

/// Invariant 3 pinned deterministically: the very first sync fails, the
/// wal poisons, and recovery revives it.
#[test]
fn a_failed_flush_poisons_until_recovery() {
    let wal = build(0);
    wal.append(1, b"staged").expect("staging is crash-free");
    assert!(wal.sync().is_err(), "the armed sync must fail");
    // Poisoned: appends, durable appends and flushes all refuse.
    assert!(wal.append(1, b"x").is_err());
    assert!(wal.append_durable(1, b"y").is_err());
    assert!(wal.sync().is_err());
    assert_eq!(wal.durable_lsn().raw(), 0, "nothing became durable");

    wal.inner().defuse();
    wal.recover_from_sink();
    // The staged record was torn off by the crash; the sink kept what its
    // append had already taken (the batch write landed, the barrier
    // failed), and new work flows again.
    let lsn = wal.append_durable(2, b"revived").expect("recovered");
    assert!(wal.durable_lsn() >= lsn);
}
