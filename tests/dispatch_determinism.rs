//! Parallel dispatch must be observationally identical to the serial
//! loop: for every protocol engine, a pool=8 run and a pool=1 run must
//! produce byte-identical TraceLogs and the same final Outcome, because
//! results are collated in registration order and trace events are
//! emitted at collation time. Actions deliberately sleep for *longer on
//! earlier registrations* so the parallel run completes out of order
//! under the hood.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use activity_service::{
    Activity, BroadcastSignalSet, CompletionStatus, DispatchConfig, FnAction, Outcome, Signal,
    TraceLog,
};
use orb::{SimClock, Value};
use ots::{Resource, TransactionalKv, TxError, TxId, Vote};
use tx_models::sagas::CompletedSteps;
use tx_models::{ResourceAction, SagaSignalSet, StepCompensation, TwoPhaseCommitSignalSet,
    SAGA_SET, TWO_PC_SET};

/// Sleep long enough to invert completion order across a parallel pool.
fn stagger(index: usize, total: usize) -> Duration {
    Duration::from_micros(((total - index) * 200) as u64)
}

/// Run `scenario` under one dispatch config, returning the rendered
/// trace and the final outcome.
fn run_traced(
    config: DispatchConfig,
    scenario: impl Fn(&Activity),
    complete: bool,
) -> (String, String) {
    let activity = Activity::new_root("det", SimClock::new());
    activity.coordinator().set_dispatch_config(config);
    let trace = TraceLog::new();
    activity.coordinator().set_trace(trace.clone());
    scenario(&activity);
    let outcome = if complete {
        activity.complete().expect("complete")
    } else {
        activity.signal("S").expect("signal")
    };
    (trace.render(), format!("{}:{:?}", outcome.name(), outcome.data()))
}

fn assert_deterministic(scenario: impl Fn(&Activity) + Copy, complete: bool) {
    let serial = run_traced(DispatchConfig::serial(), scenario, complete);
    let parallel = run_traced(DispatchConfig::with_workers(8), scenario, complete);
    assert_eq!(serial.0, parallel.0, "TraceLog must be byte-identical");
    assert_eq!(serial.1, parallel.1, "final Outcome must be identical");
}

#[test]
fn broadcast_set_is_deterministic_across_pool_widths() {
    let scenario = |activity: &Activity| {
        activity
            .coordinator()
            .add_signal_set(Box::new(BroadcastSignalSet::new("S", "ping", Value::Null)))
            .unwrap();
        for i in 0..12usize {
            activity.coordinator().register_action(
                "S",
                Arc::new(FnAction::new(format!("a{i}"), move |_s: &Signal| {
                    std::thread::sleep(stagger(i, 12));
                    if i % 5 == 4 {
                        Err(activity_service::ActionError::new(format!("a{i} failed")))
                    } else {
                        Ok(Outcome::done())
                    }
                })) as _,
            );
        }
    };
    assert_deterministic(scenario, false);
}

struct VetoResource;
impl Resource for VetoResource {
    fn prepare(&self, _tx: &TxId) -> Result<Vote, TxError> {
        Ok(Vote::Rollback)
    }
    fn commit(&self, _tx: &TxId) -> Result<(), TxError> {
        Ok(())
    }
    fn rollback(&self, _tx: &TxId) -> Result<(), TxError> {
        Ok(())
    }
    fn resource_name(&self) -> &str {
        "veto"
    }
}

fn register_2pc_participants(activity: &Activity, veto_at: Option<usize>) {
    activity
        .coordinator()
        .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
        .unwrap();
    activity.set_completion_signal_set(TWO_PC_SET);
    let tx = TxId::top_level(1);
    for i in 0..8usize {
        let resource: Arc<dyn Resource> = if veto_at == Some(i) {
            Arc::new(VetoResource)
        } else {
            let store = Arc::new(TransactionalKv::new(format!("s{i}")));
            store.write(&tx, "k", Value::I64(i as i64)).unwrap();
            store
        };
        activity.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(ResourceAction::new(format!("r{i}"), tx.clone(), resource)) as _,
        );
    }
}

#[test]
fn two_phase_commit_set_is_deterministic_across_pool_widths() {
    assert_deterministic(|activity| register_2pc_participants(activity, None), true);
}

#[test]
fn two_phase_early_break_on_veto_is_deterministic_across_pool_widths() {
    // A rollback vote makes the SignalSet answer RequestNext mid-delivery
    // (the EarlyBreak path): the parallel run cancels outstanding prepare
    // deliveries, yet the trace stops at exactly the same event as the
    // serial run because collation stops at the veto's registration index.
    assert_deterministic(|activity| register_2pc_participants(activity, Some(3)), true);
}

/// A participant whose prepare is slow enough to still be running when the
/// veto's `RequestNext` fires the batch's `CancelToken`. Counts entries and
/// exits so the test can tell "delivery never started" (cancelled while
/// queued) from "delivery ran speculatively" (idempotence contract).
struct SlowResource {
    started: Arc<AtomicUsize>,
    finished: Arc<AtomicUsize>,
}

impl Resource for SlowResource {
    fn prepare(&self, _tx: &TxId) -> Result<Vote, TxError> {
        self.started.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(50));
        self.finished.fetch_add(1, Ordering::SeqCst);
        Ok(Vote::Commit)
    }
    fn commit(&self, _tx: &TxId) -> Result<(), TxError> {
        Ok(())
    }
    fn rollback(&self, _tx: &TxId) -> Result<(), TxError> {
        Ok(())
    }
    fn resource_name(&self) -> &str {
        "slow"
    }
}

/// Vetoes like [`VetoResource`], but optionally waits until at least one
/// speculative prepare is genuinely mid-flight, so the early break is
/// guaranteed to race in-progress deliveries rather than only queued ones.
struct MidFlightVeto {
    started: Arc<AtomicUsize>,
    wait_for_mid_flight: bool,
}

impl Resource for MidFlightVeto {
    fn prepare(&self, _tx: &TxId) -> Result<Vote, TxError> {
        if self.wait_for_mid_flight {
            let deadline = Instant::now() + Duration::from_secs(2);
            while self.started.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
                std::thread::yield_now();
            }
        }
        Ok(Vote::Rollback)
    }
    fn commit(&self, _tx: &TxId) -> Result<(), TxError> {
        Ok(())
    }
    fn rollback(&self, _tx: &TxId) -> Result<(), TxError> {
        Ok(())
    }
    fn resource_name(&self) -> &str {
        "veto"
    }
}

/// The `RequestNext` → `CancelToken` path, observed from the participants'
/// side. Participant 0 vetoes the prepare while later participants' prepare
/// deliveries are mid-flight on the pool; the fired token must skip the
/// queued remainder, and whatever the speculative deliveries produced must
/// be invisible to the protocol (trace and outcome byte-identical to the
/// strictly serial run) — that is exactly the §3.4 idempotence contract:
/// an abandoned delivery is indistinguishable from a transport duplicate.
#[test]
fn request_next_cancels_speculative_deliveries_without_effect_leaks() {
    const PARTICIPANTS: usize = 24;

    let run = |config: DispatchConfig, wait_for_mid_flight: bool| {
        let started = Arc::new(AtomicUsize::new(0));
        let finished = Arc::new(AtomicUsize::new(0));
        let scenario = {
            let started = Arc::clone(&started);
            let finished = Arc::clone(&finished);
            move |activity: &Activity| {
                activity
                    .coordinator()
                    .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
                    .unwrap();
                activity.set_completion_signal_set(TWO_PC_SET);
                let tx = TxId::top_level(7);
                activity.coordinator().register_action(
                    TWO_PC_SET,
                    Arc::new(ResourceAction::new(
                        "veto",
                        tx.clone(),
                        Arc::new(MidFlightVeto {
                            started: Arc::clone(&started),
                            wait_for_mid_flight,
                        }),
                    )) as _,
                );
                for i in 1..PARTICIPANTS {
                    activity.coordinator().register_action(
                        TWO_PC_SET,
                        Arc::new(ResourceAction::new(
                            format!("g{i}"),
                            tx.clone(),
                            Arc::new(SlowResource {
                                started: Arc::clone(&started),
                                finished: Arc::clone(&finished),
                            }),
                        )) as _,
                    );
                }
            }
        };
        let (trace, outcome) = run_traced(config, scenario, true);
        // Let in-flight speculative prepares drain before counting: a
        // delivery that started before the cancel may still be sleeping.
        let deadline = Instant::now() + Duration::from_secs(5);
        while started.load(Ordering::SeqCst) != finished.load(Ordering::SeqCst)
            && Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        (trace, outcome, started.load(Ordering::SeqCst), finished.load(Ordering::SeqCst))
    };

    let (serial_trace, serial_outcome, serial_started, _) =
        run(DispatchConfig::serial(), false);
    let (par_trace, par_outcome, par_started, par_finished) =
        run(DispatchConfig::with_workers(8), true);

    // Serial early break never touches later participants at all.
    assert_eq!(serial_started, 0, "serial RequestNext must not deliver past the veto");
    // Parallel: at least one speculative prepare was genuinely mid-flight
    // when the veto collated (the veto waited for it)...
    assert!(par_started >= 1, "a speculative delivery should have been mid-flight");
    // ...every started delivery ran to completion (cancellation skips, it
    // never interrupts)...
    assert_eq!(par_started, par_finished, "started speculative deliveries must drain");
    // ...and the fired CancelToken skipped the queued remainder: far fewer
    // prepares ran than participants were registered.
    assert!(
        par_finished < PARTICIPANTS - 1,
        "cancellation must skip queued deliveries, yet {par_finished}/{} prepares ran",
        PARTICIPANTS - 1
    );
    // No effect leaks past the cancellation point: the speculative Commit
    // votes are discarded, so the protocol's trace and outcome are
    // byte-identical to the strictly serial run.
    assert_eq!(serial_trace, par_trace, "speculative outcomes leaked into the trace");
    assert_eq!(serial_outcome, par_outcome);
}

#[test]
fn saga_compensation_set_is_deterministic_across_pool_widths() {
    let scenario = |activity: &Activity| {
        let completed = CompletedSteps::new();
        for i in 0..6usize {
            completed.push(format!("step{i}"));
        }
        activity
            .coordinator()
            .add_signal_set(Box::new(SagaSignalSet::new(completed)))
            .unwrap();
        activity.set_completion_signal_set(SAGA_SET);
        for i in 0..6usize {
            activity.coordinator().register_action(
                SAGA_SET,
                StepCompensation::new(format!("step{i}"), move || {
                    std::thread::sleep(stagger(i, 6));
                    Ok(())
                }) as _,
            );
        }
        activity.set_completion_status(CompletionStatus::Fail).unwrap();
    };
    assert_deterministic(scenario, true);
}
