//! Parallel dispatch must be observationally identical to the serial
//! loop: for every protocol engine, a pool=8 run and a pool=1 run must
//! produce byte-identical TraceLogs and the same final Outcome, because
//! results are collated in registration order and trace events are
//! emitted at collation time. Actions deliberately sleep for *longer on
//! earlier registrations* so the parallel run completes out of order
//! under the hood.

use std::sync::Arc;
use std::time::Duration;

use activity_service::{
    Activity, BroadcastSignalSet, CompletionStatus, DispatchConfig, FnAction, Outcome, Signal,
    TraceLog,
};
use orb::{SimClock, Value};
use ots::{Resource, TransactionalKv, TxError, TxId, Vote};
use tx_models::sagas::CompletedSteps;
use tx_models::{ResourceAction, SagaSignalSet, StepCompensation, TwoPhaseCommitSignalSet,
    SAGA_SET, TWO_PC_SET};

/// Sleep long enough to invert completion order across a parallel pool.
fn stagger(index: usize, total: usize) -> Duration {
    Duration::from_micros(((total - index) * 200) as u64)
}

/// Run `scenario` under one dispatch config, returning the rendered
/// trace and the final outcome.
fn run_traced(
    config: DispatchConfig,
    scenario: impl Fn(&Activity),
    complete: bool,
) -> (String, String) {
    let activity = Activity::new_root("det", SimClock::new());
    activity.coordinator().set_dispatch_config(config);
    let trace = TraceLog::new();
    activity.coordinator().set_trace(trace.clone());
    scenario(&activity);
    let outcome = if complete {
        activity.complete().expect("complete")
    } else {
        activity.signal("S").expect("signal")
    };
    (trace.render(), format!("{}:{:?}", outcome.name(), outcome.data()))
}

fn assert_deterministic(scenario: impl Fn(&Activity) + Copy, complete: bool) {
    let serial = run_traced(DispatchConfig::serial(), scenario, complete);
    let parallel = run_traced(DispatchConfig::with_workers(8), scenario, complete);
    assert_eq!(serial.0, parallel.0, "TraceLog must be byte-identical");
    assert_eq!(serial.1, parallel.1, "final Outcome must be identical");
}

#[test]
fn broadcast_set_is_deterministic_across_pool_widths() {
    let scenario = |activity: &Activity| {
        activity
            .coordinator()
            .add_signal_set(Box::new(BroadcastSignalSet::new("S", "ping", Value::Null)))
            .unwrap();
        for i in 0..12usize {
            activity.coordinator().register_action(
                "S",
                Arc::new(FnAction::new(format!("a{i}"), move |_s: &Signal| {
                    std::thread::sleep(stagger(i, 12));
                    if i % 5 == 4 {
                        Err(activity_service::ActionError::new(format!("a{i} failed")))
                    } else {
                        Ok(Outcome::done())
                    }
                })) as _,
            );
        }
    };
    assert_deterministic(scenario, false);
}

struct VetoResource;
impl Resource for VetoResource {
    fn prepare(&self, _tx: &TxId) -> Result<Vote, TxError> {
        Ok(Vote::Rollback)
    }
    fn commit(&self, _tx: &TxId) -> Result<(), TxError> {
        Ok(())
    }
    fn rollback(&self, _tx: &TxId) -> Result<(), TxError> {
        Ok(())
    }
    fn resource_name(&self) -> &str {
        "veto"
    }
}

fn register_2pc_participants(activity: &Activity, veto_at: Option<usize>) {
    activity
        .coordinator()
        .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
        .unwrap();
    activity.set_completion_signal_set(TWO_PC_SET);
    let tx = TxId::top_level(1);
    for i in 0..8usize {
        let resource: Arc<dyn Resource> = if veto_at == Some(i) {
            Arc::new(VetoResource)
        } else {
            let store = Arc::new(TransactionalKv::new(format!("s{i}")));
            store.write(&tx, "k", Value::I64(i as i64)).unwrap();
            store
        };
        activity.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(ResourceAction::new(format!("r{i}"), tx.clone(), resource)) as _,
        );
    }
}

#[test]
fn two_phase_commit_set_is_deterministic_across_pool_widths() {
    assert_deterministic(|activity| register_2pc_participants(activity, None), true);
}

#[test]
fn two_phase_early_break_on_veto_is_deterministic_across_pool_widths() {
    // A rollback vote makes the SignalSet answer RequestNext mid-delivery
    // (the EarlyBreak path): the parallel run cancels outstanding prepare
    // deliveries, yet the trace stops at exactly the same event as the
    // serial run because collation stops at the veto's registration index.
    assert_deterministic(|activity| register_2pc_participants(activity, Some(3)), true);
}

#[test]
fn saga_compensation_set_is_deterministic_across_pool_widths() {
    let scenario = |activity: &Activity| {
        let completed = CompletedSteps::new();
        for i in 0..6usize {
            completed.push(format!("step{i}"));
        }
        activity
            .coordinator()
            .add_signal_set(Box::new(SagaSignalSet::new(completed)))
            .unwrap();
        activity.set_completion_signal_set(SAGA_SET);
        for i in 0..6usize {
            activity.coordinator().register_action(
                SAGA_SET,
                StepCompensation::new(format!("step{i}"), move || {
                    std::thread::sleep(stagger(i, 6));
                    Ok(())
                }) as _,
            );
        }
        activity.set_completion_status(CompletionStatus::Fail).unwrap();
    };
    assert_deterministic(scenario, true);
}
