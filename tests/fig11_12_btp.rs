//! Figs. 11 and 12 of the paper: the BTP PrepareSignalSet and
//! CompleteSignalSet exchanges, asserted against the coordinator trace, plus
//! the fig. 1/fig. 2 cohesion scenario end-to-end.

use std::sync::Arc;

use activity_service::{Activity, ActivityService, TraceEvent, TraceLog};
use btp::{Atom, BtpError, BtpParticipant, Cohesion, Reservation, ReservationState};
use orb::SimClock;
use tx_models::common::{SIG_CANCEL, SIG_CONFIRM, SIG_PREPARE};

fn traced_atom() -> (Arc<Atom>, TraceLog, Vec<Arc<Reservation>>) {
    let activity = Activity::new_root("atom", SimClock::new());
    let trace = TraceLog::new();
    activity.coordinator().set_trace(trace.clone());
    let atom = Atom::new("atom", activity).unwrap();
    let participants: Vec<Arc<Reservation>> =
        vec![Reservation::new("action-1"), Reservation::new("action-2")];
    for p in &participants {
        atom.enroll(Arc::clone(p) as Arc<dyn BtpParticipant>).unwrap();
    }
    (atom, trace, participants)
}

fn transmits(trace: &TraceLog) -> Vec<(String, String)> {
    trace
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Transmit { signal, action } => Some((signal, action)),
            _ => None,
        })
        .collect()
}

#[test]
fn fig11_prepare_exchange() {
    let (atom, trace, _participants) = traced_atom();
    atom.prepare().unwrap();
    // Fig. 11: get_signal, prepare → Action1, set_response, prepare →
    // Action2, set_response, get_outcome.
    assert_eq!(
        trace.events(),
        vec![
            TraceEvent::GetSignal { set: "PrepareSignalSet".into() },
            TraceEvent::Transmit { signal: SIG_PREPARE.into(), action: "action-1".into() },
            TraceEvent::SetResponse { set: "PrepareSignalSet".into(), outcome: "prepared".into() },
            TraceEvent::Transmit { signal: SIG_PREPARE.into(), action: "action-2".into() },
            TraceEvent::SetResponse { set: "PrepareSignalSet".into(), outcome: "prepared".into() },
            TraceEvent::GetOutcome { set: "PrepareSignalSet".into(), outcome: "prepared".into() },
        ]
    );
}

#[test]
fn fig12_confirm_exchange() {
    let (atom, trace, participants) = traced_atom();
    atom.prepare().unwrap();
    trace.clear();
    atom.confirm().unwrap();
    assert_eq!(
        transmits(&trace),
        vec![
            (SIG_CONFIRM.to_string(), "action-1".to_string()),
            (SIG_CONFIRM.to_string(), "action-2".to_string()),
        ],
        "fig. 12 with the confirm signal"
    );
    for p in &participants {
        assert_eq!(p.state(), ReservationState::Confirmed);
    }
}

#[test]
fn fig12_cancel_exchange() {
    // "If the atom is instructed to cancel, then obviously the confirm
    // Signal is replaced by cancel."
    let (atom, trace, participants) = traced_atom();
    atom.prepare().unwrap();
    trace.clear();
    atom.cancel().unwrap();
    assert_eq!(
        transmits(&trace),
        vec![
            (SIG_CANCEL.to_string(), "action-1".to_string()),
            (SIG_CANCEL.to_string(), "action-2".to_string()),
        ]
    );
    for p in &participants {
        assert_eq!(p.state(), ReservationState::Cancelled);
    }
}

/// The full fig. 1 business activity as a cohesion: each booking is an
/// atom; the ellipse's end is the *preparatory* phase ("for t1 the taxi is
/// reserved (prepared) and not booked (confirmed): that is the role of the
/// cohesion termination protocol").
#[test]
fn fig1_cohesion_over_service() {
    let service = ActivityService::new();
    let trip_activity = service.begin("trip").unwrap();
    // The cohesion owns completion of its activity; detach it from the
    // test thread's association.
    service.suspend().unwrap();
    let cohesion = Cohesion::new("trip", trip_activity.clone());

    let mut reservations = Vec::new();
    for name in ["taxi", "restaurant", "theatre", "hotel"] {
        let atom = cohesion.enroll_atom(name).unwrap();
        let r = Reservation::new(name);
        atom.enroll(Arc::clone(&r) as Arc<dyn BtpParticipant>).unwrap();
        // Prepared as the business activity progresses, not at the end.
        cohesion.prepare(name).unwrap();
        assert_eq!(r.state(), ReservationState::Prepared);
        reservations.push(r);
    }
    // Hours or days later… the confirm-set is everything.
    let report = cohesion.confirm(&["taxi", "restaurant", "theatre", "hotel"]).unwrap();
    assert_eq!(report.confirmed.len(), 4);
    for r in &reservations {
        assert_eq!(r.state(), ReservationState::Confirmed);
    }
    assert_eq!(trip_activity.state(), activity_service::ActivityState::Completed);
}

/// Fig. 2 as a cohesion: the hotel cancels, a cancellation atom (tc1) and
/// replacement bookings (cinema) join, and the confirm-set shifts.
#[test]
fn fig2_cohesion_alternative_plan() {
    let service = ActivityService::new();
    let trip_activity = service.begin("trip").unwrap();
    // The cohesion owns completion of its activity; detach it from the
    // test thread's association.
    service.suspend().unwrap();
    let cohesion = Cohesion::new("trip", trip_activity.clone());

    for name in ["taxi", "restaurant", "theatre"] {
        let atom = cohesion.enroll_atom(name).unwrap();
        atom.enroll(Reservation::new(name) as Arc<dyn BtpParticipant>).unwrap();
        cohesion.prepare(name).unwrap();
    }
    // t4: the hotel refuses during prepare.
    let hotel_atom = cohesion.enroll_atom("hotel").unwrap();
    hotel_atom
        .enroll(Reservation::voting("hotel", btp::BtpVote::Cancelled) as Arc<dyn BtpParticipant>)
        .unwrap();
    assert!(matches!(cohesion.prepare("hotel"), Err(BtpError::Cancelled)));

    // tc1 (the undo of partial hotel work) and the cinema replacement are
    // themselves atoms enrolled with the cohesion.
    let tc1 = cohesion.enroll_atom("tc1-undo-hotel-hold").unwrap();
    let tc1_res = Reservation::new("undo-hold");
    tc1.enroll(Arc::clone(&tc1_res) as Arc<dyn BtpParticipant>).unwrap();
    cohesion.prepare("tc1-undo-hotel-hold").unwrap();

    let cinema = cohesion.enroll_atom("cinema").unwrap();
    let cinema_res = Reservation::new("cinema");
    cinema.enroll(Arc::clone(&cinema_res) as Arc<dyn BtpParticipant>).unwrap();
    cohesion.prepare("cinema").unwrap();

    // New confirm-set: taxi + tc1 + cinema (theatre/restaurant dropped —
    // "it is decided to book tickets at the cinema").
    let report = cohesion.confirm(&["taxi", "tc1-undo-hotel-hold", "cinema"]).unwrap();
    assert_eq!(report.confirmed, vec!["cinema", "taxi", "tc1-undo-hotel-hold"]);
    assert_eq!(report.cancelled, vec!["restaurant", "theatre"]);
    assert_eq!(cinema_res.state(), ReservationState::Confirmed);
    assert_eq!(tc1_res.state(), ReservationState::Confirmed);
    assert_eq!(trip_activity.state(), activity_service::ActivityState::Completed);
}
