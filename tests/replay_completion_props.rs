//! Property tests for `RecoveryCoordinator::replay_completion` — the
//! presumed-abort interrogation contract (§3.4):
//!
//! * any transaction the log has no commit decision for — unknown,
//!   merely prepared, or long forgotten — answers `rolled_back`;
//! * the answer is idempotent under redelivery (at-least-once transport
//!   may ask arbitrarily often);
//! * the answer is a pure function of the durable log: a restarted
//!   coordinator (a fresh servant over the same WAL) answers identically,
//!   before and after arbitrary interleavings of other transactions'
//!   records.

use std::sync::Arc;

use ots::recovery::ReplayStatus;
use ots::{txlog, RecoveryCoordinator, TxId, TxStatus};
use proptest::prelude::*;
use recovery_log::{MemWal, Wal};

fn wal() -> Arc<dyn Wal> {
    Arc::new(MemWal::new())
}

/// One transaction's life recorded (or not) in the coordinator log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum History {
    /// No record at all — forgotten or never seen.
    Unknown,
    /// Begun only.
    Begun,
    /// Begun and prepared, never decided.
    Prepared,
    /// Decision forced.
    Decided,
    /// Decision forced and completion recorded.
    DecidedAndCompleted,
    /// Rolled back and completion recorded (no decision record exists).
    RolledBackCompleted,
}

fn record(log: &dyn Wal, tx: &TxId, history: History) {
    match history {
        History::Unknown => {}
        History::Begun => {
            txlog::log_begun(log, tx).unwrap();
        }
        History::Prepared => {
            txlog::log_begun(log, tx).unwrap();
            txlog::log_prepared(log, tx, &["store", "witness"]).unwrap();
        }
        History::Decided => {
            txlog::log_begun(log, tx).unwrap();
            txlog::log_prepared(log, tx, &["store", "witness"]).unwrap();
            txlog::log_decision_commit(log, tx).unwrap();
        }
        History::DecidedAndCompleted => {
            record(log, tx, History::Decided);
            txlog::log_completed(log, tx, TxStatus::Committed).unwrap();
        }
        History::RolledBackCompleted => {
            record(log, tx, History::Prepared);
            txlog::log_completed(log, tx, TxStatus::RolledBack).unwrap();
        }
    }
}

fn expected(history: History) -> ReplayStatus {
    match history {
        History::Decided | History::DecidedAndCompleted => ReplayStatus::Committed,
        _ => ReplayStatus::RolledBack,
    }
}

fn history_strategy() -> impl Strategy<Value = History> {
    prop_oneof![
        Just(History::Unknown),
        Just(History::Begun),
        Just(History::Prepared),
        Just(History::Decided),
        Just(History::DecidedAndCompleted),
        Just(History::RolledBackCompleted),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Presumed abort: without a durable commit decision the answer is
    /// `rolled_back` — never `unknown`, regardless of how much other
    /// traffic the log holds.
    #[test]
    fn undecided_histories_answer_rolled_back(
        histories in proptest::collection::vec(history_strategy(), 1..8),
        probe in 0usize..8,
    ) {
        let log = wal();
        for (i, history) in histories.iter().enumerate() {
            record(log.as_ref(), &TxId::top_level(i as u64 + 1), *history);
        }
        let coordinator = RecoveryCoordinator::new(Arc::clone(&log));
        let index = probe % histories.len();
        let tx = TxId::top_level(index as u64 + 1);
        let answer = coordinator.replay_completion(&tx).unwrap();
        prop_assert_eq!(answer, expected(histories[index]));
        if expected(histories[index]) == ReplayStatus::RolledBack {
            prop_assert_ne!(answer, ReplayStatus::Unknown);
        }
        // A transaction the log never saw at all is presumed aborted too.
        let stranger = TxId::top_level(histories.len() as u64 + 99);
        prop_assert_eq!(
            coordinator.replay_completion(&stranger).unwrap(),
            ReplayStatus::RolledBack
        );
    }

    /// Idempotence: redelivered interrogations (any count) answer the
    /// same, and the answers do not disturb each other across
    /// transactions.
    #[test]
    fn replay_completion_is_idempotent_under_redelivery(
        history in history_strategy(),
        asks in 2usize..6,
    ) {
        let log = wal();
        let tx = TxId::top_level(1);
        record(log.as_ref(), &tx, history);
        let coordinator = RecoveryCoordinator::new(Arc::clone(&log));
        let first = coordinator.replay_completion(&tx).unwrap();
        for _ in 1..asks {
            prop_assert_eq!(coordinator.replay_completion(&tx).unwrap(), first);
        }
        prop_assert_eq!(first, expected(history));
    }

    /// Stability across coordinator restarts: a fresh servant over the
    /// same log answers identically, even after *more* records for other
    /// transactions land between the restarts.
    #[test]
    fn answers_are_stable_across_coordinator_restarts(
        history in history_strategy(),
        later in proptest::collection::vec(history_strategy(), 0..4),
    ) {
        let log = wal();
        let tx = TxId::top_level(1);
        record(log.as_ref(), &tx, history);
        let before = RecoveryCoordinator::new(Arc::clone(&log))
            .replay_completion(&tx)
            .unwrap();
        // "Restart": drop the servant, append unrelated traffic, rebuild.
        for (i, h) in later.iter().enumerate() {
            record(log.as_ref(), &TxId::top_level(i as u64 + 2), *h);
        }
        let after = RecoveryCoordinator::new(Arc::clone(&log))
            .replay_completion(&tx)
            .unwrap();
        prop_assert_eq!(before, after);
        prop_assert_eq!(after, expected(history));
    }
}
