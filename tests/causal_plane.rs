//! Tier-1 causal merge-plane sweep (DESIGN.md §16): oracle #12
//! (`causal-consistency`) over the planted racy-coordinator fixture.
//!
//! [`ReorderedOutcomeScenario`] delivers the first phase-two outcome
//! *before* forcing the decision whenever its `causal.race` failpoint is
//! armed. Every per-node fact stays healthy — the run commits, both
//! participants keep their effects — so the reorder is invisible to the
//! other eleven oracles; only the merged happens-before DAG shows the
//! outcome with no forced decision among its causal ancestors. The sweep
//! must catch it via #12 alone, shrink every violating schedule to the
//! single failpoint arm, and staple a schema-clean Perfetto trace to the
//! reproducer.

use std::time::Instant;

use harness::scenarios::{ReorderedOutcomeScenario, RACE_SITE};
use harness::{sweep, FaultEvent, FaultSchedule, Scenario, SweepConfig};

const SCHEDULES: u64 = 120;
const SEED_START: u64 = 0xca05_0816;

fn config() -> SweepConfig {
    SweepConfig { seed_start: SEED_START, schedules: SCHEDULES, max_events: 4, shrink: true }
}

#[test]
fn fault_free_fixture_is_clean_and_reports_the_merge() {
    let obs = ReorderedOutcomeScenario.run(&FaultSchedule::empty());
    assert!(harness::check_all(&obs).is_empty());
    assert_eq!(obs.causal_violations.as_deref(), Some(&[][..]), "clean merge on clean runs");
    let trace = obs.causal_perfetto.expect("fixture always exports a trace");
    telemetry::check_perfetto_schema(&trace).expect("export is schema-clean");
    assert!(obs.causal_fingerprint.is_some());
}

#[test]
fn reordered_outcome_is_caught_by_the_causal_oracle_alone() {
    let started = Instant::now();
    let report = sweep(&ReorderedOutcomeScenario, &config());
    assert!(
        !report.failures.is_empty(),
        "the planted reorder escaped a {SCHEDULES}-schedule sweep"
    );
    for failure in &report.failures {
        // Oracle #12 and nothing else: the bug is invisible per-node.
        assert!(
            failure.violations.iter().all(|v| v.oracle == "causal-consistency"),
            "another oracle saw the reorder, so the fixture is too loud: {:?}",
            failure.violations
        );
        // 1-minimal: the single racy failpoint arm, nothing else.
        assert_eq!(failure.minimized.len(), 1, "shrinking left noise:\n{}", failure.repro());
        assert!(
            matches!(
                &failure.minimized.events()[0],
                FaultEvent::ArmFailpoint { site, .. } if site == RACE_SITE
            ),
            "unexpected minimal event:\n{}",
            failure.repro()
        );
        // Removing the sole event makes the failure vanish — 1-minimality
        // checked against a live run.
        let healthy = failure.minimized.without_event(0);
        let obs = ReorderedOutcomeScenario.run(&healthy);
        assert!(harness::check_all(&obs).is_empty());
        // The reproducer ships with the merged DAG's Perfetto export.
        let trace = failure.causal_trace.as_ref().expect("trace stapled to the repro");
        telemetry::check_perfetto_schema(trace).expect("stapled trace is schema-clean");
        assert!(failure.repro().contains("causal Perfetto trace attached"));
        assert!(failure.repro().contains("causal-consistency"));
    }
    assert!(
        started.elapsed().as_secs() < 120,
        "causal sweep blew its wall-clock budget: {:?}",
        started.elapsed()
    );
}

#[test]
fn causal_sweeps_are_reproducible() {
    // The sweep fingerprint folds in every run's merge fingerprint, so a
    // nondeterministic DAG — stamp, edge or ordering jitter — splits the
    // two sweeps here even if no oracle fires.
    let a = sweep(&ReorderedOutcomeScenario, &config());
    let b = sweep(&ReorderedOutcomeScenario, &config());
    assert_eq!(a.fingerprint, b.fingerprint, "merge plane is not deterministic");
    assert_eq!(a.failures.len(), b.failures.len());
}

#[test]
fn failure_reports_write_perfetto_artifacts() {
    let report = sweep(&ReorderedOutcomeScenario, &config());
    let failure = report.failures.first().expect("sweep finds the planted bug");
    let dir = std::path::Path::new("target/causal-plane-test-traces");
    let path = failure.write_causal_trace(dir).expect("artifact written");
    let written = std::fs::read_to_string(&path).expect("artifact readable");
    assert_eq!(Some(written.as_str()), failure.causal_trace.as_deref());
    telemetry::check_perfetto_schema(&written).expect("artifact is schema-clean");
}

#[test]
fn every_well_behaved_scenario_merges_clean() {
    // Scenarios that build a causal merge must verify clean fault-free,
    // and their merge fingerprints must be stable across reruns.
    for scenario in harness::scenarios::all() {
        let obs = scenario.run(&FaultSchedule::empty());
        if let Some(violations) = &obs.causal_violations {
            assert!(
                violations.is_empty(),
                "{} merges dirty fault-free: {violations:?}",
                scenario.name()
            );
        }
        if obs.causal_fingerprint.is_some() {
            let again = scenario.run(&FaultSchedule::empty());
            assert_eq!(
                obs.causal_fingerprint,
                again.causal_fingerprint,
                "{} has an unstable merge fingerprint",
                scenario.name()
            );
        }
    }
}
