//! Property tests over the causal merge plane (DESIGN.md §16):
//!
//! 1. **Monotone merge** — for arbitrary interleavings of local events and
//!    cross-node messages over three Lamport-clocked nodes, the merged
//!    happens-before DAG verifies clean, every send is matched to exactly
//!    one receive, and every message edge's receive stamp strictly exceeds
//!    its send stamp.
//! 2. **Ticks never reused** — a node's Lamport stamps are strictly
//!    increasing in program order (so never reused), no matter how
//!    tick/observe calls interleave; the clock itself is strictly
//!    monotone even against adversarial remote stamps.
//! 3. **Permutation-invariant fingerprint** — [`telemetry::CausalMerge`]
//!    canonicalises its input, so feeding the same events in any order
//!    yields bit-identical fingerprints: merging node logs is a fold, not
//!    a sequence.

use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;
use telemetry::{CausalMerge, LamportClock, RecordKind, RecordedEvent};

const NODES: [&str; 3] = ["alpha", "beta", "gamma"];

/// One scripted cluster step: a local event on a node, or a message from
/// one node to a distinct peer (send immediately followed by delivery).
#[derive(Debug, Clone)]
enum Op {
    Local(usize),
    Send(usize, usize),
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (0usize..NODES.len()).prop_map(Op::Local),
        (0usize..NODES.len(), 1usize..NODES.len())
            .prop_map(|(from, hop)| Op::Send(from, (from + hop) % NODES.len())),
    ]
    .boxed()
}

/// Execute a script into per-node stamped logs, exactly the way the
/// recorder + Lamport interceptors stamp real runs: local events tick,
/// sends tick and put the stamp on the wire, receives observe it.
fn execute(ops: &[Op]) -> Vec<RecordedEvent> {
    let clocks: Vec<LamportClock> = NODES.iter().map(|_| LamportClock::new()).collect();
    let mut seqs = vec![0u64; NODES.len()];
    let mut events = Vec::new();
    let mut time = 0u64;
    let mut message = 0u64;
    let push = |events: &mut Vec<RecordedEvent>,
                    seqs: &mut Vec<u64>,
                    node: usize,
                    time: u64,
                    kind: RecordKind,
                    lamport: u64,
                    detail: String| {
        events.push(RecordedEvent {
            seq: seqs[node],
            at: Duration::from_micros(time),
            lamport,
            node: NODES[node].to_owned(),
            kind,
            detail,
        });
        seqs[node] += 1;
    };
    for op in ops {
        time += 1;
        match op {
            Op::Local(node) => {
                let lamport = clocks[*node].tick();
                push(
                    &mut events,
                    &mut seqs,
                    *node,
                    time,
                    RecordKind::Trace,
                    lamport,
                    format!("local step at t{time}"),
                );
            }
            Op::Send(from, to) => {
                let lamport = clocks[*from].tick();
                let token = format!("m{message}@{lamport}");
                message += 1;
                let route = format!("{token} op {}->{}", NODES[*from], NODES[*to]);
                push(
                    &mut events,
                    &mut seqs,
                    *from,
                    time,
                    RecordKind::WireSend,
                    lamport,
                    route.clone(),
                );
                time += 1;
                let received = clocks[*to].observe(lamport);
                push(&mut events, &mut seqs, *to, time, RecordKind::WireRecv, received, route);
            }
        }
    }
    events
}

/// Deterministic Fisher-Yates over an LCG so permutations need no
/// `prop_shuffle` support from the vendored proptest.
fn permute<T>(items: &mut [T], seed: u64) {
    let mut state = seed | 1;
    for i in (1..items.len()).rev() {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        let j = (state >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: any two-or-three-node exchange merges into a clean DAG
    /// whose message edges are strictly Lamport-monotone.
    fn merge_of_arbitrary_exchanges_is_monotone(ops in vec(op_strategy(), 0..60)) {
        let events = execute(&ops);
        let sends = ops.iter().filter(|op| matches!(op, Op::Send(..))).count();
        let mut merge = CausalMerge::new();
        merge.add_events(events);
        let dag = merge.build();
        let violations = dag.verify();
        prop_assert!(violations.is_empty(), "clean exchange merged dirty: {violations:?}");
        prop_assert_eq!(dag.message_edges().len(), sends, "every send matches one receive");
        for &(send, recv) in dag.message_edges() {
            prop_assert!(
                dag.events()[recv].lamport > dag.events()[send].lamport,
                "receive stamp must strictly exceed send stamp"
            );
        }
    }

    /// Property 2a: per-node stamps are strictly increasing in program
    /// order — a tick is never reused, even across observes.
    fn stamps_are_never_reused_per_node(ops in vec(op_strategy(), 0..60)) {
        let events = execute(&ops);
        for node in NODES {
            let stamps: Vec<u64> = events
                .iter()
                .filter(|e| e.node == node)
                .map(|e| e.lamport)
                .collect();
            for pair in stamps.windows(2) {
                prop_assert!(
                    pair[1] > pair[0],
                    "{node} reused or regressed a stamp: {stamps:?}"
                );
            }
        }
    }

    /// Property 2b: the clock itself is strictly monotone under any
    /// interleaving of ticks and adversarial remote observations.
    fn clock_is_strictly_monotone(steps in vec((any::<bool>(), 0u64..1000), 1..80)) {
        let clock = LamportClock::new();
        let mut last = clock.current();
        for (is_tick, remote) in steps {
            let stamp = if is_tick { clock.tick() } else { clock.observe(remote) };
            prop_assert!(stamp > last, "stamp {stamp} did not advance past {last}");
            last = stamp;
        }
    }

    /// Property 3: the merge fingerprint is invariant under permutation of
    /// the input logs — merging is order-free.
    fn fingerprint_is_permutation_invariant(
        ops in vec(op_strategy(), 0..60),
        seed in any::<u64>(),
    ) {
        let events = execute(&ops);
        let mut shuffled = events.clone();
        permute(&mut shuffled, seed);
        let mut canonical = CausalMerge::new();
        canonical.add_events(events);
        let mut permuted = CausalMerge::new();
        permuted.add_events(shuffled);
        prop_assert_eq!(canonical.fingerprint(), permuted.fingerprint());
    }
}
