//! Property tests over the coordinator's protocol loop (figs. 5 and 7):
//! for ARBITRARY scripted SignalSets — any number of signals, any
//! mid-delivery switching — the framework's invariants must hold.

use std::sync::Arc;

use activity_service::signal_set::{AfterResponse, NextSignal, SignalSet};
use activity_service::{
    Activity, CompletionStatus, FnAction, Outcome, Signal, TraceEvent, TraceLog,
};
use orb::{SimClock, Value};
use parking_lot::Mutex;
use proptest::prelude::*;

/// A fully scripted signal set: emits `signals.len()` signals; after
/// feeding response `i` it requests the next signal early when
/// `switch_after[i]` says so.
#[derive(Debug)]
struct Scripted {
    signals: Vec<String>,
    switch_on_response: Vec<bool>,
    emitted: usize,
    responses: Mutex<usize>,
    completion: CompletionStatus,
}

impl SignalSet for Scripted {
    fn signal_set_name(&self) -> &str {
        "Scripted"
    }
    fn get_signal(&mut self) -> NextSignal {
        if self.emitted >= self.signals.len() {
            return NextSignal::End;
        }
        let name = self.signals[self.emitted].clone();
        self.emitted += 1;
        let signal = Signal::new(name, "Scripted");
        if self.emitted == self.signals.len() {
            NextSignal::LastSignal(signal)
        } else {
            NextSignal::Signal(signal)
        }
    }
    fn set_response(&mut self, _response: &Outcome) -> AfterResponse {
        let mut n = self.responses.lock();
        let switch = self
            .switch_on_response
            .get(*n)
            .copied()
            .unwrap_or(false);
        *n += 1;
        // Only switch while more signals remain; switching at the end just
        // terminates delivery early, which is also legal.
        if switch {
            AfterResponse::RequestNext
        } else {
            AfterResponse::Continue
        }
    }
    fn get_outcome(&mut self) -> Outcome {
        Outcome::done().with_data(Value::U64(*self.responses.lock() as u64))
    }
    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }
    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants, for any script and any action count:
    /// 1. the run terminates and produces an outcome;
    /// 2. trace structure: every Transmit is followed by its SetResponse,
    ///    and GetOutcome comes last, exactly once;
    /// 3. signals are delivered in script order; within one signal, actions
    ///    are visited in registration order with no repeats;
    /// 4. without switching, every emitted signal reaches every action.
    #[test]
    fn coordinator_loop_invariants(
        signal_count in 0usize..5,
        action_count in 0usize..5,
        switches in proptest::collection::vec(any::<bool>(), 0..25),
    ) {
        let signals: Vec<String> = (0..signal_count).map(|i| format!("s{i}")).collect();
        let any_switch = switches.iter().any(|b| *b);
        let activity = Activity::new_root("prop", SimClock::new());
        let trace = TraceLog::new();
        activity.coordinator().set_trace(trace.clone());
        activity
            .coordinator()
            .add_signal_set(Box::new(Scripted {
                signals: signals.clone(),
                switch_on_response: switches,
                emitted: 0,
                responses: Mutex::new(0),
                completion: CompletionStatus::Success,
            }))
            .unwrap();
        for i in 0..action_count {
            activity.coordinator().register_action(
                "Scripted",
                Arc::new(FnAction::new(format!("a{i}"), |_s: &Signal| Ok(Outcome::done()))) as _,
            );
        }

        // (1) terminates with an outcome.
        let outcome = activity.signal("Scripted").unwrap();
        prop_assert!(outcome.is_done());

        let events = trace.events();
        // (2) structure.
        let outcome_positions: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, TraceEvent::GetOutcome { .. }))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(outcome_positions.len(), 1);
        prop_assert_eq!(outcome_positions[0], events.len() - 1);
        for (i, e) in events.iter().enumerate() {
            if matches!(e, TraceEvent::Transmit { .. }) {
                prop_assert!(
                    matches!(events.get(i + 1), Some(TraceEvent::SetResponse { .. })),
                    "transmit at {} not followed by set_response",
                    i
                );
            }
        }

        // (3) delivery order respects the script and registration order.
        let transmits: Vec<(String, String)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Transmit { signal, action } => {
                    Some((signal.clone(), action.clone()))
                }
                _ => None,
            })
            .collect();
        let mut last_signal_idx = 0usize;
        let mut last_action_idx: Option<usize> = None;
        for (signal, action) in &transmits {
            let s_idx = signals.iter().position(|s| s == signal).unwrap();
            let a_idx = action[1..].parse::<usize>().unwrap();
            prop_assert!(s_idx >= last_signal_idx, "signals must not rewind");
            if s_idx == last_signal_idx {
                if let Some(prev) = last_action_idx {
                    prop_assert!(
                        a_idx > prev,
                        "within a signal, actions advance in registration order"
                    );
                }
            } else {
                last_signal_idx = s_idx;
            }
            last_action_idx = Some(a_idx);
            if s_idx != last_signal_idx {
                last_action_idx = Some(a_idx);
            }
        }

        // (4) full coverage when nothing switched.
        if !any_switch {
            prop_assert_eq!(transmits.len(), signal_count * action_count);
            prop_assert_eq!(
                outcome.data().as_u64().unwrap() as usize,
                signal_count * action_count
            );
        }

        // After the run the set has ended: reprocessing is rejected.
        prop_assert!(activity.signal("Scripted").is_err());
    }

    /// Re-associating a fresh set instance after End always works — the
    /// fig. 7 "will not be reused" rule applies to instances, not names.
    #[test]
    fn ended_sets_are_replaceable(count in 1usize..4) {
        let activity = Activity::new_root("prop", SimClock::new());
        for round in 0..count {
            activity
                .coordinator()
                .add_signal_set(Box::new(Scripted {
                    signals: vec![format!("round-{round}")],
                    switch_on_response: vec![],
                    emitted: 0,
                    responses: Mutex::new(0),
                    completion: CompletionStatus::Success,
                }))
                .unwrap();
            activity.signal("Scripted").unwrap();
        }
    }
}

/// A fixed regression: last-signal switching must still end cleanly.
#[test]
fn switch_on_last_signal_terminates() {
    let activity = Activity::new_root("edge", SimClock::new());
    activity
        .coordinator()
        .add_signal_set(Box::new(Scripted {
            signals: vec!["only".into()],
            switch_on_response: vec![true],
            emitted: 0,
            responses: Mutex::new(0),
            completion: CompletionStatus::Success,
        }))
        .unwrap();
    activity.coordinator().register_action(
        "Scripted",
        Arc::new(FnAction::new("a0", |_s: &Signal| Ok(Outcome::done()))) as _,
    );
    let outcome = activity.signal("Scripted").unwrap();
    assert!(outcome.is_done());
}
