//! Property tests for the participant failure detector
//! ([`orb::FailureDetector`]) backing the self-healing coordination layer:
//! suspicion accounting under NACK bursts, half-open probe discipline, total
//! rehabilitation, and replica agreement (two detectors fed the same event
//! sequence in lockstep reach the same verdicts — the determinism the chaos
//! harness relies on).

use std::time::Duration;

use orb::{DetectorConfig, FailureDetector, HealthStatus, SimClock};
use proptest::prelude::*;

/// Severity order for monotonicity checks: Healthy < Suspect < Quarantined.
fn severity(status: HealthStatus) -> u8 {
    match status {
        HealthStatus::Healthy => 0,
        HealthStatus::Suspect => 1,
        HealthStatus::Quarantined => 2,
    }
}

fn config(suspect_after: u32, quarantine_after: u32) -> DetectorConfig {
    DetectorConfig {
        suspect_after,
        quarantine_after,
        probe_interval: Duration::from_millis(100),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A burst of consecutive NACKs, for arbitrary thresholds:
    /// 1. suspicion counts every failure exactly;
    /// 2. status severity never decreases mid-burst;
    /// 3. the status after `i` failures is exactly the thresholded one.
    #[test]
    fn suspicion_is_monotone_under_nack_bursts(
        burst in 0u32..64,
        suspect_after in 1u32..6,
        margin in 0u32..6,
    ) {
        let quarantine_after = suspect_after + margin;
        let clock = SimClock::new();
        let detector =
            FailureDetector::with_config(clock, config(suspect_after, quarantine_after));
        let mut last_severity = severity(detector.status("p"));
        for i in 1..=burst {
            detector.record_failure("p");
            prop_assert_eq!(detector.suspicion("p"), i, "every NACK counts once");
            let now = severity(detector.status("p"));
            prop_assert!(now >= last_severity, "severity never decreases inside a burst");
            last_severity = now;
            let expected = if i >= quarantine_after {
                HealthStatus::Quarantined
            } else if i >= suspect_after {
                HealthStatus::Suspect
            } else {
                HealthStatus::Healthy
            };
            prop_assert_eq!(detector.status("p"), expected, "threshold crossing at {}", i);
        }
    }

    /// Quarantine routing and probe pacing, for any overshoot past the
    /// threshold and any wait: before `probe_interval` elapses every call is
    /// skipped; once it elapses exactly ONE probe passes; a successful probe
    /// rehabilitates totally (healthy, zero suspicion, never skipped).
    #[test]
    fn half_open_probe_success_fully_rehabilitates(
        overshoot in 0u32..8,
        stale_ms in 0u64..100,
        wait_ms in 100u64..500,
    ) {
        let clock = SimClock::new();
        let detector = FailureDetector::with_config(clock.clone(), config(2, 4));
        for _ in 0..(4 + overshoot) {
            detector.record_failure("p");
        }
        prop_assert_eq!(detector.status("p"), HealthStatus::Quarantined);
        prop_assert_eq!(detector.suspicion("p"), 4 + overshoot);

        clock.advance(Duration::from_millis(stale_ms));
        prop_assert!(detector.should_skip("p"), "no probe before the interval elapses");

        clock.advance(Duration::from_millis(wait_ms));
        prop_assert!(!detector.should_skip("p"), "the open window grants exactly one probe");
        prop_assert!(detector.should_skip("p"), "…whose slot is claimed immediately");

        detector.record_success("p");
        prop_assert_eq!(detector.status("p"), HealthStatus::Healthy);
        prop_assert_eq!(detector.suspicion("p"), 0, "rehabilitation is total, not partial");
        prop_assert!(!detector.should_skip("p"), "healthy participants are never skipped");
    }

    /// Any event sequence ending in a success leaves the participant
    /// healthy with zero suspicion — history never lingers past an ACK.
    #[test]
    fn any_history_ending_in_success_is_forgiven(
        history in proptest::collection::vec((any::<bool>(), 0u64..150), 0..40),
    ) {
        let clock = SimClock::new();
        let detector = FailureDetector::with_config(clock.clone(), config(2, 4));
        for (ok, advance_ms) in &history {
            clock.advance(Duration::from_millis(*advance_ms));
            if *ok {
                detector.record_success("p");
            } else {
                detector.record_failure("p");
            }
        }
        detector.record_success("p");
        prop_assert_eq!(detector.status("p"), HealthStatus::Healthy);
        prop_assert_eq!(detector.suspicion("p"), 0);
        prop_assert!(!detector.should_skip("p"));
    }

    /// Two detectors fed the identical event sequence (same clock advances,
    /// same successes/failures across several participants) agree on every
    /// skip decision in lockstep AND on the final per-participant verdicts.
    /// This is the determinism the simulation harness leans on: detector
    /// state is a pure function of the recorded sequence.
    #[test]
    fn detectors_fed_identical_sequences_agree(
        events in proptest::collection::vec((0u8..3, any::<bool>(), 0u64..150), 0..48),
    ) {
        let clock_a = SimClock::new();
        let clock_b = SimClock::new();
        let a = FailureDetector::with_config(clock_a.clone(), config(2, 4));
        let b = FailureDetector::with_config(clock_b.clone(), config(2, 4));
        for (who, ok, advance_ms) in &events {
            let name = format!("p{who}");
            let advance = Duration::from_millis(*advance_ms);
            clock_a.advance(advance);
            clock_b.advance(advance);
            if *ok {
                a.record_success(&name);
                b.record_success(&name);
            } else {
                a.record_failure(&name);
                b.record_failure(&name);
            }
            // should_skip mutates (it claims probe slots), so querying both
            // replicas in lockstep must keep them in agreement too.
            prop_assert_eq!(
                a.should_skip(&name),
                b.should_skip(&name),
                "replicas diverged on a skip decision"
            );
            prop_assert_eq!(a.status(&name), b.status(&name));
            prop_assert_eq!(a.suspicion(&name), b.suspicion(&name));
        }
        prop_assert_eq!(a.known_participants(), b.known_participants());
    }
}
