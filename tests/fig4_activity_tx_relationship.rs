//! Fig. 4 of the paper: the relationship between activities and
//! transactions. "An activity may run for an arbitrary length of time, and
//! may use atomic transactions at arbitrary points during its lifetime."
//!
//! The figure shows activities A1..A5 where A1 uses two top-level
//! transactions, A2 uses none, and transactional activity A3 has another
//! transactional activity A3' nested within it. This test reproduces that
//! exact structure and asserts both the activity tree and the transaction
//! outcomes.

use std::sync::Arc;

use activity_service::{ActivityService, ActivityState};
use orb::Value;
use ots::{TransactionFactory, TransactionalKv};

#[test]
fn fig4_structure_reproduced() {
    let service = ActivityService::new();
    let factory = TransactionFactory::new();
    let store = Arc::new(TransactionalKv::new("ledger"));

    // ---- A1: one activity, two successive top-level transactions. ----
    let a1 = service.begin("A1").unwrap();
    {
        let t = factory.create().unwrap();
        store.enlist(&t).unwrap();
        store.write(t.id(), "a1-first", Value::from(1i64)).unwrap();
        t.terminator().commit().unwrap();

        let t = factory.create().unwrap();
        store.enlist(&t).unwrap();
        store.write(t.id(), "a1-second", Value::from(2i64)).unwrap();
        t.terminator().commit().unwrap();
    }
    service.complete().unwrap();
    assert_eq!(a1.state(), ActivityState::Completed);
    assert_eq!(store.read_committed("a1-first"), Some(Value::from(1i64)));
    assert_eq!(store.read_committed("a1-second"), Some(Value::from(2i64)));

    // ---- A2: an activity that uses no transactions at all. ----
    let a2 = service.begin("A2").unwrap();
    service.complete().unwrap();
    assert_eq!(a2.state(), ActivityState::Completed);

    // ---- A3 with nested A3': both transactional; the nested activity's
    //      transaction is a subtransaction of A3's. ----
    let a3 = service.begin("A3").unwrap();
    let t3 = factory.create().unwrap();
    store.enlist(&t3).unwrap();
    store.write(t3.id(), "a3", Value::from(3i64)).unwrap();
    {
        let a3_prime = service.begin("A3'").unwrap();
        assert_eq!(a3_prime.parent().unwrap().id(), a3.id());
        let t3_prime = t3.begin_subtransaction().unwrap();
        assert!(t3.id().is_ancestor_of(t3_prime.id()));
        store.enlist(&t3_prime).unwrap();
        store.write(t3_prime.id(), "a3-prime", Value::from(4i64)).unwrap();
        t3_prime.terminator().commit().unwrap();
        service.complete().unwrap();
        // Subtransaction commit is provisional: invisible until A3's
        // top-level transaction commits.
        assert_eq!(store.read_committed("a3-prime"), None);
    }
    t3.terminator().commit().unwrap();
    service.complete().unwrap();
    assert_eq!(store.read_committed("a3"), Some(Value::from(3i64)));
    assert_eq!(store.read_committed("a3-prime"), Some(Value::from(4i64)));

    // ---- A4, A5: activities whose transactions abort do not abort the
    //      activity itself (activities relax ACID as needed). ----
    let _a4 = service.begin("A4").unwrap();
    let t4 = factory.create().unwrap();
    store.enlist(&t4).unwrap();
    store.write(t4.id(), "a4", Value::from(5i64)).unwrap();
    t4.terminator().rollback().unwrap();
    // The activity can still complete successfully: the aborted transaction
    // was just one episode within it.
    let outcome = service.complete().unwrap();
    assert!(outcome.is_done());
    assert_eq!(store.read_committed("a4"), None);

    // The service saw all five root activities.
    let names: Vec<String> = service.roots().iter().map(|a| a.name().to_owned()).collect();
    assert_eq!(names, vec!["A1", "A2", "A3", "A4"]);
}

#[test]
fn activity_may_interleave_transactional_and_non_transactional_periods() {
    // §3.1: "During its lifetime an activity may have transactional and
    // non-transactional periods."
    let service = ActivityService::new();
    let factory = TransactionFactory::new();
    let store = Arc::new(TransactionalKv::new("store"));

    service.begin("long-runner").unwrap();
    // Non-transactional period: direct (unprotected) reads.
    assert_eq!(store.read_committed("x"), None);
    // Transactional period.
    let t = factory.create().unwrap();
    store.enlist(&t).unwrap();
    store.write(t.id(), "x", Value::from(1i64)).unwrap();
    t.terminator().commit().unwrap();
    // Non-transactional again.
    assert_eq!(store.read_committed("x"), Some(Value::from(1i64)));
    service.complete().unwrap();
}
