//! Tier-1 partition/restart chaos sweep over the termination-protocol
//! scenario: 240 seeded schedules whose space includes partition windows
//! and crash-restart arms, checked against all twelve oracles — in
//! particular #10 (`eventual-resolution`): once faults cease and
//! partitions heal, no participant stays in doubt.
//!
//! Sensitivity is proven with the planted forgetful-coordinator fixture
//! (answers `unknown` where presumed abort requires `rolled_back`): the
//! sweep must catch it via the eventual-resolution oracle and shrink every
//! violating schedule to a single fault event.

use std::time::Instant;

use harness::scenarios::{ForgetfulCoordinatorScenario, TerminationScenario};
use harness::{generate, sweep, FaultEvent, FaultSchedule, Scenario, ScheduleSpace, SweepConfig};

const SCHEDULES: u64 = 240;
const SEED_START: u64 = 0x9a27_0808;

fn config() -> SweepConfig {
    SweepConfig { seed_start: SEED_START, schedules: SCHEDULES, max_events: 4, shrink: true }
}

/// The schedule space a fault-free probe run discovers — the same
/// discovery the explorer performs before generating seeds.
fn probe_space() -> ScheduleSpace {
    let probe = TerminationScenario.run(&FaultSchedule::empty());
    ScheduleSpace {
        sites: probe.observed_sites.clone(),
        remote_messages: probe.remote_messages,
        max_events: 4,
        partition_nodes: probe.partition_nodes.clone(),
        restart_sites: probe.restart_sites.clone(),
    }
}

#[test]
fn schedule_population_reaches_partition_and_restart_arms() {
    // The sweep below is only meaningful if the seeded population actually
    // draws the new fault kinds; count them over the exact seeds it runs.
    let space = probe_space();
    assert!(!space.partition_nodes.is_empty(), "probe must expose the topology");
    assert!(!space.restart_sites.is_empty(), "probe must expose restart sites");
    let (mut partitions, mut restarts, mut failpoints, mut messages) = (0u32, 0u32, 0u32, 0u32);
    for offset in 0..SCHEDULES {
        for event in generate(SEED_START + offset, &space).events() {
            match event {
                FaultEvent::Partition { until_us, from_us, .. } => {
                    assert!(until_us > from_us, "windows must be non-empty");
                    partitions += 1;
                }
                FaultEvent::Restart { .. } => restarts += 1,
                FaultEvent::ArmFailpoint { .. } => failpoints += 1,
                FaultEvent::DropMessage { .. } | FaultEvent::DuplicateMessage { .. } => {
                    messages += 1;
                }
            }
        }
    }
    assert!(partitions > 20, "population too thin on partition arms: {partitions}");
    assert!(restarts > 20, "population too thin on restart arms: {restarts}");
    assert!(failpoints > 20 && messages > 20, "legacy arms must survive the extension");
}

#[test]
fn partition_sweep_holds_every_oracle_and_is_reproducible() {
    let started = Instant::now();
    let config = config();
    let first = sweep(&TerminationScenario, &config);
    let second = sweep(&TerminationScenario, &config);
    assert_eq!(first.schedules_run, SCHEDULES);
    assert_eq!(
        first.fingerprint, second.fingerprint,
        "two consecutive partition sweeps diverged — simulation is not deterministic"
    );
    assert!(
        first.failures.is_empty(),
        "oracle violations under partition/restart chaos:\n{}",
        first
            .failures
            .iter()
            .map(harness::FailureReport::repro)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Budget guard (CI mirrors this with a job-level timeout): the whole
    // double sweep is virtual-time simulation and must stay far from
    // wall-clock minutes.
    assert!(
        started.elapsed().as_secs() < 120,
        "partition sweep blew its wall-clock budget: {:?}",
        started.elapsed()
    );
}

#[test]
fn forgetful_coordinator_is_caught_and_shrunk_to_one_event() {
    let report = sweep(&ForgetfulCoordinatorScenario, &config());
    assert!(
        !report.failures.is_empty(),
        "the planted forgetful coordinator escaped a {SCHEDULES}-schedule sweep"
    );
    let mut single_event_repros = 0usize;
    for failure in &report.failures {
        assert!(
            failure.violations.iter().any(|v| v.oracle == "eventual-resolution"),
            "the forgetful fixture must be caught by the new oracle: {:?}",
            failure.violations
        );
        // 1-minimal, as the shrinker guarantees: every surviving event is
        // load-bearing. Most histories need a single undecided crash arm —
        // the only history where `unknown` differs from presumed abort —
        // but the veto path legitimately needs two (a crashed vote plus a
        // lost rollback delivery).
        assert!(
            !failure.minimized.is_empty() && failure.minimized.len() <= 2,
            "shrinking left noise events:\n{}",
            failure.repro()
        );
        if failure.minimized.len() == 1 {
            single_event_repros += 1;
            // Removing the sole event makes the failure vanish: 1-minimality
            // in its purest form, checked against a live run.
            let healthy = failure.minimized.without_event(0);
            let obs = ForgetfulCoordinatorScenario.run(&healthy);
            assert!(harness::check_all(&obs).is_empty());
        }
        let repro = failure.repro();
        assert!(
            repro.contains("FaultEvent::ArmFailpoint") || repro.contains("FaultEvent::Restart"),
            "unexpected minimal event:\n{repro}"
        );
        assert!(repro.contains("seed") && repro.contains("eventual-resolution"), "{repro}");
        // The shrunk reproducer ships with the participant's black box:
        // the flight-recorder dump of the *minimized* run, so the report
        // shows what the node believed right up to the divergence.
        assert!(
            repro.contains("flight recorder at failure:")
                && repro.contains("flight-recorder node=participant"),
            "repro is missing the recorder dump:\n{repro}"
        );
    }
    assert!(
        single_event_repros > 0,
        "some schedule must shrink all the way to one crash arm"
    );
}
