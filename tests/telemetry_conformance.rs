//! Telemetry conformance under chaos: the metrics registry must account
//! for the faults the simulation actually injected. Two cross-checks:
//!
//! 1. Across a seed-swept chaos run of the fig. 10 workflow, every message
//!    the network dropped forced a retry attempt — `retry_attempts_total`
//!    never under-counts `NetworkStats::dropped` — while the recorded span
//!    trees stay well-formed with their event projection byte-identical to
//!    the coordinator trace (the same surfaces harness oracle #7 sweeps).
//! 2. The failure detector's `detector_transitions_total` series agree
//!    with the fault accounting the liveness oracle reasons about: the
//!    transition counts are exactly those implied by the injected
//!    consecutive-failure run and the final rehabilitation.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use activity_service::{
    ActionServant, ActivityService, BroadcastSignalSet, DispatchConfig, ExactlyOnceAction,
    FnAction, Outcome, RemoteActionProxy, Signal, TraceLog,
};
use harness::scenarios::WorkflowScenario;
use harness::{generate, FaultSchedule, Scenario, ScheduleSpace};
use orb::detector::{DetectorConfig, FailureDetector, HealthStatus};
use orb::{FaultScript, NetworkConfig, Orb, Request, RetryPolicy, SimClock, Value};
use recovery_log::{FailpointSet, MemWal, Wal};
use telemetry::Telemetry;

/// The fig. 10 workflow wiring (mirrors the harness `WorkflowRetryScenario`)
/// with the run's `Telemetry` and `Orb` handed back for metric inspection.
fn run_instrumented_workflow(schedule: &FaultSchedule) -> (Telemetry, Orb, String) {
    let clock = SimClock::new();
    let telemetry = Telemetry::with_time(Arc::new(clock.clone()));
    let orb = Orb::builder()
        .network(NetworkConfig::lossy(0.0, 0.0, 0x5EED_0001))
        .clock(clock)
        .retry_budget(64)
        .telemetry(telemetry.clone())
        .build();
    orb.add_node("coordinator").expect("coordinator node");
    let worker = orb.add_node("worker").expect("worker node");
    orb.network().install_script(schedule.to_fault_script());

    let effects = Arc::new(AtomicU32::new(0));
    let effects2 = Arc::clone(&effects);
    let inner: Arc<dyn activity_service::Action> =
        Arc::new(FnAction::new("debit", move |_s: &Signal| {
            effects2.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }));
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let servant: Arc<dyn activity_service::Action> =
        ExactlyOnceAction::new("eo-debit", inner, wal).expect("exactly-once wrapper") as _;
    let obj = worker.activate("Action", ActionServant::new(servant)).expect("activate");

    let failpoints = FailpointSet::new();
    schedule.arm_into(&failpoints);
    let service = ActivityService::new();
    while service.depth() > 0 {
        let _ = service.suspend();
    }
    let activity = service.begin("billing-run").expect("begin activity");
    activity.coordinator().set_dispatch_config(DispatchConfig::serial());
    activity.coordinator().set_failpoints(failpoints);
    let trace = TraceLog::new();
    activity.coordinator().set_trace(trace.clone());
    activity.coordinator().set_telemetry(telemetry.clone());
    activity
        .coordinator()
        .add_signal_set(Box::new(BroadcastSignalSet::new("Bill", "charge", Value::U64(25))))
        .expect("signal set");
    activity.set_completion_signal_set("Bill");
    let proxy = RemoteActionProxy::new("remote", orb.clone(), "coordinator", obj)
        .with_policy(RetryPolicy::new(8).with_base_backoff(Duration::from_millis(1)));
    activity.coordinator().register_action("Bill", Arc::new(proxy) as _);

    let _ = service.complete();
    while service.depth() > 0 {
        let _ = service.suspend();
    }
    (telemetry, orb, trace.render())
}

#[test]
fn dropped_deliveries_are_covered_by_retry_attempts_across_a_sweep() {
    // Discover the schedule space exactly like the chaos explorer does.
    let probe = WorkflowScenario.run(&FaultSchedule::empty());
    let space = ScheduleSpace {
        sites: probe.observed_sites.clone(),
        remote_messages: probe.remote_messages,
        max_events: 4,
        ..ScheduleSpace::default()
    };

    let mut runs_with_drops = 0u32;
    for seed in 0..40u64 {
        let schedule = generate(0x20260806 + seed, &space);
        let (telemetry, orb, trace) = run_instrumented_workflow(&schedule);
        let dropped = orb.network().stats().dropped;
        let retries = telemetry.metrics().counter_value("retry_attempts_total");
        // Every dropped delivery forces its invocation to fail, and the
        // 8-attempt budget comfortably covers the ≤4 scheduled faults, so
        // each drop is answered by at least one retry attempt.
        assert!(
            retries >= dropped,
            "seed {seed}: {dropped} drops but only {retries} retry attempts ({schedule:?})"
        );
        if dropped > 0 {
            runs_with_drops += 1;
        }

        // The span tree recorded under chaos stays conformant: well-formed,
        // and its event projection is byte-identical to the coordinator
        // trace (oracle #7's surfaces).
        let tree = telemetry.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new(), "seed {seed}");
        assert_eq!(tree.coordinator_projection(), trace, "seed {seed}");
    }
    assert!(runs_with_drops > 0, "the sweep must exercise dropped deliveries");
}

#[test]
fn detector_transition_counts_match_the_injected_fault_run() {
    // Five consecutive request drops against one server, then success:
    // the detector must walk healthy -> suspect -> quarantined -> healthy,
    // and the metrics registry must count exactly those transitions.
    let telemetry = Telemetry::new();
    let orb = Orb::builder().telemetry(telemetry.clone()).build();
    let detector = FailureDetector::with_config(
        orb.clock().clone(),
        DetectorConfig {
            suspect_after: 2,
            quarantine_after: 4,
            probe_interval: Duration::from_millis(50),
        },
    );
    orb.set_detector(detector.clone());
    orb.network().install_script(
        FaultScript::new().drop_nth(0).drop_nth(1).drop_nth(2).drop_nth(3).drop_nth(4),
    );
    let node = orb.add_node("srv").unwrap();
    let obj = node.activate("C", |_r: &Request| Ok(Value::Null)).unwrap();

    orb.invoke_with_policy(
        orb::node::EXTERNAL_CALLER,
        &obj,
        Request::new("work"),
        &RetryPolicy::immediate(8),
        None,
    )
    .expect("sixth attempt gets through");

    let dropped = orb.network().stats().dropped;
    assert_eq!(dropped, 5);
    assert_eq!(
        telemetry.metrics().counter_value("retry_attempts_total"),
        dropped,
        "one retry per dropped delivery"
    );

    // Fault accounting: 5 consecutive failures cross the suspect threshold
    // once (at 2) and the quarantine threshold once (at 4); the final
    // success rehabilitates. Nothing else may be counted.
    let m = telemetry.metrics();
    assert_eq!(
        m.counter_value("detector_transitions_total{from=\"healthy\",to=\"suspect\"}"),
        1
    );
    assert_eq!(
        m.counter_value("detector_transitions_total{from=\"suspect\",to=\"quarantined\"}"),
        1
    );
    assert_eq!(
        m.counter_value("detector_transitions_total{from=\"quarantined\",to=\"healthy\"}"),
        1
    );
    assert_eq!(m.family_total("detector_transitions_total"), 3);
    assert_eq!(detector.status("srv"), HealthStatus::Healthy, "rehabilitated");
    assert_eq!(detector.suspicion("srv"), 0);
}
