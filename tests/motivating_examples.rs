//! The paper's §2.1 motivating applications, (ii) and (iii): name-server
//! access and billing, both of which need updates that **survive** the
//! enclosing transaction's abort — the opposite of ACID containment.
//! (Example (i), the bulletin board, lives in `fig9_open_nesting.rs`.)

use std::sync::Arc;

use activity_service::{ActivityService, CompletionStatus, FnAction, Outcome, Signal};
use orb::{ObjectId, ObjectRef, Orb, Request, Value};
use ots::{TransactionFactory, TransactionalKv};
use parking_lot::Mutex;

/// §2.1(ii): "Application transactions, upon finding out that certain
/// object replicas are unavailable can invoke operations to update the
/// naming service database accordingly, while carrying on with the main
/// computation. There is no reason to undo these naming service updates
/// should the application transaction subsequently abort."
#[test]
fn name_server_updates_survive_application_abort() {
    let orb = Orb::new();
    let service = ActivityService::new();
    let factory = TransactionFactory::new();
    let app_store = Arc::new(TransactionalKv::new("app"));

    // Two replicas bound in the naming service.
    let node = orb.add_node("replica-host").unwrap();
    let primary = node.activate("Replica", |_r: &Request| Ok(Value::from("primary"))).unwrap();
    let backup = node.activate("Replica", |_r: &Request| Ok(Value::from("backup"))).unwrap();
    orb.registry().bind("service/primary", primary.clone()).unwrap();
    orb.registry().bind("service/backup", backup.clone()).unwrap();

    // The application activity: inside a transaction it discovers the
    // primary is dead and rebinds — as an *activity-level* side effect, not
    // a transactional write.
    service.begin("application").unwrap();
    let tx = factory.create().unwrap();
    app_store.enlist(&tx).unwrap();
    app_store.write(tx.id(), "progress", Value::from(1i64)).unwrap();

    node.deactivate(&primary);
    let resolved = orb.registry().resolve("service/primary").unwrap();
    assert!(orb.invoke(&resolved, Request::new("ping")).is_err(), "primary is gone");
    // Update the naming database: point the well-known name at the backup.
    orb.registry().rebind("service/primary", backup.clone());

    // The application transaction then aborts…
    tx.terminator().rollback().unwrap();
    service.complete_with_status(CompletionStatus::Fail).unwrap();

    // …the transactional write is gone, but the naming update SURVIVES.
    assert_eq!(app_store.read_committed("progress"), None);
    let resolved = orb.registry().resolve("service/primary").unwrap();
    assert_eq!(resolved, backup);
    let reply = orb.invoke(&resolved, Request::new("ping")).unwrap();
    assert_eq!(reply.result.as_str(), Some("backup"));
}

/// §2.1(iii): "if a service is accessed by a transaction and the user of
/// the service is to be charged, then the charging information should not
/// be recovered if the transaction aborts." The charge is recorded by an
/// Action on the activity's completion signal set — it runs regardless of
/// the transaction's outcome.
#[test]
fn billing_survives_transaction_abort() {
    let service = ActivityService::new();
    let factory = TransactionFactory::new();
    let data = Arc::new(TransactionalKv::new("data"));
    let charges: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));

    let run_billed_call = |should_commit: bool| {
        let activity = service.begin("billed-call").unwrap();
        activity
            .coordinator()
            .add_signal_set(Box::new(activity_service::BroadcastSignalSet::new(
                "Billing",
                "charge",
                Value::U64(25),
            )))
            .unwrap();
        activity.set_completion_signal_set("Billing");
        let charges2 = Arc::clone(&charges);
        let label = if should_commit { "committed-call" } else { "aborted-call" };
        activity.coordinator().register_action(
            "Billing",
            Arc::new(FnAction::new("biller", move |s: &Signal| {
                let amount = s.data().as_u64().unwrap_or(0);
                charges2.lock().push((label.to_owned(), amount));
                Ok(Outcome::done())
            })) as _,
        );

        let tx = factory.create().unwrap();
        data.enlist(&tx).unwrap();
        data.write(tx.id(), label, Value::from(1i64)).unwrap();
        if should_commit {
            tx.terminator().commit().unwrap();
            service.complete().unwrap();
        } else {
            tx.terminator().rollback().unwrap();
            service.complete_with_status(CompletionStatus::Fail).unwrap();
        }
    };

    run_billed_call(true);
    run_billed_call(false);

    // Both calls were charged — the abort did not recover the billing.
    assert_eq!(
        *charges.lock(),
        vec![("committed-call".to_owned(), 25), ("aborted-call".to_owned(), 25)]
    );
    // But only the committed call's data survived.
    assert_eq!(data.read_committed("committed-call"), Some(Value::from(1i64)));
    assert_eq!(data.read_committed("aborted-call"), None);
}

/// The naming service itself behaves like §2.1(ii) requires under
/// concurrent lookups and rebinds.
#[test]
fn naming_service_concurrent_rebinds() {
    let orb = Orb::new();
    let node = orb.add_node("host").unwrap();
    let objects: Vec<ObjectRef> = (0..8)
        .map(|i| {
            node.activate("Svc", move |_r: &Request| Ok(Value::U64(i))).unwrap()
        })
        .collect();
    orb.registry().bind("svc", objects[0].clone()).unwrap();

    std::thread::scope(|scope| {
        for obj in &objects {
            let registry = orb.registry();
            scope.spawn(move || {
                registry.rebind("svc", obj.clone());
            });
        }
        let registry = orb.registry();
        scope.spawn(move || {
            for _ in 0..50 {
                // Lookups never observe a missing binding.
                assert!(registry.resolve("svc").is_ok());
            }
        });
    });
    // Whatever won, the binding resolves to one of the replicas.
    let end = orb.registry().resolve("svc").unwrap();
    assert!(objects.contains(&end));
    // And stale references are detectable: a deactivated object fails fast.
    node.deactivate(&objects[3]);
    let probe = ObjectRef::new(ObjectId::new(end.id().node_seq(), objects[3].id().object_seq()), "host", "Svc");
    assert!(orb.invoke(&probe, Request::new("ping")).is_err());
}
