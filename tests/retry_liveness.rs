//! Tier-2 liveness sweep for the `orb::retry` reliability layer: the chaos
//! explorer drives the fig. 10 workflow scenario with retries enabled and
//! checks the sixth oracle — **liveness-under-bounded-faults** — across a
//! 240-schedule population: any schedule whose transient faults (message
//! drops) fit inside the retry budget and that arms no crash failpoint must
//! still reach `Committed`.
//!
//! Three properties are pinned:
//!
//! 1. **Liveness** — the full 240-schedule sweep of
//!    [`WorkflowRetryScenario`] violates no oracle and is bit-reproducible;
//! 2. **Necessity** — a pinned seed's schedule kills the no-retry control
//!    (`workflow-no-retries` does not commit) while the retrying scenario
//!    commits the very same schedule: the liveness property is carried by
//!    the reliability layer, not by the workload;
//! 3. **Transparency** — on the fault-free path the retry layer changes no
//!    observable byte: trace, outcome, effects, participant commits and
//!    remote-message counts are identical with the layer enabled, disabled
//!    and compiled down to a single attempt.

use harness::scenarios::{WorkflowNoRetryScenario, WorkflowRetryScenario, WorkflowScenario};
use harness::{
    check_all, generate, sweep, FaultSchedule, RunOutcome, Scenario, ScheduleSpace, SweepConfig,
};

/// Seed base for the liveness population (disjoint runs reuse it so CI can
/// pin artifacts to a reproducible sweep).
const SEED_START: u64 = 0x11FE_2026;

/// Schedules in the liveness sweep (the ISSUE's acceptance floor).
const SCHEDULES: u64 = 240;

/// The pinned seed demonstrating the retry layer is load-bearing: its
/// generated schedule is crash-free but drops a delivery the bare transport
/// never recovers, so `workflow-no-retries` loses liveness while
/// `workflow-retries` commits. Found by `find_liveness_seed` — the
/// assertion below keeps it honest if schedule generation ever changes.
const PINNED_LIVENESS_SEED: u64 = 0x11FE_2055;

fn config() -> SweepConfig {
    SweepConfig { seed_start: SEED_START, schedules: SCHEDULES, max_events: 4, shrink: true }
}

/// The schedule space discovered by a fault-free probe of the retrying
/// scenario (same discovery the explorer itself performs).
fn probe_space() -> ScheduleSpace {
    let probe = WorkflowRetryScenario.run(&FaultSchedule::empty());
    ScheduleSpace {
        sites: probe.observed_sites.clone(),
        remote_messages: probe.remote_messages,
        max_events: 4,
        ..ScheduleSpace::default()
    }
}

/// First seed at or after `SEED_START` whose schedule is crash-free yet
/// defeats the no-retry control.
fn find_liveness_seed(space: &ScheduleSpace) -> Option<u64> {
    (SEED_START..SEED_START + 512).find(|&seed| {
        let schedule = generate(seed, space);
        schedule.hard_fault_count() == 0
            && schedule.transient_fault_count() >= 1
            && WorkflowNoRetryScenario.run(&schedule).outcome != RunOutcome::Committed
    })
}

#[test]
fn liveness_sweep_of_240_schedules_holds_every_oracle_and_is_reproducible() {
    let config = config();
    let first = sweep(&WorkflowRetryScenario, &config);
    assert_eq!(first.schedules_run, SCHEDULES);
    assert!(
        first.failures.is_empty(),
        "liveness sweep found oracle violations:\n{}",
        first
            .failures
            .iter()
            .map(harness::FailureReport::repro)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let second = sweep(&WorkflowRetryScenario, &config);
    assert_eq!(
        first.fingerprint, second.fingerprint,
        "two consecutive liveness sweeps diverged — retry backoff must be deterministic"
    );
}

#[test]
fn pinned_seed_fails_without_the_retry_layer_and_passes_with_it() {
    let space = probe_space();
    let seed = find_liveness_seed(&space)
        .expect("no crash-free drop schedule defeats the bare transport in 512 seeds");
    assert_eq!(
        seed, PINNED_LIVENESS_SEED,
        "the first liveness-demonstrating seed moved; re-pin PINNED_LIVENESS_SEED \
         (schedule generation or the workload's message pattern changed)"
    );

    let schedule = generate(seed, &space);
    println!("pinned liveness schedule (seed {seed:#x}):\n{schedule}");
    assert_eq!(schedule.hard_fault_count(), 0);
    assert!(schedule.transient_fault_count() >= 1);

    // Without the reliability layer the schedule kills liveness — and the
    // oracle stays silent, because a budget of 0 makes the envelope empty.
    let bare = WorkflowNoRetryScenario.run(&schedule);
    assert_ne!(bare.outcome, RunOutcome::Committed, "no retry, no liveness");
    assert!(check_all(&bare).is_empty(), "{:?}", check_all(&bare));

    // With the layer enabled the same schedule commits, effects exactly
    // once, all six oracles clean.
    let retrying = WorkflowRetryScenario.run(&schedule);
    assert_eq!(
        retrying.outcome,
        RunOutcome::Committed,
        "the retry layer must restore liveness under bounded drops"
    );
    assert_eq!(retrying.effects[0].observed, 1, "redelivery must stay effect-once");
    assert!(check_all(&retrying).is_empty(), "{:?}", check_all(&retrying));
}

#[test]
fn fault_free_observations_are_byte_identical_across_retry_modes() {
    let legacy = WorkflowScenario.run(&FaultSchedule::empty());
    let retrying = WorkflowRetryScenario.run(&FaultSchedule::empty());
    let bare = WorkflowNoRetryScenario.run(&FaultSchedule::empty());

    for (mode, obs) in [("retries", &retrying), ("no-retries", &bare)] {
        assert_eq!(
            legacy.trace, obs.trace,
            "{mode}: fault-free trace must be byte-identical to the legacy transport"
        );
        assert_eq!(legacy.outcome, obs.outcome, "{mode}");
        assert_eq!(legacy.effects, obs.effects, "{mode}");
        assert_eq!(legacy.participant_commits, obs.participant_commits, "{mode}");
        assert_eq!(
            legacy.remote_messages, obs.remote_messages,
            "{mode}: the retry layer must add no fault-free network traffic"
        );
    }

    // Fault-free sweeps probe with the identical space: the fingerprint of a
    // zero-schedule sweep reduces to the probe run, so it must match too.
    let empty = SweepConfig { seed_start: SEED_START, schedules: 0, max_events: 4, shrink: false };
    let legacy_probe = sweep(&WorkflowScenario, &empty);
    let retry_probe = sweep(&WorkflowRetryScenario, &empty);
    assert_eq!(
        legacy_probe.fingerprint, retry_probe.fingerprint,
        "fault-free sweep fingerprints must be identical with the retry layer enabled"
    );
}
