//! A full-stack scenario stitching the layers together the way a real
//! deployment would: a workflow-driven order pipeline whose payment step is
//! a WSCF atomic transaction across remote services, whose fulfilment step
//! is a BTP cohesion, and whose pricing step is an LRUOW unit of work —
//! with the §4.2 compensation machinery protecting the early-committed
//! side effects.

use std::sync::Arc;

use activity_service::{Action, ActivityService};
use btp::{BtpParticipant, Cohesion, Reservation, ReservationState};
use orb::{Orb, Value};
use parking_lot::Mutex;
use tx_models::{LruowStore, TWO_PC_SET};
use wfengine::{script, TaskInput, TaskRegistry, TaskResult, WorkflowEngine};
use wscf::{
    register_remote, CoordinationService, ProtocolSuite, StagedLedger, WsParticipantAction,
    TYPE_ATOMIC_TRANSACTION,
};

const ORDER_SCRIPT: &str = "
    task price;
    task pay after price;
    task fulfil after pay;
    compensate pay with refund;
";

struct World {
    orb: Orb,
    coordination: Arc<CoordinationService>,
    catalog: Arc<LruowStore>,
    bank: Arc<StagedLedger>,
    shop: Arc<StagedLedger>,
    couriers: Arc<Mutex<Vec<Arc<Reservation>>>>,
    refunds: Arc<Mutex<u32>>,
}

fn build_world() -> World {
    let orb = Orb::new();
    let coordinator_node = orb.add_node("coordinator").unwrap();
    orb.add_node("bank").unwrap();
    orb.add_node("shop").unwrap();

    let coordination = Arc::new(CoordinationService::default());
    coordination.register_coordination_type(
        TYPE_ATOMIC_TRANSACTION,
        ProtocolSuite::new()
            .with(TWO_PC_SET, || Box::new(tx_models::TwoPhaseCommitSignalSet::new()) as _),
    );
    coordination.expose_registration(&orb, &coordinator_node).unwrap();

    let catalog = LruowStore::new("catalog");
    catalog.write("widget/price", Value::F64(10.0));

    World {
        orb,
        coordination,
        catalog,
        bank: StagedLedger::new("bank"),
        shop: StagedLedger::new("shop"),
        couriers: Arc::new(Mutex::new(Vec::new())),
        refunds: Arc::new(Mutex::new(0)),
    }
}

fn registry(world: &World, payment_works: bool, courier_available: bool) -> TaskRegistry {
    let mut registry = TaskRegistry::new();

    // --- price: an LRUOW rehearsal + performance over the catalog. -------
    let catalog = Arc::clone(&world.catalog);
    registry.register("price", move |_i: &TaskInput| {
        let uow = catalog.begin_unit_of_work();
        let price = uow.read("widget/price").unwrap().as_f64().unwrap();
        uow.write("widget/price", Value::F64(price)); // pin the quote
        match uow.perform() {
            Ok(()) => TaskResult::ok(Value::F64(price)),
            Err(e) => TaskResult::failed(e.to_string()),
        }
    });

    // --- pay: a WSCF atomic transaction across two remote services. ------
    let orb = world.orb.clone();
    let coordination = Arc::clone(&world.coordination);
    let bank = Arc::clone(&world.bank);
    let shop = Arc::clone(&world.shop);
    registry.register("pay", move |input: &TaskInput| {
        let price = input.upstream.get("price").and_then(Value::as_f64).unwrap_or(0.0);
        let ctx = coordination.create_context(TYPE_ATOMIC_TRANSACTION).unwrap();
        let payer = if payment_works {
            Arc::clone(&bank)
        } else {
            StagedLedger::refusing("bank-refuses")
        };
        payer.stage("debit", Value::F64(price));
        shop.stage("credit", Value::F64(price));
        register_remote(
            &orb,
            &orb.node("bank").unwrap(),
            &ctx,
            TWO_PC_SET,
            WsParticipantAction::new(payer as _) as Arc<dyn Action>,
        )
        .unwrap();
        register_remote(
            &orb,
            &orb.node("shop").unwrap(),
            &ctx,
            TWO_PC_SET,
            WsParticipantAction::new(Arc::clone(&shop) as _) as Arc<dyn Action>,
        )
        .unwrap();
        let outcome = coordination
            .complete(ctx.id(), TWO_PC_SET, activity_service::CompletionStatus::Success)
            .unwrap();
        if outcome.name() == "committed" {
            TaskResult::ok(Value::F64(price))
        } else {
            TaskResult::failed("payment declined")
        }
    });

    // --- fulfil: a BTP cohesion choosing a courier. -----------------------
    let couriers = Arc::clone(&world.couriers);
    registry.register("fulfil", move |_i: &TaskInput| {
        let activity =
            activity_service::Activity::new_root("fulfilment", orb::SimClock::new());
        let cohesion = Cohesion::new("fulfilment", activity);
        let mut prepared = Vec::new();
        for name in ["courier-express", "courier-economy"] {
            let atom = cohesion.enroll_atom(name).unwrap();
            let vote = if courier_available || name == "courier-economy" {
                btp::BtpVote::Prepared
            } else {
                btp::BtpVote::Cancelled
            };
            let reservation = Reservation::voting(name, vote);
            atom.enroll(Arc::clone(&reservation) as Arc<dyn BtpParticipant>).unwrap();
            if cohesion.prepare(name).is_ok() {
                prepared.push((name, reservation));
            }
        }
        let Some((winner, reservation)) = prepared.first() else {
            return TaskResult::failed("no courier available");
        };
        cohesion.confirm(&[winner]).unwrap();
        couriers.lock().push(Arc::clone(reservation));
        TaskResult::ok(Value::from(*winner))
    });

    // --- refund: compensation for pay. ------------------------------------
    let refunds = Arc::clone(&world.refunds);
    registry.register("refund", move |_i: &TaskInput| {
        *refunds.lock() += 1;
        TaskResult::ok(Value::Null)
    });

    registry
}

#[test]
fn happy_order_crosses_every_layer() {
    let world = build_world();
    let graph = script::parse(ORDER_SCRIPT).unwrap();
    let engine = WorkflowEngine::new(graph, registry(&world, true, true)).unwrap();
    let service = ActivityService::new();
    let report = engine.run(&service, "order-1", Value::from("order-1")).unwrap();

    assert!(report.succeeded(), "report: {report:?}");
    // The WSCF transaction committed on both remote ledgers.
    assert_eq!(world.bank.read("debit"), Some(Value::F64(10.0)));
    assert_eq!(world.shop.read("credit"), Some(Value::F64(10.0)));
    // The cohesion confirmed the express courier.
    let couriers = world.couriers.lock();
    assert_eq!(couriers.len(), 1);
    assert_eq!(couriers[0].state(), ReservationState::Confirmed);
    assert_eq!(report.outputs["fulfil"].as_str(), Some("courier-express"));
    assert_eq!(*world.refunds.lock(), 0);
}

#[test]
fn declined_payment_stops_the_pipeline_cleanly() {
    let world = build_world();
    let graph = script::parse(ORDER_SCRIPT).unwrap();
    let engine = WorkflowEngine::new(graph, registry(&world, false, true)).unwrap();
    let service = ActivityService::new();
    let report = engine.run(&service, "order-2", Value::from("order-2")).unwrap();

    assert_eq!(report.failed, vec!["pay"]);
    assert_eq!(report.skipped, vec!["fulfil"]);
    // The refusing payer vetoed the 2PC: the shop's credit rolled back too.
    assert_eq!(world.shop.read("credit"), None);
    assert_eq!(world.bank.read("debit"), None);
    // Nothing to refund: pay never completed, so its compensation (bound
    // to the pay task) does not run for pay's own failure.
    assert!(world.couriers.lock().is_empty());
}

#[test]
fn courier_failure_compensates_the_payment() {
    let world = build_world();
    let graph = script::parse(ORDER_SCRIPT).unwrap();
    let engine = WorkflowEngine::new(graph, registry(&world, true, false)).unwrap();
    let service = ActivityService::new();

    // The express courier refuses; economy is still available, so fulfil
    // actually succeeds — force total failure by draining both.
    // (Simplest: run with courier_available=false meaning express cancels;
    // economy prepared → fulfil succeeds.) So this run SUCCEEDS with the
    // economy courier: verify the cohesion picked the fallback.
    let report = engine.run(&service, "order-3", Value::from("order-3")).unwrap();
    assert!(report.succeeded());
    assert_eq!(report.outputs["fulfil"].as_str(), Some("courier-economy"));

    // Now a world where NO courier can prepare: fulfil fails and the
    // payment is refunded by the compensation sweep.
    let world2 = build_world();
    let mut registry2 = registry(&world2, true, false);
    registry2.register("fulfil", |_i: &TaskInput| TaskResult::failed("no couriers at all"));
    let graph = script::parse(ORDER_SCRIPT).unwrap();
    let engine = WorkflowEngine::new(graph, registry2).unwrap();
    let report = engine.run(&service, "order-4", Value::from("order-4")).unwrap();
    assert_eq!(report.failed, vec!["fulfil"]);
    assert_eq!(*world2.refunds.lock(), 1, "the pay step was compensated");
    // The payment itself had committed (it is an independent transaction —
    // that is the whole §4.2 point: undo-by-compensation, not by rollback).
    assert_eq!(world2.bank.read("debit"), Some(Value::F64(10.0)));
}
