//! Property-based tests over the core data structures and protocol
//! invariants, with `proptest`.

use proptest::prelude::*;

use activity_service::CompletionStatus;
use orb::{Value, ValueMap};
use ots::{LockManager, LockMode, TxId, TxStatus};
use recovery_log::{record::crc32, LogRecord, Lsn, MemWal, Wal};
use tx_models::LruowStore;
use wfengine::{FailurePolicy, TaskInput, TaskRegistry, TaskResult, WorkflowEngine, WorkflowGraph};

/// Arbitrary `Value` trees (bounded depth).
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        // NaN breaks PartialEq-based roundtrip assertions; use finite.
        (-1.0e12f64..1.0e12).prop_map(Value::F64),
        ".{0,32}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            proptest::collection::btree_map(".{0,8}", inner, 0..6)
                .prop_map(|m: ValueMap| Value::Map(m)),
        ]
    })
}

proptest! {
    /// The `any` codec roundtrips every representable value.
    #[test]
    fn value_codec_roundtrips(v in arb_value()) {
        let encoded = v.encode();
        let decoded = Value::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, v);
    }

    /// Log records roundtrip and detect any single-bit corruption.
    #[test]
    fn log_record_roundtrips_and_detects_bitflips(
        lsn in 0u64..u64::MAX,
        kind in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        flip_bit in any::<u16>(),
    ) {
        let record = LogRecord::new(Lsn::new(lsn), kind, payload);
        let encoded = record.encode();
        let (decoded, used) = LogRecord::decode(&encoded).unwrap();
        prop_assert_eq!(&decoded, &record);
        prop_assert_eq!(used, encoded.len());

        let mut corrupted = encoded.clone();
        let bit = (flip_bit as usize) % (corrupted.len() * 8);
        corrupted[bit / 8] ^= 1 << (bit % 8);
        // Any flipped bit must either fail to decode or decode to a record
        // different from the original in a detectable header field. With a
        // CRC over the whole body, decode must simply fail.
        prop_assert!(LogRecord::decode(&corrupted).is_err());
    }

    /// crc32 differs for any two distinct short payloads we generate
    /// (sanity: not a constant function) and is stable.
    #[test]
    fn crc32_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(crc32(&data), crc32(&data));
    }

    /// A WAL scan returns exactly the appended suffix, in order, for any
    /// sequence of appends and any scan start.
    #[test]
    fn wal_scan_is_a_suffix(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..32),
        from in 0u64..40,
    ) {
        let wal = MemWal::new();
        for (i, p) in payloads.iter().enumerate() {
            let lsn = wal.append(i as u32, p).unwrap();
            prop_assert_eq!(lsn, Lsn::new(i as u64 + 1));
        }
        let scanned = wal.scan(Lsn::new(from)).unwrap();
        let expected_len = payloads.len().saturating_sub((from as usize).saturating_sub(1));
        prop_assert_eq!(scanned.len(), expected_len);
        for w in scanned.windows(2) {
            prop_assert!(w[0].lsn < w[1].lsn);
        }
    }

    /// TxId ancestry is a strict partial order consistent with depth.
    #[test]
    fn txid_ancestry_invariants(
        top in 0u64..8,
        path_a in proptest::collection::vec(0u32..4, 0..5),
        path_b in proptest::collection::vec(0u32..4, 0..5),
    ) {
        let build = |path: &[u32]| {
            let mut id = TxId::top_level(top);
            for p in path {
                id = id.child(*p);
            }
            id
        };
        let a = build(&path_a);
        let b = build(&path_b);
        prop_assert!(!a.is_ancestor_of(&a), "never a proper ancestor of self");
        if a.is_ancestor_of(&b) {
            prop_assert!(a.depth() < b.depth());
            prop_assert!(!b.is_ancestor_of(&a), "antisymmetric");
            prop_assert!(a.same_family(&b));
        }
        // parent() inverts child().
        let c = a.child(3);
        prop_assert_eq!(c.parent(), Some(a));
    }

    /// Completion-status transitions: FailOnly is absorbing; everything
    /// else is freely reachable.
    #[test]
    fn completion_status_absorbing(seq in proptest::collection::vec(0u8..3, 0..16)) {
        let statuses = [
            CompletionStatus::Success,
            CompletionStatus::Fail,
            CompletionStatus::FailOnly,
        ];
        let mut current = CompletionStatus::Success;
        let mut fail_only_seen = false;
        for s in seq {
            let next = statuses[s as usize];
            if current.can_transition_to(next) {
                current = next;
            }
            if current == CompletionStatus::FailOnly {
                fail_only_seen = true;
            }
            if fail_only_seen {
                prop_assert_eq!(current, CompletionStatus::FailOnly);
            }
        }
    }

    /// Transaction status never leaves a terminal state under any event
    /// sequence.
    #[test]
    fn tx_status_terminal_states_absorb(seq in proptest::collection::vec(0u8..8, 0..24)) {
        let statuses = [
            TxStatus::Active,
            TxStatus::MarkedRollback,
            TxStatus::Preparing,
            TxStatus::Prepared,
            TxStatus::Committing,
            TxStatus::Committed,
            TxStatus::RollingBack,
            TxStatus::RolledBack,
        ];
        let mut current = TxStatus::Active;
        for s in seq {
            let next = statuses[s as usize];
            if current.is_terminal() {
                prop_assert!(!current.can_transition_to(next));
            } else if current.can_transition_to(next) {
                current = next;
            }
        }
    }

    /// Lock-manager safety: after any interleaving of try_lock/release, no
    /// key is ever exclusively held by two unrelated transaction families.
    #[test]
    fn lock_manager_mutual_exclusion(
        ops in proptest::collection::vec((0u64..4, 0usize..3, any::<bool>(), any::<bool>()), 1..64)
    ) {
        let lm = LockManager::default();
        let keys = ["x", "y", "z"];
        let mut holders: std::collections::HashMap<&str, Vec<(u64, LockMode)>> =
            std::collections::HashMap::new();
        for (tx_n, key_i, exclusive, release) in ops {
            let tx = TxId::top_level(tx_n);
            let key = keys[key_i];
            if release {
                lm.release_all(&tx);
                for held in holders.values_mut() {
                    held.retain(|(t, _)| *t != tx_n);
                }
            } else {
                let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                if lm.try_lock(&tx, key, mode).is_ok() {
                    let held = holders.entry(key).or_default();
                    if !held.iter().any(|(t, _)| *t == tx_n) {
                        held.push((tx_n, mode));
                    } else if exclusive {
                        for (t, m) in held.iter_mut() {
                            if *t == tx_n { *m = LockMode::Exclusive; }
                        }
                    }
                }
            }
            // Invariant: a key with any exclusive holder has exactly one
            // distinct holder.
            for held in holders.values() {
                if held.iter().any(|(_, m)| *m == LockMode::Exclusive) {
                    let distinct: std::collections::HashSet<u64> =
                        held.iter().map(|(t, _)| *t).collect();
                    prop_assert_eq!(distinct.len(), 1);
                }
            }
        }
    }

    /// LRUOW serialisability: for any interleaving of two counters
    /// increments with retry-on-conflict, the final value equals the total
    /// number of increments (no lost updates).
    #[test]
    fn lruow_has_no_lost_updates(schedule in proptest::collection::vec(any::<bool>(), 1..24)) {
        let store = LruowStore::new("counter");
        store.write("n", Value::I64(0));
        let mut pending: [Option<std::sync::Arc<tx_models::UnitOfWork>>; 2] = [None, None];
        let mut applied = 0i64;
        for first in schedule {
            let who = usize::from(first);
            match pending[who].take() {
                None => {
                    // Rehearse an increment.
                    let uow = std::sync::Arc::new(store.begin_unit_of_work());
                    let n = uow.read("n").unwrap().as_i64().unwrap();
                    uow.write("n", Value::I64(n + 1));
                    pending[who] = Some(uow);
                }
                Some(uow) => {
                    // Perform; on predicate violation re-rehearse and retry
                    // (which must then succeed — nothing else interleaves).
                    if uow.perform().is_err() {
                        let retry = store.begin_unit_of_work();
                        let n = retry.read("n").unwrap().as_i64().unwrap();
                        retry.write("n", Value::I64(n + 1));
                        retry.perform().unwrap();
                    }
                    applied += 1;
                }
            }
        }
        // Flush the stragglers.
        for slot in pending.iter_mut() {
            if let Some(uow) = slot.take() {
                if uow.perform().is_err() {
                    let retry = store.begin_unit_of_work();
                    let n = retry.read("n").unwrap().as_i64().unwrap();
                    retry.write("n", Value::I64(n + 1));
                    retry.perform().unwrap();
                }
                applied += 1;
            }
        }
        prop_assert_eq!(store.read("n").unwrap().as_i64().unwrap(), applied);
    }
}

proptest! {
    /// Workflow engine consistency: for any random layered DAG with random
    /// task failures, the report partitions the task set and no task ran
    /// before its dependencies.
    #[test]
    fn workflow_report_partitions_tasks(
        widths in proptest::collection::vec(1usize..4, 1..4),
        fail_mask in proptest::collection::vec(any::<bool>(), 12),
        dense in any::<bool>(),
    ) {
        use std::sync::Arc;
        use parking_lot::Mutex;

        let mut graph = WorkflowGraph::new();
        let mut registry = TaskRegistry::new();
        let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let mut names: Vec<Vec<String>> = Vec::new();
        let mut idx = 0usize;
        for (layer, width) in widths.iter().enumerate() {
            let mut layer_names = Vec::new();
            for w in 0..*width {
                let name = format!("t{layer}x{w}");
                graph.add_task(&name).unwrap();
                let fails = fail_mask.get(idx).copied().unwrap_or(false);
                idx += 1;
                let order2 = Arc::clone(&order);
                let name2 = name.clone();
                registry.register(&name, move |_i: &TaskInput| {
                    order2.lock().push(name2.clone());
                    if fails {
                        TaskResult::failed("injected")
                    } else {
                        TaskResult::ok(orb::Value::Null)
                    }
                });
                if layer > 0 {
                    if dense {
                        for upstream in &names[layer - 1] {
                            graph.add_dependency(&name, upstream).unwrap();
                        }
                    } else {
                        graph.add_dependency(&name, &names[layer - 1][w % names[layer - 1].len()]).unwrap();
                    }
                }
                layer_names.push(name);
            }
            names.push(layer_names);
        }

        let all: std::collections::BTreeSet<String> =
            graph.task_names().into_iter().collect();
        let engine = WorkflowEngine::new(graph.clone(), registry)
            .unwrap()
            .with_policy(FailurePolicy::ContinuePossible);
        let service = activity_service::ActivityService::new();
        let report = engine.run(&service, "prop", orb::Value::Null).unwrap();

        // Partition: completed + failed + skipped = all, disjoint.
        let mut seen = std::collections::BTreeSet::new();
        for t in report.completed.iter().chain(&report.failed).chain(&report.skipped) {
            prop_assert!(seen.insert(t.clone()), "task {} reported twice", t);
        }
        prop_assert_eq!(seen, all);

        // Ordering: every executed task ran after all its dependencies
        // completed (dependencies of executed tasks must have succeeded).
        let executed = order.lock().clone();
        let position: std::collections::HashMap<&String, usize> =
            executed.iter().enumerate().map(|(i, n)| (n, i)).collect();
        for task in executed.iter() {
            let spec = graph.node(task).unwrap();
            for dep in &spec.dependencies {
                if spec.join == wfengine::JoinKind::All {
                    prop_assert!(
                        report.completed.contains(dep),
                        "{} ran but dependency {} did not complete",
                        task,
                        dep
                    );
                    prop_assert!(position[&dep.clone()] < position[&task.clone()]);
                }
            }
        }
    }
}
