//! Concurrency stress: the framework's shared structures (ORB, stores,
//! coordinators, services) under parallel load.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use activity_service::{ActivityService, BroadcastSignalSet, FnAction, Outcome, Signal};
use orb::{Orb, Request, Value};
use ots::{TransactionFactory, TransactionalKv, TxError};

#[test]
fn parallel_invocations_through_one_orb() {
    let orb = Orb::new();
    let node = orb.add_node("server").unwrap();
    let hits = Arc::new(AtomicU32::new(0));
    let hits2 = Arc::clone(&hits);
    let obj = node
        .activate("Svc", move |_r: &Request| {
            hits2.fetch_add(1, Ordering::SeqCst);
            Ok(Value::Null)
        })
        .unwrap();

    std::thread::scope(|s| {
        for _ in 0..8 {
            let orb = orb.clone();
            let obj = obj.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    orb.invoke(&obj, Request::new("op")).unwrap();
                }
            });
        }
    });
    assert_eq!(hits.load(Ordering::SeqCst), 1600);
    assert_eq!(orb.network().stats().delivered, 3200, "request + reply legs");
}

#[test]
fn parallel_transactions_against_one_store_preserve_money() {
    // 8 threads transfer between two accounts with retry-on-conflict; the
    // total must be conserved.
    let factory = Arc::new(TransactionFactory::new());
    let store = Arc::new(TransactionalKv::new("bank"));
    let seed = factory.create().unwrap();
    store.enlist(&seed).unwrap();
    store.write(seed.id(), "a", Value::I64(1000)).unwrap();
    store.write(seed.id(), "b", Value::I64(1000)).unwrap();
    seed.terminator().commit().unwrap();

    std::thread::scope(|s| {
        for t in 0..8 {
            let factory = Arc::clone(&factory);
            let store = Arc::clone(&store);
            s.spawn(move || {
                let amount = i64::from(t) + 1;
                let mut done = 0;
                while done < 25 {
                    let tx = match factory.create() {
                        Ok(tx) => tx,
                        Err(_) => continue,
                    };
                    if store.enlist(&tx).is_err() {
                        continue;
                    }
                    let attempt = (|| -> Result<(), TxError> {
                        let a = store.read(tx.id(), "a")?.unwrap().as_i64().unwrap();
                        let b = store.read(tx.id(), "b")?.unwrap().as_i64().unwrap();
                        store.write(tx.id(), "a", Value::I64(a - amount))?;
                        store.write(tx.id(), "b", Value::I64(b + amount))?;
                        Ok(())
                    })();
                    match attempt {
                        Ok(()) => {
                            if tx.terminator().commit().is_ok() {
                                done += 1;
                            }
                        }
                        Err(_) => {
                            let _ = tx.terminator().rollback();
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    let a = store.read_committed("a").unwrap().as_i64().unwrap();
    let b = store.read_committed("b").unwrap().as_i64().unwrap();
    assert_eq!(a + b, 2000, "no money created or destroyed");
    // All transfers happened: sum of 25 * (t+1) for t in 0..8 = 25*36.
    assert_eq!(b - 1000, 25 * 36);
}

#[test]
fn parallel_activity_trees_are_isolated() {
    let service = ActivityService::new();
    let completions = Arc::new(AtomicU32::new(0));
    std::thread::scope(|s| {
        for t in 0..8 {
            let service = service.clone();
            let completions = Arc::clone(&completions);
            s.spawn(move || {
                for i in 0..50 {
                    let a = service.begin(format!("job-{t}-{i}")).unwrap();
                    let _child = service.begin("step").unwrap();
                    assert_eq!(service.depth(), 2, "thread-local association is per thread");
                    service.complete().unwrap();
                    assert_eq!(service.current().unwrap().id(), a.id());
                    service.complete().unwrap();
                    completions.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(completions.load(Ordering::SeqCst), 400);
    assert_eq!(service.roots().len(), 400);
}

#[test]
fn parallel_registration_and_dispatch_on_one_coordinator() {
    // Actions register concurrently while other threads fire independent
    // signal sets on the same coordinator.
    let activity =
        activity_service::Activity::new_root("busy", orb::SimClock::new());
    for i in 0..8 {
        activity
            .coordinator()
            .add_signal_set(Box::new(BroadcastSignalSet::new(
                format!("S{i}"),
                "go",
                Value::Null,
            )))
            .unwrap();
    }
    let hits = Arc::new(AtomicU32::new(0));
    std::thread::scope(|s| {
        for i in 0..8 {
            let activity = activity.clone();
            let hits = Arc::clone(&hits);
            s.spawn(move || {
                let set = format!("S{i}");
                for _ in 0..20 {
                    let hits2 = Arc::clone(&hits);
                    activity.coordinator().register_action(
                        &set,
                        Arc::new(FnAction::new("a", move |_s: &Signal| {
                            hits2.fetch_add(1, Ordering::SeqCst);
                            Ok(Outcome::done())
                        })) as _,
                    );
                }
                let outcome = activity.signal(&set).unwrap();
                assert!(outcome.is_done());
                assert_eq!(outcome.data().as_u64(), Some(20));
            });
        }
    });
    assert_eq!(hits.load(Ordering::SeqCst), 8 * 20);
}

#[test]
fn sixteen_concurrent_signal_set_runs_share_one_coordinator() {
    // 16 threads each drive process_signal_set on their own set of one
    // shared coordinator, with parallel fan-out enabled — so 16 collators
    // contend for the same worker pool concurrently (and help each other
    // drain it). Every delivery must still happen exactly once per run.
    use activity_service::{ActivityCoordinator, ActivityId, DispatchConfig};

    let coordinator = Arc::new(ActivityCoordinator::with_dispatch(
        ActivityId::new(99),
        DispatchConfig::with_workers(4),
    ));
    let hits = Arc::new(AtomicU32::new(0));
    for i in 0..16 {
        coordinator
            .add_signal_set(Box::new(BroadcastSignalSet::new(
                format!("S{i}"),
                "go",
                Value::Null,
            )))
            .unwrap();
        for j in 0..6 {
            let hits = Arc::clone(&hits);
            coordinator.register_action(
                format!("S{i}"),
                Arc::new(FnAction::new(format!("a{i}-{j}"), move |_s: &Signal| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    Ok(Outcome::done())
                })) as _,
            );
        }
    }
    std::thread::scope(|s| {
        for i in 0..16 {
            let coordinator = Arc::clone(&coordinator);
            s.spawn(move || {
                let outcome = coordinator.process_signal_set(&format!("S{i}")).unwrap();
                assert!(outcome.is_done());
                assert_eq!(outcome.data().as_u64(), Some(6), "set S{i} reached every action");
            });
        }
    });
    assert_eq!(hits.load(Ordering::SeqCst), 16 * 6);
}
