//! §3.4 of the paper: treatment of failure and recovery, exercised as a
//! crash matrix. The OTS coordinator is crashed at every interesting
//! protocol step (via failpoints), the "process" restarts over the surviving
//! log, and recovery must drive every in-doubt transaction — and the
//! activity structure above it — back to consistency.

use std::sync::Arc;

use activity_service::{
    recover_activities, ActionFactories, ActivityLogger, ActivityService, BroadcastSignalSet,
    FnAction, Outcome, Signal, SignalSetFactories,
};
use orb::{SimClock, Value};
use ots::{Resource, TransactionFactory, TransactionalKv, TxError};
use recovery_log::{
    CrashingWal, FailpointSet, FileWal, GroupCommitWal, LogError, Lsn, MemWal, Wal,
};

/// One crash-matrix cell: crash at `failpoint`, recover, and state whether
/// the transaction's effects must be present afterwards.
fn crash_at(failpoint: &str) -> (bool, Arc<TransactionalKv>) {
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let failpoints = FailpointSet::new();
    let factory = TransactionFactory::with_wal(Arc::clone(&wal)).with_failpoints(failpoints.clone());
    let store = Arc::new(TransactionalKv::new("store"));
    let witness = Arc::new(TransactionalKv::new("witness"));

    let control = factory.create().unwrap();
    store.enlist(&control).unwrap();
    witness.enlist(&control).unwrap();
    store.write(control.id(), "k", Value::from(1i64)).unwrap();
    witness.write(control.id(), "w", Value::from(2i64)).unwrap();

    failpoints.arm(failpoint, 0);
    let result = control.terminator().commit();
    assert!(
        matches!(result, Err(TxError::Log(_))),
        "failpoint {failpoint} must crash the commit, got {result:?}"
    );

    // Restart: a fresh factory over the surviving log re-delivers outcomes.
    failpoints.clear();
    let recovered_factory = TransactionFactory::with_wal(wal);
    let store2 = Arc::clone(&store);
    let witness2 = Arc::clone(&witness);
    let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
        match name {
            "store" => Some(store2.clone()),
            "witness" => Some(witness2.clone()),
            _ => None,
        }
    };
    let report = recovered_factory.recover(&resolver).unwrap();
    let committed = !report.recommitted.is_empty();
    // A crash before the prepared record leaves nothing in doubt (presumed
    // abort needs no log); all later crash points leave exactly one.
    assert!(
        report.recommitted.len() + report.presumed_aborted.len() <= 1,
        "at most one in-doubt transaction at {failpoint}"
    );
    (committed, store)
}

#[test]
fn crash_before_prepare_presumed_abort() {
    let (committed, store) = crash_at("ots.before_prepare");
    assert!(!committed);
    assert_eq!(store.read_committed("k"), None);
}

#[test]
fn crash_after_prepare_presumed_abort() {
    let (committed, store) = crash_at("ots.after_prepare");
    assert!(!committed, "no decision record yet: presumed abort");
    assert_eq!(store.read_committed("k"), None);
}

#[test]
fn crash_before_decision_presumed_abort() {
    let (committed, store) = crash_at("ots.before_decision");
    assert!(!committed);
    assert_eq!(store.read_committed("k"), None);
}

#[test]
fn crash_after_decision_recommits() {
    let (committed, store) = crash_at("ots.after_decision");
    assert!(committed, "the decision was durable: recovery must push commit through");
    assert_eq!(store.read_committed("k"), Some(Value::from(1i64)));
}

#[test]
fn crash_before_completion_record_recommits_idempotently() {
    let (committed, store) = crash_at("ots.before_completion_record");
    assert!(committed);
    // Phase two already ran once before the crash; recovery re-delivered
    // commit. Idempotent participants keep the value exact.
    assert_eq!(store.read_committed("k"), Some(Value::from(1i64)));
}

/// Reliability-layer regression: a duplicate commit delivered *after* the
/// participant has applied, been told to forget, or the log has been
/// replayed must be acknowledged idempotently — same committed value, no
/// double-apply, no error. This is the receiver-side contract the
/// `orb::retry` at-least-once redelivery (and `DedupWindow`) leans on: a
/// retried commit message surfacing arbitrarily late is always safe.
#[test]
fn duplicate_commit_after_forget_and_after_replay_is_acked_idempotently() {
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let failpoints = FailpointSet::new();
    let factory =
        TransactionFactory::with_wal(Arc::clone(&wal)).with_failpoints(failpoints.clone());
    let store = Arc::new(TransactionalKv::new("store"));
    let witness = Arc::new(TransactionalKv::new("witness"));

    let control = factory.create().unwrap();
    let tx = control.id().clone();
    store.enlist(&control).unwrap();
    witness.enlist(&control).unwrap();
    store.write(&tx, "k", Value::from(1i64)).unwrap();
    witness.write(&tx, "w", Value::from(2i64)).unwrap();

    // Phase two runs, then the coordinator dies before the completion
    // record: the log still holds a commit decision, so replay MUST
    // re-deliver commit to participants that already applied it.
    failpoints.arm("ots.before_completion_record", 0);
    assert!(matches!(control.terminator().commit(), Err(TxError::Log(_))));
    assert_eq!(store.read_committed("k"), Some(Value::from(1i64)), "phase two already ran");

    // First replay: the second commit delivery lands on participants that
    // have already applied and released their locks.
    failpoints.clear();
    let store2 = Arc::clone(&store);
    let witness2 = Arc::clone(&witness);
    let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
        match name {
            "store" => Some(store2.clone()),
            "witness" => Some(witness2.clone()),
            _ => None,
        }
    };
    let report = TransactionFactory::with_wal(Arc::clone(&wal)).recover(&resolver).unwrap();
    assert_eq!(report.recommitted.len(), 1);
    assert_eq!(store.read_committed("k"), Some(Value::from(1i64)));
    assert_eq!(store.committed_len(), 1, "the redelivered commit must not double-apply");
    assert_eq!(witness.read_committed("w"), Some(Value::from(2i64)));

    // Even later duplicates — a retried commit message surfacing after the
    // coordinator told the participant to forget — are still acked with Ok
    // and change nothing.
    store.forget(&tx);
    assert!(store.commit(&tx).is_ok(), "post-Forget duplicate commit must ack, not error");
    assert!(store.commit(&tx).is_ok(), "and it stays idempotent on every redelivery");
    assert_eq!(store.read_committed("k"), Some(Value::from(1i64)));
    assert_eq!(store.committed_len(), 1);

    // The log side is equally idempotent: the completion record appended by
    // the first replay acks the transaction, so a second replay re-delivers
    // nothing.
    let store3 = Arc::clone(&store);
    let witness3 = Arc::clone(&witness);
    let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
        match name {
            "store" => Some(store3.clone()),
            "witness" => Some(witness3.clone()),
            _ => None,
        }
    };
    let again = TransactionFactory::with_wal(wal).recover(&resolver).unwrap();
    assert!(again.recommitted.is_empty(), "replay already completed the transaction");
    assert!(again.presumed_aborted.is_empty());
    assert_eq!(store.committed_len(), 1, "post-replay state is stable");
}

/// The torn-record matrix cell: the coordinator "process" dies *inside* the
/// decision-record append ([`CrashingWal`] counts it down), and the dying
/// process got half the record onto the real file before the power went.
/// Replay must truncate at the torn tail and presumed-abort the in-doubt
/// transaction — a torn decision is no decision.
#[test]
fn torn_decision_record_truncates_and_presumed_aborts() {
    let path = {
        let mut p = std::env::temp_dir();
        p.push(format!("torn-decision-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    };
    let store = Arc::new(TransactionalKv::new("store"));
    let witness = Arc::new(TransactionalKv::new("witness"));

    // ---- First process: crash mid-append of the decision record. ----
    {
        // Appends: 1 = begun, 2 = prepared; the third — the decision — dies.
        let wal: Arc<dyn Wal> = Arc::new(CrashingWal::new(FileWal::open(&path).unwrap(), 2));
        let factory = TransactionFactory::with_wal(wal);
        let control = factory.create().unwrap();
        store.enlist(&control).unwrap();
        witness.enlist(&control).unwrap();
        store.write(control.id(), "k", Value::from(1i64)).unwrap();
        witness.write(control.id(), "w", Value::from(2i64)).unwrap();
        let result = control.terminator().commit();
        assert!(
            matches!(result, Err(TxError::Log(_))),
            "the decision append must crash the commit, got {result:?}"
        );
        // Half of the decision record reached the disk before the crash.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x01, 0x03, 0xA5, 0xC7]).unwrap();
    }

    // ---- Second process: replay truncates at the torn tail... ----
    let wal: Arc<dyn Wal> = Arc::new(FileWal::open(&path).unwrap());
    let records = wal.scan(Lsn::new(0)).unwrap();
    assert_eq!(records.len(), 2, "begun + prepared survive; the torn tail is cut");
    assert!(
        records.iter().all(|r| r.kind != ots::txlog::KIND_TX_DECISION),
        "no decision record may be reconstructed from torn bytes"
    );

    // ---- ...and presumed-aborts the in-doubt transaction. ----
    let store2 = Arc::clone(&store);
    let witness2 = Arc::clone(&witness);
    let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
        match name {
            "store" => Some(store2.clone()),
            "witness" => Some(witness2.clone()),
            _ => None,
        }
    };
    let report = TransactionFactory::with_wal(Arc::clone(&wal)).recover(&resolver).unwrap();
    assert!(report.recommitted.is_empty(), "a torn decision must never commit");
    assert_eq!(report.presumed_aborted.len(), 1);
    assert_eq!(store.read_committed("k"), None);
    assert_eq!(witness.read_committed("w"), None);

    // The truncated log is clean: a fresh transaction over it commits.
    let factory = TransactionFactory::with_wal(wal);
    let control = factory.create().unwrap();
    store.enlist(&control).unwrap();
    store.write(control.id(), "k", Value::from(3i64)).unwrap();
    control.terminator().commit().unwrap();
    assert_eq!(store.read_committed("k"), Some(Value::from(3i64)));
    std::fs::remove_file(&path).unwrap();
}

/// Full-stack recovery: activity structure + transaction outcomes from one
/// crash, over a REAL file-backed log with a torn tail.
#[test]
fn activity_and_transaction_recovery_compose_over_file_wal() {
    let path = {
        let mut p = std::env::temp_dir();
        p.push(format!("crash-matrix-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    };

    // ---- "First process": work, then die. ----
    {
        let wal: Arc<dyn Wal> = Arc::new(FileWal::open(&path).unwrap());
        let service = ActivityService::builder().wal(Arc::clone(&wal)).build();
        let booking = service.begin("booking").unwrap();
        booking
            .add_signal_set_recoverable(
                "completion-broadcast",
                Box::new(BroadcastSignalSet::new("Done", "finished", Value::Null)),
            )
            .unwrap();
        booking
            .register_action_recoverable(
                "Done",
                "audit-action",
                Arc::new(FnAction::new("audit", |_s: &Signal| Ok(Outcome::done()))),
            )
            .unwrap();
        booking.set_completion_signal_set("Done");
        let _step = service.begin("step-1").unwrap();
        // Crash: nothing completes; half a record hits the disk.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xA5, 0xC7, 0x00]).unwrap(); // torn garbage
    }

    // ---- "Second process": recover. ----
    let wal: Arc<dyn Wal> = Arc::new(FileWal::open(&path).unwrap());
    let mut sets = SignalSetFactories::new();
    sets.register("completion-broadcast", || {
        Box::new(BroadcastSignalSet::new("Done", "finished", Value::Null)) as _
    });
    let mut actions = ActionFactories::new();
    let replayed = Arc::new(parking_lot::Mutex::new(0u32));
    let replayed2 = Arc::clone(&replayed);
    actions.register("audit-action", move || {
        let replayed = Arc::clone(&replayed2);
        Arc::new(FnAction::new("audit", move |_s: &Signal| {
            *replayed.lock() += 1;
            Ok(Outcome::done())
        })) as _
    });
    let recovered = recover_activities(Arc::clone(&wal), &sets, &actions, SimClock::new()).unwrap();
    assert_eq!(recovered.roots.len(), 1);
    assert_eq!(recovered.incomplete.len(), 2);

    // The application drives the in-flight activities to completion —
    // children first ("application logic … is required to drive recovery").
    for activity in recovered.incomplete.iter().rev() {
        activity.complete().unwrap();
    }
    assert_eq!(*replayed.lock(), 1, "the recovered completion action ran");

    // Third incarnation: everything is now completed; recovery is stable.
    let wal: Arc<dyn Wal> = Arc::new(FileWal::open(&path).unwrap());
    let recovered = recover_activities(wal, &sets, &actions, SimClock::new()).unwrap();
    assert!(recovered.incomplete.is_empty());
    assert_eq!(recovered.completed.len(), 2);
    std::fs::remove_file(&path).unwrap();
}

/// Recovery of the activity-service logger composes with an OTS factory
/// sharing the SAME wal: mixed record kinds must not confuse either side.
#[test]
fn shared_wal_between_services() {
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let service = ActivityService::builder().wal(Arc::clone(&wal)).build();
    let tx_factory = TransactionFactory::with_wal(Arc::clone(&wal));
    let store = Arc::new(TransactionalKv::new("store"));

    let _activity = service.begin("mixed").unwrap();
    let control = tx_factory.create().unwrap();
    store.enlist(&control).unwrap();
    store.write(control.id(), "k", Value::from(9i64)).unwrap();
    control.terminator().commit().unwrap();
    service.complete().unwrap();

    // Both recoveries parse the shared log without tripping on each
    // other's record kinds.
    let resolver = |_: &str| -> Option<Arc<dyn Resource>> { None };
    let tx_report = TransactionFactory::with_wal(Arc::clone(&wal)).recover(&resolver).unwrap();
    assert!(tx_report.recommitted.is_empty(), "transaction completed before the crash");
    let recovered = recover_activities(
        wal,
        &SignalSetFactories::new(),
        &ActionFactories::new(),
        SimClock::new(),
    )
    .unwrap();
    assert_eq!(recovered.completed.len(), 1);
    assert!(recovered.incomplete.is_empty());
}

/// §3.4 also allows *activity logs* to be checkpointed; verify replay time
/// bounding composes with the activity logger (the checkpoint snapshot is
/// opaque to the activity layer, so this just must not corrupt anything).
#[test]
fn activity_log_tolerates_foreign_checkpoint_records() {
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    {
        let service = ActivityService::builder().wal(Arc::clone(&wal)).build();
        let _a = service.begin("job").unwrap();
        recovery_log::checkpoint::take_checkpoint(wal.as_ref(), b"opaque", false).unwrap();
        let _b = service.begin("job-child").unwrap();
    }
    let recovered = recover_activities(
        wal,
        &SignalSetFactories::new(),
        &ActionFactories::new(),
        SimClock::new(),
    )
    .unwrap();
    assert_eq!(recovered.incomplete.len(), 2);
}

/// Group-commit durability matrix: the process dies in the torn window
/// *between* the leader's coalesced buffer write and its sync ([`CrashingWal`]
/// in sync-crash mode counts the barrier down). Sweep the crash point across
/// the first several flushes: every `append_durable` LSN that was
/// acknowledged before the crash must still be in the log after restart; the
/// unacked tail may tear — or, having been written before the failed sync,
/// may happen to survive. Both are legal; losing an acked record is not.
#[test]
fn group_commit_sync_crash_matrix_keeps_every_acked_lsn() {
    for syncs_before_crash in 0..4u32 {
        let group =
            GroupCommitWal::new(CrashingWal::with_sync_crash(MemWal::new(), syncs_before_crash));
        let mut acked: Vec<u64> = Vec::new();
        let mut crashed = false;
        for i in 0..8u32 {
            match group.append_durable(0x0103, format!("decision-{i}").as_bytes()) {
                Ok(lsn) => acked.push(lsn.raw()),
                Err(err) => {
                    assert!(
                        matches!(err, LogError::CrashInjected(ref site) if site == "wal.sync"),
                        "cell {syncs_before_crash}: expected a sync crash, got {err:?}"
                    );
                    crashed = true;
                    break;
                }
            }
        }
        assert!(crashed, "cell {syncs_before_crash}: the armed sync crash must fire");
        assert_eq!(acked.len(), syncs_before_crash as usize);

        // Restart: disarm the fault, discard the staged (never-flushed)
        // tail, re-adopt whatever the sink physically holds.
        group.inner().defuse();
        group.recover_from_sink();
        let survived: Vec<u64> =
            group.scan(Lsn::new(0)).unwrap().iter().map(|r| r.lsn.raw()).collect();
        for lsn in &acked {
            assert!(
                survived.contains(lsn),
                "cell {syncs_before_crash}: acked LSN {lsn} lost; survivors {survived:?}"
            );
        }
        // The record whose sync crashed was written before the barrier
        // failed: it may survive as an unacked orphan, never as a gap.
        assert!(survived.len() >= acked.len());
        assert!(survived.len() <= acked.len() + 1, "at most the one torn-window record extra");

        // The restarted log continues cleanly past the survivors.
        let next = group.append_durable(0x0103, b"post-restart").unwrap();
        assert_eq!(next.raw(), survived.len() as u64 + 1);
    }
}

/// The same torn window under a full 2PC commit: the coordinator's forced
/// decision write crashes between the batch write and the sync, so the
/// commit call fails — but the decision record physically reached the sink.
/// Recovery must then push the commit through: the decision on disk, not
/// the lost acknowledgement, is the truth.
#[test]
fn group_commit_sync_crash_during_decision_recovers_from_surviving_batch() {
    let group = Arc::new(GroupCommitWal::new(CrashingWal::with_sync_crash(MemWal::new(), 0)));
    let wal: Arc<dyn Wal> = Arc::clone(&group) as Arc<dyn Wal>;
    let factory = TransactionFactory::with_wal(Arc::clone(&wal));
    let store = Arc::new(TransactionalKv::new("store"));
    let witness = Arc::new(TransactionalKv::new("witness"));

    let control = factory.create().unwrap();
    store.enlist(&control).unwrap();
    witness.enlist(&control).unwrap();
    store.write(control.id(), "k", Value::from(1i64)).unwrap();
    witness.write(control.id(), "w", Value::from(2i64)).unwrap();
    let result = control.terminator().commit();
    assert!(
        matches!(result, Err(TxError::Log(_))),
        "the decision barrier must crash the commit, got {result:?}"
    );
    assert_eq!(group.durable_lsn().raw(), 0, "nothing was ever acknowledged durable");

    // Restart over the surviving sink.
    group.inner().defuse();
    group.recover_from_sink();
    assert!(
        group
            .scan(Lsn::new(0))
            .unwrap()
            .iter()
            .any(|r| r.kind == ots::txlog::KIND_TX_DECISION),
        "the decision batch was written before the sync crashed"
    );
    let store2 = Arc::clone(&store);
    let witness2 = Arc::clone(&witness);
    let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
        match name {
            "store" => Some(store2.clone()),
            "witness" => Some(witness2.clone()),
            _ => None,
        }
    };
    let report = TransactionFactory::with_wal(wal).recover(&resolver).unwrap();
    assert_eq!(report.recommitted.len(), 1, "the surviving decision must recommit");
    assert_eq!(store.read_committed("k"), Some(Value::from(1i64)));
    assert_eq!(witness.read_committed("w"), Some(Value::from(2i64)));
}

/// Concurrent-committer durability stress: 16 threads each force 25 records
/// through one [`GroupCommitWal`] over a real file. Every acknowledged LSN
/// must survive a full process restart (fresh [`FileWal`] over the same
/// path), the LSN space must be dense, and the batching must have actually
/// shared sync barriers across committers.
#[test]
fn sixteen_concurrent_committers_survive_restart() {
    const THREADS: usize = 16;
    const COMMITS_PER_THREAD: usize = 25;
    let path = {
        let mut p = std::env::temp_dir();
        p.push(format!("group-stress-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    };

    let tel = telemetry::Telemetry::new();
    let acked: Vec<u64> = {
        let group = Arc::new(GroupCommitWal::new(FileWal::open(&path).unwrap()));
        group.set_telemetry(&tel);
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let group = Arc::clone(&group);
            handles.push(std::thread::spawn(move || {
                let mut acked = Vec::with_capacity(COMMITS_PER_THREAD);
                for i in 0..COMMITS_PER_THREAD {
                    let payload = format!("commit-{t}-{i}");
                    acked.push(
                        group.append_durable(0x0103, payload.as_bytes()).unwrap().raw(),
                    );
                }
                acked
            }));
        }
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    };

    let total = THREADS * COMMITS_PER_THREAD;
    let mut sorted = acked.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), total, "acked LSNs must be unique");
    assert_eq!(sorted.first(), Some(&1));
    assert_eq!(sorted.last(), Some(&(total as u64)), "LSN space must be dense");

    let syncs = tel.metrics().counter_value("wal_syncs_total");
    assert!(syncs >= 1);
    assert!(
        (syncs as usize) < total,
        "group commit must share barriers: {syncs} syncs for {total} forced records"
    );

    // "Restart": a brand-new FileWal over the same path sees every acked
    // record.
    let reopened = FileWal::open(&path).unwrap();
    let survived: std::collections::BTreeSet<u64> =
        reopened.scan(Lsn::new(0)).unwrap().iter().map(|r| r.lsn.raw()).collect();
    for lsn in &acked {
        assert!(survived.contains(lsn), "acked LSN {lsn} missing after restart");
    }
    std::fs::remove_file(&path).unwrap();
}

/// Unique scratch path for the file-backed compaction cells.
fn compaction_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "crash-matrix-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(p.with_extension("compact-tmp"));
    p
}

/// Build the pre-compaction log (LSNs 1..=10) at `path` and return the
/// exact bytes `truncate_prefix(Lsn::new(8))` writes to its `.compact-tmp`
/// sibling before the rename — obtained by running the real compaction
/// against a throwaway copy of the log.
fn stage_compaction(path: &std::path::Path) -> Vec<u8> {
    {
        let wal = FileWal::open(path).unwrap();
        for i in 0..10u32 {
            wal.append(i + 1, &i.to_be_bytes()).unwrap();
        }
        wal.sync().unwrap();
    }
    let donor = path.with_extension("donor");
    std::fs::copy(path, &donor).unwrap();
    FileWal::open(&donor).unwrap().truncate_prefix(Lsn::new(8)).unwrap();
    let new_bytes = std::fs::read(&donor).unwrap();
    std::fs::remove_file(&donor).unwrap();
    new_bytes
}

fn lsns_of(wal: &FileWal) -> Vec<u64> {
    wal.scan(Lsn::new(0)).unwrap().iter().map(|r| r.lsn.raw()).collect()
}

/// Torn-compaction matrix, pre-rename side: `FileWal::truncate_prefix`
/// writes the retained suffix to a temp sibling, fsyncs it, then atomically
/// renames it over the log. Crash anywhere BEFORE the rename — sweep the
/// number of temp-file bytes that reached disk from zero to all of them —
/// and reopening the log path must see the complete OLD record set. The
/// orphaned `.compact-tmp` is never read; it is debris, not state. Old or
/// new, never a mix.
#[test]
fn compaction_crash_before_rename_keeps_the_old_complete_log() {
    let path = compaction_path("compact-pre-rename");
    let new_bytes = stage_compaction(&path);
    let old_bytes = std::fs::read(&path).unwrap();
    let tmp = path.with_extension("compact-tmp");
    let old_lsns: Vec<u64> = (1..=10).collect();

    for written in 0..=new_bytes.len() {
        std::fs::write(&tmp, &new_bytes[..written]).unwrap();
        let wal = FileWal::open(&path).unwrap();
        assert_eq!(
            lsns_of(&wal),
            old_lsns,
            "cell {written}/{}: a crash before the rename must leave the old log whole",
            new_bytes.len()
        );
        assert_eq!(wal.next_lsn(), Lsn::new(11));
        drop(wal);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            old_bytes,
            "cell {written}: reopening must not rewrite the untouched log"
        );
    }

    // The restarted log continues cleanly past the survivors.
    let wal = FileWal::open(&path).unwrap();
    assert_eq!(wal.append(99, b"post-crash").unwrap(), Lsn::new(11));
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&tmp).unwrap();
}

/// Torn-compaction matrix, post-rename side: once `std::fs::rename` has
/// happened the new prefix IS the log — reopening sees exactly the retained
/// records (LSNs 8..=10), the LSN space is preserved across the compaction
/// (next append is 11, not 4), and no temp debris remains because the
/// rename consumed it. Again: old or new, never a mix.
#[test]
fn compaction_crash_after_rename_sees_exactly_the_new_prefix() {
    let path = compaction_path("compact-post-rename");
    let new_bytes = stage_compaction(&path);
    let tmp = path.with_extension("compact-tmp");

    // Replay truncate_prefix's final two steps: the fully synced temp file,
    // then the atomic swap. The crash lands immediately after.
    std::fs::write(&tmp, &new_bytes).unwrap();
    std::fs::rename(&tmp, &path).unwrap();

    let wal = FileWal::open(&path).unwrap();
    assert_eq!(lsns_of(&wal), vec![8, 9, 10], "exactly the new prefix, nothing mixed in");
    assert_eq!(wal.next_lsn(), Lsn::new(11), "the LSN space survives compaction");
    assert!(!tmp.exists(), "the rename consumed the temp file");
    assert_eq!(wal.append(99, b"post-crash").unwrap(), Lsn::new(11));
    std::fs::remove_file(&path).unwrap();
}

/// Participant-side termination cells: the participant dies BETWEEN
/// forcing its prepared record and applying the outcome, restarts from its
/// own WAL, and resolves the doubt itself by interrogating
/// `replay_completion` on the coordinator's `RecoveryCoordinator` servant
/// over the simulated ORB. Returns the durable-decision fact and the two
/// restarted stores for the per-cell assertions.
fn participant_crash_cell(
    arms: &[(&str, u32)],
) -> (bool, Arc<ots::DurableKv>, Arc<ots::DurableKv>) {
    use ots::recovery::{CoordinatorLocator, RECOVERY_COORDINATOR_INTERFACE};
    use ots::{DurableKv, RecoverableResource, RecoveryCoordinator, ResolutionConfig};
    use std::time::Duration;

    let coordinator_wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let participant_wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let failpoints = FailpointSet::new();
    for (site, after) in arms {
        failpoints.arm((*site).to_owned(), *after);
    }

    let factory = TransactionFactory::with_wal(Arc::clone(&coordinator_wal))
        .with_failpoints(failpoints.clone());
    let kv_store = DurableKv::new("store", Arc::clone(&participant_wal));
    let kv_witness = DurableKv::new("witness", Arc::clone(&participant_wal));
    let store = Arc::new(
        RecoverableResource::new(
            Arc::clone(&kv_store) as Arc<dyn Resource>,
            Arc::clone(&participant_wal),
            "coordinator",
        )
        .with_failpoints(failpoints.clone()),
    );
    let witness = Arc::new(
        RecoverableResource::new(
            Arc::clone(&kv_witness) as Arc<dyn Resource>,
            Arc::clone(&participant_wal),
            "coordinator",
        )
        .with_failpoints(failpoints.clone()),
    );

    let control = factory.create().unwrap();
    control.coordinator().register_resource(Arc::clone(&store) as Arc<dyn Resource>).unwrap();
    control
        .coordinator()
        .register_resource(Arc::clone(&witness) as Arc<dyn Resource>)
        .unwrap();
    kv_store.store().write(control.id(), "k", Value::from(1i64)).unwrap();
    kv_witness.store().write(control.id(), "w", Value::from(2i64)).unwrap();
    let result = control.terminator().commit();
    assert!(result.is_err(), "the armed participant crash must fail the commit: {result:?}");
    failpoints.clear();

    let decision_durable = coordinator_wal
        .scan(Lsn::new(0))
        .unwrap()
        .iter()
        .any(|r| r.kind == ots::txlog::KIND_TX_DECISION);

    // Restart the participant "process" from its surviving WAL.
    let kv_store2 = DurableKv::recover("store", Arc::clone(&participant_wal)).unwrap();
    let store2 = Arc::new(
        RecoverableResource::recover(
            Arc::clone(&kv_store2) as Arc<dyn Resource>,
            Arc::clone(&participant_wal),
            "coordinator",
        )
        .unwrap(),
    );
    let kv_witness2 = DurableKv::recover("witness", Arc::clone(&participant_wal)).unwrap();
    let witness2 = Arc::new(
        RecoverableResource::recover(
            Arc::clone(&kv_witness2) as Arc<dyn Resource>,
            Arc::clone(&participant_wal),
            "coordinator",
        )
        .unwrap(),
    );
    assert!(
        store2.in_doubt().len() + witness2.in_doubt().len() >= 1,
        "this matrix cell must leave at least one transaction in doubt"
    );

    // Interrogation over the ORB: the coordinator's log answers.
    let orb = orb::Orb::builder()
        .network(orb::NetworkConfig::reliable())
        .clock(SimClock::new())
        .build();
    let coordinator_node = orb.add_node("coordinator").unwrap();
    orb.add_node("participant").unwrap();
    let object = coordinator_node
        .activate(
            RECOVERY_COORDINATOR_INTERFACE,
            RecoveryCoordinator::new(Arc::clone(&coordinator_wal)),
        )
        .unwrap();
    let locate: CoordinatorLocator =
        Arc::new(move |node: &str| (node == "coordinator").then(|| object.clone()));
    let config = ResolutionConfig::new(orb::RetryPolicy::new(3), Duration::from_secs(60));
    for participant in [&store2, &witness2] {
        let report =
            participant.resolve_in_doubt(&orb, "participant", &locate, &config).unwrap();
        assert!(report.unresolved.is_empty(), "interrogation must answer every doubt");
        assert!(report.heuristic.is_empty(), "an answerable history needs no heuristic");
        assert!(participant.in_doubt().is_empty());
    }
    (decision_durable, kv_store2, kv_witness2)
}

/// Commit side: the decision was forced durably, then every participant
/// died before applying the outcome. Interrogation finds the decision
/// record and pushes the commit through.
#[test]
fn participant_crash_before_outcome_delivery_resolves_to_commit() {
    let (decided, store, witness) =
        participant_crash_cell(&[("ots.recovery.before_apply", 0)]);
    assert!(decided, "phase one completed: the decision record is durable");
    assert_eq!(store.store().read_committed("k"), Some(Value::from(1i64)));
    assert_eq!(witness.store().read_committed("w"), Some(Value::from(2i64)));
}

/// Presumed-abort side: the witness dies right after forcing its prepared
/// record (its vote surfaces as Failed), and the rollback delivery to the
/// dying process is lost with it. No decision record exists, so the
/// restarted participant's interrogation answers `rolled_back`.
#[test]
fn participant_crash_during_prepare_presumed_aborts_via_interrogation() {
    let (decided, store, witness) = participant_crash_cell(&[
        ("ots.recovery.after_prepared", 1),
        ("ots.recovery.before_apply", 1),
    ]);
    assert!(!decided, "the veto aborted the transaction before any decision");
    assert_eq!(store.store().read_committed("k"), None);
    assert_eq!(witness.store().read_committed("w"), None);
}

/// Make sure ActivityLogger is reachable for documentation users.
#[test]
fn activity_logger_is_constructible() {
    let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
    let logger = ActivityLogger::new(Arc::clone(&wal));
    assert_eq!(logger.wal().next_lsn(), recovery_log::Lsn::new(1));
}
