//! BTP atoms: user-driven two-phase transactions over the framework.
//!
//! "Atoms ... execute a traditional two-phase commit protocol on all the
//! enlisted participants. ... users are expected to drive both phases of
//! the protocol explicitly, i.e., issue prepare followed (at an arbitrary
//! time later) by either confirm or cancel."

use std::sync::Arc;

use activity_service::{Activity, CompletionStatus};
use parking_lot::Mutex;

use crate::error::BtpError;
use crate::participant::{BtpParticipant, ParticipantAction, OUT_PREPARED};
use crate::signal_sets::{CompleteSignalSet, PrepareSignalSet, COMPLETE_SET, PREPARE_SET};

/// Lifecycle of an [`Atom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomState {
    /// Accepting enrolments; prepare not yet driven.
    Enrolling,
    /// Every participant is prepared; awaiting the user's decision.
    Prepared,
    /// Terminal: confirmed.
    Confirmed,
    /// Terminal: cancelled.
    Cancelled,
}

impl std::fmt::Display for AtomState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AtomState::Enrolling => "enrolling",
            AtomState::Prepared => "prepared",
            AtomState::Confirmed => "confirmed",
            AtomState::Cancelled => "cancelled",
        })
    }
}

/// A BTP atom bound to one activity, driven through the fig. 11/12 signal
/// sets.
pub struct Atom {
    name: String,
    activity: Activity,
    state: Mutex<AtomState>,
    participants: Mutex<usize>,
}

impl std::fmt::Debug for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Atom")
            .field("name", &self.name)
            .field("state", &*self.state.lock())
            .finish()
    }
}

impl Atom {
    /// Bind a new atom to `activity`, associating its two signal sets.
    ///
    /// # Errors
    ///
    /// Propagates coordinator failures (e.g. the activity already carries
    /// BTP sets).
    pub fn new(name: impl Into<String>, activity: Activity) -> Result<Arc<Self>, BtpError> {
        activity.coordinator().add_signal_set(Box::new(PrepareSignalSet::new()))?;
        activity.coordinator().add_signal_set(Box::new(CompleteSignalSet::new()))?;
        Ok(Arc::new(Atom {
            name: name.into(),
            activity,
            state: Mutex::new(AtomState::Enrolling),
            participants: Mutex::new(0),
        }))
    }

    /// The atom's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bound activity.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// Current state.
    pub fn state(&self) -> AtomState {
        *self.state.lock()
    }

    /// Number of enrolled participants.
    pub fn participant_count(&self) -> usize {
        *self.participants.lock()
    }

    /// Enrol a participant: it will receive `prepare` and then whichever of
    /// `confirm`/`cancel` the user decides.
    ///
    /// # Errors
    ///
    /// [`BtpError::InvalidState`] once prepare has been driven.
    pub fn enroll(&self, participant: Arc<dyn BtpParticipant>) -> Result<(), BtpError> {
        let state = self.state.lock();
        if *state != AtomState::Enrolling {
            return Err(BtpError::InvalidState {
                operation: "enroll".into(),
                state: state.to_string(),
            });
        }
        let action = ParticipantAction::new(participant);
        self.activity
            .coordinator()
            .register_action(PREPARE_SET, Arc::clone(&action) as _);
        self.activity.coordinator().register_action(COMPLETE_SET, action as _);
        *self.participants.lock() += 1;
        Ok(())
    }

    /// Phase one, explicitly user-driven (fig. 11). When any participant
    /// votes to cancel, the atom cancels everyone and reports
    /// [`BtpError::Cancelled`].
    ///
    /// # Errors
    ///
    /// [`BtpError::InvalidState`] unless enrolling; [`BtpError::Cancelled`]
    /// on a cancellation vote.
    pub fn prepare(&self) -> Result<(), BtpError> {
        {
            let state = self.state.lock();
            if *state != AtomState::Enrolling {
                return Err(BtpError::InvalidState {
                    operation: "prepare".into(),
                    state: state.to_string(),
                });
            }
        }
        let outcome = self.activity.signal(PREPARE_SET)?;
        if outcome.name() == OUT_PREPARED {
            *self.state.lock() = AtomState::Prepared;
            Ok(())
        } else {
            // A cancellation vote dooms the atom: deliver cancel to all.
            self.finish(CompletionStatus::FailOnly)?;
            *self.state.lock() = AtomState::Cancelled;
            Err(BtpError::Cancelled)
        }
    }

    /// Phase two, forward (fig. 12): deliver `confirm` to every
    /// participant. Legal only after a successful [`Atom::prepare`] —
    /// possibly "many hours or days" later.
    ///
    /// # Errors
    ///
    /// [`BtpError::InvalidState`] unless prepared.
    pub fn confirm(&self) -> Result<(), BtpError> {
        {
            let state = self.state.lock();
            if *state != AtomState::Prepared {
                return Err(BtpError::InvalidState {
                    operation: "confirm".into(),
                    state: state.to_string(),
                });
            }
        }
        self.finish(CompletionStatus::Success)?;
        *self.state.lock() = AtomState::Confirmed;
        Ok(())
    }

    /// Phase two, backward: deliver `cancel`. Legal while enrolling (the
    /// user abandons the work) or prepared.
    ///
    /// # Errors
    ///
    /// [`BtpError::InvalidState`] when already terminal.
    pub fn cancel(&self) -> Result<(), BtpError> {
        {
            let state = self.state.lock();
            match *state {
                AtomState::Enrolling | AtomState::Prepared => {}
                other => {
                    return Err(BtpError::InvalidState {
                        operation: "cancel".into(),
                        state: other.to_string(),
                    })
                }
            }
        }
        self.finish(CompletionStatus::FailOnly)?;
        *self.state.lock() = AtomState::Cancelled;
        Ok(())
    }

    /// Drive the CompleteSignalSet in the given direction and complete the
    /// bound activity.
    fn finish(&self, status: CompletionStatus) -> Result<(), BtpError> {
        self.activity
            .coordinator()
            .set_completion_status(COMPLETE_SET, status)?;
        self.activity.signal(COMPLETE_SET)?;
        self.activity.set_completion_status(status)?;
        self.activity.complete()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::{BtpVote, Reservation, ReservationState};
    use orb::SimClock;

    fn atom_with(names: &[&str]) -> (Arc<Atom>, Vec<Arc<Reservation>>) {
        let activity = Activity::new_root("atom", SimClock::new());
        let atom = Atom::new("booking", activity).unwrap();
        let reservations: Vec<Arc<Reservation>> =
            names.iter().map(|n| Reservation::new(*n)).collect();
        for r in &reservations {
            atom.enroll(Arc::clone(r) as Arc<dyn BtpParticipant>).unwrap();
        }
        (atom, reservations)
    }

    #[test]
    fn prepare_then_confirm() {
        let (atom, reservations) = atom_with(&["taxi", "hotel"]);
        assert_eq!(atom.state(), AtomState::Enrolling);
        assert_eq!(atom.participant_count(), 2);
        atom.prepare().unwrap();
        assert_eq!(atom.state(), AtomState::Prepared);
        for r in &reservations {
            assert_eq!(r.state(), ReservationState::Prepared, "held, not booked");
        }
        // "at an arbitrary time later"
        atom.confirm().unwrap();
        assert_eq!(atom.state(), AtomState::Confirmed);
        for r in &reservations {
            assert_eq!(r.state(), ReservationState::Confirmed);
        }
    }

    #[test]
    fn prepare_then_cancel() {
        let (atom, reservations) = atom_with(&["taxi", "hotel"]);
        atom.prepare().unwrap();
        atom.cancel().unwrap();
        assert_eq!(atom.state(), AtomState::Cancelled);
        for r in &reservations {
            assert_eq!(r.state(), ReservationState::Cancelled);
        }
    }

    #[test]
    fn cancellation_vote_cancels_everyone() {
        let activity = Activity::new_root("atom", SimClock::new());
        let atom = Atom::new("booking", activity).unwrap();
        let good = Reservation::new("good");
        let bad = Reservation::voting("bad", BtpVote::Cancelled);
        atom.enroll(good.clone() as _).unwrap();
        atom.enroll(bad as _).unwrap();
        assert!(matches!(atom.prepare(), Err(BtpError::Cancelled)));
        assert_eq!(atom.state(), AtomState::Cancelled);
        assert_eq!(good.state(), ReservationState::Cancelled);
    }

    #[test]
    fn state_machine_enforced() {
        let (atom, _) = atom_with(&["only"]);
        assert!(matches!(atom.confirm(), Err(BtpError::InvalidState { .. })));
        atom.prepare().unwrap();
        assert!(matches!(atom.prepare(), Err(BtpError::InvalidState { .. })));
        assert!(matches!(
            atom.enroll(Reservation::new("late") as _),
            Err(BtpError::InvalidState { .. })
        ));
        atom.confirm().unwrap();
        assert!(matches!(atom.confirm(), Err(BtpError::InvalidState { .. })));
        assert!(matches!(atom.cancel(), Err(BtpError::InvalidState { .. })));
    }

    #[test]
    fn abandon_before_prepare() {
        let (atom, reservations) = atom_with(&["taxi"]);
        atom.cancel().unwrap();
        assert_eq!(atom.state(), AtomState::Cancelled);
        assert_eq!(reservations[0].state(), ReservationState::Cancelled);
    }
}
