//! BTP cohesions: non-ACID business transactions that select which work to
//! confirm.
//!
//! "Cohesions are non-ACID transactions and allow for the selection of work
//! to be confirmed or cancelled based on higher level business rules. ...
//! it may be many hours or days before the cohesion arrives at its
//! confirm-set: the set of participants that it requires to confirm. ...
//! Once the confirm-set has been determined, the cohesion collapses down to
//! being an atom: all members of the confirm-set see the same outcome."

use std::collections::BTreeMap;
use std::sync::Arc;

use activity_service::Activity;
use parking_lot::Mutex;

use crate::atom::{Atom, AtomState};
use crate::error::BtpError;

/// Lifecycle of a [`Cohesion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohesionState {
    /// Enrolling and preparing inferior atoms as the business logic
    /// progresses.
    Gathering,
    /// Terminal: the confirm-set was confirmed, everything else cancelled.
    Confirmed,
    /// Terminal: everything was cancelled.
    Cancelled,
}

impl std::fmt::Display for CohesionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CohesionState::Gathering => "gathering",
            CohesionState::Confirmed => "confirmed",
            CohesionState::Cancelled => "cancelled",
        })
    }
}

/// What a completed cohesion did with each inferior atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohesionReport {
    /// Atoms confirmed (the confirm-set).
    pub confirmed: Vec<String>,
    /// Atoms cancelled.
    pub cancelled: Vec<String>,
}

/// A cohesion: a tree of inferior atoms under one enclosing activity (the
/// dotted ellipse of fig. 1), terminated by confirm-set selection.
pub struct Cohesion {
    name: String,
    activity: Activity,
    inferiors: Mutex<BTreeMap<String, Arc<Atom>>>,
    state: Mutex<CohesionState>,
}

impl std::fmt::Debug for Cohesion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cohesion")
            .field("name", &self.name)
            .field("state", &*self.state.lock())
            .field("inferiors", &self.inferiors.lock().len())
            .finish()
    }
}

impl Cohesion {
    /// Bind a cohesion to its enclosing `activity`.
    pub fn new(name: impl Into<String>, activity: Activity) -> Arc<Self> {
        Arc::new(Cohesion {
            name: name.into(),
            activity,
            inferiors: Mutex::new(BTreeMap::new()),
            state: Mutex::new(CohesionState::Gathering),
        })
    }

    /// The cohesion's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state.
    pub fn state(&self) -> CohesionState {
        *self.state.lock()
    }

    /// Create and enrol a new inferior atom (with its own child activity).
    ///
    /// # Errors
    ///
    /// [`BtpError::DuplicateEnrolment`] on a name collision;
    /// [`BtpError::InvalidState`] once terminated.
    pub fn enroll_atom(&self, name: impl Into<String>) -> Result<Arc<Atom>, BtpError> {
        let name = name.into();
        self.check_gathering("enroll an atom")?;
        let mut inferiors = self.inferiors.lock();
        if inferiors.contains_key(&name) {
            return Err(BtpError::DuplicateEnrolment(name));
        }
        let child_activity = self.activity.begin_child(name.clone())?;
        let atom = Atom::new(name.clone(), child_activity)?;
        inferiors.insert(name, Arc::clone(&atom));
        Ok(atom)
    }

    /// Look up an enrolled atom.
    ///
    /// # Errors
    ///
    /// [`BtpError::UnknownInferior`].
    pub fn inferior(&self, name: &str) -> Result<Arc<Atom>, BtpError> {
        self.inferiors
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| BtpError::UnknownInferior(name.to_owned()))
    }

    /// Names of enrolled atoms, sorted.
    pub fn inferior_names(&self) -> Vec<String> {
        self.inferiors.lock().keys().cloned().collect()
    }

    /// Prepare one inferior now ("services enroll in atoms that represent
    /// specific units of work and as the business activity progresses, it
    /// may encounter conditions that allow it to ... prepare these units").
    ///
    /// # Errors
    ///
    /// Propagates the atom's prepare failure (including
    /// [`BtpError::Cancelled`] — the cohesion survives; the business logic
    /// decides what to do next).
    pub fn prepare(&self, name: &str) -> Result<(), BtpError> {
        self.check_gathering("prepare")?;
        self.inferior(name)?.prepare()
    }

    /// Cancel one inferior now.
    ///
    /// # Errors
    ///
    /// Propagates the atom's cancel failure.
    pub fn cancel(&self, name: &str) -> Result<(), BtpError> {
        self.check_gathering("cancel")?;
        self.inferior(name)?.cancel()
    }

    /// Terminate by confirming exactly `confirm_set` and cancelling every
    /// other live inferior — the "collapse down to being an atom".
    ///
    /// # Errors
    ///
    /// [`BtpError::UnknownInferior`] / [`BtpError::NotPrepared`] when the
    /// confirm-set is invalid; nothing is confirmed or cancelled in that
    /// case.
    pub fn confirm(&self, confirm_set: &[&str]) -> Result<CohesionReport, BtpError> {
        self.check_gathering("confirm")?;
        let inferiors = self.inferiors.lock().clone();
        // Validate the whole confirm-set first: atomicity of the decision.
        for name in confirm_set {
            let atom = inferiors
                .get(*name)
                .ok_or_else(|| BtpError::UnknownInferior((*name).to_owned()))?;
            if atom.state() != AtomState::Prepared {
                return Err(BtpError::NotPrepared((*name).to_owned()));
            }
        }
        let mut report = CohesionReport { confirmed: Vec::new(), cancelled: Vec::new() };
        for (name, atom) in &inferiors {
            if confirm_set.contains(&name.as_str()) {
                atom.confirm()?;
                report.confirmed.push(name.clone());
            } else {
                match atom.state() {
                    AtomState::Confirmed | AtomState::Cancelled => {}
                    _ => {
                        atom.cancel()?;
                        report.cancelled.push(name.clone());
                    }
                }
            }
        }
        self.activity.complete()?;
        *self.state.lock() =
            if confirm_set.is_empty() { CohesionState::Cancelled } else { CohesionState::Confirmed };
        Ok(report)
    }

    /// Terminate by cancelling everything still live.
    ///
    /// # Errors
    ///
    /// Propagates cancellation failures.
    pub fn cancel_all(&self) -> Result<CohesionReport, BtpError> {
        self.confirm(&[])
    }

    fn check_gathering(&self, operation: &str) -> Result<(), BtpError> {
        let state = self.state.lock();
        if *state != CohesionState::Gathering {
            return Err(BtpError::InvalidState {
                operation: operation.to_owned(),
                state: state.to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::{BtpParticipant, BtpVote, Reservation, ReservationState};
    use orb::SimClock;

    /// Build the fig. 1/fig. 2 travel cohesion: taxi, restaurant, theatre,
    /// hotel atoms with one reservation each.
    fn travel() -> (Arc<Cohesion>, BTreeMap<String, Arc<Reservation>>) {
        let activity = Activity::new_root("trip", SimClock::new());
        let cohesion = Cohesion::new("trip", activity);
        let mut reservations = BTreeMap::new();
        for name in ["taxi", "restaurant", "theatre", "hotel"] {
            let atom = cohesion.enroll_atom(name).unwrap();
            let r = Reservation::new(name);
            atom.enroll(Arc::clone(&r) as Arc<dyn BtpParticipant>).unwrap();
            reservations.insert(name.to_owned(), r);
        }
        (cohesion, reservations)
    }

    #[test]
    fn happy_trip_confirms_everything() {
        let (cohesion, reservations) = travel();
        for name in cohesion.inferior_names() {
            cohesion.prepare(&name).unwrap();
        }
        let report = cohesion
            .confirm(&["hotel", "restaurant", "taxi", "theatre"])
            .unwrap();
        assert_eq!(report.confirmed.len(), 4);
        assert!(report.cancelled.is_empty());
        assert_eq!(cohesion.state(), CohesionState::Confirmed);
        for r in reservations.values() {
            assert_eq!(r.state(), ReservationState::Confirmed);
        }
    }

    #[test]
    fn fig2_hotel_fails_alternative_confirm_set() {
        // t4 (hotel) cancels; the business logic books the cinema instead
        // and arrives at a different confirm-set.
        let (cohesion, reservations) = travel();
        for name in ["taxi", "restaurant", "theatre"] {
            cohesion.prepare(name).unwrap();
        }
        cohesion.cancel("hotel").unwrap();

        let cinema_atom = cohesion.enroll_atom("cinema").unwrap();
        let cinema = Reservation::new("cinema");
        cinema_atom.enroll(Arc::clone(&cinema) as Arc<dyn BtpParticipant>).unwrap();
        cohesion.prepare("cinema").unwrap();

        // Theatre no longer wanted either (the plan changed).
        let report = cohesion.confirm(&["taxi", "cinema"]).unwrap();
        assert_eq!(report.confirmed, vec!["cinema", "taxi"]);
        assert_eq!(report.cancelled, vec!["restaurant", "theatre"]);
        assert_eq!(reservations["taxi"].state(), ReservationState::Confirmed);
        assert_eq!(cinema.state(), ReservationState::Confirmed);
        assert_eq!(reservations["restaurant"].state(), ReservationState::Cancelled);
        assert_eq!(reservations["hotel"].state(), ReservationState::Cancelled);
    }

    #[test]
    fn confirm_set_must_be_prepared() {
        let (cohesion, _) = travel();
        cohesion.prepare("taxi").unwrap();
        // Hotel never prepared.
        let err = cohesion.confirm(&["taxi", "hotel"]).unwrap_err();
        assert_eq!(err, BtpError::NotPrepared("hotel".into()));
        // Nothing was decided: the cohesion still gathers.
        assert_eq!(cohesion.state(), CohesionState::Gathering);
        assert_eq!(cohesion.inferior("taxi").unwrap().state(), AtomState::Prepared);
        // Unknown names are caught too.
        assert!(matches!(
            cohesion.confirm(&["ghost"]),
            Err(BtpError::UnknownInferior(_))
        ));
    }

    #[test]
    fn cancel_all_cancels_everything() {
        let (cohesion, reservations) = travel();
        for name in ["taxi", "restaurant"] {
            cohesion.prepare(name).unwrap();
        }
        let report = cohesion.cancel_all().unwrap();
        assert!(report.confirmed.is_empty());
        assert_eq!(report.cancelled.len(), 4);
        assert_eq!(cohesion.state(), CohesionState::Cancelled);
        for r in reservations.values() {
            assert_eq!(r.state(), ReservationState::Cancelled);
        }
    }

    #[test]
    fn cancellation_vote_inside_one_atom_leaves_cohesion_alive() {
        let activity = Activity::new_root("trip", SimClock::new());
        let cohesion = Cohesion::new("trip", activity);
        let fussy_atom = cohesion.enroll_atom("fussy").unwrap();
        fussy_atom
            .enroll(Reservation::voting("fussy-res", BtpVote::Cancelled) as _)
            .unwrap();
        let solid_atom = cohesion.enroll_atom("solid").unwrap();
        let solid = Reservation::new("solid-res");
        solid_atom.enroll(Arc::clone(&solid) as _).unwrap();

        assert!(matches!(cohesion.prepare("fussy"), Err(BtpError::Cancelled)));
        assert_eq!(cohesion.state(), CohesionState::Gathering, "cohesion survives");
        cohesion.prepare("solid").unwrap();
        let report = cohesion.confirm(&["solid"]).unwrap();
        assert_eq!(report.confirmed, vec!["solid"]);
        assert_eq!(solid.state(), ReservationState::Confirmed);
    }

    #[test]
    fn terminated_cohesion_rejects_everything() {
        let (cohesion, _) = travel();
        cohesion.cancel_all().unwrap();
        assert!(matches!(cohesion.enroll_atom("late"), Err(BtpError::InvalidState { .. })));
        assert!(matches!(cohesion.prepare("taxi"), Err(BtpError::InvalidState { .. })));
        assert!(matches!(cohesion.confirm(&[]), Err(BtpError::InvalidState { .. })));
    }

    #[test]
    fn duplicate_atom_names_rejected() {
        let (cohesion, _) = travel();
        assert!(matches!(
            cohesion.enroll_atom("taxi"),
            Err(BtpError::DuplicateEnrolment(_))
        ));
    }
}
