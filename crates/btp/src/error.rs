//! Error type for BTP operations.

use std::fmt;

/// Errors raised by atoms and cohesions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BtpError {
    /// The operation is illegal in the transaction's current state (BTP is
    /// explicitly user-driven, so ordering violations are application
    /// bugs worth loud errors).
    InvalidState {
        /// What was attempted.
        operation: String,
        /// The state the atom/cohesion was in.
        state: String,
    },
    /// A participant (or inferior atom) with this name is already enrolled.
    DuplicateEnrolment(String),
    /// No inferior with this name is enrolled in the cohesion.
    UnknownInferior(String),
    /// The prepare phase ended in cancellation.
    Cancelled,
    /// The confirm-set references an inferior that is not prepared.
    NotPrepared(String),
    /// The underlying activity machinery failed.
    Activity(String),
}

impl fmt::Display for BtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtpError::InvalidState { operation, state } => {
                write!(f, "cannot {operation} while {state}")
            }
            BtpError::DuplicateEnrolment(name) => write!(f, "{name:?} already enrolled"),
            BtpError::UnknownInferior(name) => write!(f, "no inferior named {name:?}"),
            BtpError::Cancelled => write!(f, "transaction cancelled during prepare"),
            BtpError::NotPrepared(name) => {
                write!(f, "inferior {name:?} is not prepared and cannot be confirmed")
            }
            BtpError::Activity(msg) => write!(f, "activity failure: {msg}"),
        }
    }
}

impl std::error::Error for BtpError {}

impl From<activity_service::ActivityError> for BtpError {
    fn from(e: activity_service::ActivityError) -> Self {
        BtpError::Activity(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            BtpError::InvalidState { operation: "confirm".into(), state: "enrolling".into() },
            BtpError::DuplicateEnrolment("x".into()),
            BtpError::UnknownInferior("x".into()),
            BtpError::Cancelled,
            BtpError::NotPrepared("x".into()),
            BtpError::Activity("boom".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
