//! OASIS Business Transaction Protocol (BTP) atoms and cohesions over the
//! Activity Service — the paper's §4.5 and figs. 11–12.
//!
//! BTP extends transactions to "applications which are disparate in time,
//! location, and administration":
//!
//! * an [`atom::Atom`] runs a user-driven two-phase protocol — the user
//!   explicitly issues `prepare`, then (arbitrarily later) `confirm` or
//!   `cancel` — with no locking or isolation assumptions on participants;
//! * a [`cohesion::Cohesion`] encloses many atoms and terminates by
//!   selecting a *confirm-set*: those atoms confirm, the rest cancel.
//!
//! Both are built from two SignalSets ([`signal_sets::PrepareSignalSet`],
//! [`signal_sets::CompleteSignalSet`]) exactly as the paper prescribes:
//! "providing an implementation of atoms is straightforward: there are two
//! SignalSets with which all participants are registered".
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use activity_service::Activity;
//! use btp::{Atom, BtpParticipant, Reservation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let activity = Activity::new_root("booking", orb::SimClock::new());
//! let atom = Atom::new("booking", activity)?;
//! let taxi = Reservation::new("taxi");
//! atom.enroll(Arc::clone(&taxi) as Arc<dyn BtpParticipant>)?;
//! atom.prepare()?;   // reserve (fig. 11)
//! atom.confirm()?;   // book (fig. 12)
//! # Ok(())
//! # }
//! ```

pub mod atom;
pub mod cohesion;
pub mod error;
pub mod participant;
pub mod signal_sets;

pub use atom::{Atom, AtomState};
pub use cohesion::{Cohesion, CohesionReport, CohesionState};
pub use error::BtpError;
pub use participant::{BtpParticipant, BtpVote, ParticipantAction, Reservation, ReservationState};
pub use signal_sets::{CompleteSignalSet, Decision, PrepareSignalSet, COMPLETE_SET, PREPARE_SET};
