//! BTP participants: services enrolled in atoms.
//!
//! "Individual services (participants) are free to implement prepare,
//! confirm and cancel in a manner appropriate to them" — two-phase locking
//! is explicitly *not* required, so the trait says nothing about isolation.

use std::sync::Arc;

use activity_service::{ActionError, Outcome, Signal};
use parking_lot::Mutex;

use tx_models::common::{SIG_CANCEL, SIG_CONFIRM, SIG_PREPARE};

/// A participant's answer to `prepare`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtpVote {
    /// Ready to confirm or cancel on request, durably.
    Prepared,
    /// Refuses; the atom must cancel.
    Cancelled,
    /// Did no work worth confirming; drops out of the protocol.
    Resigned,
}

/// Outcome names carried back to the BTP signal sets.
pub(crate) const OUT_PREPARED: &str = "prepared";
pub(crate) const OUT_CANCELLED: &str = "cancelled";
pub(crate) const OUT_RESIGNED: &str = "resigned";

/// A web service taking part in a BTP atom.
pub trait BtpParticipant: Send + Sync {
    /// Phase one, user-driven.
    ///
    /// # Errors
    ///
    /// A failure is treated as a `Cancelled` vote.
    fn prepare(&self) -> Result<BtpVote, String>;

    /// Make the prepared work final.
    ///
    /// # Errors
    ///
    /// Reported to the terminator as a contradiction (the decision stands).
    fn confirm(&self) -> Result<(), String>;

    /// Undo the (prepared or pending) work.
    ///
    /// # Errors
    ///
    /// Reported to the terminator; cancellation is presumed to eventually
    /// succeed.
    fn cancel(&self) -> Result<(), String>;

    /// Diagnostic name.
    fn name(&self) -> &str;
}

/// Adapts a [`BtpParticipant`] into a framework Action driven by the
/// `prepare` / `confirm` / `cancel` signals of figs. 11 and 12.
pub struct ParticipantAction {
    participant: Arc<dyn BtpParticipant>,
}

impl ParticipantAction {
    /// Wrap `participant`.
    pub fn new(participant: Arc<dyn BtpParticipant>) -> Arc<Self> {
        Arc::new(ParticipantAction { participant })
    }
}

impl activity_service::Action for ParticipantAction {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        match signal.name() {
            SIG_PREPARE => match self.participant.prepare() {
                Ok(BtpVote::Prepared) => Ok(Outcome::new(OUT_PREPARED)),
                Ok(BtpVote::Cancelled) | Err(_) => Ok(Outcome::new(OUT_CANCELLED)),
                Ok(BtpVote::Resigned) => Ok(Outcome::new(OUT_RESIGNED)),
            },
            SIG_CONFIRM => match self.participant.confirm() {
                Ok(()) => Ok(Outcome::done()),
                Err(e) => Ok(Outcome::from_error(e)),
            },
            SIG_CANCEL => match self.participant.cancel() {
                Ok(()) => Ok(Outcome::done()),
                Err(e) => Ok(Outcome::from_error(e)),
            },
            other => Err(ActionError::new(format!("unexpected signal {other:?}"))),
        }
    }

    fn name(&self) -> &str {
        self.participant.name()
    }
}

/// A scriptable in-memory participant for tests, examples and benchmarks:
/// a named reservation that moves `pending → prepared → confirmed` or
/// `→ cancelled`.
#[derive(Debug)]
pub struct Reservation {
    name: String,
    vote: BtpVote,
    state: Mutex<ReservationState>,
}

/// Lifecycle of a [`Reservation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationState {
    /// Created, not yet prepared.
    Pending,
    /// Tentatively held.
    Prepared,
    /// Finalised.
    Confirmed,
    /// Released.
    Cancelled,
}

impl Reservation {
    /// A reservation that will vote `Prepared`.
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        Self::voting(name, BtpVote::Prepared)
    }

    /// A reservation with a scripted vote.
    pub fn voting(name: impl Into<String>, vote: BtpVote) -> Arc<Self> {
        Arc::new(Reservation {
            name: name.into(),
            vote,
            state: Mutex::new(ReservationState::Pending),
        })
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ReservationState {
        *self.state.lock()
    }
}

impl BtpParticipant for Reservation {
    fn prepare(&self) -> Result<BtpVote, String> {
        let mut state = self.state.lock();
        match self.vote {
            BtpVote::Prepared => {
                *state = ReservationState::Prepared;
                Ok(BtpVote::Prepared)
            }
            BtpVote::Cancelled => {
                *state = ReservationState::Cancelled;
                Ok(BtpVote::Cancelled)
            }
            BtpVote::Resigned => Ok(BtpVote::Resigned),
        }
    }

    fn confirm(&self) -> Result<(), String> {
        let mut state = self.state.lock();
        match *state {
            ReservationState::Prepared | ReservationState::Confirmed => {
                *state = ReservationState::Confirmed;
                Ok(())
            }
            other => Err(format!("cannot confirm from {other:?}")),
        }
    }

    fn cancel(&self) -> Result<(), String> {
        *self.state.lock() = ReservationState::Cancelled;
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activity_service::Action;

    #[test]
    fn reservation_lifecycle() {
        let r = Reservation::new("hotel");
        assert_eq!(r.state(), ReservationState::Pending);
        assert_eq!(r.prepare().unwrap(), BtpVote::Prepared);
        assert_eq!(r.state(), ReservationState::Prepared);
        r.confirm().unwrap();
        assert_eq!(r.state(), ReservationState::Confirmed);
        // Confirm is idempotent.
        r.confirm().unwrap();
    }

    #[test]
    fn confirm_without_prepare_fails() {
        let r = Reservation::new("hotel");
        assert!(r.confirm().is_err());
        r.cancel().unwrap();
        assert_eq!(r.state(), ReservationState::Cancelled);
        assert!(r.confirm().is_err());
    }

    #[test]
    fn action_translates_signals_to_votes() {
        let r = Reservation::voting("taxi", BtpVote::Cancelled);
        let action = ParticipantAction::new(r.clone() as Arc<dyn BtpParticipant>);
        let out = action.process_signal(&Signal::new(SIG_PREPARE, "x")).unwrap();
        assert_eq!(out.name(), OUT_CANCELLED);
        let out = action.process_signal(&Signal::new(SIG_CANCEL, "x")).unwrap();
        assert!(out.is_done());
        assert!(action.process_signal(&Signal::new("bogus", "x")).is_err());
        assert_eq!(action.name(), "taxi");
    }

    #[test]
    fn resigned_participants_drop_out() {
        let r = Reservation::voting("observer", BtpVote::Resigned);
        let action = ParticipantAction::new(r.clone() as Arc<dyn BtpParticipant>);
        let out = action.process_signal(&Signal::new(SIG_PREPARE, "x")).unwrap();
        assert_eq!(out.name(), OUT_RESIGNED);
        assert_eq!(r.state(), ReservationState::Pending);
    }
}
