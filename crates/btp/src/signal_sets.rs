//! The BTP signal sets of figs. 11 and 12.

use activity_service::signal_set::{AfterResponse, NextSignal, SignalSet};
use activity_service::{CompletionStatus, Outcome, Signal};
use orb::Value;
use tx_models::common::{SIG_CANCEL, SIG_CONFIRM, SIG_PREPARE};

use crate::participant::{OUT_CANCELLED, OUT_PREPARED, OUT_RESIGNED};

/// Conventional name of the prepare set (fig. 11).
pub const PREPARE_SET: &str = "PrepareSignalSet";
/// Conventional name of the completion set (fig. 12).
pub const COMPLETE_SET: &str = "CompleteSignalSet";

/// Fig. 11: "a user invokes the prepare phase of the atom protocol by
/// causing the ActivityCoordinator to drive the PrepareSignalSet, which
/// sends the prepare Signal to all Actions."
///
/// Unlike classic 2PC, a cancelled vote does **not** immediately switch the
/// protocol: phase two is user-driven, so the set finishes delivering
/// `prepare` and reports the tally; the decision belongs to the user.
#[derive(Debug, Default)]
pub struct PrepareSignalSet {
    sent: bool,
    prepared: usize,
    cancelled: usize,
    resigned: usize,
    completion: CompletionStatus,
}

impl PrepareSignalSet {
    /// A fresh prepare phase.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SignalSet for PrepareSignalSet {
    fn signal_set_name(&self) -> &str {
        PREPARE_SET
    }

    fn get_signal(&mut self) -> NextSignal {
        if self.sent {
            return NextSignal::End;
        }
        self.sent = true;
        NextSignal::LastSignal(Signal::new(SIG_PREPARE, PREPARE_SET))
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        match response.name() {
            OUT_PREPARED => self.prepared += 1,
            OUT_RESIGNED => self.resigned += 1,
            // Cancelled votes and action errors both count against.
            _ => self.cancelled += 1,
        }
        AfterResponse::Continue
    }

    fn get_outcome(&mut self) -> Outcome {
        let name = if self.cancelled == 0 { OUT_PREPARED } else { OUT_CANCELLED };
        Outcome::new(name)
            .with_data(Value::List(vec![
                Value::U64(self.prepared as u64),
                Value::U64(self.cancelled as u64),
                Value::U64(self.resigned as u64),
            ]))
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

/// The user's phase-two instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Deliver `confirm` (fig. 12).
    Confirm,
    /// Deliver `cancel`.
    Cancel,
}

/// Fig. 12: "the CompleteSignalSet can either issue a confirm or a cancel
/// Signal, depending upon how the atom is instructed to terminate",
/// indicated by the completion status (`Success` ⇒ confirm).
#[derive(Debug)]
pub struct CompleteSignalSet {
    sent: bool,
    failures: usize,
    completion: CompletionStatus,
}

impl Default for CompleteSignalSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CompleteSignalSet {
    /// A fresh completion phase; direction is taken from the completion
    /// status the coordinator sets before driving it.
    pub fn new() -> Self {
        CompleteSignalSet { sent: false, failures: 0, completion: CompletionStatus::Success }
    }

    /// The decision this set will deliver, given its completion status.
    pub fn decision(&self) -> Decision {
        if self.completion.is_failure() {
            Decision::Cancel
        } else {
            Decision::Confirm
        }
    }
}

impl SignalSet for CompleteSignalSet {
    fn signal_set_name(&self) -> &str {
        COMPLETE_SET
    }

    fn get_signal(&mut self) -> NextSignal {
        if self.sent {
            return NextSignal::End;
        }
        self.sent = true;
        let name = match self.decision() {
            Decision::Confirm => SIG_CONFIRM,
            Decision::Cancel => SIG_CANCEL,
        };
        NextSignal::LastSignal(Signal::new(name, COMPLETE_SET))
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        if response.is_negative() {
            self.failures += 1;
        }
        AfterResponse::Continue
    }

    fn get_outcome(&mut self) -> Outcome {
        if self.failures == 0 {
            Outcome::done()
        } else {
            // Contradictions: the decision stands but some participant
            // could not apply it.
            Outcome::from_error(format!("{} contradictions", self.failures))
        }
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_set_tallies_votes() {
        let mut set = PrepareSignalSet::new();
        assert!(matches!(set.get_signal(), NextSignal::LastSignal(s) if s.name() == SIG_PREPARE));
        set.set_response(&Outcome::new(OUT_PREPARED));
        set.set_response(&Outcome::new(OUT_RESIGNED));
        set.set_response(&Outcome::new(OUT_PREPARED));
        let out = set.get_outcome();
        assert_eq!(out.name(), OUT_PREPARED);
        assert_eq!(
            out.data().as_list().unwrap(),
            &[Value::U64(2), Value::U64(0), Value::U64(1)]
        );
        assert_eq!(set.get_signal(), NextSignal::End);
    }

    #[test]
    fn any_cancellation_cancels_the_tally() {
        let mut set = PrepareSignalSet::new();
        let _ = set.get_signal();
        set.set_response(&Outcome::new(OUT_PREPARED));
        set.set_response(&Outcome::new(OUT_CANCELLED));
        assert_eq!(set.get_outcome().name(), OUT_CANCELLED);
    }

    #[test]
    fn complete_set_direction_follows_completion_status() {
        let mut set = CompleteSignalSet::new();
        assert_eq!(set.decision(), Decision::Confirm);
        assert!(matches!(set.get_signal(), NextSignal::LastSignal(s) if s.name() == SIG_CONFIRM));

        let mut set = CompleteSignalSet::new();
        set.set_completion_status(CompletionStatus::FailOnly);
        assert_eq!(set.decision(), Decision::Cancel);
        assert!(matches!(set.get_signal(), NextSignal::LastSignal(s) if s.name() == SIG_CANCEL));
    }

    #[test]
    fn contradictions_surface_in_the_outcome() {
        let mut set = CompleteSignalSet::new();
        let _ = set.get_signal();
        set.set_response(&Outcome::done());
        set.set_response(&Outcome::from_error("stuck"));
        assert!(set.get_outcome().is_negative());
    }
}
