//! Coordinated Atomic actions (CA actions) — Xu, Romanovsky & Randell,
//! reference \[13\] of the paper.
//!
//! §3.2.3: "a coordinator for a CA action model may be required to send a
//! Signal informing participants to perform **exception resolution**."
//! In the CA-action model, participants execute concurrently inside one
//! action; when one or more raise exceptions, the *set* of concurrently
//! raised exceptions is resolved — through an application-supplied
//! exception hierarchy — to a single covering exception, which every
//! participant then handles cooperatively. Only if handling fails does the
//! action abort.
//!
//! The mapping onto the framework: a shared [`RaisedExceptions`] board, an
//! [`ExceptionHierarchy`] for resolution, and a [`CaActionSignalSet`] that
//! emits `normal` when nothing was raised, `handle_exception` (carrying the
//! resolved exception) otherwise, and `abort` when cooperative handling
//! itself fails.

use std::collections::HashMap;
use std::sync::Arc;

use activity_service::signal_set::{AfterResponse, NextSignal, SignalSet};
use activity_service::{CompletionStatus, Outcome, Signal};
use orb::Value;
use parking_lot::Mutex;

/// Conventional name of the CA-action signal set.
pub const CA_ACTION_SET: &str = "CaActionSignalSet";

/// Signal name: the action completed with no exceptions.
pub const SIG_NORMAL: &str = "normal";
/// Signal name: cooperative exception handling; payload carries the
/// resolved exception name.
pub const SIG_HANDLE_EXCEPTION: &str = "handle_exception";
/// Signal name: handling failed; undo everything.
pub const SIG_ABORT: &str = "abort";

/// An application-supplied exception hierarchy (a tree rooted at a
/// universal exception), used to resolve concurrently raised exceptions to
/// their least common ancestor.
#[derive(Debug, Clone)]
pub struct ExceptionHierarchy {
    root: String,
    parents: HashMap<String, String>,
}

impl ExceptionHierarchy {
    /// A hierarchy containing only the universal root exception.
    pub fn new(root: impl Into<String>) -> Self {
        ExceptionHierarchy { root: root.into(), parents: HashMap::new() }
    }

    /// Declare `child` as a specialisation of `parent`. Unknown parents are
    /// attached beneath the root implicitly.
    #[must_use]
    pub fn with(mut self, child: impl Into<String>, parent: impl Into<String>) -> Self {
        self.parents.insert(child.into(), parent.into());
        self
    }

    /// The universal root exception.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The chain from `exception` up to (and including) the root.
    fn ancestry(&self, exception: &str) -> Vec<String> {
        let mut chain = vec![exception.to_owned()];
        let mut cursor = exception.to_owned();
        // Bounded walk: a malformed (cyclic) hierarchy cannot loop forever.
        for _ in 0..self.parents.len() + 1 {
            match self.parents.get(&cursor) {
                Some(parent) => {
                    chain.push(parent.clone());
                    cursor = parent.clone();
                }
                None => break,
            }
        }
        if chain.last().map(String::as_str) != Some(self.root.as_str()) {
            chain.push(self.root.clone());
        }
        chain
    }

    /// Resolve a set of concurrently raised exceptions to the deepest
    /// exception that covers them all (their least common ancestor);
    /// resolves to the root when nothing more specific covers the set.
    pub fn resolve<'a>(&self, exceptions: impl IntoIterator<Item = &'a str>) -> String {
        let mut iter = exceptions.into_iter();
        let Some(first) = iter.next() else {
            return self.root.clone();
        };
        let mut common = self.ancestry(first);
        for exception in iter {
            let chain = self.ancestry(exception);
            // Keep the suffix of `common` that also appears in `chain`,
            // preserving depth order (deepest first).
            common.retain(|c| chain.contains(c));
            if common.is_empty() {
                return self.root.clone();
            }
        }
        common.first().cloned().unwrap_or_else(|| self.root.clone())
    }
}

/// The shared board on which participants raise exceptions during the
/// action's execution phase.
#[derive(Debug, Clone, Default)]
pub struct RaisedExceptions {
    raised: Arc<Mutex<Vec<String>>>,
}

impl RaisedExceptions {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// A participant raises `exception`.
    pub fn raise(&self, exception: impl Into<String>) {
        self.raised.lock().push(exception.into());
    }

    /// All raised exceptions, in raise order.
    pub fn snapshot(&self) -> Vec<String> {
        self.raised.lock().clone()
    }

    /// Whether anything was raised.
    pub fn any(&self) -> bool {
        !self.raised.lock().is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CaPhase {
    Start,
    Handling,
    Aborting,
    Finished,
}

/// The CA-action completion protocol.
///
/// * no raised exceptions → one `normal` signal; outcome `done`;
/// * raised exceptions → resolve, one `handle_exception` signal to every
///   participant; if all handle it → outcome `handled` (carrying the
///   resolved exception); if any handler fails → one `abort` signal to
///   every participant → outcome `abort`.
#[derive(Debug)]
pub struct CaActionSignalSet {
    raised: RaisedExceptions,
    hierarchy: Arc<ExceptionHierarchy>,
    phase: CaPhase,
    resolved: Option<String>,
    handler_failures: usize,
    completion: CompletionStatus,
}

impl CaActionSignalSet {
    /// A set reading the shared board and resolving through `hierarchy`.
    pub fn new(raised: RaisedExceptions, hierarchy: Arc<ExceptionHierarchy>) -> Self {
        CaActionSignalSet {
            raised,
            hierarchy,
            phase: CaPhase::Start,
            resolved: None,
            handler_failures: 0,
            completion: CompletionStatus::Success,
        }
    }
}

impl SignalSet for CaActionSignalSet {
    fn signal_set_name(&self) -> &str {
        CA_ACTION_SET
    }

    fn get_signal(&mut self) -> NextSignal {
        match self.phase {
            CaPhase::Start => {
                let raised = self.raised.snapshot();
                if raised.is_empty() && !self.completion.is_failure() {
                    self.phase = CaPhase::Finished;
                    NextSignal::LastSignal(Signal::new(SIG_NORMAL, CA_ACTION_SET))
                } else {
                    // A failure completion with no explicit exception
                    // resolves to the root exception.
                    let resolved = self
                        .hierarchy
                        .resolve(raised.iter().map(String::as_str));
                    self.resolved = Some(resolved.clone());
                    self.phase = CaPhase::Handling;
                    NextSignal::Signal(
                        Signal::new(SIG_HANDLE_EXCEPTION, CA_ACTION_SET)
                            .with_data(Value::from(resolved)),
                    )
                }
            }
            CaPhase::Handling => {
                self.phase = if self.handler_failures > 0 {
                    CaPhase::Aborting
                } else {
                    CaPhase::Finished
                };
                if self.handler_failures > 0 {
                    NextSignal::LastSignal(Signal::new(SIG_ABORT, CA_ACTION_SET))
                } else {
                    NextSignal::End
                }
            }
            CaPhase::Aborting | CaPhase::Finished => NextSignal::End,
        }
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        if self.phase == CaPhase::Handling && response.is_negative() {
            self.handler_failures += 1;
        }
        AfterResponse::Continue
    }

    fn get_outcome(&mut self) -> Outcome {
        match (&self.resolved, self.handler_failures) {
            (None, _) => Outcome::done(),
            (Some(resolved), 0) => {
                Outcome::new("handled").with_data(Value::from(resolved.as_str()))
            }
            (Some(resolved), _) => Outcome::abort().with_data(Value::from(resolved.as_str())),
        }
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activity_service::{Activity, FnAction};
    use orb::SimClock;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn hierarchy() -> Arc<ExceptionHierarchy> {
        // Exception
        // └── HardwareFault
        //     ├── SensorFault
        //     │   ├── TempSensorFault
        //     │   └── PressureSensorFault
        //     └── ActuatorFault
        Arc::new(
            ExceptionHierarchy::new("Exception")
                .with("HardwareFault", "Exception")
                .with("SensorFault", "HardwareFault")
                .with("ActuatorFault", "HardwareFault")
                .with("TempSensorFault", "SensorFault")
                .with("PressureSensorFault", "SensorFault"),
        )
    }

    #[test]
    fn resolution_finds_least_common_ancestor() {
        let h = hierarchy();
        assert_eq!(h.resolve(["TempSensorFault"]), "TempSensorFault");
        assert_eq!(
            h.resolve(["TempSensorFault", "PressureSensorFault"]),
            "SensorFault"
        );
        assert_eq!(h.resolve(["TempSensorFault", "ActuatorFault"]), "HardwareFault");
        assert_eq!(h.resolve(["TempSensorFault", "unknown-thing"]), "Exception");
        assert_eq!(h.resolve([]), "Exception");
        assert_eq!(
            h.resolve(["SensorFault", "TempSensorFault"]),
            "SensorFault",
            "an ancestor among the raised set covers its descendants"
        );
    }

    fn ca_activity(
        raised: &RaisedExceptions,
    ) -> (Activity, Arc<AtomicU32>, Arc<Mutex<Vec<String>>>) {
        let activity = Activity::new_root("ca-action", SimClock::new());
        activity
            .coordinator()
            .add_signal_set(Box::new(CaActionSignalSet::new(raised.clone(), hierarchy())))
            .unwrap();
        activity.set_completion_signal_set(CA_ACTION_SET);
        let normals = Arc::new(AtomicU32::new(0));
        let handled: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let normals2 = Arc::clone(&normals);
            let handled2 = Arc::clone(&handled);
            activity.coordinator().register_action(
                CA_ACTION_SET,
                Arc::new(FnAction::new(format!("p{i}"), move |s: &Signal| {
                    match s.name() {
                        SIG_NORMAL => {
                            normals2.fetch_add(1, Ordering::SeqCst);
                            Ok(Outcome::done())
                        }
                        SIG_HANDLE_EXCEPTION => {
                            handled2.lock().push(s.data().as_str().unwrap_or("?").to_owned());
                            Ok(Outcome::done())
                        }
                        SIG_ABORT => Ok(Outcome::done()),
                        other => panic!("unexpected {other}"),
                    }
                })) as _,
            );
        }
        (activity, normals, handled)
    }

    #[test]
    fn normal_completion_sends_normal() {
        let raised = RaisedExceptions::new();
        let (activity, normals, handled) = ca_activity(&raised);
        let outcome = activity.complete().unwrap();
        assert!(outcome.is_done());
        assert_eq!(normals.load(Ordering::SeqCst), 3);
        assert!(handled.lock().is_empty());
    }

    #[test]
    fn concurrent_exceptions_are_resolved_and_handled_by_everyone() {
        let raised = RaisedExceptions::new();
        // Two participants raise concurrently during the action.
        raised.raise("TempSensorFault");
        raised.raise("PressureSensorFault");
        let (activity, normals, handled) = ca_activity(&raised);
        let outcome = activity.complete().unwrap();
        assert_eq!(outcome.name(), "handled");
        assert_eq!(outcome.data().as_str(), Some("SensorFault"));
        assert_eq!(normals.load(Ordering::SeqCst), 0);
        assert_eq!(
            *handled.lock(),
            vec!["SensorFault"; 3],
            "every participant handles the RESOLVED exception"
        );
    }

    #[test]
    fn handler_failure_aborts_the_action() {
        let raised = RaisedExceptions::new();
        raised.raise("ActuatorFault");
        let activity = Activity::new_root("ca-action", SimClock::new());
        activity
            .coordinator()
            .add_signal_set(Box::new(CaActionSignalSet::new(raised.clone(), hierarchy())))
            .unwrap();
        activity.set_completion_signal_set(CA_ACTION_SET);
        let abort_seen = Arc::new(AtomicU32::new(0));
        for i in 0..2 {
            let abort_seen2 = Arc::clone(&abort_seen);
            let fails = i == 0;
            activity.coordinator().register_action(
                CA_ACTION_SET,
                Arc::new(FnAction::new(format!("p{i}"), move |s: &Signal| match s.name() {
                    SIG_HANDLE_EXCEPTION => {
                        if fails {
                            Ok(Outcome::abort())
                        } else {
                            Ok(Outcome::done())
                        }
                    }
                    SIG_ABORT => {
                        abort_seen2.fetch_add(1, Ordering::SeqCst);
                        Ok(Outcome::done())
                    }
                    other => panic!("unexpected {other}"),
                })) as _,
            );
        }
        let outcome = activity.complete().unwrap();
        assert!(outcome.is_negative());
        assert_eq!(outcome.data().as_str(), Some("ActuatorFault"));
        assert_eq!(abort_seen.load(Ordering::SeqCst), 2, "abort reaches everyone");
    }

    #[test]
    fn failure_completion_without_exception_resolves_to_root() {
        let raised = RaisedExceptions::new();
        let (activity, _normals, handled) = ca_activity(&raised);
        activity.set_completion_status(CompletionStatus::FailOnly).unwrap();
        let outcome = activity.complete().unwrap();
        assert_eq!(outcome.name(), "handled");
        assert_eq!(*handled.lock(), vec!["Exception"; 3]);
    }
}
