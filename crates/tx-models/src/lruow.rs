//! LRUOW — the Long Running Unit Of Work model of Bennett et al.
//! (Middleware 2000), §4.3 of the paper.
//!
//! Work runs in two phases: a **rehearsal** phase "where the work is
//! performed without recourse to serializability", recording operation
//! predicates, and a **performance** phase "where the work is confirmed
//! (committed) only if suitable locks and consistency criteria can be
//! obtained on the data". The paper maps the model onto the framework with
//! "a Rehearsal SignalSet and a Performance SignalSet. Each LRUOW resource
//! could register a suitable Action with each SignalSet which would be
//! driven when the activity completes" — which is exactly what
//! [`enlist_unit_of_work`] wires up.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use activity_service::{
    ActionError, Activity, ActivityError, BroadcastSignalSet, Outcome, Signal,
};
use orb::Value;
use parking_lot::{Mutex, RwLock};

use crate::common::{SIG_END_REHEARSAL, SIG_PERFORM};

/// Conventional name of the rehearsal signal set.
pub const REHEARSAL_SET: &str = "RehearsalSignalSet";
/// Conventional name of the performance signal set.
pub const PERFORMANCE_SET: &str = "PerformanceSignalSet";

/// A versioned store supporting optimistic (predicate-checked) commitment.
#[derive(Debug, Default)]
pub struct LruowStore {
    name: String,
    // key → (value, version). Version bumps on every committed write.
    data: RwLock<HashMap<String, (Value, u64)>>,
}

/// Why a performance phase refused a unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateViolation {
    /// The key whose version moved under the rehearsal.
    pub key: String,
    /// Version the rehearsal observed.
    pub rehearsed: u64,
    /// Version found at performance time.
    pub current: u64,
}

impl std::fmt::Display for PredicateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "predicate violated on {:?}: rehearsed v{}, now v{}",
            self.key, self.rehearsed, self.current
        )
    }
}

impl std::error::Error for PredicateViolation {}

impl LruowStore {
    /// An empty store.
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        Arc::new(LruowStore { name: name.into(), data: RwLock::new(HashMap::new()) })
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Read outside any unit of work.
    pub fn read(&self, key: &str) -> Option<Value> {
        self.data.read().get(key).map(|(v, _)| v.clone())
    }

    /// Current version of `key` (0 when absent).
    pub fn version(&self, key: &str) -> u64 {
        self.data.read().get(key).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Write outside any unit of work (bumps the version, so it conflicts
    /// with concurrent rehearsals that read the key).
    pub fn write(&self, key: &str, value: Value) {
        let mut data = self.data.write();
        let version = data.get(key).map(|(_, v)| *v).unwrap_or(0);
        data.insert(key.to_owned(), (value, version + 1));
    }

    /// Begin a unit of work against this store.
    pub fn begin_unit_of_work(self: &Arc<Self>) -> UnitOfWork {
        UnitOfWork {
            store: Arc::clone(self),
            predicates: Mutex::new(HashMap::new()),
            writes: Mutex::new(BTreeMap::new()),
            performed: Mutex::new(false),
        }
    }

    /// Validate `predicates` and, when they all hold, apply `writes`
    /// atomically.
    fn perform(
        &self,
        predicates: &HashMap<String, u64>,
        writes: &BTreeMap<String, Value>,
    ) -> Result<(), PredicateViolation> {
        let mut data = self.data.write();
        for (key, rehearsed) in predicates {
            let current = data.get(key).map(|(_, v)| *v).unwrap_or(0);
            if current != *rehearsed {
                return Err(PredicateViolation {
                    key: key.clone(),
                    rehearsed: *rehearsed,
                    current,
                });
            }
        }
        for (key, value) in writes {
            let version = data.get(key).map(|(_, v)| *v).unwrap_or(0);
            data.insert(key.clone(), (value.clone(), version + 1));
        }
        Ok(())
    }
}

/// One long-running unit of work: rehearsed reads record version
/// predicates; writes buffer locally; [`UnitOfWork::perform`] commits them
/// only if every predicate still holds.
pub struct UnitOfWork {
    store: Arc<LruowStore>,
    predicates: Mutex<HashMap<String, u64>>,
    writes: Mutex<BTreeMap<String, Value>>,
    performed: Mutex<bool>,
}

impl std::fmt::Debug for UnitOfWork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnitOfWork")
            .field("store", &self.store.name)
            .field("predicates", &self.predicates.lock().len())
            .field("writes", &self.writes.lock().len())
            .finish()
    }
}

impl UnitOfWork {
    /// Rehearse a read: returns the buffered write if any, else the store
    /// value, recording the version predicate.
    pub fn read(&self, key: &str) -> Option<Value> {
        if let Some(buffered) = self.writes.lock().get(key) {
            return Some(buffered.clone());
        }
        let value = self.store.read(key);
        self.predicates
            .lock()
            .entry(key.to_owned())
            .or_insert_with(|| self.store.version(key));
        value
    }

    /// Rehearse a write: buffered locally, invisible until performance.
    pub fn write(&self, key: &str, value: Value) {
        self.writes.lock().insert(key.to_owned(), value);
    }

    /// Number of recorded predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.lock().len()
    }

    /// Whether the performance phase has run successfully.
    pub fn performed(&self) -> bool {
        *self.performed.lock()
    }

    /// The performance phase: validate every predicate and commit the
    /// buffered writes. Idempotent: a second call after success is a no-op.
    ///
    /// # Errors
    ///
    /// [`PredicateViolation`] when data moved under the rehearsal; the
    /// caller typically re-rehearses and retries.
    pub fn perform(&self) -> Result<(), PredicateViolation> {
        let mut performed = self.performed.lock();
        if *performed {
            return Ok(());
        }
        self.store.perform(&self.predicates.lock(), &self.writes.lock())?;
        *performed = true;
        Ok(())
    }
}

/// Adapts a [`UnitOfWork`] into Actions for the rehearsal/performance sets.
pub struct UnitOfWorkAction {
    name: String,
    uow: Arc<UnitOfWork>,
}

impl UnitOfWorkAction {
    /// Wrap `uow` under a diagnostic name.
    pub fn new(name: impl Into<String>, uow: Arc<UnitOfWork>) -> Arc<Self> {
        Arc::new(UnitOfWorkAction { name: name.into(), uow })
    }
}

impl activity_service::Action for UnitOfWorkAction {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        match signal.name() {
            SIG_END_REHEARSAL => {
                // Rehearsal freeze: report how many predicates were taken.
                Ok(Outcome::done().with_data(Value::U64(self.uow.predicate_count() as u64)))
            }
            SIG_PERFORM => match self.uow.perform() {
                Ok(()) => Ok(Outcome::done()),
                Err(violation) => Ok(Outcome::abort().with_data(Value::from(violation.to_string()))),
            },
            other => Err(ActionError::new(format!("unexpected signal {other:?}"))),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Associate the Rehearsal and Performance SignalSets with `activity` (once)
/// and register `uow`'s action with both — the §4.3 wiring.
///
/// # Errors
///
/// Propagates coordinator failures.
pub fn enlist_unit_of_work(
    activity: &Activity,
    name: &str,
    uow: Arc<UnitOfWork>,
) -> Result<(), ActivityError> {
    let coordinator = activity.coordinator();
    if !coordinator.signal_set_names().contains(&REHEARSAL_SET.to_string()) {
        coordinator.add_signal_set(Box::new(BroadcastSignalSet::new(
            REHEARSAL_SET,
            SIG_END_REHEARSAL,
            Value::Null,
        )))?;
        coordinator.add_signal_set(Box::new(BroadcastSignalSet::new(
            PERFORMANCE_SET,
            SIG_PERFORM,
            Value::Null,
        )))?;
    }
    let action = UnitOfWorkAction::new(name, uow);
    coordinator.register_action(REHEARSAL_SET, Arc::clone(&action) as _);
    coordinator.register_action(PERFORMANCE_SET, action as _);
    Ok(())
}

/// Drive the two LRUOW phases on `activity`: rehearsal freeze, then
/// performance. Returns the performance outcome (negative when any unit of
/// work hit a predicate violation).
///
/// # Errors
///
/// Propagates coordinator failures.
pub fn run_lruow_completion(activity: &Activity) -> Result<Outcome, ActivityError> {
    activity.signal(REHEARSAL_SET)?;
    activity.signal(PERFORMANCE_SET)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::SimClock;

    fn store_with(pairs: &[(&str, i64)]) -> Arc<LruowStore> {
        let s = LruowStore::new("catalog");
        for (k, v) in pairs {
            s.write(k, Value::from(*v));
        }
        s
    }

    #[test]
    fn rehearsal_is_invisible_until_performed() {
        let store = store_with(&[("price", 10)]);
        let uow = Arc::new(store.begin_unit_of_work());
        assert_eq!(uow.read("price"), Some(Value::from(10i64)));
        uow.write("price", Value::from(12i64));
        assert_eq!(uow.read("price"), Some(Value::from(12i64)), "own writes visible");
        assert_eq!(store.read("price"), Some(Value::from(10i64)), "store untouched");
        uow.perform().unwrap();
        assert_eq!(store.read("price"), Some(Value::from(12i64)));
        assert!(uow.performed());
    }

    #[test]
    fn conflicting_update_violates_predicate() {
        let store = store_with(&[("price", 10)]);
        let uow = Arc::new(store.begin_unit_of_work());
        let _ = uow.read("price");
        // Someone else commits in between.
        store.write("price", Value::from(11i64));
        let err = uow.perform().unwrap_err();
        assert_eq!(err.key, "price");
        assert_eq!(err.rehearsed, 1);
        assert_eq!(err.current, 2);
        assert!(!uow.performed());
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn blind_writes_never_conflict() {
        let store = store_with(&[("price", 10)]);
        let uow = Arc::new(store.begin_unit_of_work());
        uow.write("price", Value::from(99i64));
        // Concurrent committed write — but the uow never READ the key, so
        // no predicate was recorded (last-writer-wins by design).
        store.write("price", Value::from(11i64));
        uow.perform().unwrap();
        assert_eq!(store.read("price"), Some(Value::from(99i64)));
    }

    #[test]
    fn perform_is_idempotent() {
        let store = store_with(&[]);
        let uow = Arc::new(store.begin_unit_of_work());
        uow.write("k", Value::from(1i64));
        uow.perform().unwrap();
        store.write("k", Value::from(5i64));
        // A redelivered perform signal must not overwrite newer data.
        uow.perform().unwrap();
        assert_eq!(store.read("k"), Some(Value::from(5i64)));
    }

    #[test]
    fn framework_wiring_drives_both_phases() {
        let store = store_with(&[("stock", 5)]);
        let activity = Activity::new_root("catalog-update", SimClock::new());
        let uow = Arc::new(store.begin_unit_of_work());
        let current = uow.read("stock").unwrap().as_i64().unwrap();
        uow.write("stock", Value::from(current - 1));
        enlist_unit_of_work(&activity, "uow-1", Arc::clone(&uow)).unwrap();

        let outcome = run_lruow_completion(&activity).unwrap();
        assert!(outcome.is_done());
        assert_eq!(store.read("stock"), Some(Value::from(4i64)));
    }

    #[test]
    fn framework_reports_conflicts_as_negative_outcomes() {
        let store = store_with(&[("stock", 5)]);
        let activity = Activity::new_root("catalog-update", SimClock::new());
        let uow = Arc::new(store.begin_unit_of_work());
        let _ = uow.read("stock");
        uow.write("stock", Value::from(4i64));
        enlist_unit_of_work(&activity, "uow-1", Arc::clone(&uow)).unwrap();
        store.write("stock", Value::from(7i64)); // interloper
        let outcome = run_lruow_completion(&activity).unwrap();
        assert!(outcome.is_negative());
        assert_eq!(store.read("stock"), Some(Value::from(7i64)), "uow not applied");
    }

    #[test]
    fn retry_after_conflict_succeeds() {
        let store = store_with(&[("seats", 100)]);
        // First attempt conflicts…
        let uow1 = Arc::new(store.begin_unit_of_work());
        let seats = uow1.read("seats").unwrap().as_i64().unwrap();
        uow1.write("seats", Value::from(seats - 2));
        store.write("seats", Value::from(90i64));
        assert!(uow1.perform().is_err());
        // …re-rehearse against fresh data and retry.
        let uow2 = Arc::new(store.begin_unit_of_work());
        let seats = uow2.read("seats").unwrap().as_i64().unwrap();
        uow2.write("seats", Value::from(seats - 2));
        uow2.perform().unwrap();
        assert_eq!(store.read("seats"), Some(Value::from(88i64)));
    }

    #[test]
    fn multiple_units_of_work_on_one_activity() {
        let store = store_with(&[("a", 1), ("b", 2)]);
        let activity = Activity::new_root("multi", SimClock::new());
        let uow_a = Arc::new(store.begin_unit_of_work());
        let _ = uow_a.read("a");
        uow_a.write("a", Value::from(10i64));
        let uow_b = Arc::new(store.begin_unit_of_work());
        let _ = uow_b.read("b");
        uow_b.write("b", Value::from(20i64));
        enlist_unit_of_work(&activity, "uow-a", Arc::clone(&uow_a)).unwrap();
        enlist_unit_of_work(&activity, "uow-b", Arc::clone(&uow_b)).unwrap();
        let outcome = run_lruow_completion(&activity).unwrap();
        assert!(outcome.is_done());
        assert_eq!(store.read("a"), Some(Value::from(10i64)));
        assert_eq!(store.read("b"), Some(Value::from(20i64)));
    }
}
