//! Open nesting with compensation — the paper's §4.2 and fig. 9.
//!
//! Within a top-level transaction A, an independent top-level transaction B
//! commits early (releasing its resources); if A later rolls back, a
//! compensating transaction !B must undo B. The paper builds this from:
//!
//! * a **CompletionSignalSet** per enclosing activity with `success`,
//!   `failure` and `propagate` signals, and
//! * a **CompensationAction** that, on `propagate`, re-registers itself with
//!   the enclosing activity and, on a later `failure`, starts !B.

use std::collections::HashMap;
use std::sync::Arc;

use activity_service::signal_set::{AfterResponse, NextSignal, SignalSet};
use activity_service::{
    ActionError, Activity, ActivityId, CompletionStatus, Outcome, Signal,
};
use orb::Value;
use parking_lot::Mutex;

use crate::common::{SIG_FAILURE, SIG_PROPAGATE, SIG_SUCCESS};

/// Conventional name of the completion signal set.
pub const COMPLETION_SET: &str = "CompletionSignalSet";

/// Resolves propagated activity identities back to live activities — the
/// in-process stand-in for a CORBA object reference riding in the signal.
pub trait ActivityRegistry: Send + Sync {
    /// Find the activity registered under `id`.
    fn resolve(&self, id: ActivityId) -> Option<Activity>;
}

/// A simple map-backed [`ActivityRegistry`].
#[derive(Default)]
pub struct InMemoryActivityRegistry {
    activities: Mutex<HashMap<ActivityId, Activity>>,
}

impl std::fmt::Debug for InMemoryActivityRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InMemoryActivityRegistry")
            .field("len", &self.activities.lock().len())
            .finish()
    }
}

impl InMemoryActivityRegistry {
    /// An empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Make `activity` resolvable by its id.
    pub fn register(&self, activity: &Activity) {
        self.activities.lock().insert(activity.id(), activity.clone());
    }
}

impl ActivityRegistry for InMemoryActivityRegistry {
    fn resolve(&self, id: ActivityId) -> Option<Activity> {
        self.activities.lock().get(&id).cloned()
    }
}

/// The §4.2 CompletionSignalSet: emits exactly one of `success`, `failure`
/// or `propagate` depending on the activity's completion status and whether
/// the activity's effects stay contingent on an enclosing activity.
#[derive(Debug)]
pub struct CompletionSignalSet {
    propagate_to: Option<ActivityId>,
    completion: CompletionStatus,
    sent: bool,
    negatives: usize,
}

impl CompletionSignalSet {
    /// A set for an activity with no outstanding dependencies: completion
    /// sends `success` or `failure`.
    pub fn new() -> Self {
        CompletionSignalSet {
            propagate_to: None,
            completion: CompletionStatus::Success,
            sent: false,
            negatives: 0,
        }
    }

    /// A set for an activity whose successful completion leaves its effects
    /// contingent on `enclosing`: completion sends `propagate` (carrying the
    /// enclosing activity's identity) instead of `success`.
    pub fn propagating_to(enclosing: ActivityId) -> Self {
        CompletionSignalSet { propagate_to: Some(enclosing), ..Self::new() }
    }
}

impl Default for CompletionSignalSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SignalSet for CompletionSignalSet {
    fn signal_set_name(&self) -> &str {
        COMPLETION_SET
    }

    fn get_signal(&mut self) -> NextSignal {
        if self.sent {
            return NextSignal::End;
        }
        self.sent = true;
        let signal = if self.completion.is_failure() {
            Signal::new(SIG_FAILURE, COMPLETION_SET)
        } else {
            match self.propagate_to {
                Some(target) => Signal::new(SIG_PROPAGATE, COMPLETION_SET)
                    .with_data(Value::U64(target.raw())),
                None => Signal::new(SIG_SUCCESS, COMPLETION_SET),
            }
        };
        NextSignal::LastSignal(signal)
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        if response.is_negative() {
            self.negatives += 1;
        }
        AfterResponse::Continue
    }

    fn get_outcome(&mut self) -> Outcome {
        if self.negatives == 0 {
            Outcome::done()
        } else {
            Outcome::abort().with_data(Value::U64(self.negatives as u64))
        }
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

#[derive(Default)]
struct CompensationState {
    propagated: bool,
    compensated: bool,
    retired: bool,
    /// Weak self-reference so the action can re-register *itself* with
    /// another activity on `propagate` (coordinators hold `Arc<dyn Action>`;
    /// `&self` alone cannot recover an owning handle).
    self_ref: std::sync::Weak<CompensationAction>,
}

/// The §4.2 CompensationAction. Its state machine, verbatim from the paper:
///
/// * `success` → "it can remove itself from the system";
/// * `propagate` → register with the encoded enclosing activity and
///   "remember that it has been propagated";
/// * `failure`, never propagated → remove itself (the protected transaction
///   rolled back on its own; nothing to undo);
/// * `failure`, propagated → "start !B running, before removing itself".
pub struct CompensationAction {
    name: String,
    registry: Arc<dyn ActivityRegistry>,
    compensate: Box<dyn Fn() -> Result<(), String> + Send + Sync>,
    state: Mutex<CompensationState>,
}

impl CompensationAction {
    /// Build a compensation action; `compensate` is "!B" — it runs at most
    /// once, only on a post-propagation failure.
    pub fn new<F>(
        name: impl Into<String>,
        registry: Arc<dyn ActivityRegistry>,
        compensate: F,
    ) -> Arc<Self>
    where
        F: Fn() -> Result<(), String> + Send + Sync + 'static,
    {
        Arc::new_cyclic(|weak| CompensationAction {
            name: name.into(),
            registry,
            compensate: Box::new(compensate),
            state: Mutex::new(CompensationState {
                self_ref: weak.clone(),
                ..CompensationState::default()
            }),
        })
    }

    /// Whether the compensation has run.
    pub fn compensated(&self) -> bool {
        self.state.lock().compensated
    }

    /// Whether the action has removed itself from the system.
    pub fn retired(&self) -> bool {
        self.state.lock().retired
    }
}

impl activity_service::Action for CompensationAction {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        match signal.name() {
            SIG_SUCCESS => {
                self.state.lock().retired = true;
                Ok(Outcome::done())
            }
            SIG_PROPAGATE => {
                let target = signal
                    .data()
                    .as_u64()
                    .ok_or_else(|| ActionError::new("propagate signal missing target id"))?;
                // Resolve before mutating state: a failed propagation must
                // stay retryable.
                let enclosing = self
                    .registry
                    .resolve(ActivityId::new(target))
                    .ok_or_else(|| ActionError::new(format!("unknown activity act-{target}")))?;
                let myself = {
                    let mut state = self.state.lock();
                    if state.propagated {
                        // Redelivered signal (at-least-once): already enlisted.
                        return Ok(Outcome::done());
                    }
                    state.propagated = true;
                    state
                        .self_ref
                        .upgrade()
                        .ok_or_else(|| ActionError::new("compensation action already dropped"))?
                };
                enclosing
                    .coordinator()
                    .register_action(COMPLETION_SET, myself as Arc<dyn activity_service::Action>);
                Ok(Outcome::done())
            }
            SIG_FAILURE => {
                let mut state = self.state.lock();
                if state.retired {
                    return Ok(Outcome::done());
                }
                if state.propagated && !state.compensated {
                    state.compensated = true;
                    drop(state);
                    (self.compensate)().map_err(ActionError::new)?;
                    self.state.lock().retired = true;
                } else {
                    state.retired = true;
                }
                Ok(Outcome::done())
            }
            other => Err(ActionError::new(format!("unexpected signal {other:?}"))),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activity_service::Action;
    use orb::SimClock;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Wire the §4.2 structure: an enclosing activity A, a nested enclosing
    /// activity for B, and a CompensationAction protecting B's work.
    /// Returns (A, B's activity, the action, compensation counter).
    fn fig9_setup() -> (Activity, Activity, Arc<CompensationAction>, Arc<AtomicU32>) {
        let registry = InMemoryActivityRegistry::new();
        let a = Activity::new_root("A", SimClock::new());
        a.coordinator().add_signal_set(Box::new(CompletionSignalSet::new())).unwrap();
        a.set_completion_signal_set(COMPLETION_SET);
        registry.register(&a);

        let b = a.begin_child("B").unwrap();
        b.coordinator()
            .add_signal_set(Box::new(CompletionSignalSet::propagating_to(a.id())))
            .unwrap();
        b.set_completion_signal_set(COMPLETION_SET);
        registry.register(&b);

        let undone = Arc::new(AtomicU32::new(0));
        let undone2 = Arc::clone(&undone);
        let action =
            CompensationAction::new("compensate-B", registry.clone() as Arc<dyn ActivityRegistry>, move || {
                undone2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
        b.coordinator()
            .register_action(COMPLETION_SET, Arc::clone(&action) as Arc<dyn Action>);
        (a, b, action, undone)
    }

    #[test]
    fn b_commits_a_commits_no_compensation() {
        let (a, b, action, undone) = fig9_setup();
        b.complete().unwrap(); // propagate → action enlists with A
        assert!(!action.retired());
        a.complete().unwrap(); // success → action retires quietly
        assert!(action.retired());
        assert!(!action.compensated());
        assert_eq!(undone.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn b_commits_a_aborts_compensation_runs() {
        let (a, b, action, undone) = fig9_setup();
        b.complete().unwrap();
        a.set_completion_status(CompletionStatus::FailOnly).unwrap();
        a.complete().unwrap(); // failure → start !B
        assert!(action.compensated());
        assert!(action.retired());
        assert_eq!(undone.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn b_aborts_nothing_to_compensate() {
        let (a, b, action, undone) = fig9_setup();
        b.complete_with_status(CompletionStatus::Fail).unwrap(); // failure, never propagated
        assert!(action.retired());
        assert!(!action.compensated());
        // A may commit or abort; either way no compensation.
        a.set_completion_status(CompletionStatus::Fail).unwrap();
        a.complete().unwrap();
        assert_eq!(undone.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn redelivered_signals_are_idempotent() {
        let (a, b, action, undone) = fig9_setup();
        b.complete().unwrap();
        // Simulate at-least-once redelivery of the propagate signal.
        let redelivery = Signal::new(SIG_PROPAGATE, COMPLETION_SET).with_data(Value::U64(a.id().raw()));
        action.process_signal(&redelivery).unwrap();
        a.set_completion_status(CompletionStatus::FailOnly).unwrap();
        a.complete().unwrap();
        assert_eq!(
            undone.load(Ordering::SeqCst),
            1,
            "double propagation must not double-register (and so not double-compensate)"
        );
        // Redelivered failure after retirement is also a no-op.
        action.process_signal(&Signal::new(SIG_FAILURE, COMPLETION_SET)).unwrap();
        assert_eq!(undone.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn propagate_to_unknown_activity_is_an_error() {
        let registry = InMemoryActivityRegistry::new();
        let action = CompensationAction::new(
            "orphan",
            registry as Arc<dyn ActivityRegistry>,
            || Ok(()),
        );
        let signal = Signal::new(SIG_PROPAGATE, COMPLETION_SET).with_data(Value::U64(999));
        assert!(action.process_signal(&signal).is_err());
        let missing_target = Signal::new(SIG_PROPAGATE, COMPLETION_SET);
        // The first (failed) call consumed the propagated flag… it must NOT
        // have: a failed propagation is retryable.
        assert!(action.process_signal(&missing_target).is_err());
    }

    #[test]
    fn failed_compensation_reports_an_error_outcome() {
        let registry = InMemoryActivityRegistry::new();
        let a = Activity::new_root("A", SimClock::new());
        a.coordinator().add_signal_set(Box::new(CompletionSignalSet::new())).unwrap();
        a.set_completion_signal_set(COMPLETION_SET);
        registry.register(&a);
        let action = CompensationAction::new(
            "broken",
            registry.clone() as Arc<dyn ActivityRegistry>,
            || Err("cannot undo".into()),
        );
        // Propagate directly, then fail A.
        let signal = Signal::new(SIG_PROPAGATE, COMPLETION_SET).with_data(Value::U64(a.id().raw()));
        action.process_signal(&signal).unwrap();
        a.set_completion_status(CompletionStatus::FailOnly).unwrap();
        let outcome = a.complete().unwrap();
        assert!(outcome.is_negative(), "the set collates the compensation failure");
    }

    #[test]
    fn completion_set_emits_exactly_one_signal() {
        let mut set = CompletionSignalSet::new();
        assert_eq!(set.signal_set_name(), COMPLETION_SET);
        let NextSignal::LastSignal(sig) = set.get_signal() else { panic!("expected signal") };
        assert_eq!(sig.name(), SIG_SUCCESS);
        assert_eq!(set.get_signal(), NextSignal::End);

        let mut set = CompletionSignalSet::propagating_to(ActivityId::new(7));
        let NextSignal::LastSignal(sig) = set.get_signal() else { panic!("expected signal") };
        assert_eq!(sig.name(), SIG_PROPAGATE);
        assert_eq!(sig.data().as_u64(), Some(7));

        let mut set = CompletionSignalSet::propagating_to(ActivityId::new(7));
        set.set_completion_status(CompletionStatus::Fail);
        let NextSignal::LastSignal(sig) = set.get_signal() else { panic!("expected signal") };
        assert_eq!(sig.name(), SIG_FAILURE, "failure beats propagation");
    }
}
