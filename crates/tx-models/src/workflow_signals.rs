//! Workflow coordination signals — §4.4 and fig. 10 of the paper.
//!
//! "The signal set required to coordinate a business activity contains four
//! signals, `start`, `start_ack`, `outcome` and `outcome_ack`." A parent
//! activity starts children by sending `start` through a **TaskStart**
//! SignalSet to the children's registered Actions (which acknowledge with
//! `start_ack` outcomes); a completing child notifies the parent's
//! registered Action with `outcome` through its **Completed** SignalSet
//! (acknowledged with `outcome_ack`).

use std::sync::Arc;

use activity_service::signal_set::{AfterResponse, NextSignal, SignalSet};
use activity_service::{ActionError, CompletionStatus, Outcome, Signal};
use orb::{Value, ValueMap};
use parking_lot::Mutex;

use crate::common::{SIG_OUTCOME, SIG_OUTCOME_ACK, SIG_START, SIG_START_ACK};

/// Name of the parent-side set that launches children.
pub const TASK_START_SET: &str = "TaskStartSignalSet";
/// Name of the child-side set that reports completion to the parent.
pub const COMPLETED_SET: &str = "CompletedSignalSet";

/// Parent side of fig. 10: broadcasts one `start` signal (with launch
/// parameters) and counts `start_ack` responses.
#[derive(Debug)]
pub struct TaskStartSignalSet {
    params: Value,
    sent: bool,
    acks: usize,
    failures: usize,
    completion: CompletionStatus,
}

impl TaskStartSignalSet {
    /// A set whose `start` signal carries `params` ("the
    /// application_specific_data part contains the information required to
    /// parameterise the starting of the activity").
    pub fn new(params: Value) -> Self {
        TaskStartSignalSet {
            params,
            sent: false,
            acks: 0,
            failures: 0,
            completion: CompletionStatus::Success,
        }
    }
}

impl SignalSet for TaskStartSignalSet {
    fn signal_set_name(&self) -> &str {
        TASK_START_SET
    }

    fn get_signal(&mut self) -> NextSignal {
        if self.sent {
            return NextSignal::End;
        }
        self.sent = true;
        NextSignal::LastSignal(
            Signal::new(SIG_START, TASK_START_SET).with_data(self.params.clone()),
        )
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        if response.name() == SIG_START_ACK {
            self.acks += 1;
        } else {
            self.failures += 1;
        }
        AfterResponse::Continue
    }

    fn get_outcome(&mut self) -> Outcome {
        if self.failures == 0 {
            Outcome::done().with_data(Value::U64(self.acks as u64))
        } else {
            Outcome::abort().with_data(Value::U64(self.failures as u64))
        }
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

/// Child side of fig. 10: on completion, broadcasts one `outcome` signal
/// whose payload reports the task's success and result, and counts
/// `outcome_ack` responses.
#[derive(Debug)]
pub struct CompletedSignalSet {
    result: Value,
    sent: bool,
    acks: usize,
    completion: CompletionStatus,
}

impl CompletedSignalSet {
    /// A set whose `outcome` signal will carry `result` alongside the
    /// child's completion status.
    pub fn new(result: Value) -> Self {
        CompletedSignalSet {
            result,
            sent: false,
            acks: 0,
            completion: CompletionStatus::Success,
        }
    }
}

impl SignalSet for CompletedSignalSet {
    fn signal_set_name(&self) -> &str {
        COMPLETED_SET
    }

    fn get_signal(&mut self) -> NextSignal {
        if self.sent {
            return NextSignal::End;
        }
        self.sent = true;
        let mut payload = ValueMap::new();
        payload.insert("success".into(), Value::Bool(!self.completion.is_failure()));
        payload.insert("result".into(), self.result.clone());
        NextSignal::LastSignal(
            Signal::new(SIG_OUTCOME, COMPLETED_SET).with_data(Value::Map(payload)),
        )
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        if response.name() == SIG_OUTCOME_ACK {
            self.acks += 1;
        }
        AfterResponse::Continue
    }

    fn get_outcome(&mut self) -> Outcome {
        Outcome::done().with_data(Value::U64(self.acks as u64))
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

/// Body signature of a [`TaskAction`]: launch parameters in, task result
/// (or failure reason) out.
pub type TaskBody = Box<dyn Fn(&Value) -> Result<Value, String> + Send + Sync>;

/// Child-side Action launched by a `start` signal: runs the task body and
/// acknowledges with `start_ack`.
pub struct TaskAction {
    name: String,
    body: TaskBody,
    launched: Mutex<Option<Result<Value, String>>>,
}

impl TaskAction {
    /// A task that runs `body` with the `start` signal's parameters.
    pub fn new<F>(name: impl Into<String>, body: F) -> Arc<Self>
    where
        F: Fn(&Value) -> Result<Value, String> + Send + Sync + 'static,
    {
        Arc::new(TaskAction { name: name.into(), body: Box::new(body), launched: Mutex::new(None) })
    }

    /// The task's recorded result, once started.
    pub fn result(&self) -> Option<Result<Value, String>> {
        self.launched.lock().clone()
    }
}

impl activity_service::Action for TaskAction {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        if signal.name() != SIG_START {
            return Err(ActionError::new(format!("unexpected signal {:?}", signal.name())));
        }
        let mut launched = self.launched.lock();
        if launched.is_none() {
            // Idempotent under redelivery: the body runs once.
            *launched = Some((self.body)(signal.data()));
        }
        match launched.as_ref().expect("just set") {
            Ok(_) => Ok(Outcome::new(SIG_START_ACK)),
            Err(e) => Ok(Outcome::from_error(e.clone())),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Parent-side Action that receives a child's `outcome` signal, records it,
/// and acknowledges with `outcome_ack`.
pub struct OutcomeCollector {
    name: String,
    received: Mutex<Vec<(bool, Value)>>,
}

impl OutcomeCollector {
    /// A collector named `name` (typically after the child it watches).
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        Arc::new(OutcomeCollector { name: name.into(), received: Mutex::new(Vec::new()) })
    }

    /// Outcomes received so far as `(success, result)` pairs.
    pub fn received(&self) -> Vec<(bool, Value)> {
        self.received.lock().clone()
    }
}

impl activity_service::Action for OutcomeCollector {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        if signal.name() != SIG_OUTCOME {
            return Err(ActionError::new(format!("unexpected signal {:?}", signal.name())));
        }
        let payload = signal
            .data()
            .as_map()
            .ok_or_else(|| ActionError::new("outcome signal payload must be a map"))?;
        let success = payload.get("success").and_then(Value::as_bool).unwrap_or(false);
        let result = payload.get("result").cloned().unwrap_or(Value::Null);
        self.received.lock().push((success, result));
        Ok(Outcome::new(SIG_OUTCOME_ACK))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activity_service::{Activity, TraceEvent, TraceLog};
    use orb::SimClock;

    #[test]
    fn fig10_start_and_outcome_exchange() {
        // Activity `a` coordinates parallel b, c, then d (fig. 10). This
        // test reproduces the message exchange for the b∥c stage plus d.
        let clock = SimClock::new();
        let a = Activity::new_root("a", clock.clone());
        let a_trace = TraceLog::new();
        a.coordinator().set_trace(a_trace.clone());

        // Stage 1: one TaskStart set that b and c both register with
        // ("t2 and t3 would register with the same SignalSet since they
        // need to be started together").
        a.coordinator()
            .add_signal_set(Box::new(TaskStartSignalSet::new(Value::from("order-17"))))
            .unwrap();
        let b_task = TaskAction::new("b", |params: &Value| {
            assert_eq!(params.as_str(), Some("order-17"));
            Ok(Value::from("b-result"))
        });
        let c_task = TaskAction::new("c", |_p: &Value| Ok(Value::from("c-result")));
        a.coordinator().register_action(TASK_START_SET, b_task.clone() as _);
        a.coordinator().register_action(TASK_START_SET, c_task.clone() as _);

        let start_outcome = a.signal(TASK_START_SET).unwrap();
        assert!(start_outcome.is_done());
        assert_eq!(start_outcome.data().as_u64(), Some(2), "two start_acks");
        assert_eq!(b_task.result().unwrap().unwrap().as_str(), Some("b-result"));

        // Children report back: each child activity drives its Completed
        // set at the parent's registered collector.
        let b = a.begin_child("b").unwrap();
        b.coordinator()
            .add_signal_set(Box::new(CompletedSignalSet::new(Value::from("b-result"))))
            .unwrap();
        b.set_completion_signal_set(COMPLETED_SET);
        let collector_b = OutcomeCollector::new("a-watches-b");
        b.coordinator().register_action(COMPLETED_SET, collector_b.clone() as _);
        b.complete().unwrap();
        assert_eq!(collector_b.received(), vec![(true, Value::from("b-result"))]);

        // The trace of `a`'s start stage shows the fig. 10 exchange.
        let events = a_trace.events();
        assert_eq!(
            events,
            vec![
                TraceEvent::GetSignal { set: TASK_START_SET.into() },
                TraceEvent::Transmit { signal: SIG_START.into(), action: "b".into() },
                TraceEvent::SetResponse { set: TASK_START_SET.into(), outcome: SIG_START_ACK.into() },
                TraceEvent::Transmit { signal: SIG_START.into(), action: "c".into() },
                TraceEvent::SetResponse { set: TASK_START_SET.into(), outcome: SIG_START_ACK.into() },
                TraceEvent::GetOutcome { set: TASK_START_SET.into(), outcome: "done".into() },
            ]
        );
    }

    #[test]
    fn failed_task_reports_negative_start_outcome() {
        let a = Activity::new_root("a", SimClock::new());
        a.coordinator()
            .add_signal_set(Box::new(TaskStartSignalSet::new(Value::Null)))
            .unwrap();
        let bad = TaskAction::new("bad", |_p: &Value| Err("cannot start".into()));
        a.coordinator().register_action(TASK_START_SET, bad as _);
        let outcome = a.signal(TASK_START_SET).unwrap();
        assert!(outcome.is_negative());
    }

    #[test]
    fn failed_child_reports_failure_outcome_to_parent() {
        let a = Activity::new_root("a", SimClock::new());
        let child = a.begin_child("t4").unwrap();
        child
            .coordinator()
            .add_signal_set(Box::new(CompletedSignalSet::new(Value::Null)))
            .unwrap();
        child.set_completion_signal_set(COMPLETED_SET);
        let collector = OutcomeCollector::new("a-watches-t4");
        child.coordinator().register_action(COMPLETED_SET, collector.clone() as _);
        child.complete_with_status(CompletionStatus::Fail).unwrap();
        assert_eq!(collector.received(), vec![(false, Value::Null)]);
    }

    #[test]
    fn task_action_is_idempotent() {
        use activity_service::Action;
        let runs = Arc::new(Mutex::new(0u32));
        let runs2 = Arc::clone(&runs);
        let task = TaskAction::new("t", move |_p: &Value| {
            *runs2.lock() += 1;
            Ok(Value::Null)
        });
        let start = Signal::new(SIG_START, TASK_START_SET);
        task.process_signal(&start).unwrap();
        task.process_signal(&start).unwrap();
        assert_eq!(*runs.lock(), 1);
        assert!(task.process_signal(&Signal::new("bogus", TASK_START_SET)).is_err());
    }

    #[test]
    fn outcome_collector_rejects_malformed_payloads() {
        use activity_service::Action;
        let collector = OutcomeCollector::new("c");
        let bad = Signal::new(SIG_OUTCOME, COMPLETED_SET).with_data(Value::from(1i64));
        assert!(collector.process_signal(&bad).is_err());
        assert!(collector.process_signal(&Signal::new("bogus", COMPLETED_SET)).is_err());
    }
}
