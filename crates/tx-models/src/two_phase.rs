//! Two-phase commit as Signals, SignalSets and Actions — the paper's §4.1
//! and fig. 8.
//!
//! "The coordinating activity initiates commit by invoking `get_signal` of
//! its 2PCSignalSet. The Set returns a 'prepare' signal that is sent to the
//! first registered Action, whose response — done, rather than abort in
//! this case — is communicated to the Set; the Set returns the prepare
//! signal again that is then sent to the next registered Action and so
//! forth."

use std::sync::Arc;

use activity_service::signal_set::{AfterResponse, NextSignal, SignalSet};
use activity_service::{ActionError, CompletionStatus, Outcome, Signal};
use orb::Value;
use ots::{Resource, TxError, TxId, Vote};

use crate::common::{
    OUT_COMMITTED, OUT_READ_ONLY, OUT_ROLLED_BACK, SIG_COMMIT, SIG_PREPARE, SIG_ROLLBACK,
};

/// Conventional name of the 2PC signal set.
pub const TWO_PC_SET: &str = "2PCSignalSet";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Nothing sent yet.
    Start,
    /// Prepare sent; waiting for the decision point.
    Voting,
    /// Phase two signal (commit or rollback) emitted.
    Deciding,
}

/// The fig. 8 SignalSet: `prepare` to all actions, then `commit` — or
/// `rollback` as soon as any action votes abort (or errors), or immediately
/// when the activity's completion status is a failure.
#[derive(Debug)]
pub struct TwoPhaseCommitSignalSet {
    phase: Phase,
    votes_done: usize,
    votes_read_only: usize,
    any_abort: bool,
    completion: CompletionStatus,
}

impl Default for TwoPhaseCommitSignalSet {
    fn default() -> Self {
        Self::new()
    }
}

impl TwoPhaseCommitSignalSet {
    /// A fresh protocol instance.
    pub fn new() -> Self {
        TwoPhaseCommitSignalSet {
            phase: Phase::Start,
            votes_done: 0,
            votes_read_only: 0,
            any_abort: false,
            completion: CompletionStatus::Success,
        }
    }

    fn committing(&self) -> bool {
        !self.any_abort && !self.completion.is_failure()
    }
}

impl SignalSet for TwoPhaseCommitSignalSet {
    fn signal_set_name(&self) -> &str {
        TWO_PC_SET
    }

    fn get_signal(&mut self) -> NextSignal {
        match self.phase {
            Phase::Start => {
                if self.completion.is_failure() {
                    // The activity is completing in failure: no vote, just
                    // roll everyone back.
                    self.phase = Phase::Deciding;
                    NextSignal::LastSignal(Signal::new(SIG_ROLLBACK, TWO_PC_SET))
                } else {
                    self.phase = Phase::Voting;
                    NextSignal::Signal(Signal::new(SIG_PREPARE, TWO_PC_SET))
                }
            }
            Phase::Voting => {
                self.phase = Phase::Deciding;
                if self.committing() {
                    NextSignal::LastSignal(Signal::new(SIG_COMMIT, TWO_PC_SET))
                } else {
                    NextSignal::LastSignal(Signal::new(SIG_ROLLBACK, TWO_PC_SET))
                }
            }
            Phase::Deciding => NextSignal::End,
        }
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        match self.phase {
            Phase::Voting => {
                if response.name() == OUT_READ_ONLY {
                    self.votes_read_only += 1;
                    AfterResponse::Continue
                } else if response.is_negative() {
                    // An abort vote decides the protocol immediately: stop
                    // delivering prepare, switch to rollback.
                    self.any_abort = true;
                    AfterResponse::RequestNext
                } else {
                    self.votes_done += 1;
                    AfterResponse::Continue
                }
            }
            _ => AfterResponse::Continue,
        }
    }

    fn get_outcome(&mut self) -> Outcome {
        if self.committing() {
            Outcome::new(OUT_COMMITTED).with_data(Value::U64(self.votes_done as u64))
        } else {
            Outcome::new(OUT_ROLLED_BACK)
        }
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

/// Adapts an OTS [`Resource`] into an [`activity_service::Action`], so an
/// existing two-phase participant can be driven by the signal-based
/// protocol — the mapping the paper uses to show the framework subsumes the
/// classic commit protocol.
pub struct ResourceAction {
    name: String,
    tx: TxId,
    resource: Arc<dyn Resource>,
}

impl ResourceAction {
    /// Drive `resource` on behalf of `tx`.
    pub fn new(name: impl Into<String>, tx: TxId, resource: Arc<dyn Resource>) -> Self {
        ResourceAction { name: name.into(), tx, resource }
    }
}

impl activity_service::Action for ResourceAction {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        match signal.name() {
            SIG_PREPARE => match self.resource.prepare(&self.tx) {
                Ok(Vote::Commit) => Ok(Outcome::done()),
                Ok(Vote::ReadOnly) => Ok(Outcome::new(OUT_READ_ONLY)),
                Ok(Vote::Rollback) => Ok(Outcome::abort()),
                Err(e) => Err(ActionError::new(e.to_string())),
            },
            SIG_COMMIT => match self.resource.commit(&self.tx) {
                Ok(()) => Ok(Outcome::done()),
                Err(TxError::Heuristic { detail, .. }) => {
                    Ok(Outcome::from_error(format!("heuristic: {detail}")))
                }
                Err(e) => Err(ActionError::new(e.to_string())),
            },
            SIG_ROLLBACK => match self.resource.rollback(&self.tx) {
                Ok(()) => Ok(Outcome::done()),
                Err(e) => Err(ActionError::new(e.to_string())),
            },
            other => Err(ActionError::new(format!("unexpected signal {other:?}"))),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activity_service::{Activity, FnAction, TraceEvent, TraceLog};
    use orb::SimClock;
    use ots::TransactionalKv;

    fn activity_with_2pc() -> (Activity, TraceLog) {
        let a = Activity::new_root("tx", SimClock::new());
        let trace = TraceLog::new();
        a.coordinator().set_trace(trace.clone());
        a.coordinator()
            .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
            .unwrap();
        a.set_completion_signal_set(TWO_PC_SET);
        (a, trace)
    }

    #[test]
    fn commit_path_reproduces_fig8() {
        let (a, trace) = activity_with_2pc();
        for name in ["action-1", "action-2"] {
            a.coordinator().register_action(
                TWO_PC_SET,
                Arc::new(FnAction::new(name, |_s: &Signal| Ok(Outcome::done()))),
            );
        }
        let outcome = a.complete().unwrap();
        assert_eq!(outcome.name(), OUT_COMMITTED);
        assert_eq!(outcome.data().as_u64(), Some(2));

        // The exact fig. 8 exchange: get_signal, prepare→A1, set_response,
        // prepare→A2, set_response, get_signal, commit→A1, set_response,
        // commit→A2, set_response, get_outcome.
        let expected = vec![
            TraceEvent::GetSignal { set: TWO_PC_SET.into() },
            TraceEvent::Transmit { signal: SIG_PREPARE.into(), action: "action-1".into() },
            TraceEvent::SetResponse { set: TWO_PC_SET.into(), outcome: "done".into() },
            TraceEvent::Transmit { signal: SIG_PREPARE.into(), action: "action-2".into() },
            TraceEvent::SetResponse { set: TWO_PC_SET.into(), outcome: "done".into() },
            TraceEvent::GetSignal { set: TWO_PC_SET.into() },
            TraceEvent::Transmit { signal: SIG_COMMIT.into(), action: "action-1".into() },
            TraceEvent::SetResponse { set: TWO_PC_SET.into(), outcome: "done".into() },
            TraceEvent::Transmit { signal: SIG_COMMIT.into(), action: "action-2".into() },
            TraceEvent::SetResponse { set: TWO_PC_SET.into(), outcome: "done".into() },
            TraceEvent::GetOutcome { set: TWO_PC_SET.into(), outcome: OUT_COMMITTED.into() },
        ];
        assert_eq!(trace.events(), expected, "\nactual trace:\n{}", trace.render());
    }

    #[test]
    fn abort_vote_switches_to_rollback() {
        let (a, trace) = activity_with_2pc();
        a.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(FnAction::new("refuser", |s: &Signal| {
                if s.name() == SIG_PREPARE {
                    Ok(Outcome::abort())
                } else {
                    Ok(Outcome::done())
                }
            })),
        );
        a.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(FnAction::new("witness", |s: &Signal| {
                assert_ne!(s.name(), SIG_COMMIT, "nobody may see commit after an abort vote");
                Ok(Outcome::done())
            })),
        );
        let outcome = a.complete().unwrap();
        assert_eq!(outcome.name(), OUT_ROLLED_BACK);
        // The witness never saw prepare (the protocol switched immediately)
        // but did see rollback.
        let witness_signals: Vec<String> = trace
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Transmit { signal, action } if action == "witness" => Some(signal),
                _ => None,
            })
            .collect();
        assert_eq!(witness_signals, vec![SIG_ROLLBACK.to_string()]);
    }

    #[test]
    fn action_error_also_rolls_back() {
        let (a, _trace) = activity_with_2pc();
        a.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(FnAction::new("broken", |s: &Signal| {
                if s.name() == SIG_PREPARE {
                    Err(ActionError::new("disk on fire"))
                } else {
                    Ok(Outcome::done())
                }
            })),
        );
        let outcome = a.complete().unwrap();
        assert_eq!(outcome.name(), OUT_ROLLED_BACK);
    }

    #[test]
    fn failure_completion_skips_prepare() {
        let (a, trace) = activity_with_2pc();
        a.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(FnAction::new("p", |s: &Signal| {
                assert_eq!(s.name(), SIG_ROLLBACK);
                Ok(Outcome::done())
            })),
        );
        a.set_completion_status(CompletionStatus::FailOnly).unwrap();
        let outcome = a.complete().unwrap();
        assert_eq!(outcome.name(), OUT_ROLLED_BACK);
        let prepares = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Transmit { signal, .. } if signal == SIG_PREPARE))
            .count();
        assert_eq!(prepares, 0);
    }

    #[test]
    fn read_only_votes_do_not_count_as_commits() {
        let (a, _) = activity_with_2pc();
        a.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(FnAction::new("reader", |s: &Signal| {
                if s.name() == SIG_PREPARE {
                    Ok(Outcome::new(OUT_READ_ONLY))
                } else {
                    Ok(Outcome::done())
                }
            })),
        );
        let outcome = a.complete().unwrap();
        assert_eq!(outcome.name(), OUT_COMMITTED);
        assert_eq!(outcome.data().as_u64(), Some(0), "no full votes");
    }

    #[test]
    fn resource_action_drives_a_real_store() {
        let store = Arc::new(TransactionalKv::new("store"));
        let tx = TxId::top_level(1);
        store.write(&tx, "k", Value::from(7i64)).unwrap();

        let a = Activity::new_root("tx", SimClock::new());
        a.coordinator()
            .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
            .unwrap();
        a.set_completion_signal_set(TWO_PC_SET);
        a.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(ResourceAction::new("store", tx, store.clone() as Arc<dyn Resource>)),
        );
        let outcome = a.complete().unwrap();
        assert_eq!(outcome.name(), OUT_COMMITTED);
        assert_eq!(store.read_committed("k"), Some(Value::from(7i64)));
    }

    #[test]
    fn resource_action_rolls_back_a_real_store_on_failure() {
        let store = Arc::new(TransactionalKv::new("store"));
        let tx = TxId::top_level(2);
        store.write(&tx, "k", Value::from(7i64)).unwrap();

        let a = Activity::new_root("tx", SimClock::new());
        a.coordinator()
            .add_signal_set(Box::new(TwoPhaseCommitSignalSet::new()))
            .unwrap();
        a.set_completion_signal_set(TWO_PC_SET);
        a.coordinator().register_action(
            TWO_PC_SET,
            Arc::new(ResourceAction::new("store", tx, store.clone() as Arc<dyn Resource>)),
        );
        a.set_completion_status(CompletionStatus::Fail).unwrap();
        let outcome = a.complete().unwrap();
        assert_eq!(outcome.name(), OUT_ROLLED_BACK);
        assert_eq!(store.read_committed("k"), None);
    }

    #[test]
    fn resource_action_rejects_unknown_signals() {
        let store = Arc::new(TransactionalKv::new("s"));
        let action = ResourceAction::new("a", TxId::top_level(1), store as Arc<dyn Resource>);
        use activity_service::Action;
        assert!(action.process_signal(&Signal::new("bogus", TWO_PC_SET)).is_err());
    }
}
