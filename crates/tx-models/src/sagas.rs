//! Sagas [Garcia-Molina & Salem 1987] over the Activity Service.
//!
//! A saga is a sequence of steps, each an independent short transaction with
//! a compensating counterpart; when step *k* fails, compensations for steps
//! *k−1 … 1* run in reverse order. The paper cites Sagas as the canonical
//! model whose "compensation Signal may be required to be sent to Actions if
//! a failure has happened" (§3.2.3) — this module is that mapping: a
//! `SagaSignalSet` that emits one targeted `compensate` signal per completed
//! step (newest first) when the saga activity completes in failure.

use std::sync::Arc;

use activity_service::signal_set::{AfterResponse, NextSignal, SignalSet};
use activity_service::{
    ActionError, ActivityService, CompletionStatus, Outcome, Signal,
};
use orb::Value;
use parking_lot::Mutex;

use crate::common::SIG_COMPENSATE;

/// Conventional name of the saga completion signal set.
pub const SAGA_SET: &str = "SagaSignalSet";

/// Signal-data key carrying the targeted step name.
pub const STEP_KEY: &str = "step";

/// Shared record of which steps have committed, in order. The saga driver
/// appends; the [`SagaSignalSet`] (owned by the coordinator) reads.
#[derive(Debug, Clone, Default)]
pub struct CompletedSteps {
    steps: Arc<Mutex<Vec<String>>>,
}

impl CompletedSteps {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that `step` committed.
    pub fn push(&self, step: impl Into<String>) {
        self.steps.lock().push(step.into());
    }

    /// Completed steps, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.steps.lock().clone()
    }
}

/// The saga completion protocol: nothing to send on success; on failure one
/// `compensate` signal per completed step, newest first, each targeted via
/// the [`STEP_KEY`] payload entry.
#[derive(Debug)]
pub struct SagaSignalSet {
    completed: CompletedSteps,
    completion: CompletionStatus,
    queue: Option<Vec<String>>,
    failures: usize,
}

impl SagaSignalSet {
    /// A set reading committed steps from `completed`.
    pub fn new(completed: CompletedSteps) -> Self {
        SagaSignalSet {
            completed,
            completion: CompletionStatus::Success,
            queue: None,
            failures: 0,
        }
    }
}

impl SignalSet for SagaSignalSet {
    fn signal_set_name(&self) -> &str {
        SAGA_SET
    }

    fn get_signal(&mut self) -> NextSignal {
        if !self.completion.is_failure() {
            return NextSignal::End;
        }
        // Completed steps are recorded oldest-first; popping from the back
        // yields them newest-first, the saga compensation order.
        let queue = self.queue.get_or_insert_with(|| self.completed.snapshot());
        match queue.pop() {
            Some(step) => {
                let signal = Signal::new(SIG_COMPENSATE, SAGA_SET)
                    .with_data(Value::Str(step));
                if queue.is_empty() {
                    NextSignal::LastSignal(signal)
                } else {
                    NextSignal::Signal(signal)
                }
            }
            None => NextSignal::End,
        }
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        if response.is_negative() {
            self.failures += 1;
        }
        AfterResponse::Continue
    }

    fn get_outcome(&mut self) -> Outcome {
        if self.failures == 0 {
            Outcome::done()
        } else {
            Outcome::abort().with_data(Value::U64(self.failures as u64))
        }
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

/// Compensates exactly one saga step: reacts only to `compensate` signals
/// whose [`STEP_KEY`] names it; idempotent under redelivery.
pub struct StepCompensation {
    step: String,
    undo: Box<dyn Fn() -> Result<(), String> + Send + Sync>,
    ran: Mutex<bool>,
}

impl StepCompensation {
    /// Compensation for `step`.
    pub fn new<F>(step: impl Into<String>, undo: F) -> Arc<Self>
    where
        F: Fn() -> Result<(), String> + Send + Sync + 'static,
    {
        Arc::new(StepCompensation { step: step.into(), undo: Box::new(undo), ran: Mutex::new(false) })
    }

    /// Whether this compensation has executed.
    pub fn ran(&self) -> bool {
        *self.ran.lock()
    }
}

impl activity_service::Action for StepCompensation {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        if signal.name() != SIG_COMPENSATE {
            return Err(ActionError::new(format!("unexpected signal {:?}", signal.name())));
        }
        let target = signal.data().as_str().unwrap_or_default();
        if target != self.step {
            // Broadcast model: not addressed to this step.
            return Ok(Outcome::new("skipped"));
        }
        let mut ran = self.ran.lock();
        if *ran {
            return Ok(Outcome::done());
        }
        *ran = true;
        drop(ran);
        (self.undo)().map_err(ActionError::new)?;
        Ok(Outcome::done())
    }

    fn name(&self) -> &str {
        &self.step
    }
}

/// How a saga finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SagaOutcome {
    /// Every step committed.
    Completed,
    /// `failed_step` failed; all prior steps were compensated in reverse.
    Compensated {
        /// The step whose forward work failed.
        failed_step: String,
    },
}

/// Report of one saga run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SagaReport {
    /// Steps whose forward work committed, oldest first.
    pub committed: Vec<String>,
    /// Terminal outcome.
    pub outcome: SagaOutcome,
}

type StepFn = Box<dyn Fn() -> Result<(), String> + Send + Sync>;

/// A declarative saga: named steps with forward work and compensation.
pub struct Saga {
    name: String,
    steps: Vec<(String, StepFn, Arc<StepCompensation>)>,
}

impl std::fmt::Debug for Saga {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Saga")
            .field("name", &self.name)
            .field("steps", &self.steps.len())
            .finish()
    }
}

impl Saga {
    /// An empty saga named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Saga { name: name.into(), steps: Vec::new() }
    }

    /// Append a step with its forward work and compensation.
    #[must_use]
    pub fn step<F, U>(mut self, name: impl Into<String>, forward: F, undo: U) -> Self
    where
        F: Fn() -> Result<(), String> + Send + Sync + 'static,
        U: Fn() -> Result<(), String> + Send + Sync + 'static,
    {
        let name = name.into();
        let compensation = StepCompensation::new(name.clone(), undo);
        self.steps.push((name, Box::new(forward), compensation));
        self
    }

    /// Number of declared steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the saga has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Run the saga under `service`: one activity per step, with the
    /// framework's saga set driving compensation on failure.
    ///
    /// # Errors
    ///
    /// Propagates activity failures (the saga machinery itself); step
    /// failures are *not* errors — they are reported in the
    /// [`SagaReport::outcome`].
    pub fn run(
        &self,
        service: &ActivityService,
    ) -> Result<SagaReport, activity_service::ActivityError> {
        let saga_activity = service.begin(self.name.clone())?;
        let completed = CompletedSteps::new();
        saga_activity
            .coordinator()
            .add_signal_set(Box::new(SagaSignalSet::new(completed.clone())))?;
        saga_activity.set_completion_signal_set(SAGA_SET);

        let mut failed_step = None;
        for (name, forward, compensation) in &self.steps {
            let step_activity = saga_activity.begin_child(format!("{}/{name}", self.name))?;
            match forward() {
                Ok(()) => {
                    completed.push(name.clone());
                    saga_activity.coordinator().register_action(
                        SAGA_SET,
                        Arc::clone(compensation) as Arc<dyn activity_service::Action>,
                    );
                    step_activity.complete()?;
                }
                Err(_) => {
                    step_activity.complete_with_status(CompletionStatus::FailOnly)?;
                    failed_step = Some(name.clone());
                    break;
                }
            }
        }

        let committed = completed.snapshot();
        let outcome = match failed_step {
            Some(failed_step) => {
                service.complete_with_status(CompletionStatus::FailOnly)?;
                SagaOutcome::Compensated { failed_step }
            }
            None => {
                service.complete()?;
                SagaOutcome::Completed
            }
        };
        Ok(SagaReport { committed, outcome })
    }

    /// The per-step compensation handles (for inspection in tests).
    pub fn compensations(&self) -> Vec<Arc<StepCompensation>> {
        self.steps.iter().map(|(_, _, c)| Arc::clone(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn order_tracker() -> (Arc<Mutex<Vec<String>>>, impl Fn(&str) -> StepFn) {
        let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let make = move |tag: &str| -> StepFn {
            let log = Arc::clone(&log2);
            let tag = tag.to_owned();
            Box::new(move || {
                log.lock().push(tag.clone());
                Ok(())
            })
        };
        (log, make)
    }

    #[test]
    fn all_steps_commit_no_compensation() {
        let service = ActivityService::new();
        let saga = Saga::new("booking")
            .step("taxi", || Ok(()), || panic!("must not compensate"))
            .step("hotel", || Ok(()), || panic!("must not compensate"));
        let report = saga.run(&service).unwrap();
        assert_eq!(report.outcome, SagaOutcome::Completed);
        assert_eq!(report.committed, vec!["taxi", "hotel"]);
    }

    #[test]
    fn failure_compensates_in_reverse_order() {
        let (log, _) = order_tracker();
        let service = ActivityService::new();
        let mk_undo = |tag: &str| {
            let log = Arc::clone(&log);
            let tag = format!("undo-{tag}");
            move || {
                log.lock().push(tag.clone());
                Ok(())
            }
        };
        let saga = Saga::new("booking")
            .step("taxi", || Ok(()), mk_undo("taxi"))
            .step("restaurant", || Ok(()), mk_undo("restaurant"))
            .step("theatre", || Ok(()), mk_undo("theatre"))
            .step("hotel", || Err("fully booked".into()), mk_undo("hotel"));
        let report = saga.run(&service).unwrap();
        assert_eq!(
            report.outcome,
            SagaOutcome::Compensated { failed_step: "hotel".into() }
        );
        assert_eq!(report.committed, vec!["taxi", "restaurant", "theatre"]);
        assert_eq!(
            *log.lock(),
            vec!["undo-theatre", "undo-restaurant", "undo-taxi"],
            "compensation must run newest-first"
        );
    }

    #[test]
    fn first_step_failure_compensates_nothing() {
        let service = ActivityService::new();
        let count = Arc::new(AtomicUsize::new(0));
        let count2 = Arc::clone(&count);
        let saga = Saga::new("s").step(
            "only",
            || Err("no".into()),
            move || {
                count2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        );
        let report = saga.run(&service).unwrap();
        assert_eq!(report.outcome, SagaOutcome::Compensated { failed_step: "only".into() });
        assert!(report.committed.is_empty());
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn empty_saga_completes() {
        let service = ActivityService::new();
        let report = Saga::new("empty").run(&service).unwrap();
        assert_eq!(report.outcome, SagaOutcome::Completed);
        assert!(report.committed.is_empty());
        assert!(Saga::new("empty").is_empty());
    }

    #[test]
    fn step_compensation_is_idempotent_and_targeted() {
        use activity_service::Action;
        let count = Arc::new(AtomicUsize::new(0));
        let count2 = Arc::clone(&count);
        let comp = StepCompensation::new("taxi", move || {
            count2.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        let mine = Signal::new(SIG_COMPENSATE, SAGA_SET).with_data(Value::from("taxi"));
        let other = Signal::new(SIG_COMPENSATE, SAGA_SET).with_data(Value::from("hotel"));
        assert_eq!(comp.process_signal(&other).unwrap().name(), "skipped");
        comp.process_signal(&mine).unwrap();
        comp.process_signal(&mine).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert!(comp.ran());
        assert!(comp.process_signal(&Signal::new("bogus", SAGA_SET)).is_err());
    }

    #[test]
    fn saga_set_emits_nothing_on_success() {
        let completed = CompletedSteps::new();
        completed.push("a");
        let mut set = SagaSignalSet::new(completed);
        assert_eq!(set.get_signal(), NextSignal::End);
    }
}
