//! Extended transaction models mapped onto the Activity Service — the
//! paper's §4, model by model.
//!
//! Each module instantiates the framework's Signals/SignalSets/Actions for
//! one published extended transaction model, demonstrating the paper's
//! thesis that a single general-purpose signalling mechanism subsumes them
//! all:
//!
//! | Module | Paper section | Model |
//! |---|---|---|
//! | [`two_phase`] | §4.1, fig. 8 | classic two-phase commit |
//! | [`compensation`] | §4.2, fig. 9 | open nesting with compensations |
//! | [`sagas`] | §3.2.3 (cited) | Sagas (reverse-order compensation) |
//! | [`lruow`] | §4.3 | Long Running Unit Of Work (rehearsal/performance) |
//! | [`workflow_signals`] | §4.4, fig. 10 | workflow coordination |
//! | [`ca_actions`] | §3.2.3 (cited \[13\]) | CA actions with exception resolution |
//!
//! BTP atoms and cohesions (§4.5, figs. 11–12) live in the sibling `btp`
//! crate.

pub mod ca_actions;
pub mod common;
pub mod compensation;
pub mod lruow;
pub mod sagas;
pub mod two_phase;
pub mod workflow_signals;

pub use ca_actions::{
    CaActionSignalSet, ExceptionHierarchy, RaisedExceptions, CA_ACTION_SET,
};
pub use compensation::{
    ActivityRegistry, CompensationAction, CompletionSignalSet, InMemoryActivityRegistry,
    COMPLETION_SET,
};
pub use lruow::{
    enlist_unit_of_work, run_lruow_completion, LruowStore, PredicateViolation, UnitOfWork,
    UnitOfWorkAction, PERFORMANCE_SET, REHEARSAL_SET,
};
pub use sagas::{Saga, SagaOutcome, SagaReport, SagaSignalSet, StepCompensation, SAGA_SET};
pub use two_phase::{ResourceAction, TwoPhaseCommitSignalSet, TWO_PC_SET};
pub use workflow_signals::{
    CompletedSignalSet, OutcomeCollector, TaskAction, TaskStartSignalSet, COMPLETED_SET,
    TASK_START_SET,
};
