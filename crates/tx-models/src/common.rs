//! Shared vocabulary for the extended transaction models of §4.

/// Signal name: phase one of two-phase commit (figs. 8 and 11).
pub const SIG_PREPARE: &str = "prepare";
/// Signal name: phase two, forward (fig. 8).
pub const SIG_COMMIT: &str = "commit";
/// Signal name: phase two, backward (fig. 8).
pub const SIG_ROLLBACK: &str = "rollback";
/// Signal name: BTP confirm (fig. 12).
pub const SIG_CONFIRM: &str = "confirm";
/// Signal name: BTP cancel (fig. 12).
pub const SIG_CANCEL: &str = "cancel";

/// Signal name: §4.2 completion with no dependencies.
pub const SIG_SUCCESS: &str = "success";
/// Signal name: §4.2 abnormal completion.
pub const SIG_FAILURE: &str = "failure";
/// Signal name: §4.2 successful completion with outstanding dependencies;
/// payload carries the activity to re-register with.
pub const SIG_PROPAGATE: &str = "propagate";

/// Signal name: workflow coordination (§4.4, fig. 10).
pub const SIG_START: &str = "start";
/// Acknowledgement of [`SIG_START`].
pub const SIG_START_ACK: &str = "start_ack";
/// Child → parent completion notification.
pub const SIG_OUTCOME: &str = "outcome";
/// Acknowledgement of [`SIG_OUTCOME`].
pub const SIG_OUTCOME_ACK: &str = "outcome_ack";

/// Signal name: LRUOW rehearsal freeze (§4.3).
pub const SIG_END_REHEARSAL: &str = "end_rehearsal";
/// Signal name: LRUOW performance phase (§4.3).
pub const SIG_PERFORM: &str = "perform";

/// Signal name: saga compensation step.
pub const SIG_COMPENSATE: &str = "compensate";

/// Outcome name: a participant voted read-only in phase one.
pub const OUT_READ_ONLY: &str = "read_only";
/// Outcome name: collated "transaction committed".
pub const OUT_COMMITTED: &str = "committed";
/// Outcome name: collated "transaction rolled back".
pub const OUT_ROLLED_BACK: &str = "rolled_back";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let all = [
            SIG_PREPARE,
            SIG_COMMIT,
            SIG_ROLLBACK,
            SIG_CONFIRM,
            SIG_CANCEL,
            SIG_SUCCESS,
            SIG_FAILURE,
            SIG_PROPAGATE,
            SIG_START,
            SIG_START_ACK,
            SIG_OUTCOME,
            SIG_OUTCOME_ACK,
            SIG_END_REHEARSAL,
            SIG_PERFORM,
            SIG_COMPENSATE,
        ];
        let unique: std::collections::HashSet<&str> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }
}
