//! The process-wide Activity Service: thread association, ORB integration,
//! durable logging.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use orb::context::ACTIVITY_SERVICE_CONTEXT;
use orb::interceptor::{ClientRequestInterceptor, ServerRequestInterceptor};
use orb::{Orb, Reply, Request, SimClock};
use parking_lot::Mutex;
use recovery_log::Wal;
use telemetry::{SpanContext, Telemetry};

use crate::activity::Activity;
use crate::activity::ActivityId;
use crate::completion::CompletionStatus;
use crate::context::ActivityContext;
use crate::error::ActivityError;
use crate::outcome::Outcome;
use crate::recovery::ActivityLogger;

thread_local! {
    /// Innermost-last stack of thread-associated activities.
    static CURRENT: RefCell<Vec<Activity>> = const { RefCell::new(Vec::new()) };
    /// Contexts received with in-flight inbound requests (server side).
    static RECEIVED: RefCell<Vec<Option<ActivityContext>>> = const { RefCell::new(Vec::new()) };
}

struct ServiceInner {
    clock: SimClock,
    logger: Option<Arc<ActivityLogger>>,
    id_source: Arc<AtomicU64>,
    roots: Mutex<Vec<Activity>>,
    /// Node-local stores backing by-reference property groups (§3.3).
    shared_groups: crate::property::PropertyGroupManager,
    telemetry: Mutex<Option<Telemetry>>,
    /// Live activity → its `activity:` span, so child activities parent
    /// under their *enclosing activity's* span (fig. 4 nesting) rather
    /// than whatever happens to be ambient, and suspend/resume can move
    /// the ambient association between threads.
    activity_spans: Mutex<HashMap<ActivityId, SpanContext>>,
}

/// The Activity Service: creates activities, associates them with threads,
/// and (when attached to an [`Orb`]) propagates their context implicitly on
/// every remote invocation.
///
/// Cheap to clone; clones share state.
#[derive(Clone)]
pub struct ActivityService {
    inner: Arc<ServiceInner>,
}

impl std::fmt::Debug for ActivityService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivityService")
            .field("roots", &self.inner.roots.lock().len())
            .field("logged", &self.inner.logger.is_some())
            .finish()
    }
}

/// Configures and builds an [`ActivityService`].
#[derive(Default)]
pub struct ActivityServiceBuilder {
    clock: Option<SimClock>,
    wal: Option<Arc<dyn Wal>>,
    first_id: u64,
}

impl std::fmt::Debug for ActivityServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivityServiceBuilder")
            .field("logged", &self.wal.is_some())
            .field("first_id", &self.first_id)
            .finish()
    }
}

impl ActivityServiceBuilder {
    /// Share a virtual clock (for timeouts and simulated-time metrics).
    #[must_use]
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Log activity lifecycle records to `wal`, enabling recovery.
    #[must_use]
    pub fn wal(mut self, wal: Arc<dyn Wal>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// Continue activity ids from `first_id` (used after recovery).
    #[must_use]
    pub fn first_id(mut self, first_id: u64) -> Self {
        self.first_id = first_id;
        self
    }

    /// Build the service.
    pub fn build(self) -> ActivityService {
        ActivityService {
            inner: Arc::new(ServiceInner {
                clock: self.clock.unwrap_or_default(),
                logger: self.wal.map(ActivityLogger::new),
                id_source: Arc::new(AtomicU64::new(self.first_id.max(1))),
                roots: Mutex::new(Vec::new()),
                shared_groups: crate::property::PropertyGroupManager::new(),
                telemetry: Mutex::new(None),
                activity_spans: Mutex::new(HashMap::new()),
            }),
        }
    }
}

impl Default for ActivityService {
    fn default() -> Self {
        Self::new()
    }
}

impl ActivityService {
    /// A volatile service (no recovery log), fresh clock.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Start configuring a service.
    pub fn builder() -> ActivityServiceBuilder {
        ActivityServiceBuilder::default()
    }

    /// The service's virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Attach a telemetry recorder: every `begin`/`complete` pair becomes
    /// an `activity:` span, nested to mirror the fig. 4 activity tree.
    /// Attach the *same* recorder to the ORB (via
    /// [`orb::node::OrbBuilder::telemetry`]) and to coordinators so
    /// remote invocations and protocol runs land in the same traces.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.inner.telemetry.lock() = Some(telemetry);
    }

    fn telemetry_handle(&self) -> Option<Telemetry> {
        self.inner.telemetry.lock().clone().filter(Telemetry::is_enabled)
    }

    fn close_activity_span(&self, id: ActivityId, outcome: &Outcome) {
        if let Some(telemetry) = self.telemetry_handle() {
            if let Some(span) = self.inner.activity_spans.lock().remove(&id) {
                telemetry.set_attr(&span, "outcome", outcome.name());
                telemetry.exit();
                telemetry.end(&span);
            }
        }
    }

    /// Begin an activity and associate it with the calling thread. When the
    /// thread already has an activity, the new one is its child.
    ///
    /// # Errors
    ///
    /// Propagates [`Activity::begin_child`] failures.
    pub fn begin(&self, name: impl Into<String>) -> Result<Activity, ActivityError> {
        let parent = Self::peek();
        let activity = match &parent {
            Some(parent) => parent.begin_child(name)?,
            None => {
                let root = Activity::new_root_with(
                    name,
                    self.inner.clock.clone(),
                    self.inner.logger.clone(),
                    Arc::clone(&self.inner.id_source),
                );
                self.inner.roots.lock().push(root.clone());
                root
            }
        };
        if let Some(telemetry) = self.telemetry_handle() {
            // Mirror the fig. 4 activity tree: a nested activity's span is
            // a child of its enclosing activity's span; a root activity
            // parents under whatever is ambient (e.g. a `serve:` span on
            // an interposed node) or starts a fresh trace.
            let parent_span = parent
                .as_ref()
                .and_then(|p| self.inner.activity_spans.lock().get(&p.id()).copied());
            let span_name = format!("activity:{}", activity.name());
            let span = match parent_span {
                Some(parent_span) => telemetry.start_child(&parent_span, &span_name),
                None => telemetry.start_span(&span_name),
            };
            telemetry.set_attr(&span, "id", &activity.id().to_string());
            telemetry.enter(span);
            self.inner.activity_spans.lock().insert(activity.id(), span);
        }
        CURRENT.with(|c| c.borrow_mut().push(activity.clone()));
        Ok(activity)
    }

    /// The thread's innermost associated activity.
    pub fn current(&self) -> Option<Activity> {
        Self::peek()
    }

    /// Nesting depth of the thread association (0 = none).
    pub fn depth(&self) -> usize {
        CURRENT.with(|c| c.borrow().len())
    }

    /// Complete the innermost associated activity with its current status
    /// and disassociate it. The association is kept when completion fails
    /// (e.g. children still active) so the caller can repair and retry.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`] when the thread has none;
    /// otherwise see [`Activity::complete`].
    pub fn complete(&self) -> Result<Outcome, ActivityError> {
        let activity = Self::peek().ok_or(ActivityError::NoCurrentActivity)?;
        let outcome = activity.complete()?;
        self.close_activity_span(activity.id(), &outcome);
        Self::pop();
        Ok(outcome)
    }

    /// Like [`ActivityService::complete`] with an explicit status.
    ///
    /// # Errors
    ///
    /// Same as [`ActivityService::complete`].
    pub fn complete_with_status(
        &self,
        status: CompletionStatus,
    ) -> Result<Outcome, ActivityError> {
        let activity = Self::peek().ok_or(ActivityError::NoCurrentActivity)?;
        let outcome = activity.complete_with_status(status)?;
        self.close_activity_span(activity.id(), &outcome);
        Self::pop();
        Ok(outcome)
    }

    /// Suspend the thread association (not the activity itself): detach and
    /// return the innermost activity so it can be resumed on any thread.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`] when the thread has none.
    pub fn suspend(&self) -> Result<Activity, ActivityError> {
        let activity = CURRENT
            .with(|c| c.borrow_mut().pop())
            .ok_or(ActivityError::NoCurrentActivity)?;
        if let Some(telemetry) = self.telemetry_handle() {
            // The span stays open (the activity is alive); only the
            // thread's ambient association moves with the activity.
            if self.inner.activity_spans.lock().contains_key(&activity.id()) {
                telemetry.exit();
            }
        }
        Ok(activity)
    }

    /// Re-associate a previously suspended activity with this thread.
    pub fn resume(&self, activity: Activity) {
        if let Some(telemetry) = self.telemetry_handle() {
            if let Some(span) = self.inner.activity_spans.lock().get(&activity.id()).copied() {
                telemetry.enter(span);
            }
        }
        CURRENT.with(|c| c.borrow_mut().push(activity));
    }

    /// All root activities created through this service.
    pub fn roots(&self) -> Vec<Activity> {
        self.inner.roots.lock().clone()
    }

    /// Register the client and server interceptors that give this ORB
    /// implicit activity-context propagation (fig. 3: the framework rides
    /// beside the ORB).
    pub fn attach_to_orb(&self, orb: &Orb) {
        orb.add_client_interceptor(Arc::new(ActivityClientInterceptor));
        orb.add_server_interceptor(Arc::new(ActivityServerInterceptor));
    }

    /// The activity context that arrived with the inbound request currently
    /// being dispatched on this thread, if any. Servants call this to learn
    /// which (remote) activity they are working for.
    pub fn received_context() -> Option<ActivityContext> {
        RECEIVED.with(|r| r.borrow().last().cloned().flatten())
    }

    /// Publish a node-local property group under its spec name, so
    /// by-*reference* groups named in received contexts resolve here
    /// (§3.3: "whether properties are propagated by value or by
    /// reference" — by-reference propagation sends only the name; the
    /// receiving node supplies the store).
    pub fn publish_shared_group(&self, group: Arc<dyn crate::property::PropertyGroup>) {
        self.inner.shared_groups.register(group);
    }

    /// Materialise the received context's property groups against this
    /// service: by-value groups become fresh local stores loaded with the
    /// transported snapshot; by-reference names resolve to the node's
    /// published shared groups (unresolvable names are simply absent — the
    /// caller decides whether that is an error).
    pub fn materialize_received_properties(
        &self,
    ) -> Vec<Arc<dyn crate::property::PropertyGroup>> {
        let Some(context) = Self::received_context() else {
            return Vec::new();
        };
        let mut groups: Vec<Arc<dyn crate::property::PropertyGroup>> = Vec::new();
        for (name, snapshot) in &context.properties {
            groups.push(crate::property::BasicPropertyGroup::with_properties(
                crate::property::PropertyGroupSpec::new(name.clone()),
                snapshot.clone(),
            ));
        }
        for name in &context.by_reference {
            if let Ok(group) = self.inner.shared_groups.group(name) {
                groups.push(group);
            }
        }
        groups
    }

    fn peek() -> Option<Activity> {
        CURRENT.with(|c| c.borrow().last().cloned())
    }

    fn pop() {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Stamps the thread's current activity context into outgoing requests.
#[derive(Debug)]
struct ActivityClientInterceptor;

impl ClientRequestInterceptor for ActivityClientInterceptor {
    fn name(&self) -> &str {
        "activity-service-client"
    }

    fn send_request(&self, request: &mut Request) -> Result<(), orb::OrbError> {
        if let Some(activity) = CURRENT.with(|c| c.borrow().last().cloned()) {
            let context = ActivityContext::capture(&activity);
            request
                .contexts_mut()
                .set(ACTIVITY_SERVICE_CONTEXT, context.to_value());
        }
        Ok(())
    }
}

/// Establishes the received activity context around servant dispatch.
#[derive(Debug)]
struct ActivityServerInterceptor;

impl ServerRequestInterceptor for ActivityServerInterceptor {
    fn name(&self) -> &str {
        "activity-service-server"
    }

    fn receive_request(&self, request: &Request) -> Result<(), orb::OrbError> {
        let context = match request.contexts().get(ACTIVITY_SERVICE_CONTEXT) {
            Some(value) => Some(
                ActivityContext::from_value(value)
                    .map_err(|e| orb::OrbError::Codec(e.to_string()))?,
            ),
            None => None,
        };
        RECEIVED.with(|r| r.borrow_mut().push(context));
        Ok(())
    }

    fn send_reply(&self, _request: &Request, _reply: &mut Reply) {
        RECEIVED.with(|r| {
            r.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::{Servant, Value};

    #[test]
    fn begin_complete_association() {
        let svc = ActivityService::new();
        assert!(svc.current().is_none());
        assert!(matches!(svc.complete(), Err(ActivityError::NoCurrentActivity)));

        let a = svc.begin("root").unwrap();
        assert_eq!(svc.current().unwrap().id(), a.id());
        let b = svc.begin("child").unwrap();
        assert_eq!(b.parent().unwrap().id(), a.id());
        assert_eq!(svc.depth(), 2);
        svc.complete().unwrap();
        assert_eq!(svc.current().unwrap().id(), a.id());
        svc.complete().unwrap();
        assert!(svc.current().is_none());
        assert_eq!(svc.roots().len(), 1);
    }

    #[test]
    fn activity_spans_mirror_fig4_nesting() {
        let svc = ActivityService::new();
        let tel = Telemetry::new();
        svc.set_telemetry(tel.clone());
        svc.begin("outer").unwrap();
        svc.begin("inner").unwrap();
        svc.complete().unwrap();
        svc.complete().unwrap();

        let tree = tel.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new());
        let roots = tree.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "activity:outer");
        let children = tree.children(roots[0].context.span_id);
        assert_eq!(children.len(), 1);
        assert_eq!(children[0].name, "activity:inner");
        assert_eq!(children[0].attr("outcome"), Some("done"));
    }

    #[test]
    fn suspended_activity_resumes_its_span_on_another_thread() {
        let svc = ActivityService::new();
        let tel = Telemetry::new();
        svc.set_telemetry(tel.clone());
        svc.begin("mobile").unwrap();
        let detached = svc.suspend().unwrap();
        assert!(tel.current().is_none(), "suspend detaches the ambient span");
        let svc2 = svc.clone();
        let tel2 = tel.clone();
        std::thread::spawn(move || {
            svc2.resume(detached);
            // Work on the resuming thread parents under the activity span.
            let span = tel2.start_span("work");
            tel2.end(&span);
            svc2.complete().unwrap();
        })
        .join()
        .unwrap();
        let tree = tel.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new());
        let root = &tree.roots()[0];
        assert_eq!(root.name, "activity:mobile");
        assert_eq!(tree.children(root.context.span_id)[0].name, "work");
    }

    #[test]
    fn failed_completion_keeps_association() {
        let svc = ActivityService::new();
        svc.begin("root").unwrap();
        let _child = svc.begin("child").unwrap();
        let child_handle = svc.suspend().unwrap();
        // Root is now innermost but its child is still active.
        assert!(matches!(svc.complete(), Err(ActivityError::ChildrenActive(_))));
        assert!(svc.current().is_some(), "association survives the failure");
        svc.resume(child_handle);
        svc.complete().unwrap(); // child
        svc.complete().unwrap(); // root
    }

    #[test]
    fn suspend_resume_across_threads() {
        let svc = ActivityService::new();
        let a = svc.begin("mobile").unwrap();
        let detached = svc.suspend().unwrap();
        assert!(svc.current().is_none());
        let svc2 = svc.clone();
        std::thread::spawn(move || {
            assert!(svc2.current().is_none(), "fresh thread has no association");
            svc2.resume(detached);
            assert_eq!(svc2.current().unwrap().id(), a.id());
            svc2.complete().unwrap();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn context_propagates_through_orb() {
        let orb = Orb::new();
        let svc = ActivityService::new();
        svc.attach_to_orb(&orb);
        let node = orb.add_node("server").unwrap();

        struct Reporter;
        impl Servant for Reporter {
            fn dispatch(&self, _request: &Request) -> Result<Value, orb::OrbError> {
                match ActivityService::received_context() {
                    Some(ctx) => Ok(Value::Str(
                        ctx.chain
                            .iter()
                            .map(|e| e.name.clone())
                            .collect::<Vec<_>>()
                            .join("/"),
                    )),
                    None => Ok(Value::Null),
                }
            }
        }
        let obj = node.activate("Reporter", Reporter).unwrap();

        // No activity: no context.
        let reply = orb.invoke(&obj, Request::new("whoami")).unwrap();
        assert!(reply.result.is_null());

        // Inside an activity chain: the chain travels implicitly.
        svc.begin("outer").unwrap();
        svc.begin("inner").unwrap();
        let reply = orb.invoke(&obj, Request::new("whoami")).unwrap();
        assert_eq!(reply.result.as_str(), Some("outer/inner"));
        svc.complete().unwrap();
        let reply = orb.invoke(&obj, Request::new("whoami")).unwrap();
        assert_eq!(reply.result.as_str(), Some("outer"));
        svc.complete().unwrap();

        // Context cleared after dispatch.
        assert!(ActivityService::received_context().is_none());
    }

    #[test]
    fn by_value_properties_travel() {
        use crate::property::{BasicPropertyGroup, PropertyGroup, PropertyGroupSpec};
        let orb = Orb::new();
        let svc = ActivityService::new();
        svc.attach_to_orb(&orb);
        let node = orb.add_node("server").unwrap();

        struct PropReader;
        impl Servant for PropReader {
            fn dispatch(&self, _request: &Request) -> Result<Value, orb::OrbError> {
                let ctx = ActivityService::received_context()
                    .ok_or_else(|| orb::OrbError::Application("no context".into()))?;
                let (_, snapshot) = ctx
                    .properties
                    .iter()
                    .find(|(g, _)| g == "env")
                    .ok_or_else(|| orb::OrbError::Application("no env group".into()))?;
                Ok(snapshot.get("locale").cloned().unwrap_or(Value::Null))
            }
        }
        let obj = node.activate("PropReader", PropReader).unwrap();

        let a = svc.begin("job").unwrap();
        let group = BasicPropertyGroup::new(PropertyGroupSpec::new("env"));
        group.set("locale", Value::from("de_DE"));
        a.properties().register(group);
        let reply = orb.invoke(&obj, Request::new("locale")).unwrap();
        assert_eq!(reply.result.as_str(), Some("de_DE"));
        svc.complete().unwrap();
    }
}

#[cfg(test)]
mod by_reference_tests {
    use super::*;
    use crate::property::{
        BasicPropertyGroup, Propagation, PropertyGroup, PropertyGroupSpec,
    };
    use orb::{Servant, Value};

    #[test]
    fn by_reference_groups_resolve_on_the_receiving_node() {
        let orb = Orb::new();
        // One logical service per "node"; the receiving side publishes the
        // shared configuration store under the advertised name.
        let sender = ActivityService::new();
        let receiver = ActivityService::new();
        sender.attach_to_orb(&orb);
        let node = orb.add_node("server").unwrap();

        let shared = BasicPropertyGroup::new(
            PropertyGroupSpec::new("site-config").propagation(Propagation::ByReference),
        );
        shared.set("region", Value::from("eu-west"));
        receiver.publish_shared_group(shared);

        struct ConfigReader {
            service: ActivityService,
        }
        impl Servant for ConfigReader {
            fn dispatch(&self, _request: &Request) -> Result<Value, orb::OrbError> {
                let groups = self.service.materialize_received_properties();
                let site = groups
                    .iter()
                    .find(|g| g.spec().name == "site-config")
                    .ok_or_else(|| orb::OrbError::Application("no site-config".into()))?;
                Ok(site.get("region").unwrap_or(Value::Null))
            }
        }
        let obj = node
            .activate("ConfigReader", ConfigReader { service: receiver.clone() })
            .unwrap();

        // The sender's activity declares (but does not ship) the group.
        let activity = sender.begin("job").unwrap();
        activity.properties().register(BasicPropertyGroup::new(
            PropertyGroupSpec::new("site-config").propagation(Propagation::ByReference),
        ));
        let reply = orb.invoke(&obj, Request::new("read")).unwrap();
        assert_eq!(reply.result.as_str(), Some("eu-west"));
        sender.complete().unwrap();
    }

    #[test]
    fn by_value_groups_materialize_as_fresh_stores() {
        let orb = Orb::new();
        let sender = ActivityService::new();
        let receiver = ActivityService::new();
        sender.attach_to_orb(&orb);
        let node = orb.add_node("server").unwrap();

        struct SnapshotReader {
            service: ActivityService,
        }
        impl Servant for SnapshotReader {
            fn dispatch(&self, _request: &Request) -> Result<Value, orb::OrbError> {
                let groups = self.service.materialize_received_properties();
                let env = groups
                    .iter()
                    .find(|g| g.spec().name == "env")
                    .ok_or_else(|| orb::OrbError::Application("no env".into()))?;
                // Mutations stay local to the receiver's materialised copy.
                env.set("touched", Value::Bool(true));
                Ok(env.get("locale").unwrap_or(Value::Null))
            }
        }
        let obj = node
            .activate("SnapshotReader", SnapshotReader { service: receiver.clone() })
            .unwrap();

        let activity = sender.begin("job").unwrap();
        let env = BasicPropertyGroup::new(PropertyGroupSpec::new("env"));
        env.set("locale", Value::from("sv_SE"));
        activity.properties().register(Arc::clone(&env) as Arc<dyn PropertyGroup>);
        let reply = orb.invoke(&obj, Request::new("read")).unwrap();
        assert_eq!(reply.result.as_str(), Some("sv_SE"));
        // The sender's group was not mutated by the receiver.
        assert_eq!(env.get("touched"), None);
        sender.complete().unwrap();
    }

    #[test]
    fn unresolvable_references_are_absent_not_fatal() {
        let service = ActivityService::new();
        assert!(service.materialize_received_properties().is_empty());
    }
}
