//! Outcomes: what Actions return and what SignalSets collate.

use std::fmt;

use orb::{Value, ValueMap};

use crate::error::ActivityError;

/// Well-known outcome name for plain success.
pub const OUTCOME_DONE: &str = "done";
/// Well-known outcome name for refusal/abort votes.
pub const OUTCOME_ABORT: &str = "abort";
/// Well-known outcome name wrapping an [`crate::error::ActionError`].
pub const OUTCOME_ERROR: &str = "error";

/// The result of an Action processing a Signal, and also the collated result
/// a SignalSet reports for a whole protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    name: String,
    data: Value,
}

impl Outcome {
    /// An outcome with no payload.
    pub fn new(name: impl Into<String>) -> Self {
        Outcome { name: name.into(), data: Value::Null }
    }

    /// The conventional success outcome (`"done"`).
    pub fn done() -> Self {
        Outcome::new(OUTCOME_DONE)
    }

    /// The conventional refusal outcome (`"abort"`).
    pub fn abort() -> Self {
        Outcome::new(OUTCOME_ABORT)
    }

    /// Wrap an action failure as an outcome so SignalSets can reason about
    /// it uniformly.
    pub fn from_error(message: impl Into<String>) -> Self {
        Outcome::new(OUTCOME_ERROR).with_data(Value::Str(message.into()))
    }

    /// Builder-style: attach payload data.
    #[must_use]
    pub fn with_data(mut self, data: Value) -> Self {
        self.data = data;
        self
    }

    /// The outcome's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The payload.
    pub fn data(&self) -> &Value {
        &self.data
    }

    /// Whether this is the conventional success outcome.
    pub fn is_done(&self) -> bool {
        self.name == OUTCOME_DONE
    }

    /// Whether this is an error or abort outcome.
    pub fn is_negative(&self) -> bool {
        self.name == OUTCOME_ABORT || self.name == OUTCOME_ERROR
    }

    /// Serialise for transport/logging.
    pub fn to_value(&self) -> Value {
        let mut m = ValueMap::new();
        m.insert("name".into(), Value::Str(self.name.clone()));
        m.insert("data".into(), self.data.clone());
        Value::Map(m)
    }

    /// Inverse of [`Outcome::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::Context`] on malformed input.
    pub fn from_value(value: &Value) -> Result<Self, ActivityError> {
        let m = value
            .as_map()
            .ok_or_else(|| ActivityError::Context("outcome must be a map".into()))?;
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ActivityError::Context("outcome missing name".into()))?;
        let data = m.get("data").cloned().unwrap_or(Value::Null);
        Ok(Outcome { name: name.to_owned(), data })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventions() {
        assert!(Outcome::done().is_done());
        assert!(!Outcome::done().is_negative());
        assert!(Outcome::abort().is_negative());
        assert!(Outcome::from_error("x").is_negative());
        assert!(!Outcome::new("custom").is_done());
        assert!(!Outcome::new("custom").is_negative());
    }

    #[test]
    fn value_roundtrip() {
        let o = Outcome::new("voted").with_data(Value::from(true));
        assert_eq!(Outcome::from_value(&o.to_value()).unwrap(), o);
        assert!(Outcome::from_value(&Value::I64(1)).is_err());
    }

    #[test]
    fn display_is_name() {
        assert_eq!(Outcome::done().to_string(), "done");
    }
}
