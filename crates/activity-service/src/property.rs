//! PropertyGroups: per-activity tuple spaces with configurable visibility
//! and propagation (§3.3 of the paper).

use std::collections::HashMap;
use std::sync::Arc;

use orb::{Value, ValueMap};
use parking_lot::RwLock;

use crate::error::ActivityError;

/// How a group behaves when an activity begins a nested activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NestedVisibility {
    /// Parent and child share one store: the child sees and makes changes
    /// in place (the paper's "updated properties ... transmitted within
    /// nested contexts").
    #[default]
    Shared,
    /// The child starts with a private *copy* of the parent's properties;
    /// its changes stay local ("available only for the specific context in
    /// which they were set").
    CopyOnWrite,
    /// The child starts empty.
    Isolated,
}

/// How a group travels to "downstream" nodes on remote invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Propagation {
    /// A snapshot of the properties rides in the activity context.
    #[default]
    ByValue,
    /// Only the group's identity travels; the receiver resolves it against
    /// its own registry (sensible for node-local configuration).
    ByReference,
    /// The group never leaves the node.
    Local,
}

/// Behavioural contract of one property group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyGroupSpec {
    /// Group name (unique within an activity).
    pub name: String,
    /// Nested-activity behaviour.
    pub nested: NestedVisibility,
    /// Remote-invocation behaviour.
    pub propagation: Propagation,
}

impl PropertyGroupSpec {
    /// A spec with the default (shared, by-value) behaviour.
    pub fn new(name: impl Into<String>) -> Self {
        PropertyGroupSpec {
            name: name.into(),
            nested: NestedVisibility::default(),
            propagation: Propagation::default(),
        }
    }

    /// Builder-style: set nested visibility.
    #[must_use]
    pub fn nested(mut self, nested: NestedVisibility) -> Self {
        self.nested = nested;
        self
    }

    /// Builder-style: set propagation mode.
    #[must_use]
    pub fn propagation(mut self, propagation: Propagation) -> Self {
        self.propagation = propagation;
        self
    }
}

/// A property store: a tuple space of attribute–value pairs.
///
/// The paper deliberately does not mandate an implementation ("we simply
/// provide a mechanism for applications to obtain their own property store
/// implementations"); this trait is that mechanism, and
/// [`BasicPropertyGroup`] the bundled one.
pub trait PropertyGroup: Send + Sync {
    /// The group's behavioural contract.
    fn spec(&self) -> &PropertyGroupSpec;

    /// Read one property.
    fn get(&self, key: &str) -> Option<Value>;

    /// Write one property.
    fn set(&self, key: &str, value: Value);

    /// Remove one property, returning its previous value.
    fn remove(&self, key: &str) -> Option<Value>;

    /// A consistent snapshot of all properties.
    fn snapshot(&self) -> ValueMap;

    /// Bulk-load properties (used when materialising a by-value context on
    /// a downstream node).
    fn load(&self, properties: ValueMap);

    /// The view a nested activity should receive, per
    /// [`PropertyGroupSpec::nested`].
    fn for_child(self: Arc<Self>) -> Arc<dyn PropertyGroup>;
}

/// The bundled [`PropertyGroup`]: an `RwLock`-protected map.
#[derive(Debug)]
pub struct BasicPropertyGroup {
    spec: PropertyGroupSpec,
    store: RwLock<ValueMap>,
}

impl BasicPropertyGroup {
    /// An empty group with the given spec.
    pub fn new(spec: PropertyGroupSpec) -> Arc<Self> {
        Arc::new(BasicPropertyGroup { spec, store: RwLock::new(ValueMap::new()) })
    }

    /// A group pre-loaded with `properties`.
    pub fn with_properties(spec: PropertyGroupSpec, properties: ValueMap) -> Arc<Self> {
        Arc::new(BasicPropertyGroup { spec, store: RwLock::new(properties) })
    }
}

impl PropertyGroup for BasicPropertyGroup {
    fn spec(&self) -> &PropertyGroupSpec {
        &self.spec
    }

    fn get(&self, key: &str) -> Option<Value> {
        self.store.read().get(key).cloned()
    }

    fn set(&self, key: &str, value: Value) {
        self.store.write().insert(key.to_owned(), value);
    }

    fn remove(&self, key: &str) -> Option<Value> {
        self.store.write().remove(key)
    }

    fn snapshot(&self) -> ValueMap {
        self.store.read().clone()
    }

    fn load(&self, properties: ValueMap) {
        self.store.write().extend(properties);
    }

    fn for_child(self: Arc<Self>) -> Arc<dyn PropertyGroup> {
        match self.spec.nested {
            NestedVisibility::Shared => self,
            NestedVisibility::CopyOnWrite => {
                BasicPropertyGroup::with_properties(self.spec.clone(), self.snapshot())
            }
            NestedVisibility::Isolated => BasicPropertyGroup::new(self.spec.clone()),
        }
    }
}

/// The set of property groups registered with one activity. "An Activity
/// can support any number of registered PropertyGroups, each with its own
/// set of behaviour."
#[derive(Default)]
pub struct PropertyGroupManager {
    groups: RwLock<HashMap<String, Arc<dyn PropertyGroup>>>,
}

impl std::fmt::Debug for PropertyGroupManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PropertyGroupManager")
            .field("groups", &self.names())
            .finish()
    }
}

impl PropertyGroupManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a group under its spec name, replacing any previous one.
    pub fn register(&self, group: Arc<dyn PropertyGroup>) {
        self.groups.write().insert(group.spec().name.clone(), group);
    }

    /// Look up a group.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::UnknownPropertyGroup`] when absent.
    pub fn group(&self, name: &str) -> Result<Arc<dyn PropertyGroup>, ActivityError> {
        self.groups
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ActivityError::UnknownPropertyGroup(name.to_owned()))
    }

    /// Sorted names of registered groups.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.groups.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// The manager a nested activity should start with: each group
    /// contributes its [`PropertyGroup::for_child`] view.
    pub fn for_child(&self) -> PropertyGroupManager {
        let child = PropertyGroupManager::new();
        for group in self.groups.read().values() {
            child.register(Arc::clone(group).for_child());
        }
        child
    }

    /// The `(group name, snapshot)` pairs that should ride in a by-value
    /// remote context, honouring each group's propagation mode.
    pub fn propagated_by_value(&self) -> Vec<(String, ValueMap)> {
        let mut out: Vec<(String, ValueMap)> = self
            .groups
            .read()
            .values()
            .filter(|g| g.spec().propagation == Propagation::ByValue)
            .map(|g| (g.spec().name.clone(), g.snapshot()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Names of groups propagated by reference.
    pub fn propagated_by_reference(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .groups
            .read()
            .values()
            .filter(|g| g.spec().propagation == Propagation::ByReference)
            .map(|g| g.spec().name.clone())
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(name: &str, nested: NestedVisibility) -> Arc<BasicPropertyGroup> {
        BasicPropertyGroup::new(PropertyGroupSpec::new(name).nested(nested))
    }

    #[test]
    fn basic_get_set_remove() {
        let g = group("env", NestedVisibility::Shared);
        assert_eq!(g.get("locale"), None);
        g.set("locale", Value::from("en_GB"));
        assert_eq!(g.get("locale"), Some(Value::from("en_GB")));
        assert_eq!(g.remove("locale"), Some(Value::from("en_GB")));
        assert_eq!(g.get("locale"), None);
    }

    #[test]
    fn shared_child_sees_and_makes_parent_changes() {
        let parent = group("ctx", NestedVisibility::Shared);
        parent.set("k", Value::from(1i64));
        let child = Arc::clone(&parent).for_child();
        assert_eq!(child.get("k"), Some(Value::from(1i64)));
        child.set("k", Value::from(2i64));
        assert_eq!(parent.get("k"), Some(Value::from(2i64)), "shared store");
    }

    #[test]
    fn copy_on_write_child_is_independent() {
        let parent = group("ctx", NestedVisibility::CopyOnWrite);
        parent.set("k", Value::from(1i64));
        let child = Arc::clone(&parent).for_child();
        assert_eq!(child.get("k"), Some(Value::from(1i64)), "starts with a copy");
        child.set("k", Value::from(2i64));
        assert_eq!(parent.get("k"), Some(Value::from(1i64)), "parent unchanged");
        parent.set("k2", Value::from(3i64));
        assert_eq!(child.get("k2"), None, "later parent writes invisible");
    }

    #[test]
    fn isolated_child_starts_empty() {
        let parent = group("ctx", NestedVisibility::Isolated);
        parent.set("k", Value::from(1i64));
        let child = Arc::clone(&parent).for_child();
        assert_eq!(child.get("k"), None);
    }

    #[test]
    fn manager_registers_and_resolves() {
        let m = PropertyGroupManager::new();
        assert!(matches!(m.group("x"), Err(ActivityError::UnknownPropertyGroup(_))));
        m.register(group("b", NestedVisibility::Shared));
        m.register(group("a", NestedVisibility::Shared));
        assert_eq!(m.names(), vec!["a", "b"]);
        assert!(m.group("a").is_ok());
    }

    #[test]
    fn manager_child_view_mixes_behaviours() {
        // The paper's example: PG1 = client environment (shared downwards),
        // PG2 = per-context data (not inherited).
        let m = PropertyGroupManager::new();
        let pg1 = group("client-env", NestedVisibility::Shared);
        pg1.set("locale", Value::from("fr_FR"));
        let pg2 = group("app-ctx", NestedVisibility::Isolated);
        pg2.set("step", Value::from(3i64));
        m.register(pg1);
        m.register(pg2);

        let child = m.for_child();
        assert_eq!(
            child.group("client-env").unwrap().get("locale"),
            Some(Value::from("fr_FR"))
        );
        assert_eq!(child.group("app-ctx").unwrap().get("step"), None);
    }

    #[test]
    fn propagation_modes_partition_groups() {
        let m = PropertyGroupManager::new();
        let by_value =
            BasicPropertyGroup::new(PropertyGroupSpec::new("v").propagation(Propagation::ByValue));
        by_value.set("k", Value::from(1i64));
        m.register(by_value);
        m.register(BasicPropertyGroup::new(
            PropertyGroupSpec::new("r").propagation(Propagation::ByReference),
        ));
        m.register(BasicPropertyGroup::new(
            PropertyGroupSpec::new("l").propagation(Propagation::Local),
        ));

        let by_value = m.propagated_by_value();
        assert_eq!(by_value.len(), 1);
        assert_eq!(by_value[0].0, "v");
        assert_eq!(by_value[0].1.get("k"), Some(&Value::from(1i64)));
        assert_eq!(m.propagated_by_reference(), vec!["r"]);
    }

    #[test]
    fn load_merges() {
        let g = group("g", NestedVisibility::Shared);
        g.set("a", Value::from(1i64));
        let mut incoming = ValueMap::new();
        incoming.insert("b".into(), Value::from(2i64));
        g.load(incoming);
        assert_eq!(g.snapshot().len(), 2);
    }
}
