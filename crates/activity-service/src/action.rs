//! Actions: the receivers of Signals.
//!
//! Mirrors the paper's IDL:
//!
//! ```idl
//! interface Action {
//!     Outcome process_signal(in Signal sig) raises(ActionError);
//! };
//! ```
//!
//! Because Signal delivery is **at-least-once** (§3.4), every Action must be
//! idempotent: processing the same Signal twice must equal processing it
//! once. The [`RemoteActionProxy`]/[`ActionServant`] pair carries this
//! contract across the simulated network.

use std::sync::Arc;
use std::time::Duration;

use orb::{Orb, Request, RetryPolicy, Servant, Value};

use crate::error::{ActionError, ActivityError};
use crate::outcome::Outcome;
use crate::signal::Signal;

/// A participant in activity coordination: receives Signals, returns
/// Outcomes.
pub trait Action: Send + Sync {
    /// Handle one signal. **Must be idempotent**: the same signal may be
    /// delivered more than once.
    ///
    /// # Errors
    ///
    /// Returns [`ActionError`] when the action cannot process the signal;
    /// coordinators convert the failure into an `"error"` outcome and let
    /// the signal set decide how the protocol proceeds.
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError>;

    /// Diagnostic name, used in traces and recovery logs.
    fn name(&self) -> &str {
        "action"
    }
}

impl<T: Action + ?Sized> Action for Arc<T> {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        (**self).process_signal(signal)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Adapt a closure into a named [`Action`].
pub struct FnAction<F> {
    name: String,
    f: F,
}

impl<F> FnAction<F>
where
    F: Fn(&Signal) -> Result<Outcome, ActionError> + Send + Sync,
{
    /// Wrap `f` under `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnAction { name: name.into(), f }
    }
}

impl<F> Action for FnAction<F>
where
    F: Fn(&Signal) -> Result<Outcome, ActionError> + Send + Sync,
{
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        (self.f)(signal)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Operation name used for signal delivery over the ORB.
pub const PROCESS_SIGNAL_OP: &str = "process_signal";

/// Server side: exposes a local [`Action`] as an ORB [`Servant`], so remote
/// coordinators can signal it.
pub struct ActionServant {
    action: Arc<dyn Action>,
}

impl ActionServant {
    /// Wrap `action` for activation on a node.
    pub fn new(action: Arc<dyn Action>) -> Self {
        ActionServant { action }
    }
}

impl Servant for ActionServant {
    fn dispatch(&self, request: &Request) -> Result<Value, orb::OrbError> {
        if request.operation() != PROCESS_SIGNAL_OP {
            return Err(orb::OrbError::BadOperation(request.operation().to_owned()));
        }
        let signal_value = request
            .arg("signal")
            .ok_or_else(|| orb::OrbError::Codec("missing signal argument".into()))?;
        let signal = Signal::from_value(signal_value)
            .map_err(|e| orb::OrbError::Codec(e.to_string()))?;
        match self.action.process_signal(&signal) {
            Ok(outcome) => Ok(outcome.to_value()),
            Err(e) => Err(orb::OrbError::Application(e.message().to_owned())),
        }
    }
}

/// Client side: an [`Action`] that forwards every signal across the ORB with
/// **at-least-once** retry semantics, to an [`ActionServant`] activated
/// elsewhere.
pub struct RemoteActionProxy {
    name: String,
    orb: Orb,
    from_node: String,
    target: orb::ObjectRef,
    policy: Option<RetryPolicy>,
    deadline: Option<Duration>,
}

impl RemoteActionProxy {
    /// Build a proxy that invokes `target` from `from_node`.
    pub fn new(
        name: impl Into<String>,
        orb: Orb,
        from_node: impl Into<String>,
        target: orb::ObjectRef,
    ) -> Self {
        RemoteActionProxy {
            name: name.into(),
            orb,
            from_node: from_node.into(),
            target,
            policy: None,
            deadline: None,
        }
    }

    /// Deliver signals under an explicit [`RetryPolicy`] (backoff timed on
    /// the ORB's virtual clock) instead of the ORB's legacy immediate
    /// at-least-once loop.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Bound every delivery (including its backoff sleeps) by an absolute
    /// virtual-time deadline — typically the owning activity's
    /// [`crate::Activity::deadline`], so retry can never outlive the
    /// activity's own timeout.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The remote object this proxy signals.
    pub fn target(&self) -> &orb::ObjectRef {
        &self.target
    }
}

impl Action for RemoteActionProxy {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        let mut request = Request::new(PROCESS_SIGNAL_OP).with_arg("signal", signal.to_value());
        // Bridge the activity-level delivery id down to the ORB layer: every
        // retry and every duplicate of this call shares it, so a
        // `DedupWindow` on the server side is effect-once even when the
        // remote action itself is not wrapped in `ExactlyOnceAction`.
        if let Some(id) = signal.delivery_id() {
            request.set_delivery_id(id);
        }
        let reply = match &self.policy {
            Some(policy) => self.orb.invoke_with_policy(
                &self.from_node,
                &self.target,
                request,
                policy,
                self.deadline,
            ),
            None => self.orb.invoke_at_least_once(&self.from_node, &self.target, request),
        }
        .map_err(|e| ActionError::new(e.to_string()))?;
        Outcome::from_value(&reply.result).map_err(|e: ActivityError| ActionError::new(e.to_string()))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::NetworkConfig;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn fn_action_delegates() {
        let a = FnAction::new("echo", |sig: &Signal| {
            Ok(Outcome::new("seen").with_data(Value::from(sig.name())))
        });
        let out = a.process_signal(&Signal::new("ping", "set")).unwrap();
        assert_eq!(out.data().as_str(), Some("ping"));
        assert_eq!(a.name(), "echo");
    }

    #[test]
    fn remote_proxy_roundtrip() {
        let orb = Orb::new();
        let node = orb.add_node("server").unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let hits2 = Arc::clone(&hits);
        let action: Arc<dyn Action> = Arc::new(FnAction::new("counter", move |_s: &Signal| {
            hits2.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }));
        let obj = node.activate("Action", ActionServant::new(action)).unwrap();
        let proxy = RemoteActionProxy::new("counter-proxy", orb.clone(), "client", obj);
        let out = proxy.process_signal(&Signal::new("go", "set")).unwrap();
        assert!(out.is_done());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn remote_proxy_survives_lossy_network() {
        // 40% drop: at-least-once retry gets the signal through, possibly
        // executing it several times — the action must tolerate that.
        let orb = Orb::builder()
            .network(NetworkConfig::lossy(0.4, 0.2, 99))
            .retry_budget(64)
            .build();
        let node = orb.add_node("server").unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let hits2 = Arc::clone(&hits);
        let action: Arc<dyn Action> = Arc::new(FnAction::new("idempotent", move |_s: &Signal| {
            hits2.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }));
        let obj = node.activate("Action", ActionServant::new(action)).unwrap();
        let proxy = RemoteActionProxy::new("p", orb, "client", obj);
        let out = proxy.process_signal(&Signal::new("go", "set")).unwrap();
        assert!(out.is_done());
        assert!(hits.load(Ordering::SeqCst) >= 1, "delivered at least once");
    }

    #[test]
    fn remote_action_error_propagates() {
        let orb = Orb::new();
        let node = orb.add_node("server").unwrap();
        let action: Arc<dyn Action> =
            Arc::new(FnAction::new("grumpy", |_s: &Signal| Err(ActionError::new("no thanks"))));
        let obj = node.activate("Action", ActionServant::new(action)).unwrap();
        let proxy = RemoteActionProxy::new("p", orb, "client", obj);
        let err = proxy.process_signal(&Signal::new("go", "set")).unwrap_err();
        assert!(err.message().contains("no thanks"));
    }

    #[test]
    fn proxy_policy_retries_through_a_lossy_network() {
        let orb = Orb::builder()
            .network(NetworkConfig::lossy(0.4, 0.0, 77))
            .build();
        let node = orb.add_node("server").unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let hits2 = Arc::clone(&hits);
        let action: Arc<dyn Action> = Arc::new(FnAction::new("idempotent", move |_s: &Signal| {
            hits2.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }));
        let obj = node.activate("Action", ActionServant::new(action)).unwrap();
        let proxy = RemoteActionProxy::new("p", orb, "client", obj)
            .with_policy(RetryPolicy::new(64).with_base_backoff(Duration::from_micros(100)));
        let out = proxy.process_signal(&Signal::new("go", "set")).unwrap();
        assert!(out.is_done());
        assert!(hits.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn proxy_deadline_bounds_retry_and_reports_the_exhausted_budget() {
        // Total loss: without a deadline the policy would burn all its
        // attempts; with one, it stops as soon as the next backoff would
        // cross it — the activity's timeout composes with retry.
        let orb = Orb::builder()
            .network(NetworkConfig::lossy(1.0, 0.0, 78))
            .build();
        let node = orb.add_node("server").unwrap();
        let action: Arc<dyn Action> =
            Arc::new(FnAction::new("never", |_s: &Signal| Ok(Outcome::done())));
        let obj = node.activate("Action", ActionServant::new(action)).unwrap();
        let proxy = RemoteActionProxy::new("p", orb.clone(), "client", obj)
            .with_policy(RetryPolicy::new(1000).with_base_backoff(Duration::from_millis(1)))
            .with_deadline(Duration::from_millis(10));
        let err = proxy.process_signal(&Signal::new("go", "set")).unwrap_err();
        assert!(err.message().contains("deadline exceeded"), "{}", err.message());
        assert!(orb.clock().now() <= Duration::from_millis(10));
    }

    #[test]
    fn proxy_bridges_the_signal_delivery_id_onto_the_request() {
        use orb::Servant as _;
        use parking_lot::Mutex;

        let orb = Orb::new();
        let node = orb.add_node("server").unwrap();
        let seen: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let action: Arc<dyn Action> =
            Arc::new(FnAction::new("a", |_s: &Signal| Ok(Outcome::done())));
        let servant = ActionServant::new(action);
        let obj = node
            .activate("Action", move |req: &Request| {
                seen2.lock().push(req.delivery_id().map(str::to_owned));
                servant.dispatch(req)
            })
            .unwrap();
        let proxy = RemoteActionProxy::new("p", orb, "client", obj);
        proxy
            .process_signal(&Signal::new("go", "set").with_delivery_id("act-1:set:1"))
            .unwrap();
        assert_eq!(seen.lock().as_slice(), &[Some("act-1:set:1".to_owned())]);
    }

    #[test]
    fn servant_rejects_unknown_operations() {
        let action: Arc<dyn Action> =
            Arc::new(FnAction::new("a", |_s: &Signal| Ok(Outcome::done())));
        let servant = ActionServant::new(action);
        let err = servant.dispatch(&Request::new("bogus")).unwrap_err();
        assert!(matches!(err, orb::OrbError::BadOperation(_)));
        let err = servant.dispatch(&Request::new(PROCESS_SIGNAL_OP)).unwrap_err();
        assert!(matches!(err, orb::OrbError::Codec(_)));
    }
}
