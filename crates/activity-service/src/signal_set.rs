//! SignalSets: the pluggable protocol engines (§3.2.3 and fig. 7).
//!
//! Mirrors the paper's IDL:
//!
//! ```idl
//! interface SignalSet {
//!     readonly attribute string signal_set_name;
//!     Signal get_signal (inout boolean lastSignal);
//!     Outcome get_outcome () raises(SignalSetActive);
//!     boolean set_response (in Outcome response, out boolean nextSignal)
//!                           raises (SignalSetInactive);
//!     void set_completion_status (in CompletionStatus cs);
//!     CompletionStatus get_completion_status ();
//! };
//! ```
//!
//! "The intelligence about which Signal to send to an Action is hidden
//! within a SignalSet and may be as complex or as simple as is required."

use crate::completion::CompletionStatus;
use crate::error::ActivityError;
use crate::outcome::Outcome;
use crate::signal::Signal;

/// What a [`SignalSet`] produces when asked for a signal.
#[derive(Debug, Clone, PartialEq)]
pub enum NextSignal {
    /// Send this signal to every registered action; more signals may follow.
    Signal(Signal),
    /// Send this signal; it is the set's last one.
    LastSignal(Signal),
    /// The set has nothing (more) to send.
    End,
}

/// How the set wants the coordinator to proceed after one action's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AfterResponse {
    /// Keep delivering the current signal to the remaining actions.
    Continue,
    /// Abandon the current signal and request a new one immediately (e.g. a
    /// rollback vote arrived and the protocol must switch course).
    RequestNext,
}

/// A protocol engine: generates the Signals the coordinator distributes and
/// digests the Outcomes that come back.
///
/// Implementations are driven by exactly one coordinator run and must not be
/// reused after reaching their End state (fig. 7). They receive `&mut self`
/// because they are inherently stateful; the coordinator provides the
/// necessary synchronisation.
pub trait SignalSet: Send {
    /// The set's name — what Actions register interest under.
    fn signal_set_name(&self) -> &str;

    /// Produce the next signal (fig. 7: `Waiting`/`Get Signal` → `Get
    /// Signal`), or [`NextSignal::End`].
    fn get_signal(&mut self) -> NextSignal;

    /// Digest one action's response to the most recent signal.
    fn set_response(&mut self, response: &Outcome) -> AfterResponse;

    /// The collated outcome of the whole run. Only meaningful once the set
    /// has ended; the coordinator enforces this.
    fn get_outcome(&mut self) -> Outcome;

    /// Tell the set what completion status the activity is driving towards
    /// ("which SignalSet is used ... is indicated by an appropriate
    /// CompletionStatus value").
    fn set_completion_status(&mut self, status: CompletionStatus);

    /// The completion status previously set (default `Success`).
    fn completion_status(&self) -> CompletionStatus;
}

/// The fig. 7 state machine, enforced at runtime by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignalSetState {
    /// Created, not yet asked for a signal.
    #[default]
    Waiting,
    /// Producing signals.
    GetSignal,
    /// Finished; may not produce further signals and will not be reused.
    End,
}

impl SignalSetState {
    /// Apply the "coordinator asked for a signal" event.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::SignalSetInactive`] when the set already
    /// ended.
    pub fn on_get_signal(self, set_name: &str, produced_end: bool) -> Result<Self, ActivityError> {
        match self {
            SignalSetState::Waiting | SignalSetState::GetSignal => {
                Ok(if produced_end { SignalSetState::End } else { SignalSetState::GetSignal })
            }
            SignalSetState::End => Err(ActivityError::SignalSetInactive(set_name.to_owned())),
        }
    }

    /// Apply the "all actions have seen the last signal" event.
    pub fn on_last_signal_delivered(self) -> Self {
        SignalSetState::End
    }

    /// Check that the outcome may be read.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::SignalSetActive`] while signals are still
    /// being produced.
    pub fn check_outcome_readable(self, set_name: &str) -> Result<(), ActivityError> {
        match self {
            SignalSetState::End => Ok(()),
            _ => Err(ActivityError::SignalSetActive(set_name.to_owned())),
        }
    }
}

/// The simplest useful [`SignalSet`]: broadcast one fixed signal to every
/// registered action and report `done` unless any action responded
/// negatively.
///
/// Many of the paper's sketches ("the termination of one activity may
/// initiate the start/restart of other activities") need nothing more.
#[derive(Debug)]
pub struct BroadcastSignalSet {
    set_name: String,
    signal: Option<Signal>,
    negative: usize,
    responses: usize,
    completion: CompletionStatus,
}

impl BroadcastSignalSet {
    /// Broadcast `signal_name` (with `data`) under this set's name.
    pub fn new(set_name: impl Into<String>, signal_name: impl Into<String>, data: orb::Value) -> Self {
        let set_name = set_name.into();
        let signal = Signal::new(signal_name, set_name.clone()).with_data(data);
        BroadcastSignalSet {
            set_name,
            signal: Some(signal),
            negative: 0,
            responses: 0,
            completion: CompletionStatus::default(),
        }
    }

    /// Number of responses digested.
    pub fn responses(&self) -> usize {
        self.responses
    }
}

impl SignalSet for BroadcastSignalSet {
    fn signal_set_name(&self) -> &str {
        &self.set_name
    }

    fn get_signal(&mut self) -> NextSignal {
        match self.signal.take() {
            Some(signal) => NextSignal::LastSignal(signal),
            None => NextSignal::End,
        }
    }

    fn set_response(&mut self, response: &Outcome) -> AfterResponse {
        self.responses += 1;
        if response.is_negative() {
            self.negative += 1;
        }
        AfterResponse::Continue
    }

    fn get_outcome(&mut self) -> Outcome {
        if self.negative == 0 {
            Outcome::done().with_data(orb::Value::U64(self.responses as u64))
        } else {
            Outcome::abort().with_data(orb::Value::U64(self.negative as u64))
        }
    }

    fn set_completion_status(&mut self, status: CompletionStatus) {
        self.completion = status;
    }

    fn completion_status(&self) -> CompletionStatus {
        self.completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_follows_fig7() {
        let s = SignalSetState::default();
        assert_eq!(s, SignalSetState::Waiting);
        assert!(s.check_outcome_readable("x").is_err());

        let s = s.on_get_signal("x", false).unwrap();
        assert_eq!(s, SignalSetState::GetSignal);
        assert!(s.check_outcome_readable("x").is_err());
        let s = s.on_get_signal("x", false).unwrap();
        assert_eq!(s, SignalSetState::GetSignal);

        let s = s.on_last_signal_delivered();
        assert_eq!(s, SignalSetState::End);
        assert!(s.check_outcome_readable("x").is_ok());
        assert!(matches!(
            s.on_get_signal("x", false),
            Err(ActivityError::SignalSetInactive(_))
        ));
    }

    #[test]
    fn waiting_straight_to_end_when_no_signals() {
        // Fig. 7 allows Waiting → End for a set with nothing to send.
        let s = SignalSetState::Waiting.on_get_signal("x", true).unwrap();
        assert_eq!(s, SignalSetState::End);
    }

    #[test]
    fn broadcast_set_sends_once_and_collates() {
        let mut set = BroadcastSignalSet::new("Notify", "wake", orb::Value::Null);
        assert_eq!(set.signal_set_name(), "Notify");
        let NextSignal::LastSignal(sig) = set.get_signal() else {
            panic!("expected last signal")
        };
        assert_eq!(sig.name(), "wake");
        assert_eq!(sig.signal_set_name(), "Notify");
        assert_eq!(set.set_response(&Outcome::done()), AfterResponse::Continue);
        assert_eq!(set.set_response(&Outcome::done()), AfterResponse::Continue);
        assert_eq!(set.get_signal(), NextSignal::End);
        let out = set.get_outcome();
        assert!(out.is_done());
        assert_eq!(out.data().as_u64(), Some(2));
    }

    #[test]
    fn broadcast_set_reports_negatives() {
        let mut set = BroadcastSignalSet::new("Notify", "wake", orb::Value::Null);
        let _ = set.get_signal();
        set.set_response(&Outcome::done());
        set.set_response(&Outcome::abort());
        let out = set.get_outcome();
        assert!(out.is_negative());
        assert_eq!(out.data().as_u64(), Some(1));
    }

    #[test]
    fn completion_status_is_stored() {
        let mut set = BroadcastSignalSet::new("n", "s", orb::Value::Null);
        assert_eq!(set.completion_status(), CompletionStatus::Success);
        set.set_completion_status(CompletionStatus::FailOnly);
        assert_eq!(set.completion_status(), CompletionStatus::FailOnly);
    }
}
