//! The high-level-service API of fig. 13 (the J2EE Activity Service /
//! JSR 95 shape): `UserActivity` for demarcation, `ActivityManager` for
//! HLS implementers.
//!
//! "The high-level service (HLS) specifies a specific extended transaction
//! model. ... The ActivityManager provides a simplified way in which HLS
//! implementers interact with the underlying Activity Service
//! implementation. ... Activities can be demarcated through UserActivity."

use std::sync::Arc;
use std::time::Duration;


use crate::action::Action;
use crate::activity::{Activity, ActivityState};
use crate::completion::CompletionStatus;
use crate::error::ActivityError;
use crate::outcome::Outcome;
use crate::service::ActivityService;
use crate::signal_set::SignalSet;

/// Application-facing demarcation API (fig. 13's `UserActivity`).
///
/// Every operation targets the calling thread's current activity, so
/// application code never handles [`Activity`] objects directly.
#[derive(Debug, Clone)]
pub struct UserActivity {
    service: ActivityService,
}

impl UserActivity {
    /// A demarcation facade over `service`.
    pub fn new(service: ActivityService) -> Self {
        UserActivity { service }
    }

    /// Begin a (possibly nested) activity on this thread.
    ///
    /// # Errors
    ///
    /// See [`ActivityService::begin`].
    pub fn begin(&self, name: impl Into<String>) -> Result<(), ActivityError> {
        self.service.begin(name)?;
        Ok(())
    }

    /// Begin with a timeout: the activity is doomed to `FailOnly` once the
    /// virtual clock passes it.
    ///
    /// # Errors
    ///
    /// See [`ActivityService::begin`].
    pub fn begin_with_timeout(
        &self,
        name: impl Into<String>,
        timeout: Duration,
    ) -> Result<(), ActivityError> {
        let activity = self.service.begin(name)?;
        activity.set_timeout(timeout);
        Ok(())
    }

    /// Complete the current activity with its current status.
    ///
    /// # Errors
    ///
    /// See [`ActivityService::complete`].
    pub fn complete(&self) -> Result<Outcome, ActivityError> {
        self.service.complete()
    }

    /// Complete the current activity with an explicit status.
    ///
    /// # Errors
    ///
    /// See [`ActivityService::complete_with_status`].
    pub fn complete_with_status(
        &self,
        status: CompletionStatus,
    ) -> Result<Outcome, ActivityError> {
        self.service.complete_with_status(status)
    }

    /// Set the current activity's completion status.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`]; or an illegal transition.
    pub fn set_completion_status(&self, status: CompletionStatus) -> Result<(), ActivityError> {
        self.current()?.set_completion_status(status)
    }

    /// The current activity's completion status.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`].
    pub fn completion_status(&self) -> Result<CompletionStatus, ActivityError> {
        Ok(self.current()?.completion_status())
    }

    /// The current activity's lifecycle state.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`].
    pub fn status(&self) -> Result<ActivityState, ActivityError> {
        Ok(self.current()?.state())
    }

    /// The current activity's name.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`].
    pub fn activity_name(&self) -> Result<String, ActivityError> {
        Ok(self.current()?.name().to_owned())
    }

    /// Detach the current activity from this thread (to resume elsewhere).
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`].
    pub fn suspend(&self) -> Result<Activity, ActivityError> {
        self.service.suspend()
    }

    /// Re-attach a suspended activity to this thread.
    pub fn resume(&self, activity: Activity) {
        self.service.resume(activity)
    }

    fn current(&self) -> Result<Activity, ActivityError> {
        self.service.current().ok_or(ActivityError::NoCurrentActivity)
    }
}

/// HLS-implementer API (fig. 13's `ActivityManager`): plug SignalSets and
/// Actions into the *current* activity.
#[derive(Debug, Clone)]
pub struct ActivityManager {
    service: ActivityService,
}

impl ActivityManager {
    /// A manager facade over `service`.
    pub fn new(service: ActivityService) -> Self {
        ActivityManager { service }
    }

    /// Associate a SignalSet with the current activity.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`]; or see
    /// [`crate::coordinator::ActivityCoordinator::add_signal_set`].
    pub fn add_signal_set(&self, set: Box<dyn SignalSet>) -> Result<(), ActivityError> {
        self.current()?.coordinator().add_signal_set(set)
    }

    /// Register an Action with a SignalSet of the current activity.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`].
    pub fn register_action(
        &self,
        set_name: &str,
        action: Arc<dyn Action>,
    ) -> Result<(), ActivityError> {
        self.current()?.coordinator().register_action(set_name, action);
        Ok(())
    }

    /// Designate the SignalSet that completion will drive.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`].
    pub fn set_completion_signal_set(&self, set_name: &str) -> Result<(), ActivityError> {
        self.current()?.set_completion_signal_set(set_name);
        Ok(())
    }

    /// Run an associated SignalSet of the current activity now.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`]; or coordinator failures.
    pub fn broadcast(&self, set_name: &str) -> Result<Outcome, ActivityError> {
        self.current()?.signal(set_name)
    }

    /// The current activity (escape hatch for HLS code needing the full
    /// object).
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`].
    pub fn current_activity(&self) -> Result<Activity, ActivityError> {
        self.current()
    }

    fn current(&self) -> Result<Activity, ActivityError> {
        self.service.current().ok_or(ActivityError::NoCurrentActivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::FnAction;
    use crate::signal::Signal;
    use crate::signal_set::BroadcastSignalSet;
    use orb::Value;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn facades() -> (UserActivity, ActivityManager) {
        let svc = ActivityService::new();
        (UserActivity::new(svc.clone()), ActivityManager::new(svc))
    }

    #[test]
    fn no_current_activity_errors() {
        let (ua, am) = facades();
        assert!(matches!(ua.complete(), Err(ActivityError::NoCurrentActivity)));
        assert!(matches!(ua.status(), Err(ActivityError::NoCurrentActivity)));
        assert!(matches!(
            am.register_action("s", Arc::new(FnAction::new("a", |_s: &Signal| Ok(Outcome::done())))),
            Err(ActivityError::NoCurrentActivity)
        ));
        assert!(matches!(am.broadcast("s"), Err(ActivityError::NoCurrentActivity)));
    }

    #[test]
    fn fig13_layering_hls_over_user_activity() {
        let (ua, am) = facades();
        ua.begin("business-activity").unwrap();
        assert_eq!(ua.activity_name().unwrap(), "business-activity");
        assert_eq!(ua.status().unwrap(), ActivityState::Active);

        // The HLS plugs in its protocol...
        am.add_signal_set(Box::new(BroadcastSignalSet::new("Done", "finished", Value::Null)))
            .unwrap();
        am.set_completion_signal_set("Done").unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let hits2 = Arc::clone(&hits);
        am.register_action(
            "Done",
            Arc::new(FnAction::new("hls-action", move |_s: &Signal| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Ok(Outcome::done())
            })),
        )
        .unwrap();

        // ...and the application demarcates, oblivious to it.
        let outcome = ua.complete().unwrap();
        assert!(outcome.is_done());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn completion_status_via_user_activity() {
        let (ua, _) = facades();
        ua.begin("a").unwrap();
        assert_eq!(ua.completion_status().unwrap(), CompletionStatus::Success);
        ua.set_completion_status(CompletionStatus::FailOnly).unwrap();
        let out = ua.complete().unwrap();
        assert!(out.is_negative());
    }

    #[test]
    fn timeout_via_user_activity() {
        let svc = ActivityService::new();
        let ua = UserActivity::new(svc.clone());
        ua.begin_with_timeout("slow", Duration::from_millis(10)).unwrap();
        svc.clock().advance(Duration::from_millis(20));
        let out = ua.complete().unwrap();
        assert!(out.is_negative());
    }

    #[test]
    fn suspend_resume_via_user_activity() {
        let (ua, _) = facades();
        ua.begin("mobile").unwrap();
        let held = ua.suspend().unwrap();
        assert!(matches!(ua.status(), Err(ActivityError::NoCurrentActivity)));
        ua.resume(held);
        ua.complete().unwrap();
    }
}

/// The §5.1 "Work Service Area" effort (\[17\], JSR 149): a standardised,
/// demarcated tuple space built on the PropertyGroup concept. Work areas
/// nest: beginning one inside another starts from a *copy* of the
/// enclosing area (reads fall through), and completing it discards the
/// nested changes — scoped context for the code between `begin` and
/// `complete`.
#[derive(Debug, Clone)]
pub struct UserWorkArea {
    stack: Arc<parking_lot::Mutex<Vec<WorkAreaFrame>>>,
}

#[derive(Debug)]
struct WorkAreaFrame {
    name: String,
    group: Arc<crate::property::BasicPropertyGroup>,
}

impl Default for UserWorkArea {
    fn default() -> Self {
        Self::new()
    }
}

impl UserWorkArea {
    /// A fresh (empty) work-area stack.
    pub fn new() -> Self {
        UserWorkArea { stack: Arc::new(parking_lot::Mutex::new(Vec::new())) }
    }

    /// Begin a (possibly nested) work area. A nested area starts with a
    /// copy of its parent's properties.
    pub fn begin(&self, name: impl Into<String>) {
        use crate::property::{NestedVisibility, PropertyGroup, PropertyGroupSpec};
        let name = name.into();
        let mut stack = self.stack.lock();
        let spec = PropertyGroupSpec::new(format!("workarea:{name}"))
            .nested(NestedVisibility::CopyOnWrite);
        let group = match stack.last() {
            Some(parent) => {
                crate::property::BasicPropertyGroup::with_properties(spec, parent.group.snapshot())
            }
            None => crate::property::BasicPropertyGroup::new(spec),
        };
        stack.push(WorkAreaFrame { name, group });
    }

    /// Name of the innermost open work area.
    pub fn area_name(&self) -> Option<String> {
        self.stack.lock().last().map(|f| f.name.clone())
    }

    /// Nesting depth (0 = no open area).
    pub fn depth(&self) -> usize {
        self.stack.lock().len()
    }

    /// Set a property in the innermost area.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`] when no area is open.
    pub fn set(&self, key: &str, value: orb::Value) -> Result<(), ActivityError> {
        use crate::property::PropertyGroup;
        let stack = self.stack.lock();
        let frame = stack.last().ok_or(ActivityError::NoCurrentActivity)?;
        frame.group.set(key, value);
        Ok(())
    }

    /// Read a property from the innermost area (which already contains its
    /// ancestors' values by copy).
    pub fn get(&self, key: &str) -> Option<orb::Value> {
        use crate::property::PropertyGroup;
        self.stack.lock().last().and_then(|f| f.group.get(key))
    }

    /// Remove a property from the innermost area.
    pub fn remove(&self, key: &str) -> Option<orb::Value> {
        use crate::property::PropertyGroup;
        self.stack.lock().last().and_then(|f| f.group.remove(key))
    }

    /// Complete the innermost area, discarding its changes.
    ///
    /// # Errors
    ///
    /// [`ActivityError::NoCurrentActivity`] when no area is open.
    pub fn complete(&self) -> Result<(), ActivityError> {
        self.stack
            .lock()
            .pop()
            .map(|_| ())
            .ok_or(ActivityError::NoCurrentActivity)
    }
}

#[cfg(test)]
mod work_area_tests {
    use super::*;
    use orb::Value;

    #[test]
    fn scoped_nesting_with_copy_semantics() {
        let wa = UserWorkArea::new();
        assert!(wa.area_name().is_none());
        assert!(matches!(wa.set("k", Value::Null), Err(ActivityError::NoCurrentActivity)));

        wa.begin("outer");
        wa.set("user", Value::from("ada")).unwrap();
        wa.set("role", Value::from("admin")).unwrap();

        wa.begin("inner");
        assert_eq!(wa.depth(), 2);
        assert_eq!(wa.area_name().as_deref(), Some("inner"));
        // Inherited by copy…
        assert_eq!(wa.get("user"), Some(Value::from("ada")));
        // …and shadowable without touching the outer area.
        wa.set("role", Value::from("viewer")).unwrap();
        assert_eq!(wa.get("role"), Some(Value::from("viewer")));
        assert_eq!(wa.remove("user"), Some(Value::from("ada")));
        assert_eq!(wa.get("user"), None);

        wa.complete().unwrap();
        // The outer area is untouched by everything the inner one did.
        assert_eq!(wa.get("role"), Some(Value::from("admin")));
        assert_eq!(wa.get("user"), Some(Value::from("ada")));
        wa.complete().unwrap();
        assert!(matches!(wa.complete(), Err(ActivityError::NoCurrentActivity)));
    }

    #[test]
    fn sibling_areas_are_independent() {
        let wa = UserWorkArea::new();
        wa.begin("first");
        wa.set("k", Value::from(1i64)).unwrap();
        wa.complete().unwrap();
        wa.begin("second");
        assert_eq!(wa.get("k"), None, "completed siblings leave nothing behind");
        wa.complete().unwrap();
    }
}
