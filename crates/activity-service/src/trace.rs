//! Protocol tracing: a recorder for coordinator/signal/action interactions.
//!
//! The paper's figs. 8, 10, 11 and 12 are message-sequence charts; the
//! integration tests regenerate them by attaching a [`TraceLog`] to a
//! coordinator and asserting the exact recorded exchange.

use std::fmt;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

/// One observed protocol step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The coordinator asked the signal set for a signal.
    GetSignal {
        /// Signal set asked.
        set: String,
    },
    /// A signal was transmitted to an action.
    Transmit {
        /// Signal name.
        signal: String,
        /// Receiving action's name.
        action: String,
    },
    /// The action's outcome was fed back to the set.
    SetResponse {
        /// Signal set informed.
        set: String,
        /// Outcome name.
        outcome: String,
    },
    /// The coordinator read the collated outcome.
    GetOutcome {
        /// Signal set asked.
        set: String,
        /// Collated outcome name.
        outcome: String,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::GetSignal { set } => write!(f, "get_signal({set})"),
            TraceEvent::Transmit { signal, action } => write!(f, "{signal:?} -> {action}"),
            TraceEvent::SetResponse { set, outcome } => {
                write!(f, "set_response({set}, {outcome})")
            }
            TraceEvent::GetOutcome { set, outcome } => {
                write!(f, "get_outcome({set}) = {outcome}")
            }
        }
    }
}

/// A shared, append-only recording of [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Arc<Mutex<Vec<TraceEvent>>>,
    /// Optional flight-recorder mirror: each recorded event also lands in
    /// the node's black box (kind `trace`, rendered exactly as
    /// [`TraceLog::render`] would), so oracle #11 can check the recorder
    /// preserved the trace's causal order.
    recorder: Arc<OnceLock<telemetry::FlightRecorder>>,
}

impl TraceLog {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror every future event into `recorder` (kind `trace`).
    /// Write-once so the hot path reads it with a single atomic load
    /// (no lock even when attached-but-disabled); later calls are ignored.
    pub fn set_recorder(&self, recorder: telemetry::FlightRecorder) {
        let _ = self.recorder.set(recorder);
    }

    /// Append one event.
    pub fn record(&self, event: TraceEvent) {
        if let Some(recorder) = self.recorder.get() {
            recorder.record(telemetry::RecordKind::Trace, || event.to_string());
        }
        self.events.lock().push(event);
    }

    /// Snapshot of all events so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Compact, line-per-event rendering (handy in assertion failures).
    pub fn render(&self) -> String {
        self.events
            .lock()
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Clear all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_renders() {
        let log = TraceLog::new();
        assert!(log.is_empty());
        log.record(TraceEvent::GetSignal { set: "2pc".into() });
        log.record(TraceEvent::Transmit { signal: "prepare".into(), action: "a1".into() });
        log.record(TraceEvent::SetResponse { set: "2pc".into(), outcome: "done".into() });
        log.record(TraceEvent::GetOutcome { set: "2pc".into(), outcome: "done".into() });
        assert_eq!(log.len(), 4);
        let rendered = log.render();
        assert!(rendered.contains("get_signal(2pc)"));
        assert!(rendered.contains("\"prepare\" -> a1"));
        assert!(rendered.contains("get_outcome(2pc) = done"));
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = TraceLog::new();
        let b = a.clone();
        a.record(TraceEvent::GetSignal { set: "s".into() });
        assert_eq!(b.len(), 1);
    }
}
