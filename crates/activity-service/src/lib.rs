//! The CORBA Activity Service framework — the primary contribution of
//! Houston, Little, Robinson, Shrivastava and Wheater, *"The CORBA Activity
//! Service Framework for Supporting Extended Transactions"* (Middleware
//! 2001 / SP&E 33(4), 2003), reproduced in Rust.
//!
//! The design insight of the paper: every extended transaction model —
//! two-phase commit, open nesting with compensation, Sagas, LRUOW, workflow
//! coordination, BTP atoms and cohesions — can be expressed over one
//! **general-purpose event signalling mechanism**:
//!
//! * an [`activity::Activity`] is a unit of (distributed) work, arranged in
//!   trees, possibly long-running, suspendable, with a three-valued
//!   [`completion::CompletionStatus`];
//! * each activity has an [`coordinator::ActivityCoordinator`] that drives
//!   pluggable [`signal_set::SignalSet`] protocol engines;
//! * a SignalSet emits [`signal::Signal`]s; the coordinator transmits each
//!   signal to every [`action::Action`] registered with that set and feeds
//!   their [`outcome::Outcome`]s back, advancing the protocol;
//! * [`property::PropertyGroup`]s attach configurable tuple-space state to
//!   activities (§3.3);
//! * the [`service::ActivityService`] associates activities with threads
//!   and, through ORB interceptors, propagates
//!   [`context::ActivityContext`]s on every remote invocation;
//! * [`recovery`] persists the activity structure and rebuilds it after a
//!   crash (§3.4);
//! * [`hls`] is the fig. 13 high-level API (`UserActivity` /
//!   `ActivityManager`, the JSR 95 shape).
//!
//! Signal delivery is **at-least-once** (§3.4): Actions must be idempotent.
//! The `orb` crate's fault injection exercises exactly that.
//!
//! # Example: an activity with a completion protocol
//!
//! ```
//! use std::sync::Arc;
//! use activity_service::{ActivityService, BroadcastSignalSet, FnAction, Outcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = ActivityService::new();
//! let activity = service.begin("quote-request")?;
//!
//! activity.coordinator().add_signal_set(Box::new(BroadcastSignalSet::new(
//!     "Completed",
//!     "finished",
//!     orb::Value::Null,
//! )))?;
//! activity.set_completion_signal_set("Completed");
//! activity.coordinator().register_action(
//!     "Completed",
//!     Arc::new(FnAction::new("auditor", |signal| {
//!         assert_eq!(signal.name(), "finished");
//!         Ok(Outcome::done())
//!     })),
//! );
//!
//! let outcome = service.complete()?;
//! assert!(outcome.is_done());
//! # Ok(())
//! # }
//! ```

pub mod action;
pub mod activity;
pub mod completion;
pub mod context;
pub mod coordinator;
pub mod dispatch;
pub mod error;
pub mod exactly_once;
pub mod hls;
pub mod interposition;
pub mod journal;
pub mod outcome;
pub mod property;
pub mod reaper;
pub mod recovery;
pub mod service;
pub mod signal;
pub mod signal_set;
pub mod trace;

pub use action::{Action, ActionServant, FnAction, RemoteActionProxy};
pub use activity::{Activity, ActivityId, ActivityState};
pub use completion::CompletionStatus;
pub use context::ActivityContext;
pub use coordinator::{failpoints, ActivityCoordinator};
pub use dispatch::DispatchConfig;
pub use error::{ActionError, ActivityError};
pub use exactly_once::ExactlyOnceAction;
pub use hls::{ActivityManager, UserActivity, UserWorkArea};
pub use interposition::{interpose, CollationPolicy, SubordinateRelay};
pub use journal::{ActivityEvent, ActivityJournal};
pub use outcome::Outcome;
pub use property::{
    BasicPropertyGroup, NestedVisibility, Propagation, PropertyGroup, PropertyGroupManager,
    PropertyGroupSpec,
};
pub use reaper::{OrphanReaper, ReapReport};
pub use recovery::{
    recover_activities, ActionFactories, ActivityLogger, RecoveredService, SignalSetFactories,
};
pub use service::{ActivityService, ActivityServiceBuilder};
pub use signal::Signal;
pub use signal_set::{AfterResponse, BroadcastSignalSet, NextSignal, SignalSet, SignalSetState};
pub use trace::{TraceEvent, TraceLog};
