//! Concurrent signal fan-out with ordered collation.
//!
//! The paper's fig. 5 loop transmits each Signal to every registered
//! Action and feeds the Outcomes back into the SignalSet. The Actions
//! are independent distributed objects, so the *transmissions* are
//! embarrassingly parallel — but SignalSet protocol engines are
//! stateful and the TraceLog is an ordered message-sequence chart, so
//! the *collation* must look exactly like the serial loop.
//!
//! This module enforces that split: [`dispatch_signal`] fans the signal
//! out on the shared [`WorkerPool`] and then replays the results in
//! registration order. Trace events are emitted at collation time, so a
//! parallel run's TraceLog is byte-identical to a serial run's.
//!
//! **Early break.** When the SignalSet answers `RequestNext`, the serial
//! loop stops delivering the current signal. The parallel path mirrors
//! that at collation: it fires a [`CancelToken`] (so actions whose
//! delivery has not started yet are skipped), stops consuming results,
//! and discards whatever the already-running speculative deliveries
//! produce. Speculative delivery is sound because Signal delivery is
//! at-least-once and Actions are idempotent (§3.4) — an Action may see
//! a signal the protocol engine abandoned, exactly as it may see a
//! duplicate from a transport retry. Tests that assert the *strictly
//! serial* property (no action ever observes an abandoned signal) pin
//! [`DispatchConfig::serial`], which runs the exact legacy loop inline.
//!
//! **Panics.** An action panic is captured on the worker and re-raised
//! on the driving thread at the panicking action's position in
//! registration order, after its `before` hook — the same observable
//! order as the serial loop. Panics past an early-break point are
//! discarded with their results.

use std::sync::Arc;

pub use orb::pool::{CancelToken, DispatchConfig, TaskOutcome, WorkerPool};

use crate::action::Action;
use crate::outcome::Outcome;
use crate::signal::Signal;

/// Fan `signal` out to `actions` and collate in registration order.
///
/// For each action, in registration order: `before(action)` runs (trace
/// hook), then `after(outcome)` consumes the action's response — an
/// action error is already converted to an `"error"` outcome. When
/// `after` returns `true` (the set requested the next signal) delivery
/// of this signal stops; outstanding parallel work is cancelled and its
/// results are discarded. Returns whether that early break happened.
pub(crate) fn dispatch_signal(
    config: DispatchConfig,
    actions: &[Arc<dyn Action>],
    signal: &Signal,
    mut before: impl FnMut(&Arc<dyn Action>),
    mut after: impl FnMut(Outcome) -> bool,
) -> bool {
    // The serial config is the exact legacy loop; a single action gains
    // nothing from the pool either.
    if config.is_serial() || actions.len() <= 1 {
        for action in actions {
            before(action);
            let outcome = match action.process_signal(signal) {
                Ok(outcome) => outcome,
                Err(e) => Outcome::from_error(e.message()),
            };
            if after(outcome) {
                return true;
            }
        }
        return false;
    }

    let cancel = CancelToken::new();
    let tasks: Vec<Box<dyn FnOnce() -> Outcome + Send>> = actions
        .iter()
        .map(|action| {
            let action = Arc::clone(action);
            let signal = signal.clone();
            Box::new(move || match action.process_signal(&signal) {
                Ok(outcome) => outcome,
                Err(e) => Outcome::from_error(e.message()),
            }) as Box<dyn FnOnce() -> Outcome + Send>
        })
        .collect();
    let mut results = WorkerPool::shared(config.workers()).scatter(tasks, &cancel);

    for action in actions {
        before(action);
        let outcome = match results.next() {
            Some(TaskOutcome::Done(outcome)) => outcome,
            Some(TaskOutcome::Panicked(payload)) => std::panic::resume_unwind(payload),
            // Cancellation only fires after collation stops consuming,
            // and the batch is exactly as long as `actions`.
            Some(TaskOutcome::Cancelled) | None => {
                unreachable!("dispatch result missing before early break")
            }
        };
        if after(outcome) {
            cancel.cancel();
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::FnAction;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn spin_action(name: &str, hits: Arc<AtomicU32>) -> Arc<dyn Action> {
        Arc::new(FnAction::new(name, move |_s: &Signal| {
            hits.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }))
    }

    #[test]
    fn parallel_collation_preserves_registration_order() {
        let hits = Arc::new(AtomicU32::new(0));
        let actions: Vec<Arc<dyn Action>> = (0..16)
            .map(|i| spin_action(&format!("a{i}"), Arc::clone(&hits)))
            .collect();
        let signal = Signal::new("go", "S");
        let mut seen = Vec::new();
        let broke = dispatch_signal(
            DispatchConfig::with_workers(8),
            &actions,
            &signal,
            |action| seen.push(action.name().to_owned()),
            |outcome| {
                assert!(outcome.is_done());
                false
            },
        );
        assert!(!broke);
        assert_eq!(hits.load(Ordering::SeqCst), 16);
        let expected: Vec<String> = (0..16).map(|i| format!("a{i}")).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn early_break_stops_collation_at_the_break_index() {
        let actions: Vec<Arc<dyn Action>> = (0..12)
            .map(|i| {
                Arc::new(FnAction::new(format!("a{i}"), move |_s: &Signal| {
                    Ok(if i == 3 { Outcome::abort() } else { Outcome::done() })
                })) as Arc<dyn Action>
            })
            .collect();
        let signal = Signal::new("try", "S");
        let mut fed = 0;
        let broke = dispatch_signal(
            DispatchConfig::with_workers(4),
            &actions,
            &signal,
            |_| {},
            |outcome| {
                fed += 1;
                outcome.is_negative()
            },
        );
        assert!(broke);
        assert_eq!(fed, 4, "responses past the break point must not be fed");
    }

    #[test]
    fn action_errors_become_error_outcomes_in_parallel() {
        let actions: Vec<Arc<dyn Action>> = vec![
            Arc::new(FnAction::new("ok", |_s: &Signal| Ok(Outcome::done()))),
            Arc::new(FnAction::new("bad", |_s: &Signal| {
                Err(crate::error::ActionError::new("nope"))
            })),
        ];
        let signal = Signal::new("go", "S");
        let mut outcomes = Vec::new();
        dispatch_signal(
            DispatchConfig::with_workers(2),
            &actions,
            &signal,
            |_| {},
            |outcome| {
                outcomes.push(outcome.name().to_owned());
                false
            },
        );
        assert_eq!(outcomes, vec!["done", "error"]);
    }

    #[test]
    fn serial_config_runs_inline_with_early_stop() {
        let hits = Arc::new(AtomicU32::new(0));
        let mut actions: Vec<Arc<dyn Action>> = Vec::new();
        actions.push(Arc::new(FnAction::new("veto", |_s: &Signal| Ok(Outcome::abort()))));
        for i in 0..4 {
            actions.push(spin_action(&format!("later{i}"), Arc::clone(&hits)));
        }
        let signal = Signal::new("try", "S");
        let broke = dispatch_signal(
            DispatchConfig::serial(),
            &actions,
            &signal,
            |_| {},
            |outcome| outcome.is_negative(),
        );
        assert!(broke);
        assert_eq!(
            hits.load(Ordering::SeqCst),
            0,
            "serial early break must not touch later actions at all"
        );
    }
}
