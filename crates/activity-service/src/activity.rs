//! Activities: units of (distributed) work that may or may not be
//! transactional (§3.1–3.2 of the paper).

use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Duration;

use orb::SimClock;
use parking_lot::Mutex;

use crate::completion::CompletionStatus;
use crate::coordinator::ActivityCoordinator;
use crate::error::ActivityError;
use crate::journal::{ActivityEvent, ActivityJournal};
use crate::outcome::Outcome;
use crate::property::PropertyGroupManager;
use crate::recovery::ActivityLogger;

/// Service-scoped identity of an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActivityId(u64);

impl ActivityId {
    /// Wrap a raw id.
    pub const fn new(raw: u64) -> Self {
        ActivityId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "act-{}", self.0)
    }
}

/// Lifecycle state of an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityState {
    /// Running; work and registrations are accepted.
    Active,
    /// Paused; "activities can run over long periods of time and can thus
    /// be suspended and then resumed later".
    Suspended,
    /// Its completion protocol is being driven.
    Completing,
    /// Finished; the stored completion status is final.
    Completed,
}

impl fmt::Display for ActivityState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ActivityState::Active => "active",
            ActivityState::Suspended => "suspended",
            ActivityState::Completing => "completing",
            ActivityState::Completed => "completed",
        })
    }
}

struct ActivityInner {
    id: ActivityId,
    name: String,
    parent: Weak<ActivityInner>,
    children: Mutex<Vec<Activity>>,
    state: Mutex<ActivityState>,
    completion: Mutex<CompletionStatus>,
    coordinator: ActivityCoordinator,
    properties: PropertyGroupManager,
    completion_set: Mutex<Option<String>>,
    outcome: Mutex<Option<Outcome>>,
    clock: SimClock,
    deadline: Mutex<Option<Duration>>,
    logger: Option<Arc<ActivityLogger>>,
    id_source: Arc<std::sync::atomic::AtomicU64>,
    journal: Mutex<Option<ActivityJournal>>,
}

/// A unit of work, arranged in a tree (fig. 4), coordinated through its
/// [`ActivityCoordinator`], completed via a designated SignalSet.
///
/// `Activity` is a cheap handle; clones share the underlying state.
#[derive(Clone)]
pub struct Activity {
    inner: Arc<ActivityInner>,
}

impl fmt::Debug for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Activity")
            .field("id", &self.inner.id)
            .field("name", &self.inner.name)
            .field("state", &*self.inner.state.lock())
            .field("completion", &*self.inner.completion.lock())
            .finish()
    }
}

impl Activity {
    /// Create a root activity. Most callers go through
    /// [`crate::service::ActivityService::begin`] instead, which wires the
    /// thread association and logging.
    pub fn new_root(name: impl Into<String>, clock: SimClock) -> Activity {
        Self::new_root_with(name, clock, None, Arc::new(std::sync::atomic::AtomicU64::new(1)))
    }

    pub(crate) fn new_root_with(
        name: impl Into<String>,
        clock: SimClock,
        logger: Option<Arc<ActivityLogger>>,
        id_source: Arc<std::sync::atomic::AtomicU64>,
    ) -> Activity {
        let id =
            ActivityId::new(id_source.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
        let name = name.into();
        if let Some(logger) = &logger {
            let _ = logger.log_begun(id, &name, None);
        }
        Activity {
            inner: Arc::new(ActivityInner {
                id,
                name,
                parent: Weak::new(),
                children: Mutex::new(Vec::new()),
                state: Mutex::new(ActivityState::Active),
                completion: Mutex::new(CompletionStatus::default()),
                coordinator: ActivityCoordinator::new(id),
                properties: PropertyGroupManager::new(),
                completion_set: Mutex::new(None),
                outcome: Mutex::new(None),
                clock,
                deadline: Mutex::new(None),
                logger,
                id_source,
                journal: Mutex::new(None),
            }),
        }
    }

    /// Reconstruct an activity with a known id during recovery; links it
    /// under `parent` when given.
    pub(crate) fn rebuild(
        id: ActivityId,
        name: String,
        parent: Option<&Activity>,
        clock: SimClock,
        logger: Option<Arc<ActivityLogger>>,
        id_source: Arc<std::sync::atomic::AtomicU64>,
    ) -> Activity {
        let activity = Activity {
            inner: Arc::new(ActivityInner {
                id,
                name,
                parent: parent.map_or_else(Weak::new, |p| Arc::downgrade(&p.inner)),
                children: Mutex::new(Vec::new()),
                state: Mutex::new(ActivityState::Active),
                completion: Mutex::new(CompletionStatus::default()),
                coordinator: ActivityCoordinator::new(id),
                properties: parent.map_or_else(PropertyGroupManager::new, |p| {
                    p.inner.properties.for_child()
                }),
                completion_set: Mutex::new(None),
                outcome: Mutex::new(None),
                clock,
                deadline: Mutex::new(None),
                logger,
                id_source,
                journal: Mutex::new(None),
            }),
        };
        if let Some(parent) = parent {
            parent.inner.children.lock().push(activity.clone());
        }
        activity
    }

    /// Mark an activity completed during recovery without re-running its
    /// completion protocol (it already ran before the crash).
    pub(crate) fn force_completed(&self, status: CompletionStatus) {
        *self.inner.completion.lock() = status;
        *self.inner.state.lock() = ActivityState::Completed;
        let outcome =
            if status.is_failure() { Outcome::abort() } else { Outcome::done() };
        *self.inner.outcome.lock() = Some(outcome);
    }

    /// Begin a child activity nested inside this one. Property groups are
    /// inherited per their [`crate::property::NestedVisibility`].
    ///
    /// # Errors
    ///
    /// [`ActivityError::InvalidState`] unless this activity is active;
    /// [`ActivityError::TimedOut`] when this activity's deadline passed.
    pub fn begin_child(&self, name: impl Into<String>) -> Result<Activity, ActivityError> {
        self.check_active("begin a child")?;
        let id = ActivityId::new(
            self.inner.id_source.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let name = name.into();
        if let Some(logger) = &self.inner.logger {
            logger.log_begun(id, &name, Some(self.inner.id))?;
        }
        let child = Activity {
            inner: Arc::new(ActivityInner {
                id,
                name,
                parent: Arc::downgrade(&self.inner),
                children: Mutex::new(Vec::new()),
                state: Mutex::new(ActivityState::Active),
                completion: Mutex::new(CompletionStatus::default()),
                coordinator: ActivityCoordinator::new(id),
                properties: self.inner.properties.for_child(),
                completion_set: Mutex::new(None),
                outcome: Mutex::new(None),
                clock: self.inner.clock.clone(),
                deadline: Mutex::new(*self.inner.deadline.lock()),
                logger: self.inner.logger.clone(),
                id_source: Arc::clone(&self.inner.id_source),
                journal: Mutex::new(self.inner.journal.lock().clone()),
            }),
        };
        if let Some(journal) = &*child.inner.journal.lock() {
            journal.record(ActivityEvent::Begun {
                activity: child.inner.id,
                name: child.inner.name.clone(),
                parent: Some(self.inner.id),
            });
        }
        self.inner.children.lock().push(child.clone());
        Ok(child)
    }

    /// Attach an [`ActivityJournal`]: this activity (and every child begun
    /// afterwards, which inherits the journal) records its lifecycle —
    /// begin and complete — for conformance replay against a reference
    /// nesting model. Attaching records this activity's own `Begun` event.
    pub fn set_journal(&self, journal: ActivityJournal) {
        journal.record(ActivityEvent::Begun {
            activity: self.inner.id,
            name: self.inner.name.clone(),
            parent: self.inner.parent.upgrade().map(|p| p.id),
        });
        *self.inner.journal.lock() = Some(journal);
    }

    /// This activity's id.
    pub fn id(&self) -> ActivityId {
        self.inner.id
    }

    /// This activity's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The enclosing activity, if any.
    pub fn parent(&self) -> Option<Activity> {
        self.inner.parent.upgrade().map(|inner| Activity { inner })
    }

    /// Snapshot of child activities (completed ones included).
    pub fn children(&self) -> Vec<Activity> {
        self.inner.children.lock().clone()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ActivityState {
        *self.inner.state.lock()
    }

    /// Current completion status (what completion would report now).
    pub fn completion_status(&self) -> CompletionStatus {
        *self.inner.completion.lock()
    }

    /// The completed activity's outcome — "the result of a completed
    /// activity is its outcome, which can be used to determine subsequent
    /// flow of control to other activities" (§3.1). `None` until completed.
    pub fn outcome(&self) -> Option<Outcome> {
        self.inner.outcome.lock().clone()
    }

    /// Change the completion status, enforcing the §3.2.1 rules.
    ///
    /// # Errors
    ///
    /// [`ActivityError::CompletionStatus`] on an illegal transition (i.e.
    /// any attempt to leave `FailOnly`).
    pub fn set_completion_status(&self, status: CompletionStatus) -> Result<(), ActivityError> {
        let mut completion = self.inner.completion.lock();
        if !completion.can_transition_to(status) {
            return Err(ActivityError::CompletionStatus { from: *completion, to: status });
        }
        *completion = status;
        if let Some(logger) = &self.inner.logger {
            logger.log_completion_status(self.inner.id, status)?;
        }
        Ok(())
    }

    /// The coordinator: signal sets, action registration, protocol runs.
    pub fn coordinator(&self) -> &ActivityCoordinator {
        &self.inner.coordinator
    }

    /// The activity's property groups.
    pub fn properties(&self) -> &PropertyGroupManager {
        &self.inner.properties
    }

    /// Designate the SignalSet (by name) that [`Activity::complete`] drives.
    pub fn set_completion_signal_set(&self, set_name: impl Into<String>) {
        let set_name = set_name.into();
        if let Some(logger) = &self.inner.logger {
            let _ = logger.log_completion_set(self.inner.id, &set_name);
        }
        *self.inner.completion_set.lock() = Some(set_name);
    }

    /// Name of the designated completion SignalSet, if any.
    pub fn completion_signal_set(&self) -> Option<String> {
        self.inner.completion_set.lock().clone()
    }

    /// Arm a timeout: once the virtual clock passes `now + timeout`, the
    /// activity is doomed to complete as `FailOnly`.
    pub fn set_timeout(&self, timeout: Duration) {
        *self.inner.deadline.lock() = Some(self.inner.clock.now() + timeout);
    }

    /// The armed deadline as an **absolute** virtual-time instant, if any.
    /// Retry layers compose with it: pass this to
    /// [`orb::RetryPolicy::run`] (or a `RemoteActionProxy` deadline) so no
    /// backoff or re-attempt ever extends past the activity's own timeout.
    pub fn deadline(&self) -> Option<Duration> {
        *self.inner.deadline.lock()
    }

    /// Whether the activity's deadline has passed.
    pub fn timed_out(&self) -> bool {
        self.inner
            .deadline
            .lock()
            .is_some_and(|deadline| self.inner.clock.now() > deadline)
    }

    /// Suspend the activity.
    ///
    /// # Errors
    ///
    /// [`ActivityError::InvalidState`] unless active.
    pub fn suspend(&self) -> Result<(), ActivityError> {
        let mut state = self.inner.state.lock();
        match *state {
            ActivityState::Active => {
                *state = ActivityState::Suspended;
                Ok(())
            }
            other => Err(self.invalid("suspend", other)),
        }
    }

    /// Resume a suspended activity.
    ///
    /// # Errors
    ///
    /// [`ActivityError::InvalidState`] unless suspended.
    pub fn resume(&self) -> Result<(), ActivityError> {
        let mut state = self.inner.state.lock();
        match *state {
            ActivityState::Suspended => {
                *state = ActivityState::Active;
                Ok(())
            }
            other => Err(self.invalid("resume", other)),
        }
    }

    /// Run an arbitrary associated SignalSet *now*, mid-lifetime ("signals
    /// may be communicated at arbitrary points during the lifetime of an
    /// activity and not just when it terminates").
    ///
    /// # Errors
    ///
    /// Propagates coordinator failures; the activity must be active.
    pub fn signal(&self, set_name: &str) -> Result<Outcome, ActivityError> {
        self.check_active("signal")?;
        self.inner.coordinator.process_signal_set(set_name)
    }

    /// Complete with the current completion status.
    ///
    /// # Errors
    ///
    /// See [`Activity::complete_with_status`].
    pub fn complete(&self) -> Result<Outcome, ActivityError> {
        let status = self.completion_status();
        self.complete_with_status(status)
    }

    /// Complete the activity: verify every child has completed, adopt
    /// `status` (forced to `FailOnly` when timed out), drive the designated
    /// completion SignalSet (when one is set) and become `Completed`.
    ///
    /// # Errors
    ///
    /// [`ActivityError::ChildrenActive`] when a child is still incomplete;
    /// [`ActivityError::InvalidState`] when not active;
    /// [`ActivityError::CompletionStatus`] on an illegal status transition.
    pub fn complete_with_status(
        &self,
        status: CompletionStatus,
    ) -> Result<Outcome, ActivityError> {
        {
            let mut state = self.inner.state.lock();
            if *state != ActivityState::Active {
                return Err(self.invalid("complete", *state));
            }
            let children = self.inner.children.lock();
            if children.iter().any(|c| c.state() != ActivityState::Completed) {
                return Err(ActivityError::ChildrenActive(self.inner.id));
            }
            *state = ActivityState::Completing;
        }
        let effective = if self.timed_out() { CompletionStatus::FailOnly } else { status };
        if let Err(e) = self.set_completion_status(effective) {
            *self.inner.state.lock() = ActivityState::Active;
            return Err(e);
        }

        let completion_set = self.inner.completion_set.lock().clone();
        let outcome = match completion_set {
            Some(set_name) => {
                self.inner.coordinator.set_completion_status(&set_name, effective)?;
                match self.inner.coordinator.process_signal_set(&set_name) {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        *self.inner.state.lock() = ActivityState::Active;
                        return Err(e);
                    }
                }
            }
            None => {
                if effective.is_failure() {
                    Outcome::abort()
                } else {
                    Outcome::done()
                }
            }
        };
        *self.inner.state.lock() = ActivityState::Completed;
        *self.inner.outcome.lock() = Some(outcome.clone());
        if let Some(journal) = &*self.inner.journal.lock() {
            journal.record(ActivityEvent::Completed {
                activity: self.inner.id,
                status: effective,
                outcome: outcome.name().to_owned(),
            });
        }
        if let Some(logger) = &self.inner.logger {
            logger.log_completed(self.inner.id, effective, outcome.name())?;
        }
        Ok(outcome)
    }

    /// Associate a SignalSet re-creatable at recovery time: `factory_key`
    /// names a registered [`crate::recovery::SignalSetFactories`] entry.
    ///
    /// # Errors
    ///
    /// Propagates coordinator and log failures.
    pub fn add_signal_set_recoverable(
        &self,
        factory_key: &str,
        set: Box<dyn crate::signal_set::SignalSet>,
    ) -> Result<(), ActivityError> {
        let set_name = set.signal_set_name().to_owned();
        self.inner.coordinator.add_signal_set(set)?;
        if let Some(logger) = &self.inner.logger {
            logger.log_signal_set(self.inner.id, &set_name, factory_key)?;
        }
        Ok(())
    }

    /// Register an Action re-creatable at recovery time: `factory_key`
    /// names a registered [`crate::recovery::ActionFactories`] entry.
    ///
    /// # Errors
    ///
    /// Propagates log failures.
    pub fn register_action_recoverable(
        &self,
        set_name: &str,
        factory_key: &str,
        action: Arc<dyn crate::action::Action>,
    ) -> Result<(), ActivityError> {
        self.inner.coordinator.register_action(set_name, action);
        if let Some(logger) = &self.inner.logger {
            logger.log_action(self.inner.id, set_name, factory_key)?;
        }
        Ok(())
    }

    fn check_active(&self, operation: &str) -> Result<(), ActivityError> {
        if self.timed_out() {
            return Err(ActivityError::TimedOut(self.inner.id));
        }
        let state = *self.inner.state.lock();
        if state != ActivityState::Active {
            return Err(self.invalid(operation, state));
        }
        Ok(())
    }

    fn invalid(&self, operation: &str, state: ActivityState) -> ActivityError {
        ActivityError::InvalidState {
            activity: self.inner.id,
            operation: operation.to_owned(),
            state: state.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::FnAction;
    use crate::signal::Signal;
    use crate::signal_set::BroadcastSignalSet;
    use orb::Value;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn root() -> Activity {
        Activity::new_root("root", SimClock::new())
    }

    #[test]
    fn lifecycle_and_identity() {
        let a = root();
        assert_eq!(a.name(), "root");
        assert_eq!(a.state(), ActivityState::Active);
        assert_eq!(a.completion_status(), CompletionStatus::Success);
        assert!(a.parent().is_none());
        let out = a.complete().unwrap();
        assert!(out.is_done());
        assert_eq!(a.state(), ActivityState::Completed);
    }

    #[test]
    fn children_form_a_tree_and_gate_completion() {
        let a = root();
        let b = a.begin_child("b").unwrap();
        let c = a.begin_child("c").unwrap();
        assert_eq!(a.children().len(), 2);
        assert_eq!(b.parent().unwrap().id(), a.id());
        assert!(matches!(a.complete(), Err(ActivityError::ChildrenActive(_))));
        b.complete().unwrap();
        c.complete().unwrap();
        a.complete().unwrap();
    }

    #[test]
    fn completed_activity_rejects_everything() {
        let a = root();
        a.complete().unwrap();
        assert!(matches!(a.begin_child("x"), Err(ActivityError::InvalidState { .. })));
        assert!(matches!(a.complete(), Err(ActivityError::InvalidState { .. })));
        assert!(matches!(a.suspend(), Err(ActivityError::InvalidState { .. })));
        assert!(matches!(a.signal("s"), Err(ActivityError::InvalidState { .. })));
    }

    #[test]
    fn suspend_resume_cycle() {
        let a = root();
        a.suspend().unwrap();
        assert_eq!(a.state(), ActivityState::Suspended);
        assert!(matches!(a.suspend(), Err(ActivityError::InvalidState { .. })));
        assert!(matches!(a.begin_child("x"), Err(ActivityError::InvalidState { .. })));
        assert!(matches!(a.complete(), Err(ActivityError::InvalidState { .. })));
        a.resume().unwrap();
        assert!(matches!(a.resume(), Err(ActivityError::InvalidState { .. })));
        a.complete().unwrap();
    }

    #[test]
    fn completion_status_rules_enforced() {
        let a = root();
        a.set_completion_status(CompletionStatus::Fail).unwrap();
        a.set_completion_status(CompletionStatus::Success).unwrap();
        a.set_completion_status(CompletionStatus::FailOnly).unwrap();
        let err = a.set_completion_status(CompletionStatus::Success).unwrap_err();
        assert!(matches!(err, ActivityError::CompletionStatus { .. }));
        // Completing a FailOnly activity reports failure.
        let out = a.complete().unwrap();
        assert!(out.is_negative());
    }

    #[test]
    fn completion_drives_designated_signal_set() {
        let a = root();
        a.coordinator()
            .add_signal_set(Box::new(BroadcastSignalSet::new("Done", "finished", Value::Null)))
            .unwrap();
        a.set_completion_signal_set("Done");
        let hits = Arc::new(AtomicU32::new(0));
        let hits2 = Arc::clone(&hits);
        a.coordinator().register_action(
            "Done",
            Arc::new(FnAction::new("observer", move |_s: &Signal| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Ok(Outcome::done())
            })),
        );
        let out = a.complete().unwrap();
        assert!(out.is_done());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn signal_mid_lifetime() {
        let a = root();
        a.coordinator()
            .add_signal_set(Box::new(BroadcastSignalSet::new("Checkpoint", "save", Value::Null)))
            .unwrap();
        let out = a.signal("Checkpoint").unwrap();
        assert!(out.is_done());
        assert_eq!(a.state(), ActivityState::Active, "still running afterwards");
    }

    #[test]
    fn timeout_forces_fail_only() {
        let clock = SimClock::new();
        let a = Activity::new_root("slow", clock.clone());
        a.set_timeout(Duration::from_secs(1));
        assert!(!a.timed_out());
        clock.advance(Duration::from_secs(2));
        assert!(a.timed_out());
        assert!(matches!(a.begin_child("x"), Err(ActivityError::TimedOut(_))));
        let out = a.complete_with_status(CompletionStatus::Success).unwrap();
        assert!(out.is_negative(), "timeout overrides requested success");
        assert_eq!(a.completion_status(), CompletionStatus::FailOnly);
    }

    #[test]
    fn child_inherits_clock_and_deadline() {
        let clock = SimClock::new();
        let a = Activity::new_root("a", clock.clone());
        a.set_timeout(Duration::from_secs(1));
        let b = a.begin_child("b").unwrap();
        clock.advance(Duration::from_secs(2));
        assert!(b.timed_out(), "deadline inherited at begin time");
    }

    #[test]
    fn ids_are_unique_within_a_tree() {
        let a = root();
        let b = a.begin_child("b").unwrap();
        let c = b.begin_child("c").unwrap();
        assert_ne!(a.id(), b.id());
        assert_ne!(b.id(), c.id());
        assert_ne!(a.id(), c.id());
    }
}

#[cfg(test)]
mod outcome_tests {
    use super::*;
    use crate::signal_set::BroadcastSignalSet;
    use orb::Value;

    #[test]
    fn outcome_is_stored_for_flow_control() {
        let a = Activity::new_root("a", SimClock::new());
        assert!(a.outcome().is_none(), "no outcome before completion");
        a.coordinator()
            .add_signal_set(Box::new(BroadcastSignalSet::new("Done", "fin", Value::Null)))
            .unwrap();
        a.set_completion_signal_set("Done");
        let returned = a.complete().unwrap();
        // A later activity can consult the stored outcome to decide its
        // own flow of control (§3.1).
        assert_eq!(a.outcome(), Some(returned));
    }

    #[test]
    fn failed_completion_stores_negative_outcome() {
        let a = Activity::new_root("a", SimClock::new());
        a.complete_with_status(CompletionStatus::FailOnly).unwrap();
        assert!(a.outcome().unwrap().is_negative());
    }
}

impl Activity {
    /// The outcomes of completed children, by name — the raw material for
    /// §3.1's "determine subsequent flow of control to other activities"
    /// and §2.2's "responsible entity" that must know "which have completed
    /// and what their outcomes were" and "which activities failed to
    /// complete".
    pub fn children_outcomes(&self) -> Vec<(String, Option<Outcome>)> {
        self.inner
            .children
            .lock()
            .iter()
            .map(|c| (c.name().to_owned(), c.outcome()))
            .collect()
    }
}

#[cfg(test)]
mod flow_control_tests {
    use super::*;

    #[test]
    fn children_outcomes_distinguish_states() {
        let parent = Activity::new_root("parent", SimClock::new());
        let done = parent.begin_child("done").unwrap();
        done.complete().unwrap();
        let failed = parent.begin_child("failed").unwrap();
        failed.complete_with_status(CompletionStatus::Fail).unwrap();
        let _running = parent.begin_child("running").unwrap();

        let outcomes = parent.children_outcomes();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].1.as_ref().unwrap().is_done());
        assert!(outcomes[1].1.as_ref().unwrap().is_negative());
        assert!(outcomes[2].1.is_none(), "incomplete children have no outcome yet");
    }
}
