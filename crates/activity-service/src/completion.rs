//! Completion status and its transition rules (§3.2.1 of the paper).

use std::fmt;

/// The state an activity would complete in if it completed now.
///
/// Per §3.2.1: `Success` and `Fail` may flip back and forth during the
/// activity's lifetime; `FailOnly` is absorbing — once entered, "the only
/// possible outcome for the Activity is for it to fail".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompletionStatus {
    /// The activity has successfully performed its work.
    #[default]
    Success,
    /// An application-specific error occurred; completion should be driven
    /// accordingly, but the status may still change.
    Fail,
    /// Like `Fail`, but irrevocable.
    FailOnly,
}

impl CompletionStatus {
    /// Whether changing from `self` to `to` is legal.
    pub fn can_transition_to(self, to: CompletionStatus) -> bool {
        match self {
            CompletionStatus::Success | CompletionStatus::Fail => true,
            CompletionStatus::FailOnly => to == CompletionStatus::FailOnly,
        }
    }

    /// Whether the status denotes failure.
    pub fn is_failure(self) -> bool {
        matches!(self, CompletionStatus::Fail | CompletionStatus::FailOnly)
    }

    /// Stable string form (used in logs and signal payloads).
    pub fn as_str(self) -> &'static str {
        match self {
            CompletionStatus::Success => "success",
            CompletionStatus::Fail => "fail",
            CompletionStatus::FailOnly => "fail-only",
        }
    }

    /// Parse the string form produced by [`CompletionStatus::as_str`].
    pub fn parse(s: &str) -> Option<CompletionStatus> {
        match s {
            "success" => Some(CompletionStatus::Success),
            "fail" => Some(CompletionStatus::Fail),
            "fail-only" => Some(CompletionStatus::FailOnly),
            _ => None,
        }
    }
}

impl fmt::Display for CompletionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CompletionStatus::*;

    #[test]
    fn success_and_fail_flip_freely() {
        assert!(Success.can_transition_to(Fail));
        assert!(Fail.can_transition_to(Success));
        assert!(Success.can_transition_to(FailOnly));
        assert!(Fail.can_transition_to(FailOnly));
        assert!(Success.can_transition_to(Success));
    }

    #[test]
    fn fail_only_is_absorbing() {
        assert!(!FailOnly.can_transition_to(Success));
        assert!(!FailOnly.can_transition_to(Fail));
        assert!(FailOnly.can_transition_to(FailOnly));
    }

    #[test]
    fn failure_classification() {
        assert!(!Success.is_failure());
        assert!(Fail.is_failure());
        assert!(FailOnly.is_failure());
    }

    #[test]
    fn string_roundtrip() {
        for cs in [Success, Fail, FailOnly] {
            assert_eq!(CompletionStatus::parse(cs.as_str()), Some(cs));
            assert_eq!(cs.to_string(), cs.as_str());
        }
        assert_eq!(CompletionStatus::parse("nope"), None);
    }

    #[test]
    fn default_is_success() {
        assert_eq!(CompletionStatus::default(), Success);
    }
}
