//! Activity contexts: what travels with remote invocations.
//!
//! The framework "relies on the Activity Service to manage the context
//! distribution and relationships between Activities"; this module defines
//! the wire form. A context carries the activity chain (root → current) and
//! the property groups whose propagation mode says they travel by value or
//! by reference (§3.3).

use orb::{Value, ValueMap};

use crate::activity::{Activity, ActivityId};
use crate::error::ActivityError;

/// One link in the propagated activity chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextEntry {
    /// The activity's id.
    pub id: ActivityId,
    /// The activity's name.
    pub name: String,
}

/// The propagated form of an activity: identity chain plus travelling
/// property groups.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ActivityContext {
    /// Activities from the root down to the current one.
    pub chain: Vec<ContextEntry>,
    /// Property groups propagated by value: `(group name, snapshot)`.
    pub properties: Vec<(String, ValueMap)>,
    /// Names of property groups propagated by reference (the receiver
    /// resolves them locally).
    pub by_reference: Vec<String>,
}

impl ActivityContext {
    /// Capture the context of `activity` (including its ancestors).
    pub fn capture(activity: &Activity) -> Self {
        let mut chain = Vec::new();
        let mut cursor = Some(activity.clone());
        while let Some(a) = cursor {
            chain.push(ContextEntry { id: a.id(), name: a.name().to_owned() });
            cursor = a.parent();
        }
        chain.reverse();
        ActivityContext {
            chain,
            properties: activity.properties().propagated_by_value(),
            by_reference: activity.properties().propagated_by_reference(),
        }
    }

    /// The current (innermost) activity's entry.
    pub fn current(&self) -> Option<&ContextEntry> {
        self.chain.last()
    }

    /// Nesting depth of the propagated chain.
    pub fn depth(&self) -> usize {
        self.chain.len()
    }

    /// Serialise for the ORB service-context slot.
    pub fn to_value(&self) -> Value {
        let chain: Vec<Value> = self
            .chain
            .iter()
            .map(|e| {
                let mut m = ValueMap::new();
                m.insert("id".into(), Value::U64(e.id.raw()));
                m.insert("name".into(), Value::Str(e.name.clone()));
                Value::Map(m)
            })
            .collect();
        let properties: Vec<Value> = self
            .properties
            .iter()
            .map(|(name, snapshot)| {
                let mut m = ValueMap::new();
                m.insert("group".into(), Value::Str(name.clone()));
                m.insert("values".into(), Value::Map(snapshot.clone()));
                Value::Map(m)
            })
            .collect();
        let by_reference: Vec<Value> =
            self.by_reference.iter().map(|n| Value::Str(n.clone())).collect();
        let mut m = ValueMap::new();
        m.insert("chain".into(), Value::List(chain));
        m.insert("properties".into(), Value::List(properties));
        m.insert("by_ref".into(), Value::List(by_reference));
        Value::Map(m)
    }

    /// Inverse of [`ActivityContext::to_value`].
    ///
    /// # Errors
    ///
    /// [`ActivityError::Context`] on malformed input.
    pub fn from_value(value: &Value) -> Result<Self, ActivityError> {
        let m = value
            .as_map()
            .ok_or_else(|| ActivityError::Context("activity context must be a map".into()))?;
        let mut chain = Vec::new();
        if let Some(Value::List(items)) = m.get("chain") {
            for item in items {
                let em = item
                    .as_map()
                    .ok_or_else(|| ActivityError::Context("chain entry must be a map".into()))?;
                let id = em
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| ActivityError::Context("chain entry missing id".into()))?;
                let name = em
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ActivityError::Context("chain entry missing name".into()))?;
                chain.push(ContextEntry { id: ActivityId::new(id), name: name.to_owned() });
            }
        }
        let mut properties = Vec::new();
        if let Some(Value::List(items)) = m.get("properties") {
            for item in items {
                let pm = item
                    .as_map()
                    .ok_or_else(|| ActivityError::Context("property entry must be a map".into()))?;
                let group = pm
                    .get("group")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ActivityError::Context("property entry missing group".into()))?;
                let values = pm
                    .get("values")
                    .and_then(Value::as_map)
                    .cloned()
                    .unwrap_or_default();
                properties.push((group.to_owned(), values));
            }
        }
        let mut by_reference = Vec::new();
        if let Some(Value::List(items)) = m.get("by_ref") {
            for item in items {
                if let Some(name) = item.as_str() {
                    by_reference.push(name.to_owned());
                }
            }
        }
        Ok(ActivityContext { chain, properties, by_reference })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::{BasicPropertyGroup, Propagation, PropertyGroup, PropertyGroupSpec};
    use orb::SimClock;

    #[test]
    fn capture_walks_the_chain() {
        let root = Activity::new_root("root", SimClock::new());
        let mid = root.begin_child("mid").unwrap();
        let leaf = mid.begin_child("leaf").unwrap();
        let ctx = ActivityContext::capture(&leaf);
        assert_eq!(ctx.depth(), 3);
        let names: Vec<&str> = ctx.chain.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["root", "mid", "leaf"]);
        assert_eq!(ctx.current().unwrap().id, leaf.id());
    }

    #[test]
    fn capture_honours_propagation_modes() {
        let root = Activity::new_root("root", SimClock::new());
        let by_value = BasicPropertyGroup::new(
            PropertyGroupSpec::new("env").propagation(Propagation::ByValue),
        );
        by_value.set("locale", Value::from("en"));
        root.properties().register(by_value);
        root.properties().register(BasicPropertyGroup::new(
            PropertyGroupSpec::new("local-only").propagation(Propagation::Local),
        ));
        root.properties().register(BasicPropertyGroup::new(
            PropertyGroupSpec::new("shared-cfg").propagation(Propagation::ByReference),
        ));
        let ctx = ActivityContext::capture(&root);
        assert_eq!(ctx.properties.len(), 1);
        assert_eq!(ctx.properties[0].0, "env");
        assert_eq!(ctx.by_reference, vec!["shared-cfg"]);
    }

    #[test]
    fn value_roundtrip() {
        let root = Activity::new_root("root", SimClock::new());
        let child = root.begin_child("child").unwrap();
        let group = BasicPropertyGroup::new(PropertyGroupSpec::new("g"));
        group.set("k", Value::from(9i64));
        child.properties().register(group);
        let ctx = ActivityContext::capture(&child);
        let v = ctx.to_value();
        let back = ActivityContext::from_value(&v).unwrap();
        assert_eq!(back, ctx);
        // Binary codec too.
        let back2 = ActivityContext::from_value(&Value::decode(&v.encode()).unwrap()).unwrap();
        assert_eq!(back2, ctx);
    }

    #[test]
    fn from_value_rejects_junk() {
        assert!(ActivityContext::from_value(&Value::I64(1)).is_err());
        let mut m = ValueMap::new();
        m.insert("chain".into(), Value::List(vec![Value::I64(1)]));
        assert!(ActivityContext::from_value(&Value::Map(m)).is_err());
    }

    #[test]
    fn empty_context_roundtrip() {
        let ctx = ActivityContext::default();
        assert_eq!(ActivityContext::from_value(&ctx.to_value()).unwrap(), ctx);
        assert!(ctx.current().is_none());
    }
}
