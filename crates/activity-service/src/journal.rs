//! The activity journal: begin/complete observations for conformance
//! checking against a reference nesting model.
//!
//! The [`crate::trace::TraceLog`] already records what a coordinator's
//! SignalSet processing did; what it cannot see is the **activity
//! lifecycle** itself — which activities began under which parent, and in
//! what order they completed. A harness replaying a run through an
//! executable specification of fig. 4 nesting (a child must complete
//! before its parent; nothing completes twice; nothing completes that
//! never began) needs exactly those two events, so [`crate::Activity`]
//! records them here when a journal is attached via
//! [`crate::Activity::set_journal`]. Children inherit the parent's
//! journal at [`crate::Activity::begin_child`] time. Without a journal,
//! nothing is recorded and nothing is paid.

use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::activity::ActivityId;
use crate::completion::CompletionStatus;

/// One observable lifecycle step of an activity tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivityEvent {
    /// The activity entered the tree (root or child).
    Begun {
        activity: ActivityId,
        name: String,
        parent: Option<ActivityId>,
    },
    /// The activity's completion protocol finished.
    Completed {
        activity: ActivityId,
        status: CompletionStatus,
        outcome: String,
    },
}

impl ActivityEvent {
    /// One-line rendering used by the flight-recorder mirror.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            ActivityEvent::Begun { activity, name, parent } => match parent {
                Some(parent) => format!("begun({activity}, {name}, parent={parent})"),
                None => format!("begun({activity}, {name}, root)"),
            },
            ActivityEvent::Completed { activity, status, outcome } => {
                format!("completed({activity}, {status:?}, {outcome})")
            }
        }
    }
}

/// A shared, append-only journal of [`ActivityEvent`]s. Clones share
/// storage.
#[derive(Debug, Clone, Default)]
pub struct ActivityJournal {
    events: Arc<Mutex<Vec<ActivityEvent>>>,
    /// Optional flight-recorder mirror (kind `activity`): lifecycle steps
    /// land in the node's black box in journal order.
    recorder: Arc<OnceLock<telemetry::FlightRecorder>>,
}

impl ActivityJournal {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror every future event into `recorder` (kind `activity`).
    /// Write-once so the hot path reads it with a single atomic load
    /// (no lock even when attached-but-disabled); later calls are ignored.
    pub fn set_recorder(&self, recorder: telemetry::FlightRecorder) {
        let _ = self.recorder.set(recorder);
    }

    /// Append one event.
    pub fn record(&self, event: ActivityEvent) {
        if let Some(recorder) = self.recorder.get() {
            recorder.record(telemetry::RecordKind::Activity, || event.render());
        }
        self.events.lock().push(event);
    }

    /// Snapshot the events recorded so far, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<ActivityEvent> {
        self.events.lock().clone()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activity;
    use orb::SimClock;

    #[test]
    fn attached_journal_sees_begin_and_complete_in_order() {
        let root = Activity::new_root("root", SimClock::new());
        let journal = ActivityJournal::new();
        root.set_journal(journal.clone());
        let child = root.begin_child("child").unwrap();
        child.complete().unwrap();
        root.complete().unwrap();

        let events = journal.events();
        assert_eq!(events.len(), 4);
        assert!(matches!(
            &events[0],
            ActivityEvent::Begun { name, parent: None, .. } if name == "root"
        ));
        assert!(matches!(
            &events[1],
            ActivityEvent::Begun { name, parent: Some(p), .. }
                if name == "child" && *p == root.id()
        ));
        assert!(matches!(
            &events[2],
            ActivityEvent::Completed { activity, .. } if *activity == child.id()
        ));
        assert!(matches!(
            &events[3],
            ActivityEvent::Completed { activity, .. } if *activity == root.id()
        ));
    }

    #[test]
    fn without_a_journal_nothing_is_recorded() {
        let root = Activity::new_root("root", SimClock::new());
        root.complete().unwrap();
        // No journal was ever attached; this one stays empty.
        assert!(ActivityJournal::new().is_empty());
    }
}
