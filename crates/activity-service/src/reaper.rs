//! The orphan reaper: times out activities whose enclosing coordinator has
//! gone unreachable.
//!
//! §3.2.1 of the paper dooms a timed-out activity to `FailOnly`, but an
//! *orphan* — one whose enclosing coordinator crashed or sits on the far
//! side of a partition — has nobody left to drive its completion. The
//! reaper is that somebody: given the roots it oversees and a reachability
//! predicate (typically `orb::SimulatedNetwork::reachable` or a
//! `FailureDetector` quarantine check), it completes every activity that is
//! still `Active`, past its [`crate::Activity::set_timeout`] deadline and
//! whose coordinator is unreachable. Completion goes through the ordinary
//! [`crate::Activity::complete_with_status`] path, so the timeout forces
//! `FailOnly`, the failure outcome is produced and the
//! [`crate::ActivityJournal`] records the terminal event — the refinement
//! models see a legal trace, not a vanished activity.
//!
//! Trees are reaped post-order (children before parents) because
//! completion refuses to run while a child is still active
//! ([`crate::error::ActivityError::ChildrenActive`]).

use crate::activity::{Activity, ActivityId, ActivityState};
use crate::completion::CompletionStatus;
use crate::error::ActivityError;
use recovery_log::FailpointSet;

/// Named failpoint sites for the reaper (see the audit table in
/// `recovery-log/src/crash.rs` and `harness::registry`).
pub mod failpoints {
    /// The reaper decided to complete an orphan but crashes before the
    /// completion protocol runs — the orphan stays active for the next
    /// reaper pass.
    pub const BEFORE_COMPLETE: &str = "activity.reaper.before_complete";
    /// Every site this module hits.
    pub const FAILPOINT_SITES: &[&str] = &[BEFORE_COMPLETE];
}

/// What one [`OrphanReaper::reap`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReapReport {
    /// Orphans completed as `FailOnly` by this pass.
    pub reaped: Vec<ActivityId>,
    /// Activities inspected but left alone (reachable coordinator, no
    /// deadline, or deadline not yet passed).
    pub skipped: Vec<ActivityId>,
}

/// Completes timed-out activities whose enclosing coordinator is
/// unreachable. Stateless between passes: run it from a detector
/// quarantine hook, after a partition heals, or on a periodic virtual-time
/// tick.
#[derive(Debug, Default)]
pub struct OrphanReaper {
    failpoints: FailpointSet,
}

impl OrphanReaper {
    /// A reaper with no crash injection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Share `failpoints` for crash injection at the reaper site.
    #[must_use]
    pub fn with_failpoints(mut self, failpoints: FailpointSet) -> Self {
        self.failpoints = failpoints;
        self
    }

    /// Sweep the trees under `roots`, completing every orphan: an activity
    /// that is `Active`, past its deadline, and whose coordinator
    /// `reachable` denies. Children are visited before parents so a whole
    /// orphaned subtree collapses in one pass.
    ///
    /// # Errors
    ///
    /// [`ActivityError::Log`]-convertible crash injection; completion
    /// errors other than [`ActivityError::ChildrenActive`] (a still-active
    /// child that was itself skipped is expected, not an error).
    pub fn reap(
        &self,
        roots: &[Activity],
        reachable: &dyn Fn(&Activity) -> bool,
    ) -> Result<ReapReport, ActivityError> {
        let mut report = ReapReport::default();
        for root in roots {
            self.reap_tree(root, reachable, &mut report)?;
        }
        Ok(report)
    }

    fn reap_tree(
        &self,
        activity: &Activity,
        reachable: &dyn Fn(&Activity) -> bool,
        report: &mut ReapReport,
    ) -> Result<(), ActivityError> {
        for child in activity.children() {
            self.reap_tree(&child, reachable, report)?;
        }
        if activity.state() != ActivityState::Active {
            return Ok(());
        }
        if !activity.timed_out() || reachable(activity) {
            report.skipped.push(activity.id());
            return Ok(());
        }
        self.failpoints.hit(failpoints::BEFORE_COMPLETE)?;
        match activity.complete_with_status(CompletionStatus::FailOnly) {
            // A child skipped in this same pass (not yet timed out) keeps
            // the parent alive; the next pass retries.
            Err(ActivityError::ChildrenActive(_)) => {
                report.skipped.push(activity.id());
                Ok(())
            }
            Err(e) => Err(e),
            Ok(_) => {
                report.reaped.push(activity.id());
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{ActivityEvent, ActivityJournal};
    use orb::SimClock;
    use std::time::Duration;

    fn orphan(clock: &SimClock) -> Activity {
        let a = Activity::new_root("orphan", clock.clone());
        a.set_timeout(Duration::from_millis(5));
        a
    }

    #[test]
    fn reaps_only_timed_out_unreachable_activities() {
        let clock = SimClock::new();
        let doomed = orphan(&clock);
        let healthy = Activity::new_root("healthy", clock.clone());
        healthy.set_timeout(Duration::from_millis(5));
        let patient = Activity::new_root("patient", clock.clone());
        patient.set_timeout(Duration::from_secs(60));
        clock.advance(Duration::from_millis(10));
        let reaper = OrphanReaper::new();
        let unreachable = |a: &Activity| a.name() == "healthy";
        let report = reaper
            .reap(&[doomed.clone(), healthy.clone(), patient.clone()], &unreachable)
            .unwrap();
        assert_eq!(report.reaped, vec![doomed.id()]);
        assert_eq!(report.skipped, vec![healthy.id(), patient.id()]);
        assert_eq!(doomed.state(), ActivityState::Completed);
        assert_eq!(doomed.completion_status(), CompletionStatus::FailOnly);
        assert_eq!(healthy.state(), ActivityState::Active);
        assert_eq!(patient.state(), ActivityState::Active);
    }

    #[test]
    fn orphaned_subtree_collapses_children_first() {
        let clock = SimClock::new();
        let root = orphan(&clock);
        let child = root.begin_child("child").unwrap();
        child.set_timeout(Duration::from_millis(5));
        clock.advance(Duration::from_millis(10));
        let report = OrphanReaper::new().reap(std::slice::from_ref(&root), &|_| false).unwrap();
        assert_eq!(report.reaped, vec![child.id(), root.id()]);
        assert_eq!(root.state(), ActivityState::Completed);
        assert_eq!(child.state(), ActivityState::Completed);
    }

    #[test]
    fn reaping_is_journaled_for_the_refinement_models() {
        let clock = SimClock::new();
        let root = orphan(&clock);
        let journal = ActivityJournal::new();
        root.set_journal(journal.clone());
        clock.advance(Duration::from_millis(10));
        OrphanReaper::new().reap(std::slice::from_ref(&root), &|_| false).unwrap();
        let completed = journal.events().into_iter().any(|e| {
            matches!(
                e,
                ActivityEvent::Completed { activity, status: CompletionStatus::FailOnly, .. }
                    if activity == root.id()
            )
        });
        assert!(completed, "the reaper must journal the terminal event");
    }

    #[test]
    fn second_pass_finds_nothing_left() {
        let clock = SimClock::new();
        let root = orphan(&clock);
        clock.advance(Duration::from_millis(10));
        let reaper = OrphanReaper::new();
        assert_eq!(reaper.reap(std::slice::from_ref(&root), &|_| false).unwrap().reaped.len(), 1);
        let again = reaper.reap(&[root], &|_| false).unwrap();
        assert!(again.reaped.is_empty() && again.skipped.is_empty());
    }

    #[test]
    fn injected_crash_leaves_the_orphan_for_the_next_pass() {
        let clock = SimClock::new();
        let root = orphan(&clock);
        clock.advance(Duration::from_millis(10));
        let failpoints = FailpointSet::new();
        failpoints.arm(failpoints::BEFORE_COMPLETE, 0);
        let reaper = OrphanReaper::new().with_failpoints(failpoints.clone());
        assert!(reaper.reap(std::slice::from_ref(&root), &|_| false).is_err());
        assert_eq!(root.state(), ActivityState::Active, "crash before completion");
        // "Restart": the site is spent, the next pass succeeds.
        failpoints.clear();
        let report = reaper.reap(std::slice::from_ref(&root), &|_| false).unwrap();
        assert_eq!(report.reaped, vec![root.id()]);
    }
}
