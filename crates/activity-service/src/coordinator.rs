//! The activity coordinator: drives SignalSets against registered Actions
//! (fig. 5 of the paper).

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use orb::detector::FailureDetector;
use parking_lot::Mutex;
use recovery_log::FailpointSet;
use telemetry::{SpanContext, Telemetry, MSC_FROM, MSC_MSG, MSC_REPLY, MSC_TO};

use crate::action::Action;
use crate::activity::ActivityId;
use crate::completion::CompletionStatus;
use crate::dispatch::{self, DispatchConfig};
use crate::error::ActivityError;
use crate::outcome::Outcome;
use crate::signal_set::{AfterResponse, NextSignal, SignalSet, SignalSetState};
use crate::trace::{TraceEvent, TraceLog};

/// Named failpoint sites this crate's protocol code passes through.
///
/// The authoritative workspace-wide audit table lives in
/// `recovery_log::crash`'s module docs; the harness registry test checks
/// that a probe run observes exactly these names.
pub mod failpoints {
    /// Before the coordinator asks the set for a signal (fig. 5 step 1).
    pub const BEFORE_GET_SIGNAL: &str = "activity.before_get_signal";
    /// Signal obtained, before fan-out to the registered actions.
    pub const BEFORE_TRANSMIT: &str = "activity.before_transmit";
    /// Protocol ended, before the collated outcome is read.
    pub const BEFORE_OUTCOME: &str = "activity.before_outcome";

    /// Every site above, in protocol order.
    pub const FAILPOINT_SITES: &[&str] = &[BEFORE_GET_SIGNAL, BEFORE_TRANSMIT, BEFORE_OUTCOME];
}

struct SetEntry {
    set: Box<dyn SignalSet>,
    state: SignalSetState,
}

struct CoordinatorInner {
    /// set name → actions registered for it. Actions may register for sets
    /// that have not been associated yet ("Actions register interest in
    /// SignalSets, rather than specific Signals"). Stored as a shared
    /// immutable slice so the per-signal snapshot on the hot path is one
    /// `Arc` bump instead of a `Vec` clone; registration (cold) rebuilds.
    registrations: HashMap<String, Arc<[Arc<dyn Action>]>>,
    /// set name → the set itself. `None` while a processing run has the set
    /// checked out.
    sets: HashMap<String, Option<SetEntry>>,
}

/// Coordinates one activity's protocol runs.
///
/// The coordinator owns the fig. 5 loop: ask the SignalSet for a signal,
/// transmit it to every registered Action, feed each Outcome back into the
/// set, fetch the next signal when the set asks for one, and finally collate
/// the overall outcome — all while enforcing the fig. 7 state machine.
pub struct ActivityCoordinator {
    activity: ActivityId,
    inner: Mutex<CoordinatorInner>,
    trace: Mutex<Option<TraceLog>>,
    /// Lock-free gate for [`ActivityCoordinator::record`]: protocol steps
    /// skip the trace mutex entirely while no trace is attached.
    trace_on: AtomicBool,
    dispatch: Mutex<DispatchConfig>,
    failpoints: Mutex<Option<FailpointSet>>,
    detector: Mutex<Option<FailureDetector>>,
    telemetry: Mutex<Option<Telemetry>>,
    /// Lock-free gate mirroring `trace_on`: protocol steps skip the
    /// telemetry mutex entirely while no recorder is attached.
    telemetry_on: AtomicBool,
}

impl std::fmt::Debug for ActivityCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ActivityCoordinator")
            .field("activity", &self.activity)
            .field("signal_sets", &inner.sets.len())
            .field("registrations", &inner.registrations.len())
            .finish()
    }
}

impl ActivityCoordinator {
    /// A coordinator for the given activity, fanning signals out across
    /// the machine's available parallelism (see [`DispatchConfig`]).
    pub fn new(activity: ActivityId) -> Self {
        Self::with_dispatch(activity, DispatchConfig::default())
    }

    /// A coordinator with an explicit fan-out policy.
    /// [`DispatchConfig::serial`] reproduces the exact legacy serial loop
    /// and is what deterministic-replay tests pin.
    pub fn with_dispatch(activity: ActivityId, dispatch: DispatchConfig) -> Self {
        ActivityCoordinator {
            activity,
            inner: Mutex::new(CoordinatorInner {
                registrations: HashMap::new(),
                sets: HashMap::new(),
            }),
            trace: Mutex::new(None),
            trace_on: AtomicBool::new(false),
            dispatch: Mutex::new(dispatch),
            failpoints: Mutex::new(None),
            detector: Mutex::new(None),
            telemetry: Mutex::new(None),
            telemetry_on: AtomicBool::new(false),
        }
    }

    /// Attach a participant [`FailureDetector`]. The fig. 5 loop feeds it
    /// (each collated outcome is a success, each `"error"` outcome a
    /// failure) and consults it: actions whose participant is quarantined
    /// are skipped for the current signal (they re-enter via half-open
    /// probes), so a crashed Action cannot stall every subsequent signal.
    /// Workflow and saga layers use the same detector to reroute work or
    /// compensate early.
    pub fn set_detector(&self, detector: FailureDetector) {
        *self.detector.lock() = Some(detector);
    }

    /// The attached failure detector, if any.
    pub fn detector(&self) -> Option<FailureDetector> {
        self.detector.lock().clone()
    }

    /// Attach a (shared) failpoint set; the protocol loop hits the sites in
    /// [`failpoints`] so crash-matrix and simulation tests can kill the
    /// coordinator at any fig. 5 step.
    pub fn set_failpoints(&self, failpoints: FailpointSet) {
        *self.failpoints.lock() = Some(failpoints);
    }

    fn hit_failpoint(&self, site: &str) -> Result<(), ActivityError> {
        let fp = self.failpoints.lock().clone();
        match fp {
            Some(fp) => fp.hit(site).map_err(ActivityError::from),
            None => Ok(()),
        }
    }

    /// Change the fan-out policy for subsequent protocol runs.
    pub fn set_dispatch_config(&self, dispatch: DispatchConfig) {
        *self.dispatch.lock() = dispatch;
    }

    /// The current fan-out policy.
    pub fn dispatch_config(&self) -> DispatchConfig {
        *self.dispatch.lock()
    }

    /// The owning activity's id.
    pub fn activity(&self) -> ActivityId {
        self.activity
    }

    /// Attach a trace log; every subsequent protocol step is recorded.
    pub fn set_trace(&self, trace: TraceLog) {
        *self.trace.lock() = Some(trace);
        self.trace_on.store(true, Ordering::Release);
    }

    /// Attach a telemetry recorder: every subsequent protocol run becomes
    /// a `signal_set:` span with one `transmit:` child span per delivery,
    /// and each fig. 5 trace event doubles as a span event rendered with
    /// the exact [`TraceEvent`] `Display` text — which is what lets
    /// harness oracle #7 pin the span tree's coordinator projection to
    /// the [`TraceLog`] byte-for-byte.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.lock() = Some(telemetry);
        self.telemetry_on.store(true, Ordering::Release);
    }

    fn telemetry_handle(&self) -> Option<Telemetry> {
        if !self.telemetry_on.load(Ordering::Acquire) {
            return None;
        }
        self.telemetry.lock().clone().filter(Telemetry::is_enabled)
    }

    /// Associate a signal set with this activity, keyed by its
    /// `signal_set_name`. "A SignalSet is dynamically associated with an
    /// activity, and each activity can have a different SignalSet
    /// controlling it."
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::SignalSetActive`] when a set with that name
    /// is already associated (ended sets may be replaced).
    pub fn add_signal_set(&self, set: Box<dyn SignalSet>) -> Result<(), ActivityError> {
        let name = set.signal_set_name().to_owned();
        let mut inner = self.inner.lock();
        match inner.sets.get(&name) {
            Some(Some(entry)) if entry.state != SignalSetState::End => {
                return Err(ActivityError::SignalSetActive(name));
            }
            Some(None) => return Err(ActivityError::SignalSetActive(name)),
            _ => {}
        }
        inner
            .sets
            .insert(name, Some(SetEntry { set, state: SignalSetState::Waiting }));
        Ok(())
    }

    /// Register an action's interest in the named signal set. An Action
    /// "may register interest in more than one SignalSet", and registration
    /// may precede the set's association.
    pub fn register_action(&self, set_name: impl Into<String>, action: Arc<dyn Action>) {
        let mut inner = self.inner.lock();
        let slot = inner.registrations.entry(set_name.into()).or_insert_with(|| Arc::from([]));
        // Copy-on-write: registration is cold, per-signal snapshots are hot.
        let mut actions = slot.to_vec();
        actions.push(action);
        *slot = actions.into();
    }

    /// Remove every registration of the action named `action_name` from the
    /// named set. Returns how many registrations were removed.
    pub fn unregister_action(&self, set_name: &str, action_name: &str) -> usize {
        let mut inner = self.inner.lock();
        match inner.registrations.get_mut(set_name) {
            Some(slot) => {
                let before = slot.len();
                let kept: Vec<Arc<dyn Action>> =
                    slot.iter().filter(|a| a.name() != action_name).cloned().collect();
                let removed = before - kept.len();
                *slot = kept.into();
                removed
            }
            None => 0,
        }
    }

    /// Number of actions currently registered for the named set.
    pub fn action_count(&self, set_name: &str) -> usize {
        self.inner.lock().registrations.get(set_name).map_or(0, |a| a.len())
    }

    /// The fig. 7 state of the named set.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::UnknownSignalSet`] when not associated.
    pub fn signal_set_state(&self, set_name: &str) -> Result<SignalSetState, ActivityError> {
        let inner = self.inner.lock();
        match inner.sets.get(set_name) {
            Some(Some(entry)) => Ok(entry.state),
            Some(None) => Ok(SignalSetState::GetSignal),
            None => Err(ActivityError::UnknownSignalSet(set_name.to_owned())),
        }
    }

    /// Names of associated signal sets.
    pub fn signal_set_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().sets.keys().cloned().collect();
        names.sort();
        names
    }

    /// Forward a completion status to the named set before processing it.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::UnknownSignalSet`] or
    /// [`ActivityError::SignalSetActive`] when the set is checked out.
    pub fn set_completion_status(
        &self,
        set_name: &str,
        status: CompletionStatus,
    ) -> Result<(), ActivityError> {
        let mut inner = self.inner.lock();
        match inner.sets.get_mut(set_name) {
            Some(Some(entry)) => {
                entry.set.set_completion_status(status);
                Ok(())
            }
            Some(None) => Err(ActivityError::SignalSetActive(set_name.to_owned())),
            None => Err(ActivityError::UnknownSignalSet(set_name.to_owned())),
        }
    }

    /// Run the named set's full protocol (fig. 5): repeatedly obtain a
    /// signal, transmit it to every action registered for the set (the
    /// registration list is re-read for each signal, so actions enlisted
    /// mid-protocol see later signals), feed responses back, and collate.
    ///
    /// Action failures are converted into `"error"` outcomes and fed to the
    /// set like any other response — it is the *set's* protocol knowledge
    /// that decides what failure means.
    ///
    /// # Errors
    ///
    /// [`ActivityError::UnknownSignalSet`] when no such set is associated;
    /// [`ActivityError::SignalSetInactive`] when it already ended;
    /// [`ActivityError::SignalSetActive`] when another run has it checked
    /// out.
    pub fn process_signal_set(&self, set_name: &str) -> Result<Outcome, ActivityError> {
        let mut entry = {
            let mut inner = self.inner.lock();
            match inner.sets.get_mut(set_name) {
                None => return Err(ActivityError::UnknownSignalSet(set_name.to_owned())),
                Some(slot @ Some(_)) => {
                    let entry = slot.take().expect("just matched Some");
                    if entry.state == SignalSetState::End {
                        *slot = Some(entry);
                        return Err(ActivityError::SignalSetInactive(set_name.to_owned()));
                    }
                    entry
                }
                Some(None) => return Err(ActivityError::SignalSetActive(set_name.to_owned())),
            }
        };

        // A protocol run is one `signal_set:` span; it is entered on the
        // driving thread so remote-Action invocations (and their retry
        // attempts) parent under it via the ORB interceptors, and it is
        // closed on *every* exit path — a crash-failpoint error must not
        // leak an open span (oracle #7 rejects never-closed spans).
        let scope = self.telemetry_handle().map(|t| {
            let span = t.start_span(&format!("signal_set:{set_name}"));
            t.set_attr(&span, "activity", &self.activity.to_string());
            t.enter(span);
            (t, span)
        });
        let result = self.drive(set_name, &mut entry, scope.as_ref());
        if let Some((t, span)) = scope {
            match &result {
                Ok(outcome) => t.set_attr(&span, "outcome", outcome.name()),
                Err(e) => t.set_attr(&span, "error", &e.to_string()),
            }
            t.exit();
            t.end(&span);
        }
        entry.state = SignalSetState::End;
        // Return the (ended) set so late outcome queries and inactive-reuse
        // errors behave per the IDL.
        self.inner.lock().sets.insert(set_name.to_owned(), Some(entry));
        result
    }

    fn drive(
        &self,
        set_name: &str,
        entry: &mut SetEntry,
        tel: Option<&(Telemetry, SpanContext)>,
    ) -> Result<Outcome, ActivityError> {
        let config = *self.dispatch.lock();
        let detector = self.detector.lock().clone();
        let mut signal_seq = 0u64;
        // Reused across signals: delivery-id stamping formats into this
        // buffer instead of allocating a fresh growth-by-doubling String
        // per signal.
        let mut id_buf = String::new();
        loop {
            self.hit_failpoint(failpoints::BEFORE_GET_SIGNAL)?;
            self.record(tel.map(|(t, s)| (t, s)), || TraceEvent::GetSignal {
                set: set_name.to_owned(),
            });
            let next = entry.set.get_signal();
            entry.state = entry
                .state
                .on_get_signal(set_name, matches!(next, NextSignal::End))?;
            let (signal, last) = match next {
                NextSignal::Signal(s) => (s, false),
                NextSignal::LastSignal(s) => (s, true),
                NextSignal::End => break,
            };
            // Stamp a delivery id unique to (activity, set, signal number):
            // redelivery of the same logical signal — including transport
            // retries inside a remote Action proxy — shares the id, so
            // exactly-once consumers can deduplicate (§3.4).
            signal_seq += 1;
            let signal = if signal.delivery_id().is_some() {
                signal
            } else {
                id_buf.clear();
                let _ = write!(id_buf, "{}:{}:{}", self.activity, set_name, signal_seq);
                signal.with_delivery_id(id_buf.as_str())
            };
            // Fresh snapshot per signal (one `Arc` bump): actions
            // registered while the protocol runs receive subsequent
            // signals.
            let actions: Arc<[Arc<dyn Action>]> = self
                .inner
                .lock()
                .registrations
                .get(set_name)
                .cloned()
                .unwrap_or_else(|| Arc::from([]));
            // Quarantined participants sit this signal out (each skip
            // decision is computed once — `should_skip` claims half-open
            // probe slots). At-least-once semantics make the skip sound:
            // it is indistinguishable from the transport dropping every
            // copy of this delivery.
            let actions: Arc<[Arc<dyn Action>]> = match &detector {
                Some(detector) => {
                    let kept: Vec<Arc<dyn Action>> = actions
                        .iter()
                        .filter(|action| !detector.should_skip(action.name()))
                        .cloned()
                        .collect();
                    if kept.len() == actions.len() { actions } else { Arc::from(kept) }
                }
                None => actions,
            };
            self.hit_failpoint(failpoints::BEFORE_TRANSMIT)?;
            // Fan out. The set's responses are fed in registration order
            // regardless of the fan-out width, so protocol decisions and
            // traces are identical to a serial run; `RequestNext` breaks
            // delivery early and cancels outstanding transmissions.
            let set = &mut entry.set;
            // Collation runs in registration order, so pairing each outcome
            // with its action by index is exact — the detector sees the
            // same success/failure sequence under serial and parallel
            // dispatch.
            let mut collated = 0usize;
            // Per-delivery span handoff between the `before` and `after`
            // hooks; both run sequentially at collation on the driving
            // thread, so one slot is enough even under parallel fan-out.
            let open_transmit: Cell<Option<SpanContext>> = Cell::new(None);
            let request_next = dispatch::dispatch_signal(
                config,
                &actions,
                &signal,
                |action| {
                    let span = tel.map(|(t, parent)| {
                        let span =
                            t.start_child(parent, &format!("transmit:{}", signal.name()));
                        t.set_attr(&span, MSC_FROM, "coordinator");
                        t.set_attr(&span, MSC_TO, action.name());
                        t.set_attr(&span, MSC_MSG, signal.name());
                        if let Some(id) = signal.delivery_id() {
                            t.set_attr(&span, "delivery_id", id);
                        }
                        t.metrics()
                            .incr(&format!("signals_transmitted_total{{set=\"{set_name}\"}}"));
                        span
                    });
                    self.record(tel.map(|(t, _)| t).zip(span.as_ref()), || {
                        TraceEvent::Transmit {
                            signal: signal.name().to_owned(),
                            action: action.name().to_owned(),
                        }
                    });
                    open_transmit.set(span);
                },
                |outcome| {
                    if let Some(detector) = &detector {
                        if let Some(action) = actions.get(collated) {
                            if outcome.name() == crate::outcome::OUTCOME_ERROR {
                                detector.record_failure(action.name());
                            } else {
                                detector.record_success(action.name());
                            }
                        }
                    }
                    collated += 1;
                    self.record(tel.map(|(t, s)| (t, s)), || TraceEvent::SetResponse {
                        set: set_name.to_owned(),
                        outcome: outcome.name().to_owned(),
                    });
                    if let Some((t, _)) = tel {
                        if let Some(span) = open_transmit.take() {
                            t.set_attr(&span, MSC_REPLY, outcome.name());
                            t.end(&span);
                        }
                    }
                    set.set_response(&outcome) == AfterResponse::RequestNext
                },
            );
            if last && !request_next {
                entry.state = entry.state.on_last_signal_delivered();
                break;
            }
        }
        entry.state.check_outcome_readable(set_name)?;
        self.hit_failpoint(failpoints::BEFORE_OUTCOME)?;
        let outcome = entry.set.get_outcome();
        self.record(tel.map(|(t, s)| (t, s)), || TraceEvent::GetOutcome {
            set: set_name.to_owned(),
            outcome: outcome.name().to_owned(),
        });
        Ok(outcome)
    }

    /// Record one protocol step into the trace log and — when a span is
    /// given — as a span event with the same `Display` text, from the
    /// same call site, so the two views cannot drift apart.
    fn record(&self, span: Option<(&Telemetry, &SpanContext)>, event: impl FnOnce() -> TraceEvent) {
        // Fast path: with no trace attached (the common case for
        // production coordinators) this is one relaxed-ish atomic load —
        // no mutex, no event construction.
        let trace_on = self.trace_on.load(Ordering::Acquire);
        if !trace_on && span.is_none() {
            return;
        }
        let event = event();
        if trace_on {
            if let Some(trace) = self.trace.lock().as_ref() {
                trace.record(event.clone());
            }
        }
        if let Some((telemetry, span)) = span {
            telemetry.event(span, &event.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::FnAction;
    use crate::signal::Signal;
    use crate::signal_set::BroadcastSignalSet;
    use orb::Value;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn coordinator() -> ActivityCoordinator {
        ActivityCoordinator::new(ActivityId::new(1))
    }

    fn counting_action(name: &str, counter: Arc<AtomicU32>) -> Arc<dyn Action> {
        Arc::new(FnAction::new(name, move |_s: &Signal| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }))
    }

    #[test]
    fn broadcast_reaches_every_action() {
        let c = coordinator();
        c.add_signal_set(Box::new(BroadcastSignalSet::new("Notify", "wake", Value::Null)))
            .unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        for i in 0..5 {
            c.register_action("Notify", counting_action(&format!("a{i}"), Arc::clone(&hits)));
        }
        assert_eq!(c.action_count("Notify"), 5);
        let outcome = c.process_signal_set("Notify").unwrap();
        assert!(outcome.is_done());
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(c.signal_set_state("Notify").unwrap(), SignalSetState::End);
    }

    #[test]
    fn processing_without_actions_still_completes() {
        let c = coordinator();
        c.add_signal_set(Box::new(BroadcastSignalSet::new("Lonely", "x", Value::Null)))
            .unwrap();
        let outcome = c.process_signal_set("Lonely").unwrap();
        assert!(outcome.is_done());
        assert_eq!(outcome.data().as_u64(), Some(0));
    }

    #[test]
    fn ended_sets_cannot_be_reprocessed() {
        let c = coordinator();
        c.add_signal_set(Box::new(BroadcastSignalSet::new("Once", "x", Value::Null)))
            .unwrap();
        c.process_signal_set("Once").unwrap();
        assert!(matches!(
            c.process_signal_set("Once"),
            Err(ActivityError::SignalSetInactive(_))
        ));
        // But an ended set may be *replaced* (a new instance of the protocol).
        c.add_signal_set(Box::new(BroadcastSignalSet::new("Once", "x", Value::Null)))
            .unwrap();
        c.process_signal_set("Once").unwrap();
    }

    #[test]
    fn unknown_set_errors() {
        let c = coordinator();
        assert!(matches!(
            c.process_signal_set("ghost"),
            Err(ActivityError::UnknownSignalSet(_))
        ));
        assert!(matches!(
            c.signal_set_state("ghost"),
            Err(ActivityError::UnknownSignalSet(_))
        ));
    }

    #[test]
    fn duplicate_active_set_rejected() {
        let c = coordinator();
        c.add_signal_set(Box::new(BroadcastSignalSet::new("S", "x", Value::Null)))
            .unwrap();
        assert!(matches!(
            c.add_signal_set(Box::new(BroadcastSignalSet::new("S", "y", Value::Null))),
            Err(ActivityError::SignalSetActive(_))
        ));
    }

    #[test]
    fn action_errors_become_error_outcomes() {
        let c = coordinator();
        c.add_signal_set(Box::new(BroadcastSignalSet::new("S", "x", Value::Null)))
            .unwrap();
        c.register_action(
            "S",
            Arc::new(FnAction::new("bad", |_s: &Signal| {
                Err(crate::error::ActionError::new("cannot"))
            })),
        );
        let outcome = c.process_signal_set("S").unwrap();
        assert!(outcome.is_negative());
    }

    #[test]
    fn unregister_by_name() {
        let c = coordinator();
        let hits = Arc::new(AtomicU32::new(0));
        c.register_action("S", counting_action("keep", Arc::clone(&hits)));
        c.register_action("S", counting_action("drop", Arc::clone(&hits)));
        c.register_action("S", counting_action("drop", Arc::clone(&hits)));
        assert_eq!(c.unregister_action("S", "drop"), 2);
        assert_eq!(c.unregister_action("S", "ghost"), 0);
        assert_eq!(c.unregister_action("ghost-set", "x"), 0);
        assert_eq!(c.action_count("S"), 1);
    }

    #[test]
    fn trace_records_fig5_loop() {
        let c = coordinator();
        let trace = TraceLog::new();
        c.set_trace(trace.clone());
        c.add_signal_set(Box::new(BroadcastSignalSet::new("S", "go", Value::Null)))
            .unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        c.register_action("S", counting_action("a1", Arc::clone(&hits)));
        c.register_action("S", counting_action("a2", Arc::clone(&hits)));
        c.process_signal_set("S").unwrap();
        let events = trace.events();
        assert_eq!(
            events,
            vec![
                TraceEvent::GetSignal { set: "S".into() },
                TraceEvent::Transmit { signal: "go".into(), action: "a1".into() },
                TraceEvent::SetResponse { set: "S".into(), outcome: "done".into() },
                TraceEvent::Transmit { signal: "go".into(), action: "a2".into() },
                TraceEvent::SetResponse { set: "S".into(), outcome: "done".into() },
                TraceEvent::GetOutcome { set: "S".into(), outcome: "done".into() },
            ]
        );
    }

    #[test]
    fn telemetry_projection_matches_the_trace_byte_for_byte() {
        let c = coordinator();
        let trace = TraceLog::new();
        let tel = Telemetry::new();
        c.set_trace(trace.clone());
        c.set_telemetry(tel.clone());
        c.add_signal_set(Box::new(BroadcastSignalSet::new("S", "go", Value::Null)))
            .unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        c.register_action("S", counting_action("a1", Arc::clone(&hits)));
        c.register_action("S", counting_action("a2", Arc::clone(&hits)));
        c.process_signal_set("S").unwrap();

        let tree = tel.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new());
        assert_eq!(tree.coordinator_projection(), trace.render());

        // One signal_set root carrying one transmit child per delivery.
        let roots = tree.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "signal_set:S");
        assert_eq!(roots[0].attr("outcome"), Some("done"));
        let children = tree.children(roots[0].context.span_id);
        assert_eq!(children.len(), 2);
        assert!(children.iter().all(|s| s.name == "transmit:go"));
        assert!(children.iter().all(|s| s.attr(MSC_REPLY) == Some("done")));
        assert_eq!(tel.metrics().family_total("signals_transmitted_total"), 2);
    }

    #[test]
    fn failpoint_crash_still_closes_the_signal_set_span() {
        let c = coordinator();
        let tel = Telemetry::new();
        c.set_telemetry(tel.clone());
        let fp = FailpointSet::new();
        fp.arm(failpoints::BEFORE_OUTCOME, 0);
        c.set_failpoints(fp);
        c.add_signal_set(Box::new(BroadcastSignalSet::new("S", "go", Value::Null)))
            .unwrap();
        assert!(c.process_signal_set("S").is_err());
        let tree = tel.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new(), "error path must close spans");
        assert!(tree.roots()[0].attr("error").is_some());
    }

    #[test]
    fn multi_signal_set_requests_new_snapshot_per_signal() {
        // A set that emits two signals; an action registered between them
        // must only see the second.
        struct TwoSignals {
            sent: u32,
        }
        impl SignalSet for TwoSignals {
            fn signal_set_name(&self) -> &str {
                "Two"
            }
            fn get_signal(&mut self) -> NextSignal {
                self.sent += 1;
                match self.sent {
                    1 => NextSignal::Signal(Signal::new("first", "Two")),
                    2 => NextSignal::LastSignal(Signal::new("second", "Two")),
                    _ => NextSignal::End,
                }
            }
            fn set_response(&mut self, _r: &Outcome) -> AfterResponse {
                AfterResponse::Continue
            }
            fn get_outcome(&mut self) -> Outcome {
                Outcome::done()
            }
            fn set_completion_status(&mut self, _s: CompletionStatus) {}
            fn completion_status(&self) -> CompletionStatus {
                CompletionStatus::Success
            }
        }

        let c = Arc::new(coordinator());
        c.add_signal_set(Box::new(TwoSignals { sent: 0 })).unwrap();
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));

        let seen_early = Arc::clone(&seen);
        let c2 = Arc::clone(&c);
        let seen_late_outer = Arc::clone(&seen);
        c.register_action(
            "Two",
            Arc::new(FnAction::new("early", move |s: &Signal| {
                seen_early.lock().push(format!("early:{}", s.name()));
                if s.name() == "first" {
                    // Register a late action mid-protocol.
                    let seen_late = Arc::clone(&seen_late_outer);
                    c2.register_action(
                        "Two",
                        Arc::new(FnAction::new("late", move |s: &Signal| {
                            seen_late.lock().push(format!("late:{}", s.name()));
                            Ok(Outcome::done())
                        })),
                    );
                }
                Ok(Outcome::done())
            })),
        );
        c.process_signal_set("Two").unwrap();
        assert_eq!(
            *seen.lock(),
            vec!["early:first", "early:second", "late:second"]
        );
    }

    #[test]
    fn request_next_switches_signal_mid_delivery() {
        // A set whose first signal aborts as soon as any action rejects:
        // remaining actions must not see the first signal again, and the
        // set switches to a "cancel" signal.
        struct AbortSwitch {
            phase: u32,
            saw_abort: bool,
        }
        impl SignalSet for AbortSwitch {
            fn signal_set_name(&self) -> &str {
                "Switch"
            }
            fn get_signal(&mut self) -> NextSignal {
                self.phase += 1;
                match (self.phase, self.saw_abort) {
                    (1, _) => NextSignal::Signal(Signal::new("try", "Switch")),
                    (2, true) => NextSignal::LastSignal(Signal::new("cancel", "Switch")),
                    _ => NextSignal::End,
                }
            }
            fn set_response(&mut self, r: &Outcome) -> AfterResponse {
                if r.is_negative() {
                    self.saw_abort = true;
                    AfterResponse::RequestNext
                } else {
                    AfterResponse::Continue
                }
            }
            fn get_outcome(&mut self) -> Outcome {
                if self.saw_abort {
                    Outcome::abort()
                } else {
                    Outcome::done()
                }
            }
            fn set_completion_status(&mut self, _s: CompletionStatus) {}
            fn completion_status(&self) -> CompletionStatus {
                CompletionStatus::Success
            }
        }

        // The bystander property below ("never sees the abandoned signal")
        // is strictly serial: under parallel dispatch the bystander may be
        // transmitted to speculatively (and the delivery discarded), which
        // the at-least-once contract permits. Pin the exact legacy path.
        let c = ActivityCoordinator::with_dispatch(ActivityId::new(1), DispatchConfig::serial());
        let trace = TraceLog::new();
        c.set_trace(trace.clone());
        c.add_signal_set(Box::new(AbortSwitch { phase: 0, saw_abort: false })).unwrap();
        c.register_action(
            "Switch",
            Arc::new(FnAction::new("refuser", |s: &Signal| {
                // Refuses the attempt, acknowledges the cancellation.
                if s.name() == "try" {
                    Ok(Outcome::abort())
                } else {
                    Ok(Outcome::done())
                }
            })),
        );
        c.register_action(
            "Switch",
            Arc::new(FnAction::new("bystander", |s: &Signal| {
                assert_ne!(s.name(), "try", "bystander must not see the abandoned signal");
                Ok(Outcome::done())
            })),
        );
        let outcome = c.process_signal_set("Switch").unwrap();
        assert!(outcome.is_negative());
        let transmits: Vec<String> = trace
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Transmit { signal, action } => Some(format!("{signal}->{action}")),
                _ => None,
            })
            .collect();
        assert_eq!(
            transmits,
            vec!["try->refuser", "cancel->refuser", "cancel->bystander"]
        );
    }

    #[test]
    fn quarantined_action_sits_the_signal_out() {
        use orb::detector::{DetectorConfig, FailureDetector};
        use orb::SimClock;

        let detector = FailureDetector::with_config(
            SimClock::new(),
            DetectorConfig {
                suspect_after: 1,
                quarantine_after: 2,
                probe_interval: std::time::Duration::from_millis(50),
            },
        );
        detector.record_failure("flaky");
        detector.record_failure("flaky");
        let c = coordinator();
        c.set_detector(detector.clone());
        c.add_signal_set(Box::new(BroadcastSignalSet::new("Notify", "wake", Value::Null)))
            .unwrap();
        let healthy_hits = Arc::new(AtomicU32::new(0));
        let flaky_hits = Arc::new(AtomicU32::new(0));
        c.register_action("Notify", counting_action("steady", Arc::clone(&healthy_hits)));
        c.register_action("Notify", counting_action("flaky", Arc::clone(&flaky_hits)));
        let outcome = c.process_signal_set("Notify").unwrap();
        assert!(outcome.is_done());
        assert_eq!(healthy_hits.load(Ordering::SeqCst), 1);
        assert_eq!(flaky_hits.load(Ordering::SeqCst), 0, "quarantined action skipped");
        // The broadcast set counted one response: only the healthy action
        // was solicited.
        assert_eq!(outcome.data().as_u64(), Some(1));
    }

    #[test]
    fn error_outcomes_feed_the_detector_and_success_rehabilitates() {
        use orb::detector::{FailureDetector, HealthStatus};
        use orb::SimClock;

        let detector = FailureDetector::new(SimClock::new());
        let c = coordinator();
        c.set_detector(detector.clone());
        c.add_signal_set(Box::new(BroadcastSignalSet::new("Work", "go", Value::Null)))
            .unwrap();
        c.register_action(
            "Work",
            Arc::new(FnAction::new("grumpy", |_s: &Signal| {
                Err(crate::error::ActionError::new("down"))
            })),
        );
        let _ = c.process_signal_set("Work");
        assert_eq!(detector.suspicion("grumpy"), 1, "error outcome recorded as failure");

        // A later successful run clears the suspicion entirely.
        c.add_signal_set(Box::new(BroadcastSignalSet::new("Work2", "go", Value::Null)))
            .unwrap();
        c.register_action(
            "Work2",
            Arc::new(FnAction::new("grumpy", |_s: &Signal| Ok(Outcome::done()))),
        );
        let _ = c.process_signal_set("Work2");
        assert_eq!(detector.suspicion("grumpy"), 0);
        assert_eq!(detector.status("grumpy"), HealthStatus::Healthy);
    }
}
