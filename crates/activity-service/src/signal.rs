//! Signals: the framework's demarcation and coordination events.
//!
//! Mirrors the paper's IDL:
//!
//! ```idl
//! struct Signal {
//!     string signal_name;
//!     string signal_set_name;
//!     any    application_specific_data;
//! };
//! ```
//!
//! The CORBA `any` is rendered as [`orb::Value`].

use std::fmt;

use orb::{Value, ValueMap};

use crate::error::ActivityError;

/// A coordination event sent by a SignalSet to registered Actions.
///
/// "The information encoded within a Signal will depend upon the
/// implementation of the extended transaction model" — hence the open
/// [`Value`] payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    name: String,
    signal_set_name: String,
    data: Value,
    delivery_id: Option<String>,
}

impl Signal {
    /// A signal with no payload.
    pub fn new(name: impl Into<String>, signal_set_name: impl Into<String>) -> Self {
        Signal {
            name: name.into(),
            signal_set_name: signal_set_name.into(),
            data: Value::Null,
            delivery_id: None,
        }
    }

    /// Builder-style: attach application-specific data.
    #[must_use]
    pub fn with_data(mut self, data: Value) -> Self {
        self.data = data;
        self
    }

    /// Builder-style: attach a delivery id. Coordinators stamp one
    /// automatically before transmitting, so that *redelivery* of the same
    /// logical signal (at-least-once semantics, §3.4) is recognisable —
    /// the hook [`crate::exactly_once::ExactlyOnceAction`] builds on.
    #[must_use]
    pub fn with_delivery_id(mut self, delivery_id: impl Into<String>) -> Self {
        self.delivery_id = Some(delivery_id.into());
        self
    }

    /// The delivery id, if one was stamped.
    pub fn delivery_id(&self) -> Option<&str> {
        self.delivery_id.as_deref()
    }

    /// The signal's name (e.g. `"prepare"`, `"outcome"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The name of the signal set that produced it.
    pub fn signal_set_name(&self) -> &str {
        &self.signal_set_name
    }

    /// The application-specific payload.
    pub fn data(&self) -> &Value {
        &self.data
    }

    /// Serialise for transport/logging.
    pub fn to_value(&self) -> Value {
        let mut m = ValueMap::new();
        m.insert("name".into(), Value::Str(self.name.clone()));
        m.insert("set".into(), Value::Str(self.signal_set_name.clone()));
        m.insert("data".into(), self.data.clone());
        if let Some(id) = &self.delivery_id {
            m.insert("delivery".into(), Value::Str(id.clone()));
        }
        Value::Map(m)
    }

    /// Inverse of [`Signal::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::Context`] on malformed input.
    pub fn from_value(value: &Value) -> Result<Self, ActivityError> {
        let m = value
            .as_map()
            .ok_or_else(|| ActivityError::Context("signal must be a map".into()))?;
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ActivityError::Context("signal missing name".into()))?;
        let set = m
            .get("set")
            .and_then(Value::as_str)
            .ok_or_else(|| ActivityError::Context("signal missing set".into()))?;
        let data = m.get("data").cloned().unwrap_or(Value::Null);
        let delivery_id = m.get("delivery").and_then(Value::as_str).map(str::to_owned);
        Ok(Signal { name: name.to_owned(), signal_set_name: set.to_owned(), data, delivery_id })
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.signal_set_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_builder() {
        let s = Signal::new("prepare", "2pc").with_data(Value::from(5i64));
        assert_eq!(s.name(), "prepare");
        assert_eq!(s.signal_set_name(), "2pc");
        assert_eq!(s.data().as_i64(), Some(5));
    }

    #[test]
    fn value_roundtrip() {
        let s = Signal::new("outcome", "Completed").with_data(Value::from("done"));
        let v = s.to_value();
        let back = Signal::from_value(&v).unwrap();
        assert_eq!(back, s);
        // Through the binary codec too.
        let decoded = Value::decode(&v.encode()).unwrap();
        assert_eq!(Signal::from_value(&decoded).unwrap(), s);
    }

    #[test]
    fn from_value_rejects_malformed() {
        assert!(Signal::from_value(&Value::Null).is_err());
        let mut m = ValueMap::new();
        m.insert("name".into(), Value::from("x"));
        assert!(Signal::from_value(&Value::Map(m)).is_err(), "missing set");
    }

    #[test]
    fn display_includes_both_names() {
        let s = Signal::new("confirm", "Complete");
        let printed = s.to_string();
        assert!(printed.contains("confirm"));
        assert!(printed.contains("Complete"));
    }
}
