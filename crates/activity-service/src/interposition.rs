//! Interposition: subordinate coordination across nodes.
//!
//! The paper's framework "permit\[s\] such transactions to span a network of
//! systems connected indirectly by some distribution infrastructure"
//! (§1). The standard way to realise that — in the OTS, in WS-Coordination
//! and in the Activity Service deployments the paper anticipates — is
//! *interposition*: a node-local **subordinate coordinator** registers with
//! the superior as if it were a single Action, and fans every received
//! Signal out to its local Actions, collating their Outcomes into the one
//! response the superior sees.
//!
//! Benefits, all observable in the tests:
//! * the superior's action list (and its per-signal network cost) is one
//!   entry per *node*, not per participant;
//! * local participants are signalled without any network hop;
//! * each organisation keeps its own participants private.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::action::Action;
use crate::error::{ActionError, ActivityError};
use crate::outcome::Outcome;
use crate::signal::Signal;

/// How a [`SubordinateRelay`] collapses its local outcomes into the single
/// outcome reported upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollationPolicy {
    /// `done` unless any local action responded negatively — then the
    /// first negative outcome is reported (vote semantics: one local abort
    /// aborts the node).
    #[default]
    AllMustSucceed,
    /// The first non-`done` outcome wins, but errors from individual
    /// actions do not veto the rest: report `done` if *any* succeeded
    /// (quorum-of-one, for notification-style sets).
    AnySuccess,
}

/// A node-local fan-out: registered with a *superior* coordinator as one
/// Action, it relays every signal to its own registered actions.
pub struct SubordinateRelay {
    name: String,
    policy: CollationPolicy,
    locals: Mutex<Vec<Arc<dyn Action>>>,
}

impl std::fmt::Debug for SubordinateRelay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubordinateRelay")
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("locals", &self.locals.lock().len())
            .finish()
    }
}

impl SubordinateRelay {
    /// An empty relay with the default (all-must-succeed) collation.
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        Self::with_policy(name, CollationPolicy::default())
    }

    /// An empty relay with an explicit collation policy.
    pub fn with_policy(name: impl Into<String>, policy: CollationPolicy) -> Arc<Self> {
        Arc::new(SubordinateRelay { name: name.into(), policy, locals: Mutex::new(Vec::new()) })
    }

    /// Register a local participant. Unlike superior-side registration this
    /// never crosses the network.
    pub fn register_local(&self, action: Arc<dyn Action>) {
        self.locals.lock().push(action);
    }

    /// Number of local participants.
    pub fn local_count(&self) -> usize {
        self.locals.lock().len()
    }

    /// Remove local registrations by action name; returns how many.
    pub fn unregister_local(&self, action_name: &str) -> usize {
        let mut locals = self.locals.lock();
        let before = locals.len();
        locals.retain(|a| a.name() != action_name);
        before - locals.len()
    }
}

impl Action for SubordinateRelay {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        let locals: Vec<Arc<dyn Action>> = self.locals.lock().clone();
        if locals.is_empty() {
            // Nothing enlisted locally: transparent success (like a
            // read-only participant).
            return Ok(Outcome::done());
        }
        let mut first_negative: Option<Outcome> = None;
        let mut successes = 0usize;
        for action in &locals {
            let outcome = match action.process_signal(signal) {
                Ok(outcome) => outcome,
                Err(e) => Outcome::from_error(e.message()),
            };
            if outcome.is_negative() {
                if first_negative.is_none() {
                    first_negative = Some(outcome);
                }
            } else {
                successes += 1;
            }
        }
        match self.policy {
            CollationPolicy::AllMustSucceed => match first_negative {
                Some(negative) => Ok(negative),
                None => Ok(Outcome::done().with_data(orb::Value::U64(successes as u64))),
            },
            CollationPolicy::AnySuccess => {
                if successes > 0 {
                    Ok(Outcome::done().with_data(orb::Value::U64(successes as u64)))
                } else {
                    Ok(first_negative.unwrap_or_else(Outcome::abort))
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Convenience: expose a relay on an ORB node and register a proxy to it
/// with a superior coordinator, in one step. Returns the relay for local
/// enlistment.
///
/// # Errors
///
/// Propagates activation failures.
pub fn interpose(
    superior: &crate::coordinator::ActivityCoordinator,
    set_name: &str,
    orb: &orb::Orb,
    node: &orb::Node,
    relay_name: impl Into<String>,
) -> Result<Arc<SubordinateRelay>, ActivityError> {
    let relay_name = relay_name.into();
    let relay = SubordinateRelay::new(relay_name.clone());
    let servant =
        crate::action::ActionServant::new(Arc::clone(&relay) as Arc<dyn Action>);
    let reference = node.activate("ActivityService:Subordinate", servant)?;
    let proxy = crate::action::RemoteActionProxy::new(
        relay_name,
        orb.clone(),
        node.name().to_owned(),
        reference,
    );
    superior.register_action(set_name, Arc::new(proxy) as Arc<dyn Action>);
    Ok(relay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::FnAction;
    use crate::activity::Activity;
    use crate::signal_set::BroadcastSignalSet;
    use orb::{SimClock, Value};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn counting(name: &str, hits: Arc<AtomicU32>) -> Arc<dyn Action> {
        Arc::new(FnAction::new(name, move |_s: &Signal| {
            hits.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done())
        }))
    }

    #[test]
    fn relay_fans_out_and_collates() {
        let relay = SubordinateRelay::new("node-b");
        let hits = Arc::new(AtomicU32::new(0));
        for i in 0..3 {
            relay.register_local(counting(&format!("local-{i}"), Arc::clone(&hits)));
        }
        assert_eq!(relay.local_count(), 3);
        let outcome = relay.process_signal(&Signal::new("go", "S")).unwrap();
        assert!(outcome.is_done());
        assert_eq!(outcome.data().as_u64(), Some(3));
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn empty_relay_is_transparent() {
        let relay = SubordinateRelay::new("empty");
        assert!(relay.process_signal(&Signal::new("go", "S")).unwrap().is_done());
    }

    #[test]
    fn all_must_succeed_vetoes_on_any_negative() {
        let relay = SubordinateRelay::new("node");
        let hits = Arc::new(AtomicU32::new(0));
        relay.register_local(counting("ok", Arc::clone(&hits)));
        relay.register_local(Arc::new(FnAction::new("refuser", |_s: &Signal| {
            Ok(Outcome::abort())
        })));
        relay.register_local(counting("ok-2", Arc::clone(&hits)));
        let outcome = relay.process_signal(&Signal::new("prepare", "2pc")).unwrap();
        assert!(outcome.is_negative());
        // Everybody was still signalled (the superior decides what next).
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn any_success_policy_tolerates_failures() {
        let relay = SubordinateRelay::with_policy("node", CollationPolicy::AnySuccess);
        relay.register_local(Arc::new(FnAction::new("broken", |_s: &Signal| {
            Err(ActionError::new("down"))
        })));
        let hits = Arc::new(AtomicU32::new(0));
        relay.register_local(counting("ok", Arc::clone(&hits)));
        let outcome = relay.process_signal(&Signal::new("notify", "S")).unwrap();
        assert!(outcome.is_done());

        let all_broken = SubordinateRelay::with_policy("node2", CollationPolicy::AnySuccess);
        all_broken.register_local(Arc::new(FnAction::new("broken", |_s: &Signal| {
            Err(ActionError::new("down"))
        })));
        assert!(all_broken.process_signal(&Signal::new("notify", "S")).unwrap().is_negative());
    }

    #[test]
    fn unregister_local_by_name() {
        let relay = SubordinateRelay::new("node");
        let hits = Arc::new(AtomicU32::new(0));
        relay.register_local(counting("keep", Arc::clone(&hits)));
        relay.register_local(counting("drop", Arc::clone(&hits)));
        assert_eq!(relay.unregister_local("drop"), 1);
        assert_eq!(relay.unregister_local("ghost"), 0);
        relay.process_signal(&Signal::new("go", "S")).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn interposed_relay_costs_one_network_action() {
        // Superior on node A; three participants behind a relay on node B.
        let orb = orb::Orb::new();
        orb.add_node("superior-node").unwrap();
        let node_b = orb.add_node("subordinate-node").unwrap();

        let activity = Activity::new_root("distributed", SimClock::new());
        activity
            .coordinator()
            .add_signal_set(Box::new(BroadcastSignalSet::new("Complete", "finish", Value::Null)))
            .unwrap();
        let relay = interpose(
            activity.coordinator(),
            "Complete",
            &orb,
            &node_b,
            "node-b-relay",
        )
        .unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        for i in 0..3 {
            relay.register_local(counting(&format!("b-{i}"), Arc::clone(&hits)));
        }

        // Exactly ONE action at the superior…
        assert_eq!(activity.coordinator().action_count("Complete"), 1);
        let before = orb.network().stats().sent;
        let outcome = activity.signal("Complete").unwrap();
        assert!(outcome.is_done());
        // …but all three local participants ran…
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        // …at the price of one request/reply pair, not three.
        let sent = orb.network().stats().sent - before;
        assert_eq!(sent, 2, "one request leg + one reply leg");
    }
}
