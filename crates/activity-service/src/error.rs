//! Error types for the Activity Service.

use std::fmt;

use crate::activity::ActivityId;
use crate::completion::CompletionStatus;

/// Error raised by an [`crate::action::Action`] while processing a signal
/// (mirrors the IDL `ActionError` exception).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionError {
    message: String,
}

impl ActionError {
    /// Build from any printable reason.
    pub fn new(message: impl Into<String>) -> Self {
        ActionError { message: message.into() }
    }

    /// The failure description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "action failed: {}", self.message)
    }
}

impl std::error::Error for ActionError {}

/// Errors raised by activities, coordinators and the service.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ActivityError {
    /// The referenced signal set is not associated with the activity.
    UnknownSignalSet(String),
    /// The signal set has reached its End state and cannot be reused
    /// (mirrors the IDL `SignalSetInactive` exception).
    SignalSetInactive(String),
    /// `get_outcome` was called while the set was still producing signals
    /// (mirrors the IDL `SignalSetActive` exception).
    SignalSetActive(String),
    /// The activity is not in a state that allows the operation.
    InvalidState {
        /// Activity concerned.
        activity: ActivityId,
        /// What was attempted.
        operation: String,
        /// The state it was in.
        state: String,
    },
    /// An illegal completion-status transition (e.g. leaving `FailOnly`).
    CompletionStatus {
        /// From.
        from: CompletionStatus,
        /// To.
        to: CompletionStatus,
    },
    /// The activity still has incomplete children.
    ChildrenActive(ActivityId),
    /// No activity is associated with the calling thread.
    NoCurrentActivity,
    /// The activity's timeout elapsed.
    TimedOut(ActivityId),
    /// A remote invocation failed permanently.
    Remote(String),
    /// The durable log failed (or an injected crash fired).
    Log(String),
    /// Context (de)serialisation failed.
    Context(String),
    /// Recovery could not rebind a logged entity.
    Recovery(String),
    /// The referenced property group does not exist.
    UnknownPropertyGroup(String),
}

impl fmt::Display for ActivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivityError::UnknownSignalSet(name) => write!(f, "unknown signal set {name:?}"),
            ActivityError::SignalSetInactive(name) => {
                write!(f, "signal set {name:?} already reached its end state")
            }
            ActivityError::SignalSetActive(name) => {
                write!(f, "signal set {name:?} is still producing signals")
            }
            ActivityError::InvalidState { activity, operation, state } => {
                write!(f, "activity {activity} cannot {operation} while {state}")
            }
            ActivityError::CompletionStatus { from, to } => {
                write!(f, "illegal completion status transition {from} -> {to}")
            }
            ActivityError::ChildrenActive(id) => {
                write!(f, "activity {id} still has incomplete children")
            }
            ActivityError::NoCurrentActivity => {
                write!(f, "no activity associated with this thread")
            }
            ActivityError::TimedOut(id) => write!(f, "activity {id} timed out"),
            ActivityError::Remote(msg) => write!(f, "remote delivery failed: {msg}"),
            ActivityError::Log(msg) => write!(f, "activity log failure: {msg}"),
            ActivityError::Context(msg) => write!(f, "activity context failure: {msg}"),
            ActivityError::Recovery(msg) => write!(f, "recovery failure: {msg}"),
            ActivityError::UnknownPropertyGroup(name) => {
                write!(f, "unknown property group {name:?}")
            }
        }
    }
}

impl std::error::Error for ActivityError {}

impl From<recovery_log::LogError> for ActivityError {
    fn from(e: recovery_log::LogError) -> Self {
        ActivityError::Log(e.to_string())
    }
}

impl From<orb::OrbError> for ActivityError {
    fn from(e: orb::OrbError) -> Self {
        ActivityError::Remote(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let errors = vec![
            ActivityError::UnknownSignalSet("s".into()),
            ActivityError::SignalSetInactive("s".into()),
            ActivityError::SignalSetActive("s".into()),
            ActivityError::InvalidState {
                activity: ActivityId::new(1),
                operation: "complete".into(),
                state: "suspended".into(),
            },
            ActivityError::CompletionStatus {
                from: CompletionStatus::FailOnly,
                to: CompletionStatus::Success,
            },
            ActivityError::ChildrenActive(ActivityId::new(2)),
            ActivityError::NoCurrentActivity,
            ActivityError::TimedOut(ActivityId::new(3)),
            ActivityError::Remote("gone".into()),
            ActivityError::Log("full".into()),
            ActivityError::Context("bad".into()),
            ActivityError::Recovery("unbound".into()),
            ActivityError::UnknownPropertyGroup("pg".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(!ActionError::new("boom").to_string().is_empty());
    }

    #[test]
    fn conversions() {
        let e: ActivityError = recovery_log::LogError::Sealed.into();
        assert!(matches!(e, ActivityError::Log(_)));
        let e: ActivityError = orb::OrbError::Timeout { operation: "x".into() }.into();
        assert!(matches!(e, ActivityError::Remote(_)));
    }
}
