//! Exactly-once signal processing over at-least-once delivery.
//!
//! §3.4 of the paper: "Minimally, the delivery semantics for Signals is
//! required to be at least once … **Stronger delivery semantics — exactly
//! once — can be provided by the activity service itself making use of the
//! underlying transaction service.**"
//!
//! [`ExactlyOnceAction`] is that provision: it wraps any [`Action`] and
//! consults a durable processed-set (a [`Wal`], the same persistence
//! substrate the transaction service uses for its decisions) keyed by the
//! delivery ids the coordinator stamps on every signal. A redelivered
//! signal — whether from a network duplicate, a transport retry, or a
//! post-crash re-drive — is answered with the *recorded* outcome instead
//! of re-executing the wrapped action.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use recovery_log::{Lsn, Wal};

use crate::action::Action;
use crate::error::{ActionError, ActivityError};
use crate::outcome::Outcome;
use crate::signal::Signal;

/// Record kind for processed-signal entries (distinct from the `ots` and
/// activity kind spaces).
pub const KIND_SIGNAL_PROCESSED: u32 = 0x0301;

/// A wrapper giving any Action exactly-once processing semantics.
///
/// Signals without a delivery id cannot be deduplicated and are passed
/// straight through (the wrapped action's own idempotence is then the only
/// guard, as with a plain at-least-once deployment).
pub struct ExactlyOnceAction {
    name: String,
    inner: Arc<dyn Action>,
    wal: Arc<dyn Wal>,
    processed: Mutex<HashMap<String, Outcome>>,
}

impl std::fmt::Debug for ExactlyOnceAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactlyOnceAction")
            .field("name", &self.name)
            .field("processed", &self.processed.lock().len())
            .finish()
    }
}

impl ExactlyOnceAction {
    /// Wrap `inner`, persisting the processed-set to `wal`. The existing
    /// log is scanned so the dedup memory survives restarts.
    ///
    /// # Errors
    ///
    /// [`ActivityError::Log`] when the log cannot be scanned or contains a
    /// malformed processed-signal record.
    pub fn new(
        name: impl Into<String>,
        inner: Arc<dyn Action>,
        wal: Arc<dyn Wal>,
    ) -> Result<Arc<Self>, ActivityError> {
        let name = name.into();
        let mut processed = HashMap::new();
        for record in wal.scan(Lsn::new(0))? {
            if record.kind != KIND_SIGNAL_PROCESSED {
                continue;
            }
            let value = orb::Value::decode(&record.payload)
                .map_err(|e| ActivityError::Log(e.to_string()))?;
            let m = value
                .as_map()
                .ok_or_else(|| ActivityError::Log("processed record must be a map".into()))?;
            let owner = m.get("action").and_then(orb::Value::as_str).unwrap_or_default();
            if owner != name {
                continue; // another action's entry in a shared log
            }
            let id = m
                .get("id")
                .and_then(orb::Value::as_str)
                .ok_or_else(|| ActivityError::Log("processed record missing id".into()))?;
            let outcome = m
                .get("outcome")
                .map(Outcome::from_value)
                .transpose()?
                .unwrap_or_else(Outcome::done);
            processed.insert(id.to_owned(), outcome);
        }
        Ok(Arc::new(ExactlyOnceAction {
            name,
            inner,
            wal,
            processed: Mutex::new(processed),
        }))
    }

    /// Number of distinct signals processed so far.
    pub fn processed_count(&self) -> usize {
        self.processed.lock().len()
    }
}

impl Action for ExactlyOnceAction {
    fn process_signal(&self, signal: &Signal) -> Result<Outcome, ActionError> {
        let Some(id) = signal.delivery_id() else {
            // No identity to deduplicate on: degrade to at-least-once.
            return self.inner.process_signal(signal);
        };
        if let Some(previous) = self.processed.lock().get(id) {
            return Ok(previous.clone());
        }
        let outcome = self.inner.process_signal(signal)?;
        // Persist BEFORE acknowledging: if the append fails we surface an
        // error so the sender retries — the inner action must still be
        // idempotent against that narrow window, exactly as a transaction
        // participant must be between its work and its log force.
        let mut m = orb::ValueMap::new();
        m.insert("action".into(), orb::Value::from(self.name.as_str()));
        m.insert("id".into(), orb::Value::from(id));
        m.insert("outcome".into(), outcome.to_value());
        self.wal
            .append(KIND_SIGNAL_PROCESSED, &orb::Value::Map(m).encode())
            .map_err(|e| ActionError::new(e.to_string()))?;
        self.processed.lock().insert(id.to_owned(), outcome.clone());
        Ok(outcome)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::FnAction;
    use orb::Value;
    use recovery_log::MemWal;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn counting_inner() -> (Arc<dyn Action>, Arc<AtomicU32>) {
        let count = Arc::new(AtomicU32::new(0));
        let count2 = Arc::clone(&count);
        let inner: Arc<dyn Action> = Arc::new(FnAction::new("inner", move |s: &Signal| {
            count2.fetch_add(1, Ordering::SeqCst);
            Ok(Outcome::done().with_data(Value::from(s.name())))
        }));
        (inner, count)
    }

    #[test]
    fn duplicates_processed_once_with_recorded_outcome() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let (inner, count) = counting_inner();
        let action = ExactlyOnceAction::new("eo", inner, wal).unwrap();
        let signal = Signal::new("debit", "set").with_delivery_id("act-1:set:1");
        let first = action.process_signal(&signal).unwrap();
        let second = action.process_signal(&signal).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(first, second, "redelivery returns the recorded outcome");
        assert_eq!(action.processed_count(), 1);
    }

    #[test]
    fn distinct_delivery_ids_both_run() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let (inner, count) = counting_inner();
        let action = ExactlyOnceAction::new("eo", inner, wal).unwrap();
        action
            .process_signal(&Signal::new("s", "set").with_delivery_id("id-1"))
            .unwrap();
        action
            .process_signal(&Signal::new("s", "set").with_delivery_id("id-2"))
            .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn dedup_memory_survives_restart() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let (inner, count) = counting_inner();
        {
            let action = ExactlyOnceAction::new("eo", Arc::clone(&inner), Arc::clone(&wal)).unwrap();
            action
                .process_signal(&Signal::new("s", "set").with_delivery_id("id-1"))
                .unwrap();
        }
        // "Restart": a new wrapper over the same log and (recovered) inner.
        let action = ExactlyOnceAction::new("eo", inner, wal).unwrap();
        assert_eq!(action.processed_count(), 1);
        let outcome = action
            .process_signal(&Signal::new("s", "set").with_delivery_id("id-1"))
            .unwrap();
        assert!(outcome.is_done());
        assert_eq!(count.load(Ordering::SeqCst), 1, "not re-executed after restart");
    }

    #[test]
    fn shared_log_keeps_actions_separate() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let (inner_a, count_a) = counting_inner();
        let (inner_b, count_b) = counting_inner();
        let a = ExactlyOnceAction::new("a", inner_a, Arc::clone(&wal)).unwrap();
        let signal = Signal::new("s", "set").with_delivery_id("id-1");
        a.process_signal(&signal).unwrap();
        // B sees the same log but must not inherit A's dedup entry.
        let b = ExactlyOnceAction::new("b", inner_b, wal).unwrap();
        assert_eq!(b.processed_count(), 0);
        b.process_signal(&signal).unwrap();
        assert_eq!(count_a.load(Ordering::SeqCst), 1);
        assert_eq!(count_b.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn signals_without_ids_pass_through() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let (inner, count) = counting_inner();
        let action = ExactlyOnceAction::new("eo", inner, wal).unwrap();
        let bare = Signal::new("s", "set");
        action.process_signal(&bare).unwrap();
        action.process_signal(&bare).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 2, "no id, no dedup");
        assert_eq!(action.processed_count(), 0);
    }

    #[test]
    fn inner_errors_are_not_recorded() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let attempts = Arc::new(AtomicU32::new(0));
        let attempts2 = Arc::clone(&attempts);
        let flaky: Arc<dyn Action> = Arc::new(FnAction::new("flaky", move |_s: &Signal| {
            if attempts2.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(ActionError::new("transient"))
            } else {
                Ok(Outcome::done())
            }
        }));
        let action = ExactlyOnceAction::new("eo", flaky, wal).unwrap();
        let signal = Signal::new("s", "set").with_delivery_id("id-1");
        assert!(action.process_signal(&signal).is_err());
        // Retry after the failure runs the inner action again…
        assert!(action.process_signal(&signal).unwrap().is_done());
        // …and only then is the outcome pinned.
        assert!(action.process_signal(&signal).unwrap().is_done());
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn coordinator_stamps_ids_end_to_end() {
        use crate::activity::Activity;
        use crate::signal_set::BroadcastSignalSet;
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let (inner, count) = counting_inner();
        let action = ExactlyOnceAction::new("eo", inner, wal).unwrap();
        let activity = Activity::new_root("job", orb::SimClock::new());
        activity
            .coordinator()
            .add_signal_set(Box::new(BroadcastSignalSet::new("S", "go", Value::Null)))
            .unwrap();
        activity.coordinator().register_action("S", Arc::clone(&action) as _);
        activity.signal("S").unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(action.processed_count(), 1, "the coordinator stamped an id");
    }
}
