//! Durable activity records and recovery of the activity structure (§3.4).
//!
//! The paper's recovery requirements map onto this module as follows:
//!
//! * **rebinding of the activity structure** — [`recover_activities`]
//!   rebuilds the activity tree (ids, names, parent links) from the log;
//! * **recover actions and signal sets** — sets and actions are re-created
//!   through the [`SignalSetFactories`] / [`ActionFactories`] registries
//!   keyed by the factory names recorded at registration time;
//! * **application logic** / **object consistency** — the returned
//!   [`RecoveredService::incomplete`] list is handed back to the
//!   application, which drives each in-flight activity to completion (it is
//!   "predominately the application that is responsible for driving
//!   recovery").

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use orb::{SimClock, Value, ValueMap};
use recovery_log::{Lsn, Wal};

use crate::action::Action;
use crate::activity::{Activity, ActivityId};
use crate::completion::CompletionStatus;
use crate::error::ActivityError;
use crate::signal_set::SignalSet;

/// Record kind: an activity was begun.
pub const KIND_ACT_BEGUN: u32 = 0x0201;
/// Record kind: a recoverable SignalSet was associated.
pub const KIND_ACT_SIGNAL_SET: u32 = 0x0202;
/// Record kind: a recoverable Action was registered.
pub const KIND_ACT_ACTION: u32 = 0x0203;
/// Record kind: the completion status changed.
pub const KIND_ACT_STATUS: u32 = 0x0204;
/// Record kind: the completion SignalSet was designated.
pub const KIND_ACT_COMPLETION_SET: u32 = 0x0205;
/// Record kind: the activity completed.
pub const KIND_ACT_COMPLETED: u32 = 0x0206;

/// Writes activity lifecycle records to a [`Wal`].
pub struct ActivityLogger {
    wal: Arc<dyn Wal>,
}

impl std::fmt::Debug for ActivityLogger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivityLogger").finish_non_exhaustive()
    }
}

fn record(fields: &[(&str, Value)]) -> Vec<u8> {
    let mut m = ValueMap::new();
    for (k, v) in fields {
        m.insert((*k).to_owned(), v.clone());
    }
    Value::Map(m).encode().to_vec()
}

impl ActivityLogger {
    /// A logger over `wal`.
    pub fn new(wal: Arc<dyn Wal>) -> Arc<Self> {
        Arc::new(ActivityLogger { wal })
    }

    /// The underlying log.
    pub fn wal(&self) -> &Arc<dyn Wal> {
        &self.wal
    }

    pub(crate) fn log_begun(
        &self,
        id: ActivityId,
        name: &str,
        parent: Option<ActivityId>,
    ) -> Result<(), ActivityError> {
        let mut fields = vec![
            ("id", Value::U64(id.raw())),
            ("name", Value::from(name)),
        ];
        if let Some(parent) = parent {
            fields.push(("parent", Value::U64(parent.raw())));
        }
        self.wal.append(KIND_ACT_BEGUN, &record(&fields))?;
        Ok(())
    }

    pub(crate) fn log_signal_set(
        &self,
        id: ActivityId,
        set_name: &str,
        factory: &str,
    ) -> Result<(), ActivityError> {
        self.wal.append(
            KIND_ACT_SIGNAL_SET,
            &record(&[
                ("id", Value::U64(id.raw())),
                ("set", Value::from(set_name)),
                ("factory", Value::from(factory)),
            ]),
        )?;
        Ok(())
    }

    pub(crate) fn log_action(
        &self,
        id: ActivityId,
        set_name: &str,
        factory: &str,
    ) -> Result<(), ActivityError> {
        self.wal.append(
            KIND_ACT_ACTION,
            &record(&[
                ("id", Value::U64(id.raw())),
                ("set", Value::from(set_name)),
                ("factory", Value::from(factory)),
            ]),
        )?;
        Ok(())
    }

    pub(crate) fn log_completion_status(
        &self,
        id: ActivityId,
        status: CompletionStatus,
    ) -> Result<(), ActivityError> {
        self.wal.append(
            KIND_ACT_STATUS,
            &record(&[("id", Value::U64(id.raw())), ("status", Value::from(status.as_str()))]),
        )?;
        Ok(())
    }

    pub(crate) fn log_completion_set(
        &self,
        id: ActivityId,
        set_name: &str,
    ) -> Result<(), ActivityError> {
        self.wal.append(
            KIND_ACT_COMPLETION_SET,
            &record(&[("id", Value::U64(id.raw())), ("set", Value::from(set_name))]),
        )?;
        Ok(())
    }

    pub(crate) fn log_completed(
        &self,
        id: ActivityId,
        status: CompletionStatus,
        outcome: &str,
    ) -> Result<(), ActivityError> {
        // The completion record is the activity's decision point: it alone
        // is awaited durably. Earlier lifecycle records ride the same group
        // barrier (presumed-incomplete on replay is safe — the application
        // re-drives any activity without a completion record).
        self.wal.append_durable(
            KIND_ACT_COMPLETED,
            &record(&[
                ("id", Value::U64(id.raw())),
                ("status", Value::from(status.as_str())),
                ("outcome", Value::from(outcome)),
            ]),
        )?;
        Ok(())
    }
}

/// Registry of named SignalSet constructors used to re-instantiate sets at
/// recovery time.
#[derive(Default)]
pub struct SignalSetFactories {
    factories: HashMap<String, Box<dyn Fn() -> Box<dyn SignalSet> + Send + Sync>>,
}

impl std::fmt::Debug for SignalSetFactories {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignalSetFactories").field("keys", &self.keys()).finish()
    }
}

impl SignalSetFactories {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a constructor under `key`.
    pub fn register<F>(&mut self, key: impl Into<String>, factory: F)
    where
        F: Fn() -> Box<dyn SignalSet> + Send + Sync + 'static,
    {
        self.factories.insert(key.into(), Box::new(factory));
    }

    /// Instantiate the set registered under `key`.
    ///
    /// # Errors
    ///
    /// [`ActivityError::Recovery`] when the key is unknown.
    pub fn create(&self, key: &str) -> Result<Box<dyn SignalSet>, ActivityError> {
        self.factories
            .get(key)
            .map(|f| f())
            .ok_or_else(|| ActivityError::Recovery(format!("no signal set factory {key:?}")))
    }

    /// Sorted factory keys.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.factories.keys().cloned().collect();
        keys.sort();
        keys
    }
}

/// Registry of named Action constructors used at recovery time.
#[derive(Default)]
pub struct ActionFactories {
    factories: HashMap<String, Box<dyn Fn() -> Arc<dyn Action> + Send + Sync>>,
}

impl std::fmt::Debug for ActionFactories {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionFactories").field("keys", &self.keys()).finish()
    }
}

impl ActionFactories {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a constructor under `key`.
    pub fn register<F>(&mut self, key: impl Into<String>, factory: F)
    where
        F: Fn() -> Arc<dyn Action> + Send + Sync + 'static,
    {
        self.factories.insert(key.into(), Box::new(factory));
    }

    /// Instantiate the action registered under `key`.
    ///
    /// # Errors
    ///
    /// [`ActivityError::Recovery`] when the key is unknown.
    pub fn create(&self, key: &str) -> Result<Arc<dyn Action>, ActivityError> {
        self.factories
            .get(key)
            .map(|f| f())
            .ok_or_else(|| ActivityError::Recovery(format!("no action factory {key:?}")))
    }

    /// Sorted factory keys.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.factories.keys().cloned().collect();
        keys.sort();
        keys
    }
}

#[derive(Debug, Default, Clone)]
struct LoggedActivity {
    name: String,
    parent: Option<u64>,
    signal_sets: Vec<(String, String)>,
    actions: Vec<(String, String)>,
    status: Option<CompletionStatus>,
    completion_set: Option<String>,
    completed: bool,
    begun: bool,
}

/// Result of [`recover_activities`].
#[derive(Debug)]
pub struct RecoveredService {
    /// Rebuilt root activities (tree roots; children hang off them).
    pub roots: Vec<Activity>,
    /// Activities that had not completed at crash time, in begin order —
    /// the application must drive these to consistency.
    pub incomplete: Vec<Activity>,
    /// Ids of activities that had already completed.
    pub completed: Vec<ActivityId>,
    /// The id the service's counter should continue from.
    pub next_id: u64,
}

/// Rebuild the activity structure recorded in `wal`.
///
/// # Errors
///
/// [`ActivityError::Log`] when the log cannot be read or decoded;
/// [`ActivityError::Recovery`] when a recorded factory key has no registered
/// constructor or a parent link dangles.
pub fn recover_activities(
    wal: Arc<dyn Wal>,
    set_factories: &SignalSetFactories,
    action_factories: &ActionFactories,
    clock: SimClock,
) -> Result<RecoveredService, ActivityError> {
    let mut logged: BTreeMap<u64, LoggedActivity> = BTreeMap::new();
    // Stream records in place (`scan_with`): nothing is cloned out of the
    // log while rebuilding the tree.
    let mut classify = |rec: &recovery_log::LogRecord| -> Result<(), ActivityError> {
        let payload = || {
            Value::decode(&rec.payload)
                .map_err(|e| ActivityError::Log(e.to_string()))
                .and_then(|v| {
                    v.as_map()
                        .cloned()
                        .ok_or_else(|| ActivityError::Log("record payload must be a map".into()))
                })
        };
        let field_id = |m: &ValueMap| {
            m.get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| ActivityError::Log("record missing id".into()))
        };
        match rec.kind {
            KIND_ACT_BEGUN => {
                let m = payload()?;
                let id = field_id(&m)?;
                let entry = logged.entry(id).or_default();
                entry.begun = true;
                entry.name = m.get("name").and_then(Value::as_str).unwrap_or("").to_owned();
                entry.parent = m.get("parent").and_then(Value::as_u64);
            }
            KIND_ACT_SIGNAL_SET => {
                let m = payload()?;
                let id = field_id(&m)?;
                let set = m.get("set").and_then(Value::as_str).unwrap_or("").to_owned();
                let factory = m.get("factory").and_then(Value::as_str).unwrap_or("").to_owned();
                logged.entry(id).or_default().signal_sets.push((set, factory));
            }
            KIND_ACT_ACTION => {
                let m = payload()?;
                let id = field_id(&m)?;
                let set = m.get("set").and_then(Value::as_str).unwrap_or("").to_owned();
                let factory = m.get("factory").and_then(Value::as_str).unwrap_or("").to_owned();
                logged.entry(id).or_default().actions.push((set, factory));
            }
            KIND_ACT_STATUS => {
                let m = payload()?;
                let id = field_id(&m)?;
                logged.entry(id).or_default().status =
                    m.get("status").and_then(Value::as_str).and_then(CompletionStatus::parse);
            }
            KIND_ACT_COMPLETION_SET => {
                let m = payload()?;
                let id = field_id(&m)?;
                logged.entry(id).or_default().completion_set =
                    m.get("set").and_then(Value::as_str).map(str::to_owned);
            }
            KIND_ACT_COMPLETED => {
                let m = payload()?;
                let id = field_id(&m)?;
                let entry = logged.entry(id).or_default();
                entry.completed = true;
                entry.status =
                    m.get("status").and_then(Value::as_str).and_then(CompletionStatus::parse);
            }
            _ => {}
        }
        Ok(())
    };
    wal.scan_with(Lsn::new(0), &mut |rec| {
        classify(rec).map_err(|e| recovery_log::LogError::Handler(e.to_string()))
    })?;

    let next_id = logged.keys().max().map_or(1, |m| m + 1);
    let id_source = Arc::new(AtomicU64::new(next_id));
    let logger = ActivityLogger::new(Arc::clone(&wal));

    // Rebuild the tree. BTreeMap order means parents (lower ids) come first.
    let mut rebuilt: HashMap<u64, Activity> = HashMap::new();
    let mut roots = Vec::new();
    let mut incomplete = Vec::new();
    let mut completed = Vec::new();
    for (id, info) in &logged {
        if !info.begun {
            return Err(ActivityError::Recovery(format!(
                "activity {id} has records but no begin entry"
            )));
        }
        let parent = match info.parent {
            Some(pid) => Some(rebuilt.get(&pid).cloned().ok_or_else(|| {
                ActivityError::Recovery(format!("activity {id} has unknown parent {pid}"))
            })?),
            None => None,
        };
        let activity = Activity::rebuild(
            ActivityId::new(*id),
            info.name.clone(),
            parent.as_ref(),
            clock.clone(),
            Some(Arc::clone(&logger)),
            Arc::clone(&id_source),
        );
        if info.parent.is_none() {
            roots.push(activity.clone());
        }
        if info.completed {
            activity.force_completed(info.status.unwrap_or(CompletionStatus::Success));
            completed.push(activity.id());
        } else {
            // Re-create the protocol machinery for in-flight activities.
            for (_, factory) in &info.signal_sets {
                activity.coordinator().add_signal_set(set_factories.create(factory)?)?;
            }
            for (set_name, factory) in &info.actions {
                activity
                    .coordinator()
                    .register_action(set_name.clone(), action_factories.create(factory)?);
            }
            if let Some(status) = info.status {
                activity.set_completion_status(status)?;
            }
            if let Some(set) = &info.completion_set {
                activity.set_completion_signal_set(set.clone());
            }
            incomplete.push(activity.clone());
        }
        rebuilt.insert(*id, activity);
    }

    Ok(RecoveredService { roots, incomplete, completed, next_id })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;
    use crate::signal::Signal;
    use crate::signal_set::BroadcastSignalSet;
    use crate::activity::ActivityState;
    use crate::action::FnAction;
    use recovery_log::MemWal;

    fn factories() -> (SignalSetFactories, ActionFactories) {
        let mut sets = SignalSetFactories::new();
        sets.register("completion-v1", || {
            Box::new(BroadcastSignalSet::new("Completion", "finished", Value::Null)) as Box<dyn SignalSet>
        });
        let mut actions = ActionFactories::new();
        actions.register("observer-v1", || {
            Arc::new(FnAction::new("observer", |_s: &Signal| Ok(Outcome::done()))) as Arc<dyn Action>
        });
        (sets, actions)
    }

    fn logged_root(wal: &Arc<dyn Wal>) -> Activity {
        let logger = ActivityLogger::new(Arc::clone(wal));
        Activity::new_root_with("job", SimClock::new(), Some(logger), Arc::new(AtomicU64::new(1)))
    }

    #[test]
    fn factories_reject_unknown_keys() {
        let (sets, actions) = factories();
        assert!(sets.create("ghost").is_err());
        assert!(actions.create("ghost").is_err());
        assert_eq!(sets.keys(), vec!["completion-v1"]);
        assert_eq!(actions.keys(), vec!["observer-v1"]);
    }

    #[test]
    fn structure_is_rebuilt_after_crash() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        {
            let root = logged_root(&wal);
            let child = root.begin_child("step-1").unwrap();
            child
                .add_signal_set_recoverable(
                    "completion-v1",
                    Box::new(BroadcastSignalSet::new("Completion", "finished", Value::Null)),
                )
                .unwrap();
            child
                .register_action_recoverable(
                    "Completion",
                    "observer-v1",
                    Arc::new(FnAction::new("observer", |_s: &Signal| Ok(Outcome::done()))),
                )
                .unwrap();
            child.set_completion_signal_set("Completion");
            child.set_completion_status(CompletionStatus::Fail).unwrap();
            // Crash here: nothing completes.
        }
        let (sets, actions) = factories();
        let recovered =
            recover_activities(Arc::clone(&wal), &sets, &actions, SimClock::new()).unwrap();
        assert_eq!(recovered.roots.len(), 1);
        assert_eq!(recovered.incomplete.len(), 2);
        assert!(recovered.completed.is_empty());

        let root = &recovered.roots[0];
        assert_eq!(root.name(), "job");
        let children = root.children();
        assert_eq!(children.len(), 1);
        let child = &children[0];
        assert_eq!(child.name(), "step-1");
        assert_eq!(child.parent().unwrap().id(), root.id());
        assert_eq!(child.completion_status(), CompletionStatus::Fail);
        assert_eq!(child.completion_signal_set().as_deref(), Some("Completion"));
        assert_eq!(child.coordinator().action_count("Completion"), 1);

        // The application drives recovery to completion (§3.4). The
        // designated set (a broadcast here) produces the outcome; the
        // recovered Fail status is what the set was told.
        let out = child.complete().unwrap();
        assert!(out.is_done(), "the re-created broadcast set collates its actions' outcomes");
        assert_eq!(child.completion_status(), CompletionStatus::Fail);
        root.complete().unwrap();
    }

    #[test]
    fn completed_activities_recover_as_completed() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        {
            let root = logged_root(&wal);
            root.complete().unwrap();
        }
        let (sets, actions) = factories();
        let recovered =
            recover_activities(Arc::clone(&wal), &sets, &actions, SimClock::new()).unwrap();
        assert_eq!(recovered.completed.len(), 1);
        assert!(recovered.incomplete.is_empty());
        assert_eq!(recovered.roots[0].state(), ActivityState::Completed);
    }

    #[test]
    fn next_id_continues_past_logged_ids() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        {
            let root = logged_root(&wal);
            let _ = root.begin_child("a").unwrap();
            let _ = root.begin_child("b").unwrap();
        }
        let (sets, actions) = factories();
        let recovered =
            recover_activities(Arc::clone(&wal), &sets, &actions, SimClock::new()).unwrap();
        assert_eq!(recovered.next_id, 4);
        // New children of recovered activities use fresh ids.
        let root = &recovered.roots[0];
        let fresh = root.begin_child("c").unwrap();
        assert_eq!(fresh.id().raw(), 4);
    }

    #[test]
    fn unknown_factory_key_fails_recovery() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        {
            let root = logged_root(&wal);
            root.add_signal_set_recoverable(
                "not-registered",
                Box::new(BroadcastSignalSet::new("S", "x", Value::Null)),
            )
            .unwrap();
        }
        let (sets, actions) = factories();
        let err = recover_activities(wal, &sets, &actions, SimClock::new()).unwrap_err();
        assert!(matches!(err, ActivityError::Recovery(_)));
    }

    #[test]
    fn recovery_after_recovery_is_stable() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        {
            let root = logged_root(&wal);
            let _child = root.begin_child("step").unwrap();
        }
        let (sets, actions) = factories();
        let first =
            recover_activities(Arc::clone(&wal), &sets, &actions, SimClock::new()).unwrap();
        // Complete everything; the completions are logged to the same wal.
        for a in first.incomplete.iter().rev() {
            a.complete().unwrap();
        }
        let second = recover_activities(wal, &sets, &actions, SimClock::new()).unwrap();
        assert!(second.incomplete.is_empty(), "everything completed before the second crash");
        assert_eq!(second.completed.len(), 2);
    }
}
