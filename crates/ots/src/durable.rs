//! A durable, recoverable transactional store.
//!
//! §3.4 of the paper: "many transaction systems simply state the
//! requirements they place on such objects if they are to be made
//! recoverable, and leave it up to the object implementers to determine the
//! best strategy for their object's persistence." [`DurableKv`] is such an
//! object implementer, done right:
//!
//! * **prepare** forces a redo record of the transaction's effects before
//!   voting commit (the participant contract: a prepared participant must
//!   survive a crash still able to commit *or* roll back);
//! * **commit** forces a commit record and applies the effects;
//! * **recovery** ([`DurableKv::recover`]) rebuilds the committed state and
//!   re-installs prepared-but-undecided workspaces, so the transaction
//!   service's own recovery ([`crate::txlog::recover`]) can finish the job
//!   by re-delivering the outcome.

use std::sync::Arc;

use orb::{Value, ValueMap};
use recovery_log::{Lsn, Wal};

use crate::error::TxError;
use crate::memres::TransactionalKv;
use crate::resource::{Resource, Vote};
use crate::txlog::{txid_from_value, txid_to_value};
use crate::xid::TxId;

/// Record kind: a participant prepared; payload carries its effects.
pub const KIND_KV_PREPARED: u32 = 0x0401;
/// Record kind: a prepared transaction committed here.
pub const KIND_KV_COMMITTED: u32 = 0x0402;
/// Record kind: a prepared transaction rolled back here.
pub const KIND_KV_ABORTED: u32 = 0x0403;
/// Record kind: a full committed-state checkpoint.
pub const KIND_KV_CHECKPOINT: u32 = 0x0404;

/// A write-ahead-logged [`TransactionalKv`]: same locking and nesting
/// behaviour, plus crash-surviving prepared state.
pub struct DurableKv {
    inner: Arc<TransactionalKv>,
    wal: Arc<dyn Wal>,
}

impl std::fmt::Debug for DurableKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableKv").field("name", &self.inner.name()).finish_non_exhaustive()
    }
}

fn effects_to_value(effects: &[(String, Option<Value>)]) -> Value {
    let entries: Vec<Value> = effects
        .iter()
        .map(|(k, v)| {
            let mut m = ValueMap::new();
            m.insert("key".into(), Value::from(k.as_str()));
            if let Some(v) = v {
                m.insert("value".into(), v.clone());
            }
            Value::Map(m)
        })
        .collect();
    Value::List(entries)
}

fn effects_from_value(value: &Value) -> Result<Vec<(String, Option<Value>)>, TxError> {
    let list = value
        .as_list()
        .ok_or_else(|| TxError::Log("effects must be a list".into()))?;
    let mut effects = Vec::with_capacity(list.len());
    for entry in list {
        let m = entry
            .as_map()
            .ok_or_else(|| TxError::Log("effect entry must be a map".into()))?;
        let key = m
            .get("key")
            .and_then(Value::as_str)
            .ok_or_else(|| TxError::Log("effect entry missing key".into()))?;
        effects.push((key.to_owned(), m.get("value").cloned()));
    }
    Ok(effects)
}

impl DurableKv {
    /// A fresh durable store over `wal` (typically a
    /// [`recovery_log::FileWal`]); the log may be shared with other
    /// components — records are tagged with the store's name.
    pub fn new(name: impl Into<String>, wal: Arc<dyn Wal>) -> Arc<Self> {
        Arc::new(DurableKv { inner: Arc::new(TransactionalKv::new(name)), wal })
    }

    /// Rebuild a durable store from its log: committed effects are
    /// re-applied in order (from the latest checkpoint when present) and
    /// prepared-but-undecided workspaces are re-installed awaiting the
    /// transaction service's outcome re-delivery.
    ///
    /// # Errors
    ///
    /// [`TxError::Log`] when the log cannot be read or a record is
    /// malformed.
    pub fn recover(name: impl Into<String>, wal: Arc<dyn Wal>) -> Result<Arc<Self>, TxError> {
        let name = name.into();
        let store = Arc::new(TransactionalKv::new(name.clone()));
        let mut prepared: std::collections::HashMap<TxId, Vec<(String, Option<Value>)>> =
            std::collections::HashMap::new();

        for record in wal.scan(Lsn::new(0))? {
            let is_ours = |m: &ValueMap| {
                m.get("store").and_then(Value::as_str) == Some(name.as_str())
            };
            match record.kind {
                KIND_KV_CHECKPOINT => {
                    let v = decode(&record.payload)?;
                    let m = map_of(&v)?;
                    if !is_ours(m) {
                        continue;
                    }
                    let entries = effects_from_value(
                        m.get("state").ok_or_else(|| TxError::Log("checkpoint missing state".into()))?,
                    )?;
                    store.load_committed(
                        entries.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))),
                    );
                    prepared.clear();
                }
                KIND_KV_PREPARED => {
                    let v = decode(&record.payload)?;
                    let m = map_of(&v)?;
                    if !is_ours(m) {
                        continue;
                    }
                    let tx = txid_from_value(
                        m.get("tx").ok_or_else(|| TxError::Log("prepared missing tx".into()))?,
                    )?;
                    let effects = effects_from_value(
                        m.get("effects")
                            .ok_or_else(|| TxError::Log("prepared missing effects".into()))?,
                    )?;
                    prepared.insert(tx, effects);
                }
                KIND_KV_COMMITTED => {
                    let v = decode(&record.payload)?;
                    let m = map_of(&v)?;
                    if !is_ours(m) {
                        continue;
                    }
                    let tx = txid_from_value(
                        m.get("tx").ok_or_else(|| TxError::Log("committed missing tx".into()))?,
                    )?;
                    if let Some(effects) = prepared.remove(&tx) {
                        store.restore_prepared(&tx, effects);
                        store.commit(&tx)?;
                    }
                }
                KIND_KV_ABORTED => {
                    let v = decode(&record.payload)?;
                    let m = map_of(&v)?;
                    if !is_ours(m) {
                        continue;
                    }
                    let tx = txid_from_value(
                        m.get("tx").ok_or_else(|| TxError::Log("aborted missing tx".into()))?,
                    )?;
                    prepared.remove(&tx);
                }
                _ => {}
            }
        }
        // Whatever remains prepared is in doubt: reinstall it so outcome
        // re-delivery (commit or rollback) finds it waiting.
        for (tx, effects) in prepared {
            store.restore_prepared(&tx, effects);
        }
        Ok(Arc::new(DurableKv { inner: store, wal }))
    }

    /// The wrapped in-memory store (locking, reads, writes).
    pub fn store(&self) -> &Arc<TransactionalKv> {
        &self.inner
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Write a checkpoint of the committed state, bounding future replay.
    ///
    /// # Errors
    ///
    /// Propagates log failures.
    pub fn checkpoint(&self) -> Result<(), TxError> {
        let snapshot: Vec<(String, Option<Value>)> = self
            .inner
            .committed_snapshot()
            .into_iter()
            .map(|(k, v)| (k, Some(v)))
            .collect();
        let mut m = ValueMap::new();
        m.insert("store".into(), Value::from(self.name()));
        m.insert("state".into(), effects_to_value(&snapshot));
        self.wal.append_durable(KIND_KV_CHECKPOINT, &Value::Map(m).encode())?;
        Ok(())
    }

    fn log_outcome(&self, kind: u32, tx: &TxId) -> Result<(), TxError> {
        let mut m = ValueMap::new();
        m.insert("store".into(), Value::from(self.name()));
        m.insert("tx".into(), txid_to_value(tx));
        // Durable before acking: under a group-commit log outcomes from
        // concurrent transactions share one sync.
        self.wal.append_durable(kind, &Value::Map(m).encode())?;
        Ok(())
    }
}

fn decode(payload: &[u8]) -> Result<Value, TxError> {
    Value::decode(payload).map_err(|e| TxError::Log(e.to_string()))
}

fn map_of(v: &Value) -> Result<&ValueMap, TxError> {
    v.as_map().ok_or_else(|| TxError::Log("record payload must be a map".into()))
}

impl Resource for DurableKv {
    fn prepare(&self, tx: &TxId) -> Result<Vote, TxError> {
        let vote = self.inner.prepare(tx)?;
        if vote == Vote::Commit {
            let effects = self.inner.prepared_effects(tx).unwrap_or_default();
            let mut m = ValueMap::new();
            m.insert("store".into(), Value::from(self.name()));
            m.insert("tx".into(), txid_to_value(tx));
            m.insert("effects".into(), effects_to_value(&effects));
            // Force the redo record BEFORE voting: the participant
            // contract.
            self.wal.append_durable(KIND_KV_PREPARED, &Value::Map(m).encode())?;
        }
        Ok(vote)
    }

    fn commit(&self, tx: &TxId) -> Result<(), TxError> {
        // Idempotent like the inner store: a commit for an unknown tx is a
        // no-op and is not re-logged.
        if self.inner.prepared_effects(tx).is_some() {
            self.log_outcome(KIND_KV_COMMITTED, tx)?;
        }
        self.inner.commit(tx)
    }

    fn rollback(&self, tx: &TxId) -> Result<(), TxError> {
        if self.inner.prepared_effects(tx).is_some() {
            self.log_outcome(KIND_KV_ABORTED, tx)?;
        }
        self.inner.rollback(tx)
    }

    fn commit_one_phase(&self, tx: &TxId) -> Result<(), TxError> {
        match self.prepare(tx)? {
            Vote::Commit => self.commit(tx),
            Vote::ReadOnly => Ok(()),
            Vote::Rollback => {
                self.rollback(tx)?;
                Err(TxError::RolledBack(tx.clone()))
            }
        }
    }

    fn resource_name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::TransactionFactory;
    use recovery_log::{FailpointSet, MemWal};

    fn wal() -> Arc<dyn Wal> {
        Arc::new(MemWal::new())
    }

    #[test]
    fn committed_state_survives_restart() {
        let log = wal();
        let tx = TxId::top_level(1);
        {
            let kv = DurableKv::new("orders", Arc::clone(&log));
            kv.store().write(&tx, "k", Value::I64(7)).unwrap();
            assert_eq!(kv.prepare(&tx).unwrap(), Vote::Commit);
            kv.commit(&tx).unwrap();
            assert_eq!(kv.store().read_committed("k"), Some(Value::I64(7)));
        }
        let kv = DurableKv::recover("orders", log).unwrap();
        assert_eq!(kv.store().read_committed("k"), Some(Value::I64(7)));
    }

    #[test]
    fn prepared_state_survives_and_awaits_the_outcome() {
        let log = wal();
        let tx = TxId::top_level(2);
        {
            let kv = DurableKv::new("orders", Arc::clone(&log));
            kv.store().write(&tx, "k", Value::I64(9)).unwrap();
            assert_eq!(kv.prepare(&tx).unwrap(), Vote::Commit);
            // Crash here: prepared, undecided.
        }
        // Restart 1: outcome arrives as COMMIT (e.g. the coordinator's
        // decision record said so).
        let kv = DurableKv::recover("orders", Arc::clone(&log)).unwrap();
        assert_eq!(kv.store().read_committed("k"), None, "still undecided");
        kv.commit(&tx).unwrap();
        assert_eq!(kv.store().read_committed("k"), Some(Value::I64(9)));
        // Restart 2: the commit was logged, so it replays.
        let kv = DurableKv::recover("orders", log).unwrap();
        assert_eq!(kv.store().read_committed("k"), Some(Value::I64(9)));
    }

    #[test]
    fn aborted_prepared_state_is_discarded() {
        let log = wal();
        let tx = TxId::top_level(3);
        {
            let kv = DurableKv::new("orders", Arc::clone(&log));
            kv.store().write(&tx, "k", Value::I64(1)).unwrap();
            kv.prepare(&tx).unwrap();
            kv.rollback(&tx).unwrap();
        }
        let kv = DurableKv::recover("orders", log).unwrap();
        assert_eq!(kv.store().read_committed("k"), None);
        // Late redelivered commit is a no-op (nothing prepared).
        kv.commit(&tx).unwrap();
        assert_eq!(kv.store().read_committed("k"), None);
    }

    #[test]
    fn checkpoint_bounds_replay_and_preserves_state() {
        let log = wal();
        {
            let kv = DurableKv::new("orders", Arc::clone(&log));
            for i in 0..5i64 {
                let tx = TxId::top_level(i as u64 + 1);
                kv.store().write(&tx, &format!("k{i}"), Value::I64(i)).unwrap();
                kv.prepare(&tx).unwrap();
                kv.commit(&tx).unwrap();
            }
            kv.checkpoint().unwrap();
            let tx = TxId::top_level(99);
            kv.store().write(&tx, "post-cp", Value::I64(42)).unwrap();
            kv.prepare(&tx).unwrap();
            kv.commit(&tx).unwrap();
        }
        let kv = DurableKv::recover("orders", log).unwrap();
        for i in 0..5i64 {
            assert_eq!(kv.store().read_committed(&format!("k{i}")), Some(Value::I64(i)));
        }
        assert_eq!(kv.store().read_committed("post-cp"), Some(Value::I64(42)));
    }

    #[test]
    fn two_stores_share_one_log_without_crosstalk() {
        let log = wal();
        let tx = TxId::top_level(1);
        {
            let a = DurableKv::new("a", Arc::clone(&log));
            let b = DurableKv::new("b", Arc::clone(&log));
            a.store().write(&tx, "k", Value::I64(1)).unwrap();
            b.store().write(&tx, "k", Value::I64(2)).unwrap();
            a.prepare(&tx).unwrap();
            b.prepare(&tx).unwrap();
            a.commit(&tx).unwrap();
            b.commit(&tx).unwrap();
        }
        let a = DurableKv::recover("a", Arc::clone(&log)).unwrap();
        let b = DurableKv::recover("b", log).unwrap();
        assert_eq!(a.store().read_committed("k"), Some(Value::I64(1)));
        assert_eq!(b.store().read_committed("k"), Some(Value::I64(2)));
    }

    #[test]
    fn end_to_end_with_transaction_recovery() {
        // The full §3.4 story: coordinator crashes after its decision;
        // both the tx service AND the durable participant recover from the
        // same shared log, and the data is exactly right afterwards.
        let log = wal();
        let failpoints = FailpointSet::new();
        {
            let factory =
                TransactionFactory::with_wal(Arc::clone(&log)).with_failpoints(failpoints.clone());
            let kv = DurableKv::new("orders", Arc::clone(&log));
            let witness = DurableKv::new("audit", Arc::clone(&log));
            let control = factory.create().unwrap();
            control.coordinator().register_resource(Arc::clone(&kv) as Arc<dyn Resource>).unwrap();
            control
                .coordinator()
                .register_resource(Arc::clone(&witness) as Arc<dyn Resource>)
                .unwrap();
            kv.store().write(control.id(), "payment", Value::F64(9.99)).unwrap();
            witness.store().write(control.id(), "entry", Value::from("debit")).unwrap();
            failpoints.arm("ots.after_decision", 0);
            control.terminator().commit().unwrap_err();
        }

        // Restart: recover the stores first, then let the tx service
        // re-deliver the outcome through the resolver.
        let kv = DurableKv::recover("orders", Arc::clone(&log)).unwrap();
        let witness = DurableKv::recover("audit", Arc::clone(&log)).unwrap();
        assert_eq!(kv.store().read_committed("payment"), None, "undecided until re-delivery");
        let factory = TransactionFactory::with_wal(Arc::clone(&log));
        let kv2 = Arc::clone(&kv);
        let witness2 = Arc::clone(&witness);
        let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
            match name {
                "orders" => Some(kv2.clone()),
                "audit" => Some(witness2.clone()),
                _ => None,
            }
        };
        let report = factory.recover(&resolver).unwrap();
        assert_eq!(report.recommitted.len(), 1);
        assert_eq!(kv.store().read_committed("payment"), Some(Value::F64(9.99)));
        assert_eq!(witness.store().read_committed("entry"), Some(Value::from("debit")));

        // Third incarnation needs no resolver help at all: the participant
        // outcome records replay by themselves.
        let kv = DurableKv::recover("orders", log).unwrap();
        assert_eq!(kv.store().read_committed("payment"), Some(Value::F64(9.99)));
    }
}
