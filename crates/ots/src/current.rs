//! Thread-associated implicit transaction demarcation.
//!
//! Mirrors CosTransactions::Current: `begin`/`commit`/`rollback` operate on
//! a per-thread stack of transaction controls, so application code need not
//! thread [`Control`]s through every call. `begin` inside an existing
//! association starts a *subtransaction* (the nesting model of §1).

use std::cell::RefCell;
use std::sync::Arc;

use crate::control::Control;
use crate::coordinator::TxOutcome;
use crate::error::TxError;
use crate::factory::TransactionFactory;
use crate::status::TxStatus;
use crate::xid::TxId;

thread_local! {
    static STACK: RefCell<Vec<Control>> = const { RefCell::new(Vec::new()) };
}

/// The implicit, thread-associated transaction interface.
///
/// All methods are static-like: the receiver only carries the factory used
/// by [`Current::begin`] for *top-level* transactions.
#[derive(Debug, Clone)]
pub struct Current {
    factory: Arc<TransactionFactory>,
}

impl Current {
    /// Build over the given factory.
    pub fn new(factory: Arc<TransactionFactory>) -> Self {
        Current { factory }
    }

    /// Begin a transaction and associate it with this thread. When the
    /// thread already has one, the new transaction is a subtransaction of
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates creation failures.
    pub fn begin(&self) -> Result<TxId, TxError> {
        let control = STACK.with(|stack| -> Result<Control, TxError> {
            let parent = stack.borrow().last().cloned();
            let control = match parent {
                Some(parent) => parent.begin_subtransaction()?,
                None => self.factory.create()?,
            };
            stack.borrow_mut().push(control.clone());
            Ok(control)
        })?;
        Ok(control.id().clone())
    }

    /// Commit the innermost associated transaction and disassociate it.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTransaction`] when the thread has none; otherwise see
    /// [`crate::Coordinator::commit`]. The association is removed even when
    /// the commit fails.
    pub fn commit(&self) -> Result<TxOutcome, TxError> {
        let control = Self::pop()?;
        control.terminator().commit()
    }

    /// Roll back the innermost associated transaction and disassociate it.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTransaction`] when the thread has none.
    pub fn rollback(&self) -> Result<TxOutcome, TxError> {
        let control = Self::pop()?;
        control.terminator().rollback()
    }

    /// Mark the innermost associated transaction rollback-only.
    ///
    /// # Errors
    ///
    /// [`TxError::NoTransaction`] when the thread has none.
    pub fn rollback_only(&self) -> Result<(), TxError> {
        let control = Self::peek().ok_or(TxError::NoTransaction)?;
        control.coordinator().rollback_only()
    }

    /// The id of the innermost associated transaction, if any.
    pub fn transaction(&self) -> Option<TxId> {
        Self::peek().map(|c| c.id().clone())
    }

    /// The status of the innermost associated transaction, if any.
    pub fn status(&self) -> Option<TxStatus> {
        Self::peek().map(|c| c.coordinator().status())
    }

    /// The control of the innermost associated transaction, if any (for
    /// resource registration).
    pub fn control(&self) -> Option<Control> {
        Self::peek()
    }

    /// Nesting depth of the association stack (0 = none).
    pub fn depth(&self) -> usize {
        STACK.with(|s| s.borrow().len())
    }

    /// Detach the innermost transaction from this thread and return it, so
    /// it can be resumed elsewhere (suspend/resume).
    ///
    /// # Errors
    ///
    /// [`TxError::NoTransaction`] when the thread has none.
    pub fn suspend(&self) -> Result<Control, TxError> {
        Self::pop()
    }

    /// Re-associate a previously suspended transaction with this thread.
    pub fn resume(&self, control: Control) {
        STACK.with(|s| s.borrow_mut().push(control));
    }

    fn peek() -> Option<Control> {
        STACK.with(|s| s.borrow().last().cloned())
    }

    fn pop() -> Result<Control, TxError> {
        STACK.with(|s| s.borrow_mut().pop()).ok_or(TxError::NoTransaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::test_support::ScriptedResource;
    use crate::resource::Vote;

    fn current() -> Current {
        Current::new(Arc::new(TransactionFactory::new()))
    }

    #[test]
    fn begin_commit_cycle() {
        let cur = current();
        assert!(cur.transaction().is_none());
        assert!(matches!(cur.commit(), Err(TxError::NoTransaction)));

        let id = cur.begin().unwrap();
        assert!(id.is_top_level());
        assert_eq!(cur.transaction(), Some(id));
        assert_eq!(cur.status(), Some(TxStatus::Active));
        cur.commit().unwrap();
        assert!(cur.transaction().is_none());
    }

    #[test]
    fn nested_begin_creates_subtransaction() {
        let cur = current();
        let top = cur.begin().unwrap();
        let sub = cur.begin().unwrap();
        assert!(top.is_ancestor_of(&sub));
        assert_eq!(cur.depth(), 2);
        cur.commit().unwrap(); // sub
        assert_eq!(cur.transaction(), Some(top));
        cur.commit().unwrap(); // top
        assert_eq!(cur.depth(), 0);
    }

    #[test]
    fn rollback_only_dooms_current() {
        let cur = current();
        cur.begin().unwrap();
        cur.rollback_only().unwrap();
        assert!(matches!(cur.commit(), Err(TxError::RolledBack(_))));
        assert!(cur.transaction().is_none(), "association removed despite failure");
    }

    #[test]
    fn suspend_resume_moves_transaction() {
        let cur = current();
        let id = cur.begin().unwrap();
        let suspended = cur.suspend().unwrap();
        assert!(cur.transaction().is_none());
        cur.resume(suspended);
        assert_eq!(cur.transaction(), Some(id));
        cur.commit().unwrap();
    }

    #[test]
    fn resources_flow_through_nesting() {
        let cur = current();
        cur.begin().unwrap();
        cur.begin().unwrap();
        let r = ScriptedResource::voting("r", Vote::Commit);
        cur.control().unwrap().coordinator().register_resource(r.clone()).unwrap();
        cur.commit().unwrap(); // subtransaction: provisional
        assert!(r.calls().is_empty());
        cur.commit().unwrap(); // top-level: real 2PC (one-phase here)
        assert_eq!(r.calls(), vec!["prepare", "commit"]);
    }

    #[test]
    fn associations_are_per_thread() {
        let cur = current();
        cur.begin().unwrap();
        let cur2 = cur.clone();
        std::thread::spawn(move || {
            assert!(cur2.transaction().is_none());
        })
        .join()
        .unwrap();
        cur.rollback().unwrap();
    }
}
