//! The protocol journal: the coordinator's own account of what it did,
//! event by event, for refinement checking against a reference model.
//!
//! The WAL records what must survive a crash (§12 forcing discipline); the
//! journal records what *happened* — every prepare solicited, every vote
//! collected, the forced decision, every phase-two outcome delivery and
//! forget. A conformance harness replays the journal through an executable
//! specification of presumed-abort 2PC and fails on the first divergence.
//!
//! Attach one with [`crate::TransactionFactory::with_journal`] (or
//! [`crate::Coordinator::set_journal`]); without one the coordinator pays
//! nothing. Events are recorded from the serial dispatch path in delivery
//! order; under parallel dispatch they are recorded at collation, in
//! registration order (the joined result order — the journal stays
//! deterministic, but it then reflects collation, not wire order).

use std::fmt;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::resource::Vote;

/// How a participant answered prepare, as the journal records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoteKind {
    /// Voted to commit; expects a phase-two outcome.
    Commit,
    /// Read-only: no second phase needed.
    ReadOnly,
    /// Vetoed the commit.
    Rollback,
    /// The prepare call itself failed (transport-style error).
    Failed,
}

impl VoteKind {
    pub(crate) fn from_answer(answer: &Result<Vote, crate::error::TxError>) -> Self {
        match answer {
            Ok(Vote::Commit) => VoteKind::Commit,
            Ok(Vote::ReadOnly) => VoteKind::ReadOnly,
            Ok(Vote::Rollback) => VoteKind::Rollback,
            Err(_) => VoteKind::Failed,
        }
    }
}

/// One observable step of the two-phase-commit protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoPcEvent {
    /// Phase one solicited this participant's vote.
    PrepareSent { participant: String },
    /// The participant's answer came back.
    VoteRecorded { participant: String, vote: VoteKind },
    /// The decision record was forced durable (`commit: true`) — presumed
    /// abort never forces an abort decision, so `commit` is always true
    /// when the coordinator emits this itself.
    DecisionForced { commit: bool },
    /// A phase-two outcome delivery: `commit` distinguishes commit from
    /// rollback deliveries; `ok` is whether the participant acknowledged.
    OutcomeDelivered { participant: String, commit: bool, ok: bool },
    /// The participant was told to forget the transaction.
    Forgotten { participant: String },
    /// The transaction reached its terminal state.
    Completed { committed: bool },
}

impl fmt::Display for TwoPcEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwoPcEvent::PrepareSent { participant } => write!(f, "prepare_sent({participant})"),
            TwoPcEvent::VoteRecorded { participant, vote } => {
                write!(f, "vote_recorded({participant}, {vote:?})")
            }
            TwoPcEvent::DecisionForced { commit } => write!(f, "decision_forced(commit={commit})"),
            TwoPcEvent::OutcomeDelivered { participant, commit, ok } => {
                write!(f, "outcome_delivered({participant}, commit={commit}, ok={ok})")
            }
            TwoPcEvent::Forgotten { participant } => write!(f, "forgotten({participant})"),
            TwoPcEvent::Completed { committed } => write!(f, "completed(committed={committed})"),
        }
    }
}

/// A shared, append-only journal of [`TwoPcEvent`]s. Clones share storage.
#[derive(Debug, Clone, Default)]
pub struct ProtocolJournal {
    events: Arc<Mutex<Vec<TwoPcEvent>>>,
    /// Optional flight-recorder mirror (kind `protocol`): the node's black
    /// box sees every 2PC lifecycle step in journal order.
    recorder: Arc<OnceLock<telemetry::FlightRecorder>>,
}

impl ProtocolJournal {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror every future event into `recorder` (kind `protocol`).
    /// Write-once so the hot path reads it with a single atomic load
    /// (no lock even when attached-but-disabled); later calls are ignored.
    pub fn set_recorder(&self, recorder: telemetry::FlightRecorder) {
        let _ = self.recorder.set(recorder);
    }

    /// Append one event.
    pub fn record(&self, event: TwoPcEvent) {
        if let Some(recorder) = self.recorder.get() {
            recorder.record(telemetry::RecordKind::Protocol, || event.to_string());
        }
        self.events.lock().push(event);
    }

    /// Snapshot the events recorded so far, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TwoPcEvent> {
        self.events.lock().clone()
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let journal = ProtocolJournal::new();
        let alias = journal.clone();
        journal.record(TwoPcEvent::PrepareSent { participant: "a".into() });
        alias.record(TwoPcEvent::VoteRecorded {
            participant: "a".into(),
            vote: VoteKind::Commit,
        });
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.events(), alias.events());
        assert!(!journal.is_empty());
    }

    #[test]
    fn vote_kinds_map_from_answers() {
        use crate::error::TxError;
        use crate::xid::TxId;
        assert_eq!(VoteKind::from_answer(&Ok(Vote::Commit)), VoteKind::Commit);
        assert_eq!(VoteKind::from_answer(&Ok(Vote::ReadOnly)), VoteKind::ReadOnly);
        assert_eq!(VoteKind::from_answer(&Ok(Vote::Rollback)), VoteKind::Rollback);
        assert_eq!(
            VoteKind::from_answer(&Err(TxError::RolledBack(TxId::top_level(1)))),
            VoteKind::Failed
        );
    }
}
