//! Transaction status and its legal transitions.

use std::fmt;

/// Lifecycle status of a transaction (mirrors CosTransactions::Status).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxStatus {
    /// Work may be performed; resources may be registered.
    Active,
    /// Still formally active but doomed: the only way out is rollback.
    MarkedRollback,
    /// Phase one in progress: prepare being sent to participants.
    Preparing,
    /// All participants voted; awaiting the durable decision.
    Prepared,
    /// Decision logged; phase two (commit) being delivered.
    Committing,
    /// Terminal: committed.
    Committed,
    /// Phase two (rollback) being delivered.
    RollingBack,
    /// Terminal: rolled back.
    RolledBack,
}

impl TxStatus {
    /// Whether the transaction has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, TxStatus::Committed | TxStatus::RolledBack)
    }

    /// Whether new work (writes, registrations) is admissible.
    pub fn accepts_work(self) -> bool {
        matches!(self, TxStatus::Active)
    }

    /// Whether `self → next` is a legal lifecycle transition.
    pub fn can_transition_to(self, next: TxStatus) -> bool {
        use TxStatus::*;
        matches!(
            (self, next),
            (Active, MarkedRollback)
                | (Active, Preparing)
                | (Active, RollingBack)
                | (MarkedRollback, RollingBack)
                | (Preparing, Prepared)
                | (Preparing, RollingBack)
                | (Preparing, Committed) // all participants voted read-only
                | (Prepared, Committing)
                | (Prepared, RollingBack)
                | (Committing, Committed)
                | (RollingBack, RolledBack)
        )
    }
}

impl fmt::Display for TxStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxStatus::Active => "active",
            TxStatus::MarkedRollback => "marked-rollback",
            TxStatus::Preparing => "preparing",
            TxStatus::Prepared => "prepared",
            TxStatus::Committing => "committing",
            TxStatus::Committed => "committed",
            TxStatus::RollingBack => "rolling-back",
            TxStatus::RolledBack => "rolled-back",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TxStatus::*;

    const ALL: [TxStatus; 8] = [
        Active,
        MarkedRollback,
        Preparing,
        Prepared,
        Committing,
        Committed,
        RollingBack,
        RolledBack,
    ];

    #[test]
    fn terminal_states_allow_nothing() {
        for terminal in [Committed, RolledBack] {
            assert!(terminal.is_terminal());
            assert!(!terminal.accepts_work());
            for next in ALL {
                assert!(!terminal.can_transition_to(next), "{terminal} -> {next}");
            }
        }
    }

    #[test]
    fn happy_commit_path_is_legal() {
        assert!(Active.can_transition_to(Preparing));
        assert!(Preparing.can_transition_to(Prepared));
        assert!(Prepared.can_transition_to(Committing));
        assert!(Committing.can_transition_to(Committed));
    }

    #[test]
    fn rollback_paths_are_legal() {
        assert!(Active.can_transition_to(RollingBack));
        assert!(Active.can_transition_to(MarkedRollback));
        assert!(MarkedRollback.can_transition_to(RollingBack));
        assert!(Preparing.can_transition_to(RollingBack));
        assert!(Prepared.can_transition_to(RollingBack));
        assert!(RollingBack.can_transition_to(RolledBack));
    }

    #[test]
    fn marked_rollback_cannot_commit() {
        assert!(!MarkedRollback.can_transition_to(Preparing));
        assert!(!MarkedRollback.can_transition_to(Committed));
        assert!(!MarkedRollback.accepts_work());
    }

    #[test]
    fn read_only_shortcut() {
        assert!(Preparing.can_transition_to(Committed));
    }

    #[test]
    fn no_resurrection() {
        assert!(!Committed.can_transition_to(Active));
        assert!(!RolledBack.can_transition_to(Active));
        assert!(!RollingBack.can_transition_to(Committed));
    }

    #[test]
    fn display_nonempty() {
        for s in ALL {
            assert!(!s.to_string().is_empty());
        }
    }
}
