//! A transactional, lock-based key-value store: the workhorse recoverable
//! resource used by examples, integration tests and benchmarks.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use orb::{SimClock, Value};
use parking_lot::{Mutex, RwLock};

use crate::control::Control;
use crate::error::TxError;
use crate::lockmgr::{LockManager, LockMode, LockStats};
use crate::resource::{Resource, SubtransactionAwareResource, Vote};
use crate::xid::TxId;

/// Buffered effects of one transaction: key → new value (`None` = delete).
type Workspace = BTreeMap<String, Option<Value>>;

/// An in-memory transactional key-value store.
///
/// * Writes buffer in a per-transaction workspace under strict two-phase
///   **exclusive** locks; reads take **shared** locks and see the
///   transaction's own effects first.
/// * Nested transactions: a subtransaction reads through its ancestors'
///   workspaces; on provisional commit its workspace and locks are inherited
///   by the parent (enlist the store with the subtransaction's control and
///   the inheritance is wired automatically).
/// * As a [`Resource`] it participates in 2PC; all participant operations
///   are idempotent, as recovery redelivery requires.
pub struct TransactionalKv {
    name: String,
    committed: RwLock<HashMap<String, Value>>,
    workspaces: Mutex<HashMap<TxId, Workspace>>,
    prepared: Mutex<HashMap<TxId, Workspace>>,
    locks: LockManager,
}

impl std::fmt::Debug for TransactionalKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionalKv")
            .field("name", &self.name)
            .field("committed", &self.committed.read().len())
            .field("workspaces", &self.workspaces.lock().len())
            .finish()
    }
}

impl TransactionalKv {
    /// An empty store named `name` (the name is what decision logs record
    /// and recovery resolvers look up).
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_clock(name, SimClock::new())
    }

    /// An empty store whose lock-hold statistics are measured on `clock`.
    pub fn with_clock(name: impl Into<String>, clock: SimClock) -> Self {
        TransactionalKv {
            name: name.into(),
            committed: RwLock::new(HashMap::new()),
            workspaces: Mutex::new(HashMap::new()),
            prepared: Mutex::new(HashMap::new()),
            locks: LockManager::new(clock),
        }
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register this store with a transaction: as a [`Resource`] always,
    /// and as a [`SubtransactionAwareResource`] when the transaction is
    /// nested (so workspaces and locks are inherited on provisional commit).
    ///
    /// # Errors
    ///
    /// Propagates registration failures.
    pub fn enlist(self: &Arc<Self>, control: &Control) -> Result<(), TxError> {
        control.coordinator().register_resource(Arc::clone(self) as Arc<dyn Resource>)?;
        if !control.id().is_top_level() {
            control
                .coordinator()
                .register_subtransaction_aware(Arc::clone(self) as Arc<dyn SubtransactionAwareResource>)?;
        }
        Ok(())
    }

    /// Write `key = value` under `tx`.
    ///
    /// # Errors
    ///
    /// [`TxError::LockConflict`] when another transaction family holds the
    /// key.
    pub fn write(&self, tx: &TxId, key: &str, value: Value) -> Result<(), TxError> {
        self.locks.try_lock(tx, key, LockMode::Exclusive)?;
        self.workspaces
            .lock()
            .entry(tx.clone())
            .or_default()
            .insert(key.to_owned(), Some(value));
        Ok(())
    }

    /// Delete `key` under `tx`.
    ///
    /// # Errors
    ///
    /// [`TxError::LockConflict`] when another transaction family holds the
    /// key.
    pub fn delete(&self, tx: &TxId, key: &str) -> Result<(), TxError> {
        self.locks.try_lock(tx, key, LockMode::Exclusive)?;
        self.workspaces.lock().entry(tx.clone()).or_default().insert(key.to_owned(), None);
        Ok(())
    }

    /// Read `key` under `tx`: own workspace first, then ancestors', then the
    /// committed state.
    ///
    /// # Errors
    ///
    /// [`TxError::LockConflict`] when an unrelated writer holds the key.
    pub fn read(&self, tx: &TxId, key: &str) -> Result<Option<Value>, TxError> {
        self.locks.try_lock(tx, key, LockMode::Shared)?;
        let workspaces = self.workspaces.lock();
        let mut cursor = Some(tx.clone());
        while let Some(t) = cursor {
            if let Some(ws) = workspaces.get(&t) {
                if let Some(effect) = ws.get(key) {
                    return Ok(effect.clone());
                }
            }
            cursor = t.parent();
        }
        Ok(self.committed.read().get(key).cloned())
    }

    /// Read the committed value of `key`, outside any transaction.
    pub fn read_committed(&self, key: &str) -> Option<Value> {
        self.committed.read().get(key).cloned()
    }

    /// Number of committed keys.
    pub fn committed_len(&self) -> usize {
        self.committed.read().len()
    }

    /// Lock statistics (for the fig. 1 lock-hold-time experiment).
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// The effects `tx` has prepared, as `(key, new value)` pairs (`None`
    /// = delete), or `None` when `tx` has nothing prepared here. Used by
    /// durable wrappers that must log prepared state (see
    /// [`crate::durable::DurableKv`]).
    pub fn prepared_effects(&self, tx: &TxId) -> Option<Vec<(String, Option<Value>)>> {
        self.prepared
            .lock()
            .get(tx)
            .map(|ws| ws.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
    }

    /// Re-install a prepared workspace recovered from a log (the inverse of
    /// [`TransactionalKv::prepared_effects`]); a later `commit(tx)` applies
    /// it, a `rollback(tx)` discards it.
    pub fn restore_prepared(&self, tx: &TxId, effects: Vec<(String, Option<Value>)>) {
        self.prepared.lock().insert(tx.clone(), effects.into_iter().collect());
    }

    /// Overwrite the committed state wholesale (recovery/checkpoint load).
    pub fn load_committed(&self, entries: impl IntoIterator<Item = (String, Value)>) {
        let mut committed = self.committed.write();
        committed.clear();
        committed.extend(entries);
    }

    /// Snapshot the committed state (for checkpoints).
    pub fn committed_snapshot(&self) -> Vec<(String, Value)> {
        self.committed.read().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    fn apply(&self, workspace: &Workspace) {
        let mut committed = self.committed.write();
        for (key, effect) in workspace {
            match effect {
                Some(value) => {
                    committed.insert(key.clone(), value.clone());
                }
                None => {
                    committed.remove(key);
                }
            }
        }
    }
}

impl Resource for TransactionalKv {
    fn prepare(&self, tx: &TxId) -> Result<Vote, TxError> {
        // Idempotent: a second prepare (e.g. duplicate registration after
        // subtransaction inheritance) finds no workspace and votes
        // read-only.
        match self.workspaces.lock().remove(tx) {
            Some(ws) if !ws.is_empty() => {
                self.prepared.lock().insert(tx.clone(), ws);
                Ok(Vote::Commit)
            }
            _ => {
                if self.prepared.lock().contains_key(tx) {
                    // Already prepared once: stay out of the vote.
                    Ok(Vote::ReadOnly)
                } else {
                    Ok(Vote::ReadOnly)
                }
            }
        }
    }

    fn commit(&self, tx: &TxId) -> Result<(), TxError> {
        if let Some(ws) = self.prepared.lock().remove(tx) {
            self.apply(&ws);
        }
        self.locks.release_all(tx);
        Ok(())
    }

    fn rollback(&self, tx: &TxId) -> Result<(), TxError> {
        self.workspaces.lock().remove(tx);
        self.prepared.lock().remove(tx);
        self.locks.release_all(tx);
        Ok(())
    }

    fn commit_one_phase(&self, tx: &TxId) -> Result<(), TxError> {
        if let Some(ws) = self.workspaces.lock().remove(tx) {
            self.apply(&ws);
        }
        self.locks.release_all(tx);
        Ok(())
    }

    fn resource_name(&self) -> &str {
        &self.name
    }
}

impl SubtransactionAwareResource for TransactionalKv {
    fn commit_subtransaction(&self, tx: &TxId, parent: &TxId) {
        // The parent inherits the child's buffered effects and locks.
        let child_ws = self.workspaces.lock().remove(tx);
        if let Some(child_ws) = child_ws {
            let mut workspaces = self.workspaces.lock();
            let parent_ws = workspaces.entry(parent.clone()).or_default();
            for (key, effect) in child_ws {
                parent_ws.insert(key, effect);
            }
        }
        self.locks.transfer(tx, parent);
    }

    fn rollback_subtransaction(&self, tx: &TxId) {
        self.workspaces.lock().remove(tx);
        self.locks.release_all(tx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::TransactionFactory;

    fn store() -> Arc<TransactionalKv> {
        Arc::new(TransactionalKv::new("store"))
    }

    #[test]
    fn committed_writes_become_visible() {
        let s = store();
        let f = TransactionFactory::new();
        let c = f.create().unwrap();
        s.enlist(&c).unwrap();
        s.write(c.id(), "k", Value::from(1i64)).unwrap();
        assert_eq!(s.read_committed("k"), None, "uncommitted writes invisible");
        assert_eq!(s.read(c.id(), "k").unwrap(), Some(Value::from(1i64)), "own writes visible");
        c.terminator().commit().unwrap();
        assert_eq!(s.read_committed("k"), Some(Value::from(1i64)));
    }

    #[test]
    fn rollback_discards_writes_and_releases_locks() {
        let s = store();
        let f = TransactionFactory::new();
        let c = f.create().unwrap();
        s.enlist(&c).unwrap();
        s.write(c.id(), "k", Value::from(1i64)).unwrap();
        c.terminator().rollback().unwrap();
        assert_eq!(s.read_committed("k"), None);
        // Lock released: another transaction may write.
        let c2 = f.create().unwrap();
        s.enlist(&c2).unwrap();
        s.write(c2.id(), "k", Value::from(2i64)).unwrap();
        c2.terminator().commit().unwrap();
        assert_eq!(s.read_committed("k"), Some(Value::from(2i64)));
    }

    #[test]
    fn writers_conflict_until_commit() {
        let s = store();
        let f = TransactionFactory::new();
        let c1 = f.create().unwrap();
        let c2 = f.create().unwrap();
        s.enlist(&c1).unwrap();
        s.enlist(&c2).unwrap();
        s.write(c1.id(), "k", Value::from(1i64)).unwrap();
        assert!(matches!(
            s.write(c2.id(), "k", Value::from(2i64)),
            Err(TxError::LockConflict { .. })
        ));
        c1.terminator().commit().unwrap();
        s.write(c2.id(), "k", Value::from(2i64)).unwrap();
        c2.terminator().commit().unwrap();
        assert_eq!(s.read_committed("k"), Some(Value::from(2i64)));
    }

    #[test]
    fn readers_share_but_block_writers() {
        let s = store();
        let f = TransactionFactory::new();
        let c1 = f.create().unwrap();
        let c2 = f.create().unwrap();
        let c3 = f.create().unwrap();
        for c in [&c1, &c2, &c3] {
            s.enlist(c).unwrap();
        }
        assert_eq!(s.read(c1.id(), "k").unwrap(), None);
        assert_eq!(s.read(c2.id(), "k").unwrap(), None);
        assert!(matches!(
            s.write(c3.id(), "k", Value::from(1i64)),
            Err(TxError::LockConflict { .. })
        ));
    }

    #[test]
    fn delete_is_transactional() {
        let s = store();
        let f = TransactionFactory::new();
        let c = f.create().unwrap();
        s.enlist(&c).unwrap();
        s.write(c.id(), "k", Value::from(1i64)).unwrap();
        c.terminator().commit().unwrap();

        let c2 = f.create().unwrap();
        s.enlist(&c2).unwrap();
        s.delete(c2.id(), "k").unwrap();
        assert_eq!(s.read(c2.id(), "k").unwrap(), None, "delete visible to itself");
        assert_eq!(s.read_committed("k"), Some(Value::from(1i64)));
        c2.terminator().commit().unwrap();
        assert_eq!(s.read_committed("k"), None);
    }

    #[test]
    fn read_only_transactions_vote_read_only() {
        let s = store();
        let f = TransactionFactory::new();
        let c = f.create().unwrap();
        s.enlist(&c).unwrap();
        let _ = s.read(c.id(), "k").unwrap();
        // Commit succeeds with no phase-two work.
        c.terminator().commit().unwrap();
    }

    #[test]
    fn nested_commit_inherits_into_parent() {
        let s = store();
        let f = TransactionFactory::new();
        let parent = f.create().unwrap();
        s.enlist(&parent).unwrap();
        let child = parent.begin_subtransaction().unwrap();
        s.enlist(&child).unwrap();
        s.write(child.id(), "k", Value::from(42i64)).unwrap();
        child.terminator().commit().unwrap();
        // Still invisible: only the parent's commit makes it durable.
        assert_eq!(s.read_committed("k"), None);
        assert_eq!(
            s.read(parent.id(), "k").unwrap(),
            Some(Value::from(42i64)),
            "parent sees inherited workspace"
        );
        parent.terminator().commit().unwrap();
        assert_eq!(s.read_committed("k"), Some(Value::from(42i64)));
    }

    #[test]
    fn nested_rollback_confines_failure() {
        let s = store();
        let f = TransactionFactory::new();
        let parent = f.create().unwrap();
        s.enlist(&parent).unwrap();
        s.write(parent.id(), "kept", Value::from(1i64)).unwrap();
        let child = parent.begin_subtransaction().unwrap();
        s.enlist(&child).unwrap();
        s.write(child.id(), "lost", Value::from(2i64)).unwrap();
        child.terminator().rollback().unwrap();
        parent.terminator().commit().unwrap();
        assert_eq!(s.read_committed("kept"), Some(Value::from(1i64)));
        assert_eq!(s.read_committed("lost"), None);
    }

    #[test]
    fn child_reads_through_parent_workspace() {
        let s = store();
        let f = TransactionFactory::new();
        let parent = f.create().unwrap();
        s.enlist(&parent).unwrap();
        s.write(parent.id(), "k", Value::from(7i64)).unwrap();
        let child = parent.begin_subtransaction().unwrap();
        s.enlist(&child).unwrap();
        assert_eq!(s.read(child.id(), "k").unwrap(), Some(Value::from(7i64)));
    }

    #[test]
    fn participant_operations_are_idempotent() {
        let s = store();
        let tx = TxId::top_level(1);
        s.write(&tx, "k", Value::from(1i64)).unwrap();
        assert_eq!(s.prepare(&tx).unwrap(), Vote::Commit);
        assert_eq!(s.prepare(&tx).unwrap(), Vote::ReadOnly, "second prepare is harmless");
        s.commit(&tx).unwrap();
        s.commit(&tx).unwrap();
        assert_eq!(s.read_committed("k"), Some(Value::from(1i64)));
        s.rollback(&tx).unwrap();
        assert_eq!(s.read_committed("k"), Some(Value::from(1i64)), "late rollback is a no-op");
    }
}
