//! The terminator: the completion half of a transaction's control.

use std::sync::Arc;

use crate::coordinator::{Coordinator, TxOutcome};
use crate::error::TxError;

/// Ends a transaction (mirrors CosTransactions::Terminator).
///
/// Separated from [`Coordinator`] so that the *creator* of a transaction can
/// keep termination rights to itself while handing the coordinator (for
/// registration) to anyone.
#[derive(Debug, Clone)]
pub struct Terminator {
    coordinator: Arc<Coordinator>,
}

impl Terminator {
    pub(crate) fn new(coordinator: Arc<Coordinator>) -> Self {
        Terminator { coordinator }
    }

    /// Commit, reporting heuristic hazards.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::commit`].
    pub fn commit(&self) -> Result<TxOutcome, TxError> {
        self.coordinator.commit(true)
    }

    /// Commit, swallowing heuristic hazards.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::commit`].
    pub fn commit_quietly(&self) -> Result<TxOutcome, TxError> {
        self.coordinator.commit(false)
    }

    /// Roll back.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::rollback`].
    pub fn rollback(&self) -> Result<TxOutcome, TxError> {
        self.coordinator.rollback()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TxStatus;
    use crate::xid::TxId;
    use recovery_log::FailpointSet;

    #[test]
    fn terminator_drives_coordinator() {
        let c = Coordinator::new_top_level(
            TxId::top_level(1),
            None,
            FailpointSet::new(),
            None,
            None,
            orb::pool::DispatchConfig::default(),
        );
        let t = Terminator::new(Arc::clone(&c));
        assert_eq!(t.commit().unwrap(), TxOutcome::Committed);
        assert_eq!(c.status(), TxStatus::Committed);
    }

    #[test]
    fn terminator_rollback() {
        let c = Coordinator::new_top_level(
            TxId::top_level(2),
            None,
            FailpointSet::new(),
            None,
            None,
            orb::pool::DispatchConfig::default(),
        );
        let t = Terminator::new(Arc::clone(&c));
        assert_eq!(t.rollback().unwrap(), TxOutcome::RolledBack);
        assert_eq!(c.status(), TxStatus::RolledBack);
    }
}
