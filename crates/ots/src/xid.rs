//! Transaction identifiers with nesting-aware branch paths.

use std::fmt;

/// Identity of a transaction: a top-level sequence number plus the branch
/// path of subtransaction indices below it.
///
/// `tx-7` is a top-level transaction; `tx-7.0.2` is the third subtransaction
/// of the first subtransaction of `tx-7`. The path encoding makes ancestry
/// checks cheap, which both the nested-commit machinery and the Activity
/// Service's context propagation rely on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId {
    top: u64,
    branch: Vec<u32>,
}

impl TxId {
    /// A top-level transaction id.
    pub fn top_level(top: u64) -> Self {
        TxId { top, branch: Vec::new() }
    }

    /// The id of this transaction's `index`-th subtransaction.
    #[must_use]
    pub fn child(&self, index: u32) -> Self {
        let mut branch = self.branch.clone();
        branch.push(index);
        TxId { top: self.top, branch }
    }

    /// The enclosing transaction's id, or `None` for a top-level one.
    pub fn parent(&self) -> Option<TxId> {
        if self.branch.is_empty() {
            None
        } else {
            let mut branch = self.branch.clone();
            branch.pop();
            Some(TxId { top: self.top, branch })
        }
    }

    /// The top-level ancestor (self, when already top-level).
    pub fn top_level_ancestor(&self) -> TxId {
        TxId::top_level(self.top)
    }

    /// Whether this is a top-level transaction.
    pub fn is_top_level(&self) -> bool {
        self.branch.is_empty()
    }

    /// Nesting depth: 0 for top-level.
    pub fn depth(&self) -> usize {
        self.branch.len()
    }

    /// Whether `self` is a proper ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &TxId) -> bool {
        self.top == other.top
            && self.branch.len() < other.branch.len()
            && other.branch[..self.branch.len()] == self.branch[..]
    }

    /// Whether `self` and `other` belong to the same top-level transaction.
    pub fn same_family(&self, other: &TxId) -> bool {
        self.top == other.top
    }

    /// The raw top-level sequence number.
    pub fn top_seq(&self) -> u64 {
        self.top
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx-{}", self.top)?;
        for b in &self.branch {
            write!(f, ".{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_roundtrip() {
        let top = TxId::top_level(7);
        assert!(top.is_top_level());
        assert_eq!(top.parent(), None);
        assert_eq!(top.depth(), 0);

        let child = top.child(0);
        assert!(!child.is_top_level());
        assert_eq!(child.depth(), 1);
        assert_eq!(child.parent(), Some(top.clone()));

        let grandchild = child.child(2);
        assert_eq!(grandchild.parent(), Some(child.clone()));
        assert_eq!(grandchild.top_level_ancestor(), top);
    }

    #[test]
    fn ancestry() {
        let a = TxId::top_level(1);
        let b = a.child(0);
        let c = b.child(1);
        assert!(a.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&c));
        assert!(b.is_ancestor_of(&c));
        assert!(!c.is_ancestor_of(&b));
        assert!(!a.is_ancestor_of(&a), "not a PROPER ancestor of itself");
        assert!(!a.is_ancestor_of(&TxId::top_level(2).child(0)));
        // Sibling branches are not ancestors.
        assert!(!a.child(0).is_ancestor_of(&a.child(1)));
        assert!(a.same_family(&c));
        assert!(!a.same_family(&TxId::top_level(2)));
    }

    #[test]
    fn display() {
        assert_eq!(TxId::top_level(3).to_string(), "tx-3");
        assert_eq!(TxId::top_level(3).child(0).child(2).to_string(), "tx-3.0.2");
    }

    #[test]
    fn usable_as_map_key() {
        let mut m = std::collections::HashMap::new();
        m.insert(TxId::top_level(1).child(0), "x");
        assert_eq!(m.get(&TxId::top_level(1).child(0)), Some(&"x"));
        assert_eq!(m.get(&TxId::top_level(1)), None);
    }
}
