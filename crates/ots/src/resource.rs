//! Participant interfaces: resources, synchronizations and
//! subtransaction-aware resources.

use std::fmt;
use std::sync::Arc;

use crate::error::TxError;
use crate::status::TxStatus;
use crate::xid::TxId;

/// A participant's phase-one answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vote {
    /// The participant is prepared: it can commit or roll back on request
    /// and has made its prepared state durable.
    Commit,
    /// The participant refuses; the transaction must roll back.
    Rollback,
    /// The participant did no work that needs phase two; it drops out of the
    /// protocol (the read-only optimisation).
    ReadOnly,
}

impl fmt::Display for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Vote::Commit => "vote-commit",
            Vote::Rollback => "vote-rollback",
            Vote::ReadOnly => "vote-read-only",
        })
    }
}

/// A two-phase-commit participant (mirrors CosTransactions::Resource).
///
/// All methods may be invoked more than once after failures; participants
/// must treat redelivery idempotently (the same discipline the Activity
/// Service imposes on Actions).
pub trait Resource: Send + Sync {
    /// Phase one: vote on the outcome of `tx`.
    ///
    /// # Errors
    ///
    /// A transport-style failure; the coordinator treats it as a
    /// [`Vote::Rollback`].
    fn prepare(&self, tx: &TxId) -> Result<Vote, TxError>;

    /// Phase two: make the prepared work of `tx` permanent.
    ///
    /// # Errors
    ///
    /// Failures here are heuristic hazards: the decision is already durable.
    fn commit(&self, tx: &TxId) -> Result<(), TxError>;

    /// Undo all work performed under `tx`.
    ///
    /// # Errors
    ///
    /// Failures are reported but rollback is presumed to eventually succeed.
    fn rollback(&self, tx: &TxId) -> Result<(), TxError>;

    /// Combined prepare+commit when this is the only participant.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::RolledBack`] when the participant chose to abort.
    fn commit_one_phase(&self, tx: &TxId) -> Result<(), TxError> {
        match self.prepare(tx)? {
            Vote::Commit => self.commit(tx),
            Vote::ReadOnly => Ok(()),
            Vote::Rollback => {
                self.rollback(tx)?;
                Err(TxError::RolledBack(tx.clone()))
            }
        }
    }

    /// The coordinator has no more need of this participant's heuristic
    /// memory; it may forget `tx`.
    fn forget(&self, tx: &TxId) {
        let _ = tx;
    }

    /// Diagnostic name used in decision log records.
    fn resource_name(&self) -> &str {
        "resource"
    }

    /// Whether this participant is known up front to have done no work that
    /// needs phase two (it would vote [`Vote::ReadOnly`]). A coordinator
    /// consulting a failure detector may silently drop a *quarantined*
    /// read-only participant from the protocol instead of burning its
    /// timeout budget on a vote that cannot change the outcome.
    fn read_only_hint(&self) -> bool {
        false
    }
}

/// Callbacks around completion (mirrors CosTransactions::Synchronization).
pub trait Synchronization: Send + Sync {
    /// Runs before phase one starts (e.g. flush caches to the resource).
    fn before_completion(&self, tx: &TxId);
    /// Runs after the outcome is decided and delivered.
    fn after_completion(&self, tx: &TxId, status: TxStatus);
}

/// A participant interested in *subtransaction* completion (mirrors
/// CosTransactions::SubtransactionAwareResource).
///
/// When a subtransaction commits, its plain [`Resource`] registrations are
/// inherited by the parent coordinator; subtransaction-aware participants
/// are additionally told about the provisional commit or the rollback at
/// that moment.
pub trait SubtransactionAwareResource: Send + Sync {
    /// The subtransaction `tx` provisionally committed into `parent`.
    fn commit_subtransaction(&self, tx: &TxId, parent: &TxId);
    /// The subtransaction `tx` rolled back.
    fn rollback_subtransaction(&self, tx: &TxId);
}

impl<T: Resource + ?Sized> Resource for Arc<T> {
    fn prepare(&self, tx: &TxId) -> Result<Vote, TxError> {
        (**self).prepare(tx)
    }
    fn commit(&self, tx: &TxId) -> Result<(), TxError> {
        (**self).commit(tx)
    }
    fn rollback(&self, tx: &TxId) -> Result<(), TxError> {
        (**self).rollback(tx)
    }
    fn commit_one_phase(&self, tx: &TxId) -> Result<(), TxError> {
        (**self).commit_one_phase(tx)
    }
    fn forget(&self, tx: &TxId) {
        (**self).forget(tx)
    }
    fn resource_name(&self) -> &str {
        (**self).resource_name()
    }
    fn read_only_hint(&self) -> bool {
        (**self).read_only_hint()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Scriptable in-memory participants shared by coordinator tests.

    use super::*;
    use parking_lot::Mutex;

    /// A resource that votes as scripted and records every call.
    pub struct ScriptedResource {
        pub name: String,
        pub vote: Mutex<Vote>,
        pub calls: Mutex<Vec<String>>,
        pub fail_commit_times: Mutex<u32>,
    }

    impl ScriptedResource {
        pub fn voting(name: &str, vote: Vote) -> Arc<Self> {
            Arc::new(ScriptedResource {
                name: name.to_owned(),
                vote: Mutex::new(vote),
                calls: Mutex::new(Vec::new()),
                fail_commit_times: Mutex::new(0),
            })
        }

        pub fn calls(&self) -> Vec<String> {
            self.calls.lock().clone()
        }
    }

    impl Resource for ScriptedResource {
        fn prepare(&self, _tx: &TxId) -> Result<Vote, TxError> {
            self.calls.lock().push("prepare".into());
            Ok(*self.vote.lock())
        }
        fn commit(&self, tx: &TxId) -> Result<(), TxError> {
            self.calls.lock().push("commit".into());
            let mut failures = self.fail_commit_times.lock();
            if *failures > 0 {
                *failures -= 1;
                return Err(TxError::Heuristic { tx: tx.clone(), detail: "flaky".into() });
            }
            Ok(())
        }
        fn rollback(&self, _tx: &TxId) -> Result<(), TxError> {
            self.calls.lock().push("rollback".into());
            Ok(())
        }
        fn forget(&self, _tx: &TxId) {
            self.calls.lock().push("forget".into());
        }
        fn resource_name(&self) -> &str {
            &self.name
        }
        fn read_only_hint(&self) -> bool {
            *self.vote.lock() == Vote::ReadOnly
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::ScriptedResource;
    use super::*;

    #[test]
    fn default_one_phase_commits_on_commit_vote() {
        let r = ScriptedResource::voting("r", Vote::Commit);
        r.commit_one_phase(&TxId::top_level(1)).unwrap();
        assert_eq!(r.calls(), vec!["prepare", "commit"]);
    }

    #[test]
    fn default_one_phase_skips_phase_two_for_read_only() {
        let r = ScriptedResource::voting("r", Vote::ReadOnly);
        r.commit_one_phase(&TxId::top_level(1)).unwrap();
        assert_eq!(r.calls(), vec!["prepare"]);
    }

    #[test]
    fn default_one_phase_rolls_back_on_rollback_vote() {
        let r = ScriptedResource::voting("r", Vote::Rollback);
        let err = r.commit_one_phase(&TxId::top_level(1)).unwrap_err();
        assert!(matches!(err, TxError::RolledBack(_)));
        assert_eq!(r.calls(), vec!["prepare", "rollback"]);
    }

    #[test]
    fn vote_display() {
        assert_eq!(Vote::Commit.to_string(), "vote-commit");
        assert_eq!(Vote::Rollback.to_string(), "vote-rollback");
        assert_eq!(Vote::ReadOnly.to_string(), "vote-read-only");
    }
}
