//! The per-transaction coordinator: registration, two-phase commit, nesting.

use std::sync::{Arc, Weak};

/// Named crash-injection sites of the two-phase-commit protocol, in the
/// order they are passed during a commit. Every
/// [`recovery_log::FailpointSet::hit`] call in this crate uses one of these
/// constants; the full workspace audit table lives in
/// `recovery_log::crash`'s module docs, and `FAILPOINT_SITES` is the
/// machine-readable registry simulation harnesses sweep over.
pub mod failpoints {
    /// Before phase one solicits any vote (nothing logged yet).
    pub const BEFORE_PREPARE: &str = "ots.before_prepare";
    /// After every vote is collected, before the decision is taken.
    pub const AFTER_PREPARE: &str = "ots.after_prepare";
    /// Before the commit decision record is forced to the log.
    pub const BEFORE_DECISION: &str = "ots.before_decision";
    /// Decision durable, before any phase-two delivery.
    pub const AFTER_DECISION: &str = "ots.after_decision";
    /// Phase two delivered, before the completion record.
    pub const BEFORE_COMPLETION_RECORD: &str = "ots.before_completion_record";

    /// Every site above, in protocol order.
    pub const FAILPOINT_SITES: &[&str] = &[
        BEFORE_PREPARE,
        AFTER_PREPARE,
        BEFORE_DECISION,
        AFTER_DECISION,
        BEFORE_COMPLETION_RECORD,
    ];
}
use std::time::Duration;

use orb::choice::{clamp_choice, DeliverySequencer};
use orb::detector::FailureDetector;
use orb::pool::{CancelToken, DispatchConfig, TaskOutcome, WorkerPool};
use orb::SimClock;
use parking_lot::Mutex;
use recovery_log::{FailpointSet, Wal};
use telemetry::{SpanContext, Telemetry};

use crate::error::TxError;
use crate::journal::{ProtocolJournal, TwoPcEvent, VoteKind};
use crate::resource::{Resource, SubtransactionAwareResource, Synchronization, Vote};
use crate::status::TxStatus;
use crate::txlog;
use crate::xid::TxId;

/// Outcome of a completed transaction, as reported to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Everything committed.
    Committed,
    /// Everything rolled back.
    RolledBack,
}

struct CoordinatorInner {
    status: TxStatus,
    resources: Vec<Arc<dyn Resource>>,
    synchronizations: Vec<Arc<dyn Synchronization>>,
    subtx_aware: Vec<Arc<dyn SubtransactionAwareResource>>,
    children: Vec<Arc<Coordinator>>,
    child_counter: u32,
    deadline: Option<Duration>,
}

/// Coordinates one transaction (mirrors CosTransactions::Coordinator plus
/// the completion half of Terminator).
///
/// Top-level coordinators drive full two-phase commit with presumed abort
/// and durable decision logging; subtransaction coordinators commit
/// *provisionally*, handing their participants to the parent (the resource
/// inheritance described in §1 of the paper).
pub struct Coordinator {
    id: TxId,
    parent: Weak<Coordinator>,
    inner: Mutex<CoordinatorInner>,
    wal: Option<Arc<dyn Wal>>,
    failpoints: FailpointSet,
    clock: Option<SimClock>,
    dispatch: DispatchConfig,
    detector: Mutex<Option<FailureDetector>>,
    telemetry: Mutex<Option<Telemetry>>,
    sequencer: Mutex<Option<Arc<dyn DeliverySequencer>>>,
    journal: Mutex<Option<ProtocolJournal>>,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Coordinator")
            .field("id", &self.id)
            .field("status", &inner.status)
            .field("resources", &inner.resources.len())
            .field("children", &inner.children.len())
            .finish()
    }
}

impl Coordinator {
    pub(crate) fn new_top_level(
        id: TxId,
        wal: Option<Arc<dyn Wal>>,
        failpoints: FailpointSet,
        clock: Option<SimClock>,
        deadline: Option<Duration>,
        dispatch: DispatchConfig,
    ) -> Arc<Self> {
        Arc::new(Coordinator {
            id,
            parent: Weak::new(),
            inner: Mutex::new(CoordinatorInner {
                status: TxStatus::Active,
                resources: Vec::new(),
                synchronizations: Vec::new(),
                subtx_aware: Vec::new(),
                children: Vec::new(),
                child_counter: 0,
                deadline,
            }),
            wal,
            failpoints,
            clock,
            dispatch,
            detector: Mutex::new(None),
            telemetry: Mutex::new(None),
            sequencer: Mutex::new(None),
            journal: Mutex::new(None),
        })
    }

    /// Attach a participant [`FailureDetector`]. Phase one feeds it (each
    /// prepare answer is a success, each transport-style error a failure) and
    /// consults it: quarantined read-only participants are dropped from the
    /// protocol, and a quarantined *voter* forces early presumed abort
    /// instead of burning the full vote timeout on a suspect peer.
    pub fn set_detector(&self, detector: FailureDetector) {
        *self.detector.lock() = Some(detector);
    }

    /// The attached failure detector, if any.
    pub fn detector(&self) -> Option<FailureDetector> {
        self.detector.lock().clone()
    }

    /// Attach a telemetry recorder: every commit becomes a `commit:` span
    /// with `prepare` / `phase2` child spans, per-vote latencies land in
    /// the `twopc_vote_latency_seconds` histogram, and top-level outcomes
    /// are counted as `twopc_commits_total` / `twopc_aborts_total`.
    /// Subtransactions inherit the recorder, like the detector.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.lock() = Some(telemetry);
    }

    /// The attached telemetry recorder, if any.
    pub fn telemetry(&self) -> Option<Telemetry> {
        self.telemetry.lock().clone()
    }

    /// Attach a [`DeliverySequencer`]: under serial dispatch every round of
    /// participant deliveries (prepare, phase-two outcomes, rollback) asks
    /// it which pending peer goes next, so a model-checking explorer owns
    /// delivery order instead of inheriting registration order. Without one
    /// (or under parallel dispatch, where there is no meaningful order) the
    /// legacy registration-order loops run unchanged. Subtransactions
    /// inherit the sequencer, like the detector.
    pub fn set_sequencer(&self, sequencer: Arc<dyn DeliverySequencer>) {
        *self.sequencer.lock() = Some(sequencer);
    }

    /// Attach a [`ProtocolJournal`]: the coordinator records every
    /// prepare/vote, the forced decision, phase-two deliveries, forgets and
    /// the terminal state into it. Subtransactions inherit the journal.
    pub fn set_journal(&self, journal: ProtocolJournal) {
        *self.journal.lock() = Some(journal);
    }

    /// The attached protocol journal, if any.
    pub fn journal(&self) -> Option<ProtocolJournal> {
        self.journal.lock().clone()
    }

    fn telemetry_handle(&self) -> Option<Telemetry> {
        self.telemetry.lock().clone().filter(Telemetry::is_enabled)
    }

    /// How participant fan-out (prepare / commit / rollback) is scheduled.
    pub fn dispatch_config(&self) -> DispatchConfig {
        self.dispatch
    }

    /// Apply `op` to every resource and return the results in registration
    /// order. Under a parallel [`DispatchConfig`] the calls run concurrently
    /// on the shared worker pool; the serial config (or a single resource)
    /// keeps the exact legacy in-order loop. A participant panic is re-raised
    /// here at the panicking resource's registration position.
    fn fan_out<T: Send + 'static>(
        &self,
        resources: &[Arc<dyn Resource>],
        op: impl Fn(&dyn Resource, &TxId) -> T + Send + Sync + 'static,
    ) -> Vec<T> {
        if self.dispatch.is_serial() || resources.len() <= 1 {
            return resources.iter().map(|r| op(r.as_ref(), &self.id)).collect();
        }
        let op = Arc::new(op);
        let tasks: Vec<Box<dyn FnOnce() -> T + Send>> = resources
            .iter()
            .map(|resource| {
                let resource = Arc::clone(resource);
                let id = self.id.clone();
                let op = Arc::clone(&op);
                Box::new(move || op(resource.as_ref(), &id)) as Box<dyn FnOnce() -> T + Send>
            })
            .collect();
        // 2PC joins every result (votes before the decision, acknowledgements
        // before the completion record), so no cancellation is ever needed.
        let cancel = CancelToken::new();
        let results = WorkerPool::shared(self.dispatch.workers()).scatter(tasks, &cancel);
        let mut collated = Vec::with_capacity(resources.len());
        for outcome in results {
            match outcome {
                TaskOutcome::Done(value) => collated.push(value),
                TaskOutcome::Panicked(payload) => std::panic::resume_unwind(payload),
                TaskOutcome::Cancelled => unreachable!("2PC fan-out never cancels"),
            }
        }
        collated
    }

    /// Deliver one serial round in [`DeliverySequencer`] order (registration
    /// order without a sequencer), returning results in **registration**
    /// order so collation is dispatch-invisible. Each delivery is reported
    /// back to the sequencer with `clean(&result)`.
    fn sequenced_round<T>(
        &self,
        stage: &str,
        resources: &[Arc<dyn Resource>],
        mut op: impl FnMut(&dyn Resource) -> T,
        clean: impl Fn(&T) -> bool,
    ) -> Vec<T> {
        let sequencer = self.sequencer.lock().clone();
        let mut slots: Vec<Option<T>> = resources.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = (0..resources.len()).collect();
        while !pending.is_empty() {
            let slot = match &sequencer {
                Some(seq) if pending.len() > 1 => {
                    let labels: Vec<&str> =
                        pending.iter().map(|i| resources[*i].resource_name()).collect();
                    clamp_choice(seq.next_delivery(stage, &labels), labels.len())
                }
                _ => 0,
            };
            let index = pending.remove(slot);
            let resource = &resources[index];
            let result = op(resource.as_ref());
            if let Some(seq) = &sequencer {
                seq.report(stage, resource.resource_name(), clean(&result));
            }
            slots[index] = Some(result);
        }
        slots.into_iter().map(|slot| slot.expect("every delivery ran")).collect()
    }

    /// Deliver a rollback round (sequenced when serial, scattered when
    /// parallel) and journal each delivery's fate.
    fn rollback_round(&self, resources: &[Arc<dyn Resource>]) {
        let results: Vec<bool> = if self.dispatch.is_serial() || resources.len() <= 1 {
            self.sequenced_round(
                "rollback",
                resources,
                |resource| resource.rollback(&self.id).is_ok(),
                |ok| *ok,
            )
        } else {
            self.fan_out(resources, |resource, id| resource.rollback(id).is_ok())
        };
        if let Some(journal) = self.journal.lock().clone() {
            for (resource, ok) in resources.iter().zip(results) {
                journal.record(TwoPcEvent::OutcomeDelivered {
                    participant: resource.resource_name().to_owned(),
                    commit: false,
                    ok,
                });
            }
        }
    }

    /// This transaction's identity.
    pub fn id(&self) -> &TxId {
        &self.id
    }

    /// Current status (timeout is assessed lazily here: an expired active
    /// transaction reports `MarkedRollback`).
    pub fn status(&self) -> TxStatus {
        let mut inner = self.inner.lock();
        self.assess_timeout(&mut inner);
        inner.status
    }

    /// Whether this coordinator manages a top-level transaction.
    pub fn is_top_level(&self) -> bool {
        self.id.is_top_level()
    }

    fn assess_timeout(&self, inner: &mut CoordinatorInner) {
        if inner.status == TxStatus::Active {
            if let (Some(clock), Some(deadline)) = (&self.clock, inner.deadline) {
                if clock.now() > deadline {
                    inner.status = TxStatus::MarkedRollback;
                }
            }
        }
    }

    /// Register a two-phase participant.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Inactive`] unless the transaction is active, or
    /// [`TxError::TimedOut`] when the deadline has passed.
    pub fn register_resource(&self, resource: Arc<dyn Resource>) -> Result<(), TxError> {
        let mut inner = self.inner.lock();
        self.assess_timeout(&mut inner);
        match inner.status {
            TxStatus::Active => {
                inner.resources.push(resource);
                Ok(())
            }
            TxStatus::MarkedRollback if inner.deadline.is_some() => {
                Err(TxError::TimedOut(self.id.clone()))
            }
            status => Err(TxError::Inactive { tx: self.id.clone(), status }),
        }
    }

    /// Register a before/after completion callback.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Inactive`] unless the transaction is active.
    pub fn register_synchronization(&self, sync: Arc<dyn Synchronization>) -> Result<(), TxError> {
        let mut inner = self.inner.lock();
        self.assess_timeout(&mut inner);
        if inner.status != TxStatus::Active {
            return Err(TxError::Inactive { tx: self.id.clone(), status: inner.status });
        }
        inner.synchronizations.push(sync);
        Ok(())
    }

    /// Register a participant interested in this *subtransaction's*
    /// provisional completion.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::NestingViolation`] on a top-level transaction and
    /// [`TxError::Inactive`] unless active.
    pub fn register_subtransaction_aware(
        &self,
        participant: Arc<dyn SubtransactionAwareResource>,
    ) -> Result<(), TxError> {
        if self.is_top_level() {
            return Err(TxError::NestingViolation(
                "subtransaction-aware registration on a top-level transaction".into(),
            ));
        }
        let mut inner = self.inner.lock();
        if inner.status != TxStatus::Active {
            return Err(TxError::Inactive { tx: self.id.clone(), status: inner.status });
        }
        inner.subtx_aware.push(participant);
        Ok(())
    }

    /// Doom the transaction: it can only roll back from here on.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Inactive`] if already completing or completed.
    pub fn rollback_only(&self) -> Result<(), TxError> {
        let mut inner = self.inner.lock();
        match inner.status {
            TxStatus::Active => {
                inner.status = TxStatus::MarkedRollback;
                Ok(())
            }
            TxStatus::MarkedRollback => Ok(()),
            status => Err(TxError::Inactive { tx: self.id.clone(), status }),
        }
    }

    /// Begin a subtransaction nested inside this one.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Inactive`] unless this transaction is active.
    pub fn create_subtransaction(self: &Arc<Self>) -> Result<Arc<Coordinator>, TxError> {
        let mut inner = self.inner.lock();
        self.assess_timeout(&mut inner);
        if inner.status != TxStatus::Active {
            return Err(TxError::Inactive { tx: self.id.clone(), status: inner.status });
        }
        let index = inner.child_counter;
        inner.child_counter += 1;
        let child = Arc::new(Coordinator {
            id: self.id.child(index),
            parent: Arc::downgrade(self),
            inner: Mutex::new(CoordinatorInner {
                status: TxStatus::Active,
                resources: Vec::new(),
                synchronizations: Vec::new(),
                subtx_aware: Vec::new(),
                children: Vec::new(),
                child_counter: 0,
                deadline: inner.deadline,
            }),
            wal: self.wal.clone(),
            failpoints: self.failpoints.clone(),
            clock: self.clock.clone(),
            dispatch: self.dispatch,
            detector: Mutex::new(self.detector.lock().clone()),
            telemetry: Mutex::new(self.telemetry.lock().clone()),
            sequencer: Mutex::new(self.sequencer.lock().clone()),
            journal: Mutex::new(self.journal.lock().clone()),
        });
        inner.children.push(Arc::clone(&child));
        Ok(child)
    }

    /// Commit the transaction.
    ///
    /// For a **top-level** transaction this runs the full protocol:
    /// synchronizations' `before_completion`, phase one (prepare, with the
    /// read-only optimisation and one-phase shortcut), a durable decision
    /// record, phase two, a completion record and `after_completion`.
    ///
    /// For a **subtransaction** the commit is provisional: its participants
    /// are inherited by the parent, and subtransaction-aware participants
    /// are told.
    ///
    /// Any still-active child subtransactions are rolled back first
    /// (their provisional work never reached this coordinator).
    ///
    /// # Errors
    ///
    /// [`TxError::RolledBack`] when the transaction had to abort (rollback
    /// vote, marked rollback-only, or timeout); [`TxError::Heuristic`] when
    /// `report_heuristics` and a phase-two delivery failed;
    /// [`TxError::Log`] when the decision could not be made durable (the
    /// transaction rolls back) or a crash was injected.
    pub fn commit(&self, report_heuristics: bool) -> Result<TxOutcome, TxError> {
        // The whole commit is one span, entered on the driving thread so
        // participant invocations (and, on a remote resource proxy, their
        // retry-attempt spans) nest under it. It closes on every exit
        // path, including injected crashes — oracle #7 rejects open spans.
        let scope = self.telemetry_handle().map(|t| {
            let span = t.start_span(&format!("commit:{}", self.id));
            t.set_attr(&span, "top_level", if self.is_top_level() { "true" } else { "false" });
            t.enter(span);
            (t, span)
        });
        let result = self.commit_inner(report_heuristics, scope.as_ref());
        if let Some((t, span)) = scope {
            match &result {
                Ok(TxOutcome::Committed) => t.set_attr(&span, "outcome", "committed"),
                Ok(TxOutcome::RolledBack) => t.set_attr(&span, "outcome", "rolled_back"),
                Err(e) => t.set_attr(&span, "error", &e.to_string()),
            }
            if self.is_top_level() {
                match &result {
                    Ok(TxOutcome::Committed) => t.metrics().incr("twopc_commits_total"),
                    Ok(TxOutcome::RolledBack) | Err(TxError::RolledBack(_)) => {
                        t.metrics().incr("twopc_aborts_total");
                    }
                    Err(_) => {}
                }
            }
            t.exit();
            t.end(&span);
        }
        result
    }

    fn commit_inner(
        &self,
        report_heuristics: bool,
        tel: Option<&(Telemetry, SpanContext)>,
    ) -> Result<TxOutcome, TxError> {
        // Settle children and collect a snapshot under the lock, then drive
        // the protocol outside it (participants may call back in).
        let (resources, synchronizations, doomed) = {
            let mut inner = self.inner.lock();
            self.assess_timeout(&mut inner);
            match inner.status {
                TxStatus::Active => {}
                TxStatus::MarkedRollback => {
                    drop(inner);
                    self.rollback()?;
                    return Err(TxError::RolledBack(self.id.clone()));
                }
                status => return Err(TxError::Inactive { tx: self.id.clone(), status }),
            }
            let children: Vec<_> = inner.children.drain(..).collect();
            drop(inner);
            // Children that never completed lose their provisional work.
            for child in children {
                if !child.status().is_terminal() {
                    let _ = child.rollback();
                }
            }
            let inner = self.inner.lock();
            let doomed = inner.status == TxStatus::MarkedRollback;
            (inner.resources.clone(), inner.synchronizations.clone(), doomed)
        };
        if doomed {
            self.rollback()?;
            return Err(TxError::RolledBack(self.id.clone()));
        }

        if !self.is_top_level() {
            return self.commit_provisionally();
        }

        for sync in &synchronizations {
            sync.before_completion(&self.id);
        }
        // before_completion may have doomed us.
        if self.inner.lock().status == TxStatus::MarkedRollback {
            self.rollback()?;
            return Err(TxError::RolledBack(self.id.clone()));
        }

        self.failpoints.hit(failpoints::BEFORE_PREPARE).map_err(TxError::from)?;

        // Consult the failure detector before soliciting any vote. Each
        // participant's skip decision is computed exactly once (`should_skip`
        // claims half-open probe slots as a side effect).
        let detector = self.detector.lock().clone();
        let resources: Vec<Arc<dyn Resource>> = if let Some(detector) = &detector {
            let mut kept = Vec::with_capacity(resources.len());
            let mut quarantined_voter = false;
            for resource in resources {
                if detector.should_skip(resource.resource_name()) {
                    if resource.read_only_hint() {
                        // Its vote could only be ReadOnly; dropping it cannot
                        // change the outcome, and saves its timeout budget.
                        continue;
                    }
                    // A quarantined voter dooms the transaction: presumed
                    // abort now, without waiting out a vote that the detector
                    // predicts will never arrive. The quarantined participant
                    // itself is *not* contacted — presumed abort lets it
                    // learn the outcome when it recovers.
                    quarantined_voter = true;
                } else {
                    kept.push(resource);
                }
            }
            if quarantined_voter {
                self.set_status(TxStatus::RollingBack);
                self.rollback_round(&kept);
                self.finish(TxStatus::RolledBack, &synchronizations);
                return Err(TxError::RolledBack(self.id.clone()));
            }
            kept
        } else {
            resources
        };

        // One-phase shortcut.
        if resources.len() == 1 {
            let result = resources[0].commit_one_phase(&self.id);
            let status = match &result {
                Ok(()) => TxStatus::Committed,
                Err(_) => TxStatus::RolledBack,
            };
            self.finish(status, &synchronizations);
            return match result {
                Ok(()) => Ok(TxOutcome::Committed),
                Err(_) => Err(TxError::RolledBack(self.id.clone())),
            };
        }

        // Phase one. The `prepare` span closes before the AFTER_PREPARE
        // failpoint so an injected crash there cannot leak it open.
        self.set_status(TxStatus::Preparing);
        if let Some(wal) = &self.wal {
            let names: Vec<&str> = resources.iter().map(|r| r.resource_name()).collect();
            txlog::log_prepared(wal.as_ref(), &self.id, &names)?;
        }
        let prepare_span = tel.map(|(t, parent)| {
            let span = t.start_child(parent, "prepare");
            t.set_attr(&span, "participants", &resources.len().to_string());
            span
        });
        let mut prepared: Vec<Arc<dyn Resource>> = Vec::new();
        let mut voted_rollback = false;
        if self.dispatch.is_serial() {
            // Legacy serial phase one: stop asking for votes at the first
            // veto — resources after the break never see `prepare`. A
            // sequencer, when attached, picks which pending participant is
            // asked next; without one the loop walks registration order
            // exactly as before.
            let journal = self.journal.lock().clone();
            let sequencer = self.sequencer.lock().clone();
            let mut pending: Vec<usize> = (0..resources.len()).collect();
            while !pending.is_empty() {
                let slot = match &sequencer {
                    Some(seq) if pending.len() > 1 => {
                        let labels: Vec<&str> =
                            pending.iter().map(|i| resources[*i].resource_name()).collect();
                        clamp_choice(seq.next_delivery("prepare", &labels), labels.len())
                    }
                    _ => 0,
                };
                let resource = &resources[pending.remove(slot)];
                let vote_started = tel.and_then(|_| self.clock.as_ref().map(SimClock::now));
                if let Some(journal) = &journal {
                    journal.record(TwoPcEvent::PrepareSent {
                        participant: resource.resource_name().to_owned(),
                    });
                }
                // Per-vote child span under `prepare`: the critical-path
                // walk reads the slowest of these as the slowest-vote
                // annotation.
                let vote_span = match (tel, prepare_span.as_ref()) {
                    (Some((t, _)), Some(parent)) => Some(
                        t.start_child(parent, &format!("vote:{}", resource.resource_name())),
                    ),
                    _ => None,
                };
                let answer = resource.prepare(&self.id);
                if let (Some((t, _)), Some(span)) = (tel, vote_span.as_ref()) {
                    t.end(span);
                }
                if let Some((t, _)) = tel {
                    t.metrics()
                        .observe("twopc_vote_latency_seconds", self.elapsed_since(vote_started));
                }
                if let Some(detector) = &detector {
                    match &answer {
                        Ok(_) => detector.record_success(resource.resource_name()),
                        Err(_) => detector.record_failure(resource.resource_name()),
                    }
                }
                if let Some(journal) = &journal {
                    journal.record(TwoPcEvent::VoteRecorded {
                        participant: resource.resource_name().to_owned(),
                        vote: VoteKind::from_answer(&answer),
                    });
                }
                let clean = matches!(answer, Ok(Vote::Commit) | Ok(Vote::ReadOnly));
                if let Some(seq) = &sequencer {
                    seq.report("prepare", resource.resource_name(), clean);
                }
                match answer {
                    Ok(Vote::Commit) => prepared.push(Arc::clone(resource)),
                    Ok(Vote::ReadOnly) => {}
                    Ok(Vote::Rollback) | Err(_) => {
                        voted_rollback = true;
                        break;
                    }
                }
            }
        } else {
            let phase_started = tel.and_then(|_| self.clock.as_ref().map(SimClock::now));
            // Parallel phase one: every vote is solicited concurrently and
            // all are joined before the decision. Speculatively preparing a
            // resource whose peer vetoes is safe — presumed abort means it
            // is simply rolled back, exactly as a prepared resource is on
            // the serial path.
            let votes = self.fan_out(&resources, |resource, id| resource.prepare(id));
            // Detector feeding (and journal recording) happens here at
            // collation (registration order), not inside the scattered
            // tasks, so suspicion counters and the journal evolve
            // deterministically under parallel dispatch.
            let journal = self.journal.lock().clone();
            for (resource, vote) in resources.iter().zip(votes) {
                if let Some(journal) = &journal {
                    journal.record(TwoPcEvent::PrepareSent {
                        participant: resource.resource_name().to_owned(),
                    });
                    journal.record(TwoPcEvent::VoteRecorded {
                        participant: resource.resource_name().to_owned(),
                        vote: VoteKind::from_answer(&vote),
                    });
                }
                if let Some((t, _)) = tel {
                    // Votes are joined, so per-vote latency is the phase
                    // latency — the time this coordinator actually waited.
                    t.metrics()
                        .observe("twopc_vote_latency_seconds", self.elapsed_since(phase_started));
                }
                if let Some(detector) = &detector {
                    match &vote {
                        Ok(_) => detector.record_success(resource.resource_name()),
                        Err(_) => detector.record_failure(resource.resource_name()),
                    }
                }
                match vote {
                    Ok(Vote::Commit) => prepared.push(Arc::clone(resource)),
                    Ok(Vote::ReadOnly) => {}
                    Ok(Vote::Rollback) | Err(_) => voted_rollback = true,
                }
            }
        }
        if let Some(((t, _), span)) = tel.zip(prepare_span.as_ref()) {
            t.set_attr(span, "prepared", &prepared.len().to_string());
            t.set_attr(span, "voted_rollback", if voted_rollback { "true" } else { "false" });
            t.end(span);
        }
        self.failpoints.hit(failpoints::AFTER_PREPARE).map_err(TxError::from)?;

        if voted_rollback {
            // Presumed abort: no decision record needed; undo the prepared.
            self.set_status(TxStatus::RollingBack);
            self.rollback_round(&resources);
            self.finish(TxStatus::RolledBack, &synchronizations);
            return Err(TxError::RolledBack(self.id.clone()));
        }

        if prepared.is_empty() {
            // Everybody read-only: committed with no phase two, no log.
            self.set_status(TxStatus::Committed);
            if let Some(journal) = self.journal.lock().clone() {
                journal.record(TwoPcEvent::Completed { committed: true });
            }
            for sync in &synchronizations {
                sync.after_completion(&self.id, TxStatus::Committed);
            }
            return Ok(TxOutcome::Committed);
        }

        self.set_status(TxStatus::Prepared);
        self.failpoints.hit(failpoints::BEFORE_DECISION).map_err(TxError::from)?;
        if let Some(wal) = &self.wal {
            // Forcing discipline: this is the protocol's only awaited-durable
            // write. `log_decision_commit` forces via `append_durable`, so the
            // earlier BEGUN/PREPARED records (and any interposed
            // subcoordinator's) ride the same flush barrier under a
            // group-commit log; the COMPLETED record below is free to lag —
            // presumed abort re-derives it on replay.
            txlog::log_decision_commit(wal.as_ref(), &self.id)?;
        }
        if let Some(journal) = self.journal.lock().clone() {
            journal.record(TwoPcEvent::DecisionForced { commit: true });
        }
        self.failpoints.hit(failpoints::AFTER_DECISION).map_err(TxError::from)?;

        // Phase two. The decision is durable, so the commit deliveries are
        // independent; heuristics are collated in registration order. The
        // span closes before the BEFORE_COMPLETION_RECORD failpoint.
        self.set_status(TxStatus::Committing);
        let phase2_span = tel.map(|(t, parent)| {
            let span = t.start_child(parent, "phase2");
            t.set_attr(&span, "participants", &prepared.len().to_string());
            span
        });
        let deliveries: Vec<Option<String>> = if self.dispatch.is_serial() || prepared.len() <= 1
        {
            self.sequenced_round(
                "phase2",
                &prepared,
                |resource| {
                    if let Err(e) = resource.commit(&self.id) {
                        Some(format!("{}: {e}", resource.resource_name()))
                    } else {
                        resource.forget(&self.id);
                        None
                    }
                },
                |heuristic| heuristic.is_none(),
            )
        } else {
            self.fan_out(&prepared, |resource, id| {
                if let Err(e) = resource.commit(id) {
                    Some(format!("{}: {e}", resource.resource_name()))
                } else {
                    resource.forget(id);
                    None
                }
            })
        };
        if let Some(journal) = self.journal.lock().clone() {
            for (resource, heuristic) in prepared.iter().zip(&deliveries) {
                let ok = heuristic.is_none();
                journal.record(TwoPcEvent::OutcomeDelivered {
                    participant: resource.resource_name().to_owned(),
                    commit: true,
                    ok,
                });
                if ok {
                    journal.record(TwoPcEvent::Forgotten {
                        participant: resource.resource_name().to_owned(),
                    });
                }
            }
        }
        let heuristics: Vec<String> = deliveries.into_iter().flatten().collect();
        if let Some(((t, _), span)) = tel.zip(phase2_span.as_ref()) {
            t.set_attr(span, "heuristics", &heuristics.len().to_string());
            t.end(span);
        }
        self.failpoints.hit(failpoints::BEFORE_COMPLETION_RECORD).map_err(TxError::from)?;
        self.finish(TxStatus::Committed, &synchronizations);

        if report_heuristics && !heuristics.is_empty() {
            return Err(TxError::Heuristic { tx: self.id.clone(), detail: heuristics.join("; ") });
        }
        Ok(TxOutcome::Committed)
    }

    /// Provisional commit of a subtransaction: participants move to the
    /// parent; subtransaction-aware participants are notified.
    fn commit_provisionally(&self) -> Result<TxOutcome, TxError> {
        let parent = self.parent.upgrade().ok_or_else(|| {
            TxError::NestingViolation(format!("parent of {} already gone", self.id))
        })?;
        let (resources, synchronizations, subtx_aware) = {
            let mut inner = self.inner.lock();
            inner.status = TxStatus::Committed;
            (
                std::mem::take(&mut inner.resources),
                std::mem::take(&mut inner.synchronizations),
                std::mem::take(&mut inner.subtx_aware),
            )
        };
        {
            let mut parent_inner = parent.inner.lock();
            parent_inner.resources.extend(resources);
            parent_inner.synchronizations.extend(synchronizations);
        }
        for participant in &subtx_aware {
            participant.commit_subtransaction(&self.id, parent.id());
        }
        Ok(TxOutcome::Committed)
    }

    /// Roll the transaction back, undoing its work and (recursively) that of
    /// any still-active subtransactions.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Inactive`] if already completed.
    pub fn rollback(&self) -> Result<TxOutcome, TxError> {
        let (resources, synchronizations, subtx_aware, children) = {
            let mut inner = self.inner.lock();
            match inner.status {
                TxStatus::Active | TxStatus::MarkedRollback | TxStatus::Prepared => {}
                status => return Err(TxError::Inactive { tx: self.id.clone(), status }),
            }
            inner.status = TxStatus::RollingBack;
            (
                std::mem::take(&mut inner.resources),
                std::mem::take(&mut inner.synchronizations),
                std::mem::take(&mut inner.subtx_aware),
                std::mem::take(&mut inner.children),
            )
        };
        for child in children {
            if !child.status().is_terminal() {
                let _ = child.rollback();
            }
        }
        self.rollback_round(&resources);
        for participant in &subtx_aware {
            participant.rollback_subtransaction(&self.id);
        }
        self.finish(TxStatus::RolledBack, &synchronizations);
        Ok(TxOutcome::RolledBack)
    }

    fn set_status(&self, status: TxStatus) {
        self.inner.lock().status = status;
    }

    /// Virtual time elapsed since `started`; zero without a clock, so the
    /// vote-latency histogram stays well-defined (and deterministic) on
    /// clockless coordinators.
    fn elapsed_since(&self, started: Option<Duration>) -> Duration {
        match (&self.clock, started) {
            (Some(clock), Some(started)) => clock.now().saturating_sub(started),
            _ => Duration::ZERO,
        }
    }

    fn finish(&self, status: TxStatus, synchronizations: &[Arc<dyn Synchronization>]) {
        self.set_status(status);
        if self.is_top_level() {
            if let Some(wal) = &self.wal {
                let _ = txlog::log_completed(wal.as_ref(), &self.id, status);
            }
            if let Some(journal) = self.journal.lock().clone() {
                journal.record(TwoPcEvent::Completed {
                    committed: status == TxStatus::Committed,
                });
            }
        }
        for sync in synchronizations {
            sync.after_completion(&self.id, status);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::test_support::ScriptedResource;
    use recovery_log::MemWal;

    fn top(wal: Option<Arc<dyn Wal>>) -> Arc<Coordinator> {
        Coordinator::new_top_level(
            TxId::top_level(1),
            wal,
            FailpointSet::new(),
            None,
            None,
            DispatchConfig::default(),
        )
    }

    #[test]
    fn two_phase_commit_happy_path() {
        let c = top(None);
        let r1 = ScriptedResource::voting("r1", Vote::Commit);
        let r2 = ScriptedResource::voting("r2", Vote::Commit);
        c.register_resource(r1.clone()).unwrap();
        c.register_resource(r2.clone()).unwrap();
        assert_eq!(c.commit(true).unwrap(), TxOutcome::Committed);
        assert_eq!(c.status(), TxStatus::Committed);
        assert_eq!(r1.calls(), vec!["prepare", "commit", "forget"]);
        assert_eq!(r2.calls(), vec!["prepare", "commit", "forget"]);
    }

    #[test]
    fn commit_records_phase_spans_and_metrics() {
        let tel = Telemetry::new();
        let c = top(None);
        c.set_telemetry(tel.clone());
        c.register_resource(ScriptedResource::voting("r1", Vote::Commit)).unwrap();
        c.register_resource(ScriptedResource::voting("r2", Vote::Commit)).unwrap();
        assert_eq!(c.commit(true).unwrap(), TxOutcome::Committed);

        let tree = tel.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new());
        let root = &tree.roots()[0];
        assert_eq!(root.name, "commit:tx-1");
        assert_eq!(root.attr("outcome"), Some("committed"));
        let phases: Vec<&str> =
            tree.children(root.context.span_id).iter().map(|s| s.name.as_str()).collect();
        assert_eq!(phases, vec!["prepare", "phase2"]);
        assert_eq!(tel.metrics().counter_value("twopc_commits_total"), 1);
        assert_eq!(tel.metrics().histogram_count("twopc_vote_latency_seconds"), 2);
    }

    #[test]
    fn injected_crash_still_closes_twopc_spans() {
        let tel = Telemetry::new();
        let fps = FailpointSet::new();
        fps.arm(failpoints::AFTER_PREPARE, 0);
        let c = Coordinator::new_top_level(
            TxId::top_level(1),
            None,
            fps,
            None,
            None,
            DispatchConfig::default(),
        );
        c.set_telemetry(tel.clone());
        c.register_resource(ScriptedResource::voting("a", Vote::Commit)).unwrap();
        c.register_resource(ScriptedResource::voting("b", Vote::Commit)).unwrap();
        assert!(c.commit(true).is_err());
        let tree = tel.span_tree();
        assert_eq!(tree.verify(), Vec::<String>::new(), "crash path must close spans");
        assert!(tree.roots()[0].attr("error").is_some());
    }

    #[test]
    fn subtransactions_inherit_the_telemetry_recorder() {
        let tel = Telemetry::new();
        let c = top(None);
        c.set_telemetry(tel.clone());
        let child = c.create_subtransaction().unwrap();
        assert!(child.telemetry().is_some());
        child.commit(true).unwrap();
        c.commit(true).unwrap();
        // The provisional commit is a span too, tagged non-top-level, and
        // only the top-level outcome is counted.
        let tree = tel.span_tree();
        let names: Vec<&str> = tree.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"commit:tx-1.0"));
        assert_eq!(tel.metrics().counter_value("twopc_commits_total"), 1);
    }

    #[test]
    fn rollback_vote_aborts_everyone() {
        let c = top(None);
        let good = ScriptedResource::voting("good", Vote::Commit);
        let bad = ScriptedResource::voting("bad", Vote::Rollback);
        c.register_resource(good.clone()).unwrap();
        c.register_resource(bad.clone()).unwrap();
        assert!(matches!(c.commit(true), Err(TxError::RolledBack(_))));
        assert_eq!(c.status(), TxStatus::RolledBack);
        assert_eq!(good.calls(), vec!["prepare", "rollback"]);
        assert_eq!(bad.calls(), vec!["prepare", "rollback"]);
    }

    #[test]
    fn serial_config_stops_soliciting_votes_at_first_veto() {
        let c = Coordinator::new_top_level(
            TxId::top_level(1),
            None,
            FailpointSet::new(),
            None,
            None,
            DispatchConfig::serial(),
        );
        let bad = ScriptedResource::voting("bad", Vote::Rollback);
        let never = ScriptedResource::voting("never", Vote::Commit);
        c.register_resource(bad.clone()).unwrap();
        c.register_resource(never.clone()).unwrap();
        assert!(matches!(c.commit(true), Err(TxError::RolledBack(_))));
        assert_eq!(bad.calls(), vec!["prepare", "rollback"]);
        assert_eq!(never.calls(), vec!["rollback"], "serial phase one breaks at the veto");
    }

    #[test]
    fn parallel_prepare_joins_all_votes_before_abort() {
        // Under parallel fan-out every resource is asked for its vote even
        // when an earlier registrant vetoes; presumed abort then undoes the
        // speculatively prepared peers. Pin a worker count — the default
        // config degrades to serial on a single-core host.
        let c = Coordinator::new_top_level(
            TxId::top_level(1),
            None,
            FailpointSet::new(),
            None,
            None,
            DispatchConfig::with_workers(4),
        );
        let bad = ScriptedResource::voting("bad", Vote::Rollback);
        let good = ScriptedResource::voting("good", Vote::Commit);
        c.register_resource(bad.clone()).unwrap();
        c.register_resource(good.clone()).unwrap();
        assert!(matches!(c.commit(true), Err(TxError::RolledBack(_))));
        assert_eq!(bad.calls(), vec!["prepare", "rollback"]);
        assert_eq!(good.calls(), vec!["prepare", "rollback"]);
    }

    #[test]
    fn read_only_resources_skip_phase_two() {
        let c = top(None);
        let ro1 = ScriptedResource::voting("ro1", Vote::ReadOnly);
        let ro2 = ScriptedResource::voting("ro2", Vote::ReadOnly);
        c.register_resource(ro1.clone()).unwrap();
        c.register_resource(ro2.clone()).unwrap();
        assert_eq!(c.commit(true).unwrap(), TxOutcome::Committed);
        assert_eq!(ro1.calls(), vec!["prepare"]);
        assert_eq!(ro2.calls(), vec!["prepare"]);
    }

    #[test]
    fn single_resource_uses_one_phase() {
        let c = top(None);
        let r = ScriptedResource::voting("solo", Vote::Commit);
        c.register_resource(r.clone()).unwrap();
        assert_eq!(c.commit(true).unwrap(), TxOutcome::Committed);
        assert_eq!(r.calls(), vec!["prepare", "commit"]);
    }

    #[test]
    fn empty_transaction_commits() {
        let c = top(None);
        assert_eq!(c.commit(true).unwrap(), TxOutcome::Committed);
    }

    #[test]
    fn rollback_only_dooms_commit() {
        let c = top(None);
        let r = ScriptedResource::voting("r", Vote::Commit);
        c.register_resource(r.clone()).unwrap();
        c.rollback_only().unwrap();
        assert!(matches!(c.commit(true), Err(TxError::RolledBack(_))));
        assert_eq!(r.calls(), vec!["rollback"]);
        // rollback_only is idempotent while pending but an error after the end.
        assert!(matches!(c.rollback_only(), Err(TxError::Inactive { .. })));
    }

    #[test]
    fn registration_after_completion_fails() {
        let c = top(None);
        c.commit(true).unwrap();
        let r = ScriptedResource::voting("late", Vote::Commit);
        assert!(matches!(c.register_resource(r), Err(TxError::Inactive { .. })));
        assert!(matches!(c.commit(true), Err(TxError::Inactive { .. })));
        assert!(matches!(c.rollback(), Err(TxError::Inactive { .. })));
    }

    #[test]
    fn heuristic_reported_when_phase_two_fails() {
        let c = top(None);
        let flaky = ScriptedResource::voting("flaky", Vote::Commit);
        *flaky.fail_commit_times.lock() = 1;
        let fine = ScriptedResource::voting("fine", Vote::Commit);
        c.register_resource(flaky.clone()).unwrap();
        c.register_resource(fine.clone()).unwrap();
        let err = c.commit(true).unwrap_err();
        assert!(matches!(err, TxError::Heuristic { .. }));
        // The transaction is still committed: the decision was made.
        assert_eq!(c.status(), TxStatus::Committed);
    }

    #[test]
    fn heuristics_swallowed_when_not_reporting() {
        let c = top(None);
        let flaky = ScriptedResource::voting("flaky", Vote::Commit);
        *flaky.fail_commit_times.lock() = 1;
        c.register_resource(flaky).unwrap();
        c.register_resource(ScriptedResource::voting("fine", Vote::Commit)).unwrap();
        assert_eq!(c.commit(false).unwrap(), TxOutcome::Committed);
    }

    #[test]
    fn subtransaction_commit_propagates_resources_to_parent() {
        let parent = top(None);
        let child = parent.create_subtransaction().unwrap();
        assert_eq!(child.id(), &TxId::top_level(1).child(0));
        let r = ScriptedResource::voting("r", Vote::Commit);
        child.register_resource(r.clone()).unwrap();
        child.commit(true).unwrap();
        assert_eq!(child.status(), TxStatus::Committed);
        // No 2PC happened yet.
        assert!(r.calls().is_empty());
        // Parent commit drives it.
        parent.commit(true).unwrap();
        assert_eq!(r.calls(), vec!["prepare", "commit"]);
    }

    #[test]
    fn subtransaction_rollback_confines_failure() {
        let parent = top(None);
        let child = parent.create_subtransaction().unwrap();
        let child_r = ScriptedResource::voting("child-r", Vote::Commit);
        child.register_resource(child_r.clone()).unwrap();
        child.rollback().unwrap();
        assert_eq!(child_r.calls(), vec!["rollback"]);
        // Parent is unaffected and can still commit its own work.
        let parent_r = ScriptedResource::voting("parent-r", Vote::Commit);
        parent.register_resource(parent_r.clone()).unwrap();
        parent.commit(true).unwrap();
        assert_eq!(parent_r.calls(), vec!["prepare", "commit"]);
    }

    #[test]
    fn parent_rollback_undoes_inherited_resources() {
        let parent = top(None);
        let child = parent.create_subtransaction().unwrap();
        let r = ScriptedResource::voting("r", Vote::Commit);
        child.register_resource(r.clone()).unwrap();
        child.commit(true).unwrap();
        parent.rollback().unwrap();
        assert_eq!(r.calls(), vec!["rollback"]);
    }

    #[test]
    fn active_children_are_rolled_back_by_parent_commit() {
        let parent = top(None);
        let child = parent.create_subtransaction().unwrap();
        let r = ScriptedResource::voting("r", Vote::Commit);
        child.register_resource(r.clone()).unwrap();
        // Child never completes; parent commits anyway.
        parent.commit(true).unwrap();
        assert_eq!(child.status(), TxStatus::RolledBack);
        assert_eq!(r.calls(), vec!["rollback"]);
    }

    #[test]
    fn deep_nesting_propagates_transitively() {
        let parent = top(None);
        let child = parent.create_subtransaction().unwrap();
        let grandchild = child.create_subtransaction().unwrap();
        let r = ScriptedResource::voting("deep", Vote::Commit);
        grandchild.register_resource(r.clone()).unwrap();
        grandchild.commit(true).unwrap();
        child.commit(true).unwrap();
        parent.commit(true).unwrap();
        assert_eq!(r.calls(), vec!["prepare", "commit"]);
    }

    #[test]
    fn subtransaction_aware_notifications() {
        struct Watcher(Mutex<Vec<String>>);
        impl SubtransactionAwareResource for Watcher {
            fn commit_subtransaction(&self, tx: &TxId, parent: &TxId) {
                self.0.lock().push(format!("commit {tx} into {parent}"));
            }
            fn rollback_subtransaction(&self, tx: &TxId) {
                self.0.lock().push(format!("rollback {tx}"));
            }
        }
        let parent = top(None);
        let w = Arc::new(Watcher(Mutex::new(Vec::new())));
        assert!(parent.register_subtransaction_aware(w.clone()).is_err());

        let c1 = parent.create_subtransaction().unwrap();
        c1.register_subtransaction_aware(w.clone()).unwrap();
        c1.commit(true).unwrap();
        let c2 = parent.create_subtransaction().unwrap();
        c2.register_subtransaction_aware(w.clone()).unwrap();
        c2.rollback().unwrap();
        assert_eq!(
            *w.0.lock(),
            vec!["commit tx-1.0 into tx-1".to_string(), "rollback tx-1.1".to_string()]
        );
    }

    #[test]
    fn synchronizations_bracket_completion() {
        struct Sync(Mutex<Vec<String>>);
        impl Synchronization for Sync {
            fn before_completion(&self, _tx: &TxId) {
                self.0.lock().push("before".into());
            }
            fn after_completion(&self, _tx: &TxId, status: TxStatus) {
                self.0.lock().push(format!("after {status}"));
            }
        }
        let c = top(None);
        let s = Arc::new(Sync(Mutex::new(Vec::new())));
        c.register_synchronization(s.clone()).unwrap();
        c.register_resource(ScriptedResource::voting("r", Vote::Commit)).unwrap();
        c.commit(true).unwrap();
        assert_eq!(*s.0.lock(), vec!["before".to_string(), "after committed".to_string()]);
    }

    #[test]
    fn decision_and_completion_are_logged() {
        let wal = Arc::new(MemWal::new());
        let c = Coordinator::new_top_level(
            TxId::top_level(9),
            Some(wal.clone() as Arc<dyn Wal>),
            FailpointSet::new(),
            None,
            None,
            DispatchConfig::default(),
        );
        c.register_resource(ScriptedResource::voting("a", Vote::Commit)).unwrap();
        c.register_resource(ScriptedResource::voting("b", Vote::Commit)).unwrap();
        c.commit(true).unwrap();
        let kinds: Vec<u32> =
            wal.scan(recovery_log::Lsn::new(0)).unwrap().iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![txlog::KIND_TX_PREPARED, txlog::KIND_TX_DECISION, txlog::KIND_TX_COMPLETED]
        );
    }

    #[test]
    fn crash_before_decision_leaves_no_decision_record() {
        let wal = Arc::new(MemWal::new());
        let failpoints = FailpointSet::new();
        failpoints.arm("ots.before_decision", 0);
        let c = Coordinator::new_top_level(
            TxId::top_level(2),
            Some(wal.clone() as Arc<dyn Wal>),
            failpoints,
            None,
            None,
            DispatchConfig::default(),
        );
        c.register_resource(ScriptedResource::voting("a", Vote::Commit)).unwrap();
        c.register_resource(ScriptedResource::voting("b", Vote::Commit)).unwrap();
        let err = c.commit(true).unwrap_err();
        assert!(matches!(err, TxError::Log(_)));
        let kinds: Vec<u32> =
            wal.scan(recovery_log::Lsn::new(0)).unwrap().iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![txlog::KIND_TX_PREPARED]);
    }

    #[test]
    fn timeout_dooms_transaction() {
        let clock = SimClock::new();
        let c = Coordinator::new_top_level(
            TxId::top_level(3),
            None,
            FailpointSet::new(),
            Some(clock.clone()),
            Some(Duration::from_secs(1)),
            DispatchConfig::default(),
        );
        c.register_resource(ScriptedResource::voting("r", Vote::Commit)).unwrap();
        clock.advance(Duration::from_secs(2));
        assert_eq!(c.status(), TxStatus::MarkedRollback);
        assert!(matches!(
            c.register_resource(ScriptedResource::voting("late", Vote::Commit)),
            Err(TxError::TimedOut(_))
        ));
        assert!(matches!(c.commit(true), Err(TxError::RolledBack(_))));
    }

    fn quarantine(detector: &FailureDetector, who: &str) {
        while detector.status(who) != orb::detector::HealthStatus::Quarantined {
            detector.record_failure(who);
        }
    }

    #[test]
    fn quarantined_read_only_participant_is_dropped_from_the_protocol() {
        let clock = SimClock::new();
        let c = top(None);
        let detector = FailureDetector::new(clock);
        quarantine(&detector, "ro");
        c.set_detector(detector);
        let worker = ScriptedResource::voting("w1", Vote::Commit);
        let worker2 = ScriptedResource::voting("w2", Vote::Commit);
        let ro = ScriptedResource::voting("ro", Vote::ReadOnly);
        c.register_resource(worker.clone()).unwrap();
        c.register_resource(ro.clone()).unwrap();
        c.register_resource(worker2.clone()).unwrap();
        assert_eq!(c.commit(true).unwrap(), TxOutcome::Committed);
        assert!(ro.calls().is_empty(), "quarantined read-only peer never contacted");
        assert_eq!(worker.calls(), vec!["prepare", "commit", "forget"]);
        assert_eq!(worker2.calls(), vec!["prepare", "commit", "forget"]);
    }

    #[test]
    fn quarantined_voter_forces_early_presumed_abort() {
        let clock = SimClock::new();
        let c = top(None);
        let detector = FailureDetector::new(clock);
        quarantine(&detector, "voter");
        c.set_detector(detector);
        let healthy = ScriptedResource::voting("healthy", Vote::Commit);
        let voter = ScriptedResource::voting("voter", Vote::Commit);
        c.register_resource(healthy.clone()).unwrap();
        c.register_resource(voter.clone()).unwrap();
        let err = c.commit(true).unwrap_err();
        assert!(matches!(err, TxError::RolledBack(_)));
        assert_eq!(c.status(), TxStatus::RolledBack);
        assert!(voter.calls().is_empty(), "no vote solicited from the quarantined voter");
        assert_eq!(healthy.calls(), vec!["rollback"], "healthy peer aborted without preparing");
    }

    #[test]
    fn half_open_probe_readmits_a_quarantined_voter() {
        let clock = SimClock::new();
        let c = top(None);
        let detector = FailureDetector::new(clock.clone());
        quarantine(&detector, "voter");
        // Past the probe interval the detector grants one probe slot, so the
        // next commit goes through the full protocol; its successful prepare
        // rehabilitates the participant.
        clock.advance(Duration::from_secs(10));
        c.set_detector(detector.clone());
        let voter = ScriptedResource::voting("voter", Vote::Commit);
        let peer = ScriptedResource::voting("peer", Vote::Commit);
        c.register_resource(voter.clone()).unwrap();
        c.register_resource(peer.clone()).unwrap();
        assert_eq!(c.commit(true).unwrap(), TxOutcome::Committed);
        assert_eq!(voter.calls(), vec!["prepare", "commit", "forget"]);
        assert_eq!(detector.status("voter"), orb::detector::HealthStatus::Healthy);
    }

    #[test]
    fn prepare_answers_feed_the_detector_identically_under_both_dispatch_configs() {
        struct FailingResource;
        impl Resource for FailingResource {
            fn prepare(&self, tx: &TxId) -> Result<Vote, TxError> {
                Err(TxError::Heuristic { tx: tx.clone(), detail: "unreachable".into() })
            }
            fn commit(&self, _tx: &TxId) -> Result<(), TxError> {
                Ok(())
            }
            fn rollback(&self, _tx: &TxId) -> Result<(), TxError> {
                Ok(())
            }
            fn resource_name(&self) -> &str {
                "flaky"
            }
        }

        let mut suspicions = Vec::new();
        for dispatch in [DispatchConfig::serial(), DispatchConfig::default()] {
            let clock = SimClock::new();
            let detector = FailureDetector::new(clock);
            let c = Coordinator::new_top_level(
                TxId::top_level(9),
                None,
                FailpointSet::new(),
                None,
                None,
                dispatch,
            );
            c.set_detector(detector.clone());
            c.register_resource(Arc::new(FailingResource)).unwrap();
            c.register_resource(ScriptedResource::voting("ok", Vote::Commit)).unwrap();
            let _ = c.commit(true);
            suspicions.push((detector.suspicion("flaky"), detector.suspicion("ok")));
        }
        assert_eq!(suspicions[0].0, 1, "one failed prepare, one count");
        assert_eq!(suspicions[0], suspicions[1], "dispatch config is invisible to suspicion");
    }

    #[test]
    fn subtransactions_inherit_the_detector() {
        let c = top(None);
        c.set_detector(FailureDetector::new(SimClock::new()));
        let child = c.create_subtransaction().unwrap();
        assert!(child.detector().is_some());
    }
}
