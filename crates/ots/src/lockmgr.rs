//! A strict two-phase lock manager with nested-transaction inheritance.
//!
//! Locks are held until the *top-level* transaction completes (the paper,
//! §1: resources acquired within a subtransaction "are retained for the
//! duration of the top-level transaction"), which is exactly the behaviour
//! whose cost the fig. 1 experiment measures. The manager therefore also
//! tracks lock-hold durations and contention counts against the virtual
//! clock, so benchmarks can report them.

use std::collections::HashMap;
use std::time::Duration;

use orb::SimClock;
use parking_lot::Mutex;

use crate::error::TxError;
use crate::xid::TxId;

/// Lock compatibility mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Compatible with other shared locks.
    Shared,
    /// Compatible with nothing (except ancestors, see below).
    Exclusive,
}

#[derive(Debug)]
struct LockState {
    mode: LockMode,
    holders: Vec<TxId>,
    acquired_at: Duration,
}

/// Counters for lock behaviour, for the fig. 1 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStats {
    /// Successful acquisitions.
    pub acquired: u64,
    /// Acquisitions refused because of a conflict.
    pub conflicts: u64,
    /// Locks fully released.
    pub released: u64,
    /// Sum of (release time − first acquisition time) over released locks,
    /// in virtual time.
    pub total_hold: Duration,
}

/// Result of a [`LockManager::lock_wait_die`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitDie {
    /// The lock was acquired.
    Granted,
    /// The requester is older than the holder: it may wait and retry.
    Wait,
    /// The requester is younger: it must abort (deadlock avoidance).
    Die,
}

/// A per-store lock table. No blocking: conflicting requests fail
/// immediately with [`TxError::LockConflict`] and the caller decides whether
/// to retry or abort; [`LockManager::lock_wait_die`] layers the classic
/// deadlock-avoidance policy on top.
#[derive(Debug)]
pub struct LockManager {
    locks: Mutex<HashMap<String, LockState>>,
    stats: Mutex<LockStats>,
    clock: SimClock,
    /// Pre-resolved `lock_acquired_total` / `lock_conflicts_total` counter
    /// handles, mirroring [`LockStats`] into the telemetry registry.
    counters: Mutex<Option<(telemetry::Counter, telemetry::Counter)>>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(SimClock::new())
    }
}

impl LockManager {
    /// A lock manager measuring hold times against `clock`.
    pub fn new(clock: SimClock) -> Self {
        LockManager {
            locks: Mutex::new(HashMap::new()),
            stats: Mutex::new(LockStats::default()),
            clock,
            counters: Mutex::new(None),
        }
    }

    /// Mirror grant/conflict counts into `telemetry`'s metrics registry as
    /// `lock_acquired_total` and `lock_conflicts_total`.
    pub fn set_telemetry(&self, telemetry: &telemetry::Telemetry) {
        *self.counters.lock() = Some((
            telemetry.metrics().counter("lock_acquired_total"),
            telemetry.metrics().counter("lock_conflicts_total"),
        ));
    }

    fn count_acquired(&self) {
        self.stats.lock().acquired += 1;
        if let Some((acquired, _)) = self.counters.lock().as_ref() {
            acquired.incr();
        }
    }

    fn count_conflict(&self) {
        self.stats.lock().conflicts += 1;
        if let Some((_, conflicts)) = self.counters.lock().as_ref() {
            conflicts.incr();
        }
    }

    /// Try to acquire `key` in `mode` on behalf of `tx`.
    ///
    /// Grant rules:
    /// * free → granted;
    /// * every holder is `tx` itself or an *ancestor* of `tx` → granted
    ///   (nested inheritance: a child may use what its ancestors hold), with
    ///   upgrade to exclusive when requested;
    /// * shared request against shared holders → granted;
    /// * anything else → [`TxError::LockConflict`] immediately.
    ///
    /// # Errors
    ///
    /// [`TxError::LockConflict`] carrying the first conflicting holder.
    pub fn try_lock(&self, tx: &TxId, key: &str, mode: LockMode) -> Result<(), TxError> {
        let mut locks = self.locks.lock();
        let now = self.clock.now();
        match locks.get_mut(key) {
            None => {
                locks.insert(
                    key.to_owned(),
                    LockState { mode, holders: vec![tx.clone()], acquired_at: now },
                );
                self.count_acquired();
                Ok(())
            }
            Some(state) => {
                let family_only = state
                    .holders
                    .iter()
                    .all(|h| h == tx || h.is_ancestor_of(tx) || tx.is_ancestor_of(h));
                if family_only {
                    // Same lineage: grant, recording the strongest mode.
                    if !state.holders.contains(tx) {
                        state.holders.push(tx.clone());
                        self.count_acquired();
                    }
                    if mode == LockMode::Exclusive {
                        state.mode = LockMode::Exclusive;
                    }
                    return Ok(());
                }
                if mode == LockMode::Shared && state.mode == LockMode::Shared {
                    if !state.holders.contains(tx) {
                        state.holders.push(tx.clone());
                        self.count_acquired();
                    }
                    return Ok(());
                }
                self.count_conflict();
                Err(TxError::LockConflict {
                    key: key.to_owned(),
                    holder: state.holders[0].clone(),
                    requester: tx.clone(),
                })
            }
        }
    }

    /// Deadlock-avoiding acquisition with the classic **wait-die** policy,
    /// using the top-level transaction sequence number as the timestamp
    /// (lower = older):
    ///
    /// * grantable now → granted (same rules as [`LockManager::try_lock`]);
    /// * conflict, requester **older** than every holder → the caller may
    ///   wait and retry ([`WaitDie::Wait`]);
    /// * conflict, requester younger than some holder → the requester dies
    ///   ([`WaitDie::Die`]): it must abort (and may restart with its
    ///   original timestamp). No waits-for cycle can form because waiting
    ///   is only ever permitted in one age direction.
    pub fn lock_wait_die(&self, tx: &TxId, key: &str, mode: LockMode) -> WaitDie {
        match self.try_lock(tx, key, mode) {
            Ok(()) => WaitDie::Granted,
            Err(TxError::LockConflict { holder, .. }) => {
                if tx.top_seq() < holder.top_seq() {
                    WaitDie::Wait
                } else {
                    WaitDie::Die
                }
            }
            Err(_) => WaitDie::Die,
        }
    }

    /// Whether `tx` (or one of its ancestors) currently holds `key`.
    pub fn holds(&self, tx: &TxId, key: &str) -> bool {
        self.locks
            .lock()
            .get(key)
            .is_some_and(|s| s.holders.iter().any(|h| h == tx || h.is_ancestor_of(tx)))
    }

    /// Release every lock held by `tx`, returning the released keys.
    pub fn release_all(&self, tx: &TxId) -> Vec<String> {
        let mut locks = self.locks.lock();
        let now = self.clock.now();
        let mut released = Vec::new();
        locks.retain(|key, state| {
            state.holders.retain(|h| h != tx);
            if state.holders.is_empty() {
                released.push(key.clone());
                let mut stats = self.stats.lock();
                stats.released += 1;
                stats.total_hold += now.saturating_sub(state.acquired_at);
                false
            } else {
                true
            }
        });
        released
    }

    /// Transfer all of `from`'s holdings to `to` (subtransaction commit:
    /// the parent inherits the child's locks).
    pub fn transfer(&self, from: &TxId, to: &TxId) {
        let mut locks = self.locks.lock();
        for state in locks.values_mut() {
            let mut had = false;
            state.holders.retain(|h| {
                if h == from {
                    had = true;
                    false
                } else {
                    true
                }
            });
            if had && !state.holders.contains(to) {
                state.holders.push(to.clone());
            }
        }
    }

    /// Current number of locked keys.
    pub fn locked_keys(&self) -> usize {
        self.locks.lock().len()
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> LockStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(n: u64) -> TxId {
        TxId::top_level(n)
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let lm = LockManager::default();
        lm.try_lock(&tx(1), "k", LockMode::Exclusive).unwrap();
        assert!(lm.holds(&tx(1), "k"));
        assert!(matches!(
            lm.try_lock(&tx(2), "k", LockMode::Exclusive),
            Err(TxError::LockConflict { .. })
        ));
        assert!(lm.try_lock(&tx(1), "k", LockMode::Exclusive).is_ok(), "reentrant");
        assert!(matches!(
            lm.try_lock(&tx(2), "k", LockMode::Shared),
            Err(TxError::LockConflict { .. })
        ));
        assert_eq!(lm.stats().conflicts, 2);
    }

    #[test]
    fn shared_locks_coexist_and_block_writers() {
        let lm = LockManager::default();
        lm.try_lock(&tx(1), "k", LockMode::Shared).unwrap();
        lm.try_lock(&tx(2), "k", LockMode::Shared).unwrap();
        assert!(matches!(
            lm.try_lock(&tx(3), "k", LockMode::Exclusive),
            Err(TxError::LockConflict { .. })
        ));
    }

    #[test]
    fn sole_shared_holder_upgrades() {
        let lm = LockManager::default();
        lm.try_lock(&tx(1), "k", LockMode::Shared).unwrap();
        lm.try_lock(&tx(1), "k", LockMode::Exclusive).unwrap();
        assert!(matches!(
            lm.try_lock(&tx(2), "k", LockMode::Shared),
            Err(TxError::LockConflict { .. })
        ));
    }

    #[test]
    fn children_inherit_ancestor_locks() {
        let lm = LockManager::default();
        let parent = tx(1);
        let child = parent.child(0);
        lm.try_lock(&parent, "k", LockMode::Exclusive).unwrap();
        assert!(lm.try_lock(&child, "k", LockMode::Exclusive).is_ok());
        assert!(lm.holds(&child, "k"));
        // A stranger still conflicts.
        assert!(lm.try_lock(&tx(2), "k", LockMode::Shared).is_err());
    }

    #[test]
    fn release_all_frees_keys() {
        let lm = LockManager::default();
        lm.try_lock(&tx(1), "a", LockMode::Exclusive).unwrap();
        lm.try_lock(&tx(1), "b", LockMode::Shared).unwrap();
        lm.try_lock(&tx(2), "b", LockMode::Shared).unwrap();
        let mut released = lm.release_all(&tx(1));
        released.sort();
        assert_eq!(released, vec!["a"]);
        assert_eq!(lm.locked_keys(), 1, "b still held by tx-2");
        assert!(lm.try_lock(&tx(3), "a", LockMode::Exclusive).is_ok());
    }

    #[test]
    fn transfer_moves_holdings_to_parent() {
        let lm = LockManager::default();
        let parent = tx(1);
        let child = parent.child(0);
        lm.try_lock(&child, "k", LockMode::Exclusive).unwrap();
        lm.transfer(&child, &parent);
        assert!(lm.holds(&parent, "k"));
        lm.release_all(&child);
        assert!(lm.holds(&parent, "k"), "release of the child no longer matters");
    }

    #[test]
    fn hold_time_measured_on_virtual_clock() {
        let clock = SimClock::new();
        let lm = LockManager::new(clock.clone());
        lm.try_lock(&tx(1), "k", LockMode::Exclusive).unwrap();
        clock.advance(Duration::from_millis(250));
        lm.release_all(&tx(1));
        let stats = lm.stats();
        assert_eq!(stats.released, 1);
        assert_eq!(stats.total_hold, Duration::from_millis(250));
    }
}

#[cfg(test)]
mod wait_die_tests {
    use super::*;

    #[test]
    fn wait_die_direction_prevents_cycles() {
        let lm = LockManager::default();
        let old = TxId::top_level(1);
        let young = TxId::top_level(9);
        lm.try_lock(&young, "a", LockMode::Exclusive).unwrap();
        lm.try_lock(&old, "b", LockMode::Exclusive).unwrap();

        // The classic deadlock shape: old wants a (held by young), young
        // wants b (held by old). Wait-die breaks it: old may wait, young
        // must die — so at most one direction ever waits.
        assert_eq!(lm.lock_wait_die(&old, "a", LockMode::Exclusive), WaitDie::Wait);
        assert_eq!(lm.lock_wait_die(&young, "b", LockMode::Exclusive), WaitDie::Die);

        // The young transaction aborts, releasing its locks; the old one
        // retries and proceeds.
        lm.release_all(&young);
        assert_eq!(lm.lock_wait_die(&old, "a", LockMode::Exclusive), WaitDie::Granted);
    }

    #[test]
    fn grantable_requests_are_granted_regardless_of_age() {
        let lm = LockManager::default();
        let young = TxId::top_level(9);
        assert_eq!(lm.lock_wait_die(&young, "k", LockMode::Exclusive), WaitDie::Granted);
        // Re-entrant and family grants still work through the policy.
        assert_eq!(
            lm.lock_wait_die(&young.child(0), "k", LockMode::Exclusive),
            WaitDie::Granted
        );
    }

    #[test]
    fn shared_holders_age_check_uses_first_holder() {
        let lm = LockManager::default();
        lm.try_lock(&TxId::top_level(5), "k", LockMode::Shared).unwrap();
        // An older writer may wait; a younger writer dies.
        assert_eq!(
            lm.lock_wait_die(&TxId::top_level(2), "k", LockMode::Exclusive),
            WaitDie::Wait
        );
        assert_eq!(
            lm.lock_wait_die(&TxId::top_level(8), "k", LockMode::Exclusive),
            WaitDie::Die
        );
    }

    #[test]
    fn drive_a_contended_schedule_to_completion() {
        // Many transactions hammer two keys with wait-die + retry; every
        // one eventually commits and the system never deadlocks (bounded
        // retries prove progress).
        let lm = LockManager::default();
        let mut pending: Vec<TxId> = (1..=6).map(TxId::top_level).collect();
        let mut rounds = 0;
        while !pending.is_empty() {
            rounds += 1;
            assert!(rounds < 1000, "no progress: possible livelock");
            let mut still_pending = Vec::new();
            for tx in pending {
                let a = lm.lock_wait_die(&tx, "a", LockMode::Exclusive);
                let b = lm.lock_wait_die(&tx, "b", LockMode::Exclusive);
                match (a, b) {
                    (WaitDie::Granted, WaitDie::Granted) => {
                        lm.release_all(&tx); // "commit"
                    }
                    (_, WaitDie::Die) | (WaitDie::Die, _) => {
                        lm.release_all(&tx); // abort, restart with same age
                        still_pending.push(tx);
                    }
                    _ => {
                        // Waiting: keep whatever was granted and retry.
                        still_pending.push(tx);
                    }
                }
            }
            pending = still_pending;
        }
    }
}
