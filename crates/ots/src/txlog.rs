//! Durable transaction records and crash recovery.
//!
//! The coordinator writes three kinds of records for a top-level transaction
//! that reaches phase two:
//!
//! 1. [`KIND_TX_PREPARED`] — entering phase one, with participant names;
//! 2. [`KIND_TX_DECISION`] — the commit decision (the *only* record that
//!    must be forced before phase two; presumed abort makes an explicit
//!    rollback decision unnecessary);
//! 3. [`KIND_TX_COMPLETED`] — the outcome was fully delivered.
//!
//! [`recover`] scans a log and classifies every transaction: decided but not
//! completed ⇒ **re-deliver commit**; prepared but undecided ⇒ **presumed
//! abort** (re-deliver rollback). A [`ParticipantResolver`] maps the logged
//! participant names back to live [`Resource`]s — the "rebinding" half of
//! the paper's §3.4 recovery requirements, at the transaction level.

use std::collections::BTreeMap;

use orb::{Value, ValueMap};
use recovery_log::{LogError, Lsn, Wal};

use crate::error::TxError;
use crate::resource::Resource;
use crate::status::TxStatus;
use crate::xid::TxId;

/// Record kind: a top-level transaction was begun.
pub const KIND_TX_BEGUN: u32 = 0x0101;
/// Record kind: phase one entered; payload lists participant names.
pub const KIND_TX_PREPARED: u32 = 0x0102;
/// Record kind: commit decision made durable.
pub const KIND_TX_DECISION: u32 = 0x0103;
/// Record kind: outcome fully delivered.
pub const KIND_TX_COMPLETED: u32 = 0x0104;

/// Serialise a [`TxId`] into a [`Value`].
pub fn txid_to_value(tx: &TxId) -> Value {
    let mut m = ValueMap::new();
    m.insert("top".into(), Value::U64(tx.top_seq()));
    let mut indices = Vec::new();
    collect_branch_indices(tx, &mut indices);
    m.insert(
        "branch".into(),
        Value::List(indices.into_iter().map(|i| Value::U64(u64::from(i))).collect()),
    );
    Value::Map(m)
}

fn collect_branch_indices(tx: &TxId, out: &mut Vec<u32>) {
    // Reconstruct branch indices by walking the Display form: "tx-7.0.2".
    let s = tx.to_string();
    let mut parts = s.trim_start_matches("tx-").split('.');
    let _top = parts.next();
    for p in parts {
        if let Ok(i) = p.parse::<u32>() {
            out.push(i);
        }
    }
}

/// Deserialise a [`TxId`] from a [`Value`].
///
/// # Errors
///
/// Returns [`TxError::Log`] on malformed input.
pub fn txid_from_value(value: &Value) -> Result<TxId, TxError> {
    let m = value.as_map().ok_or_else(|| TxError::Log("txid must be a map".into()))?;
    let top = m
        .get("top")
        .and_then(Value::as_u64)
        .ok_or_else(|| TxError::Log("txid missing top".into()))?;
    let mut tx = TxId::top_level(top);
    if let Some(Value::List(items)) = m.get("branch") {
        for item in items {
            let idx = item.as_u64().ok_or_else(|| TxError::Log("bad branch index".into()))?;
            tx = tx.child(idx as u32);
        }
    }
    Ok(tx)
}

/// Write a begin record.
///
/// # Errors
///
/// Propagates log failures.
pub fn log_begun(wal: &dyn Wal, tx: &TxId) -> Result<Lsn, LogError> {
    wal.append(KIND_TX_BEGUN, &txid_to_value(tx).encode())
}

/// Write the phase-one record with participant names.
///
/// # Errors
///
/// Propagates log failures.
pub fn log_prepared(wal: &dyn Wal, tx: &TxId, participants: &[&str]) -> Result<Lsn, LogError> {
    let mut m = ValueMap::new();
    m.insert("tx".into(), txid_to_value(tx));
    m.insert(
        "participants".into(),
        Value::List(participants.iter().map(|p| Value::from(*p)).collect()),
    );
    wal.append(KIND_TX_PREPARED, &Value::Map(m).encode())
}

/// Force the commit decision: the one record of the protocol that must be
/// durable before phase two (presumed abort covers every other loss). The
/// durability barrier is [`Wal::append_durable`], so a group-commit log
/// coalesces concurrent decisions — and any records staged before them,
/// including an interposed subcoordinator's — into one sync.
///
/// # Errors
///
/// Propagates log failures.
pub fn log_decision_commit(wal: &dyn Wal, tx: &TxId) -> Result<Lsn, LogError> {
    wal.append_durable(KIND_TX_DECISION, &txid_to_value(tx).encode())
}

/// Record that the outcome was fully delivered.
///
/// # Errors
///
/// Propagates log failures.
pub fn log_completed(wal: &dyn Wal, tx: &TxId, status: TxStatus) -> Result<Lsn, LogError> {
    let mut m = ValueMap::new();
    m.insert("tx".into(), txid_to_value(tx));
    m.insert("committed".into(), Value::Bool(status == TxStatus::Committed));
    wal.append(KIND_TX_COMPLETED, &Value::Map(m).encode())
}

/// Maps logged participant names back to live resources after a restart.
pub trait ParticipantResolver {
    /// Produce the resource registered under `name` before the crash, or
    /// `None` when it no longer exists (its vote is then unrecoverable and
    /// the transaction is reported as a heuristic hazard).
    fn resolve(&self, name: &str) -> Option<std::sync::Arc<dyn Resource>>;
}

impl<F> ParticipantResolver for F
where
    F: Fn(&str) -> Option<std::sync::Arc<dyn Resource>>,
{
    fn resolve(&self, name: &str) -> Option<std::sync::Arc<dyn Resource>> {
        self(name)
    }
}

/// What recovery did for the in-doubt transactions it found.
#[derive(Debug, Default)]
pub struct TxRecoveryReport {
    /// Decided transactions whose commit was re-delivered.
    pub recommitted: Vec<TxId>,
    /// Prepared-but-undecided transactions rolled back (presumed abort).
    pub presumed_aborted: Vec<TxId>,
    /// Participants that could not be rebound.
    pub unresolved: Vec<(TxId, String)>,
}

#[derive(Default)]
struct TxTrace {
    participants: Vec<String>,
    prepared: bool,
    decided: bool,
    completed: bool,
}

/// Scan `wal` and finish every in-doubt transaction.
///
/// # Errors
///
/// Returns [`TxError::Log`] when the log cannot be scanned or a record is
/// malformed.
pub fn recover(wal: &dyn Wal, resolver: &dyn ParticipantResolver) -> Result<TxRecoveryReport, TxError> {
    let mut traces: BTreeMap<TxId, TxTrace> = BTreeMap::new();
    // Zero-copy pass: records are decoded in place, never cloned out of
    // the log. Malformed records surface as `LogError::Handler` and are
    // rethrown as `TxError::Log` below.
    let mut classify = |record: &recovery_log::LogRecord| -> Result<(), TxError> {
        match record.kind {
            KIND_TX_BEGUN => {
                let tx = txid_from_value(&decode(&record.payload)?)?;
                traces.entry(tx).or_default();
            }
            KIND_TX_PREPARED => {
                let v = decode(&record.payload)?;
                let m = v.as_map().ok_or_else(|| TxError::Log("bad prepared record".into()))?;
                let tx = txid_from_value(
                    m.get("tx").ok_or_else(|| TxError::Log("prepared record missing tx".into()))?,
                )?;
                let trace = traces.entry(tx).or_default();
                trace.prepared = true;
                if let Some(Value::List(items)) = m.get("participants") {
                    trace.participants = items
                        .iter()
                        .filter_map(|i| i.as_str().map(str::to_owned))
                        .collect();
                }
            }
            KIND_TX_DECISION => {
                let tx = txid_from_value(&decode(&record.payload)?)?;
                traces.entry(tx).or_default().decided = true;
            }
            KIND_TX_COMPLETED => {
                let v = decode(&record.payload)?;
                let m = v.as_map().ok_or_else(|| TxError::Log("bad completed record".into()))?;
                let tx = txid_from_value(
                    m.get("tx").ok_or_else(|| TxError::Log("completed record missing tx".into()))?,
                )?;
                traces.entry(tx).or_default().completed = true;
            }
            _ => {}
        }
        Ok(())
    };
    wal.scan_with(Lsn::new(0), &mut |record| {
        classify(record).map_err(|e| LogError::Handler(e.to_string()))
    })?;

    let mut report = TxRecoveryReport::default();
    for (tx, trace) in traces {
        if trace.completed || !trace.prepared {
            continue;
        }
        for name in &trace.participants {
            match resolver.resolve(name) {
                Some(resource) => {
                    if trace.decided {
                        let _ = resource.commit(&tx);
                    } else {
                        let _ = resource.rollback(&tx);
                    }
                }
                None => report.unresolved.push((tx.clone(), name.clone())),
            }
        }
        let _ = log_completed(
            wal,
            &tx,
            if trace.decided { TxStatus::Committed } else { TxStatus::RolledBack },
        );
        if trace.decided {
            report.recommitted.push(tx);
        } else {
            report.presumed_aborted.push(tx);
        }
    }
    Ok(report)
}

fn decode(payload: &[u8]) -> Result<Value, TxError> {
    Value::decode(payload).map_err(|e| TxError::Log(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::test_support::ScriptedResource;
    use crate::resource::Vote;
    use recovery_log::MemWal;
    use std::sync::Arc;

    #[test]
    fn txid_value_roundtrip() {
        for tx in [
            TxId::top_level(0),
            TxId::top_level(7),
            TxId::top_level(7).child(0),
            TxId::top_level(7).child(3).child(1),
        ] {
            let v = txid_to_value(&tx);
            assert_eq!(txid_from_value(&v).unwrap(), tx, "roundtrip of {tx}");
        }
    }

    #[test]
    fn decided_but_incomplete_transaction_is_recommitted() {
        let wal = MemWal::new();
        let tx = TxId::top_level(5);
        log_prepared(&wal, &tx, &["store-a", "store-b"]).unwrap();
        log_decision_commit(&wal, &tx).unwrap();
        // Crash: no completion record.

        let a = ScriptedResource::voting("store-a", Vote::Commit);
        let b = ScriptedResource::voting("store-b", Vote::Commit);
        let a2 = a.clone();
        let b2 = b.clone();
        let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
            match name {
                "store-a" => Some(a2.clone()),
                "store-b" => Some(b2.clone()),
                _ => None,
            }
        };
        let report = recover(&wal, &resolver).unwrap();
        assert_eq!(report.recommitted, vec![tx]);
        assert!(report.presumed_aborted.is_empty());
        assert_eq!(a.calls(), vec!["commit"]);
        assert_eq!(b.calls(), vec!["commit"]);
    }

    #[test]
    fn undecided_transaction_is_presumed_aborted() {
        let wal = MemWal::new();
        let tx = TxId::top_level(6);
        log_prepared(&wal, &tx, &["store-a"]).unwrap();
        let a = ScriptedResource::voting("store-a", Vote::Commit);
        let a2 = a.clone();
        let resolver =
            move |name: &str| -> Option<Arc<dyn Resource>> { (name == "store-a").then(|| a2.clone() as _) };
        let report = recover(&wal, &resolver).unwrap();
        assert_eq!(report.presumed_aborted, vec![tx]);
        assert_eq!(a.calls(), vec!["rollback"]);
    }

    #[test]
    fn completed_transactions_are_left_alone() {
        let wal = MemWal::new();
        let tx = TxId::top_level(7);
        log_prepared(&wal, &tx, &["r"]).unwrap();
        log_decision_commit(&wal, &tx).unwrap();
        log_completed(&wal, &tx, TxStatus::Committed).unwrap();
        let resolver = |_: &str| -> Option<Arc<dyn Resource>> {
            panic!("resolver must not be consulted for completed transactions")
        };
        let report = recover(&wal, &resolver).unwrap();
        assert!(report.recommitted.is_empty());
        assert!(report.presumed_aborted.is_empty());
    }

    #[test]
    fn recovery_is_idempotent() {
        let wal = MemWal::new();
        let tx = TxId::top_level(8);
        log_prepared(&wal, &tx, &["r"]).unwrap();
        log_decision_commit(&wal, &tx).unwrap();
        let r = ScriptedResource::voting("r", Vote::Commit);
        let r2 = r.clone();
        let resolver =
            move |name: &str| -> Option<Arc<dyn Resource>> { (name == "r").then(|| r2.clone() as _) };
        recover(&wal, &resolver).unwrap();
        // Second pass: the completion record written by the first pass
        // means nothing more is re-delivered.
        let report = recover(&wal, &resolver).unwrap();
        assert!(report.recommitted.is_empty());
        assert_eq!(r.calls(), vec!["commit"], "exactly one redelivery");
    }

    #[test]
    fn unresolvable_participants_are_reported() {
        let wal = MemWal::new();
        let tx = TxId::top_level(9);
        log_prepared(&wal, &tx, &["ghost"]).unwrap();
        log_decision_commit(&wal, &tx).unwrap();
        let resolver = |_: &str| -> Option<Arc<dyn Resource>> { None };
        let report = recover(&wal, &resolver).unwrap();
        assert_eq!(report.unresolved, vec![(tx, "ghost".to_string())]);
    }

    #[test]
    fn begun_only_transactions_need_nothing() {
        let wal = MemWal::new();
        log_begun(&wal, &TxId::top_level(10)).unwrap();
        let resolver = |_: &str| -> Option<Arc<dyn Resource>> { None };
        let report = recover(&wal, &resolver).unwrap();
        assert!(report.recommitted.is_empty());
        assert!(report.presumed_aborted.is_empty());
        assert!(report.unresolved.is_empty());
    }
}
