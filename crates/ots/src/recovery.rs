//! Participant-driven termination: `RecoveryCoordinator` interrogation and
//! in-doubt resolution (the other half of §3.4's recovery story).
//!
//! [`crate::txlog::recover`] is the *coordinator-driven* half: a restarted
//! transaction service replays its own log and re-delivers outcomes. But a
//! prepared participant whose coordinator is unreachable — crashed, or cut
//! off by a partition — cannot wait for that: CORBA OTS gives it a
//! `RecoveryCoordinator` reference at registration time and lets it ask
//! `replay_completion` until it learns the outcome. Under **presumed
//! abort** the answer is a pure function of the coordinator's log:
//!
//! | coordinator log state                 | answer        |
//! |---------------------------------------|---------------|
//! | `TX_DECISION` present                 | `committed`   |
//! | prepared but no decision record       | `rolled_back` |
//! | unknown / forgotten (no trace at all) | `rolled_back` |
//!
//! Absence of a forced decision *is* the abort decision, so the answer is
//! idempotent across redelivery and stable across coordinator restarts —
//! properties `tests/replay_completion_props.rs` pins down.
//!
//! Two pieces implement the protocol:
//!
//! * [`RecoveryCoordinator`] — an [`orb::Servant`] answering
//!   `replay_completion(tx)` from the transaction log, activatable on the
//!   coordinator's node so participants interrogate it over the (faulty,
//!   partitionable) simulated network.
//! * [`RecoverableResource`] — a participant-side wrapper around any
//!   [`Resource`] that forces `{tx, coordinator}` to its WAL before voting
//!   commit, tracks in-doubt transactions, and
//!   [`RecoverableResource::resolve_in_doubt`] drives interrogation through
//!   the existing [`RetryPolicy`] until resolved — escalating to a durably
//!   recorded **heuristic rollback** only past a configurable virtual-time
//!   deadline ([`ResolutionConfig::heuristic_deadline`]).
//!
//! The planted-bug fixture [`RecoveryCoordinator::forgetful`] answers
//! `unknown` where presumed abort requires `rolled_back`; the harness's
//! `eventual-resolution` oracle exists to catch exactly that.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use orb::{
    ObjectRef, Orb, OrbError, Request, RetryPolicy, Servant, Value, ValueMap,
};
use parking_lot::Mutex;
use recovery_log::{FailpointSet, Lsn, Wal};

use crate::error::TxError;
use crate::resource::{Resource, Vote};
use crate::txlog::{txid_from_value, txid_to_value, KIND_TX_DECISION};
use crate::xid::TxId;

/// Record kind: a participant prepared under `coordinator`; forced before
/// the commit vote returns, so a restarted participant knows whom to ask.
pub const KIND_RES_PREPARED: u32 = 0x0501;
/// Record kind: the outcome this participant learned (delivered or
/// interrogated) for an in-doubt transaction.
pub const KIND_RES_RESOLVED: u32 = 0x0502;
/// Record kind: the participant gave up interrogating past its deadline
/// and unilaterally rolled back — a heuristic, recorded durably.
pub const KIND_RES_HEURISTIC: u32 = 0x0503;

/// The CORBA interface name a [`RecoveryCoordinator`] servant is activated
/// under.
pub const RECOVERY_COORDINATOR_INTERFACE: &str = "RecoveryCoordinator";

/// Named failpoint sites for the termination protocol (see the audit table
/// in `recovery-log/src/crash.rs` and `harness::registry`).
pub mod failpoints {
    /// Prepared state and coordinator identity are durable, but the vote
    /// never reaches the coordinator: the participant crashes prepared.
    pub const AFTER_PREPARED: &str = "ots.recovery.after_prepared";
    /// An outcome (delivered or interrogated) arrived but the participant
    /// crashes before recording and applying it.
    pub const BEFORE_APPLY: &str = "ots.recovery.before_apply";
    /// Before one in-doubt transaction's interrogation round.
    pub const BEFORE_RESOLVE: &str = "ots.recovery.before_resolve";
    /// Every site this module hits.
    pub const FAILPOINT_SITES: &[&str] = &[AFTER_PREPARED, BEFORE_APPLY, BEFORE_RESOLVE];
}

/// A `replay_completion` answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStatus {
    /// The decision record is durable: the transaction committed.
    Committed,
    /// No durable decision: presumed abort.
    RolledBack,
    /// Only the [`RecoveryCoordinator::forgetful`] fixture answers this —
    /// a spec violation the harness oracle must catch.
    Unknown,
}

impl ReplayStatus {
    /// Wire form of the answer.
    pub fn as_str(self) -> &'static str {
        match self {
            ReplayStatus::Committed => "committed",
            ReplayStatus::RolledBack => "rolled_back",
            ReplayStatus::Unknown => "unknown",
        }
    }

    /// Parse a wire-form answer.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "committed" => Some(ReplayStatus::Committed),
            "rolled_back" => Some(ReplayStatus::RolledBack),
            "unknown" => Some(ReplayStatus::Unknown),
            _ => None,
        }
    }
}

/// The coordinator-side interrogation endpoint: answers
/// `replay_completion(tx)` from the transaction log under presumed abort.
///
/// Stateless between calls — every answer is recomputed from the log, so
/// redelivered interrogations and coordinator restarts cannot change it.
pub struct RecoveryCoordinator {
    wal: Arc<dyn Wal>,
    /// The planted bug: forget that absence-of-decision means rollback and
    /// answer `unknown` instead. Never set outside test fixtures.
    forgets_presumed_abort: bool,
}

impl std::fmt::Debug for RecoveryCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryCoordinator")
            .field("forgets_presumed_abort", &self.forgets_presumed_abort)
            .finish_non_exhaustive()
    }
}

impl RecoveryCoordinator {
    /// An interrogation endpoint over the coordinator's transaction log.
    pub fn new(wal: Arc<dyn Wal>) -> Self {
        RecoveryCoordinator { wal, forgets_presumed_abort: false }
    }

    /// The planted-bug fixture: a coordinator that "forgets presumed
    /// abort". Where the honest servant answers `rolled_back` for a
    /// transaction without a durable decision (unknown, undecided or
    /// forgotten), this one answers `unknown` — leaving the interrogating
    /// participant in doubt forever. Exists so the harness's
    /// `eventual-resolution` oracle has a bug to catch.
    pub fn forgetful(wal: Arc<dyn Wal>) -> Self {
        RecoveryCoordinator { wal, forgets_presumed_abort: true }
    }

    /// Answer one interrogation: `committed` iff the decision record is
    /// durable, `rolled_back` otherwise (presumed abort).
    ///
    /// # Errors
    ///
    /// [`TxError::Log`] when the log cannot be scanned.
    pub fn replay_completion(&self, tx: &TxId) -> Result<ReplayStatus, TxError> {
        for record in self.wal.scan(Lsn::new(0)).map_err(TxError::from)? {
            if record.kind != KIND_TX_DECISION {
                continue;
            }
            let value = Value::decode(&record.payload)
                .map_err(|e| TxError::Log(e.to_string()))?;
            if txid_from_value(&value)? == *tx {
                return Ok(ReplayStatus::Committed);
            }
        }
        if self.forgets_presumed_abort {
            return Ok(ReplayStatus::Unknown);
        }
        Ok(ReplayStatus::RolledBack)
    }
}

impl Servant for RecoveryCoordinator {
    fn dispatch(&self, request: &Request) -> Result<Value, OrbError> {
        match request.operation() {
            "replay_completion" => {
                let tx = request
                    .arg("tx")
                    .ok_or_else(|| OrbError::Application("missing arg tx".into()))?;
                let tx = txid_from_value(tx)
                    .map_err(|e| OrbError::Application(e.to_string()))?;
                let status = self
                    .replay_completion(&tx)
                    .map_err(|e| OrbError::Application(e.to_string()))?;
                Ok(Value::from(status.as_str()))
            }
            other => Err(OrbError::BadOperation(other.to_owned())),
        }
    }
}

/// Maps a coordinator's node name to its activated [`RecoveryCoordinator`]
/// reference (a stand-in for the CORBA object reference OTS hands each
/// participant at registration).
pub type CoordinatorLocator = Arc<dyn Fn(&str) -> Option<ObjectRef> + Send + Sync>;

/// How in-doubt resolution paces itself.
#[derive(Debug, Clone)]
pub struct ResolutionConfig {
    /// Retry policy each interrogation runs under.
    pub policy: RetryPolicy,
    /// Absolute virtual-time deadline handed to every interrogation call
    /// (`None` = only the retry budget bounds it).
    pub deadline: Option<Duration>,
    /// Absolute virtual time past which an unresolvable transaction is
    /// escalated to a recorded heuristic rollback instead of staying in
    /// doubt.
    pub heuristic_deadline: Duration,
}

impl ResolutionConfig {
    /// Resolution under `policy`, escalating to a heuristic only after the
    /// virtual clock passes `heuristic_deadline`.
    pub fn new(policy: RetryPolicy, heuristic_deadline: Duration) -> Self {
        ResolutionConfig { policy, deadline: None, heuristic_deadline }
    }
}

/// What one [`RecoverableResource::resolve_in_doubt`] pass achieved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolutionReport {
    /// Transactions resolved to commit.
    pub committed: Vec<TxId>,
    /// Transactions resolved to rollback (presumed abort).
    pub rolled_back: Vec<TxId>,
    /// Transactions unilaterally rolled back past the heuristic deadline.
    pub heuristic: Vec<TxId>,
    /// Transactions still in doubt (interrogation failed, deadline not yet
    /// reached) — retry after the partition heals.
    pub unresolved: Vec<TxId>,
}

impl ResolutionReport {
    /// Whether everything this pass saw is settled.
    pub fn fully_resolved(&self) -> bool {
        self.unresolved.is_empty()
    }
}

/// A participant-side wrapper making any [`Resource`] interrogation-capable:
/// prepared state plus coordinator identity are forced to the WAL before
/// the commit vote returns, and in-doubt transactions are driven to
/// resolution via `replay_completion` after a restart or a detector
/// quarantine of the coordinator.
pub struct RecoverableResource {
    inner: Arc<dyn Resource>,
    name: String,
    wal: Arc<dyn Wal>,
    coordinator_node: String,
    failpoints: FailpointSet,
    /// tx → coordinator node recorded at prepare time.
    in_doubt: Mutex<BTreeMap<TxId, String>>,
    heuristics: Mutex<Vec<(TxId, String)>>,
}

impl std::fmt::Debug for RecoverableResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoverableResource")
            .field("name", &self.name)
            .field("coordinator_node", &self.coordinator_node)
            .field("in_doubt", &self.in_doubt.lock().len())
            .finish_non_exhaustive()
    }
}

impl RecoverableResource {
    /// Wrap `inner`, journaling prepared/resolved state to `wal` and
    /// remembering `coordinator_node` as the interrogation target.
    pub fn new(
        inner: Arc<dyn Resource>,
        wal: Arc<dyn Wal>,
        coordinator_node: impl Into<String>,
    ) -> Self {
        let name = inner.resource_name().to_owned();
        RecoverableResource {
            inner,
            name,
            wal,
            coordinator_node: coordinator_node.into(),
            failpoints: FailpointSet::new(),
            in_doubt: Mutex::new(BTreeMap::new()),
            heuristics: Mutex::new(Vec::new()),
        }
    }

    /// Share `failpoints` for crash injection at the participant sites.
    #[must_use]
    pub fn with_failpoints(mut self, failpoints: FailpointSet) -> Self {
        self.failpoints = failpoints;
        self
    }

    /// Rebuild the wrapper after a participant restart: in-doubt state is
    /// `RES_PREPARED` minus `RES_RESOLVED`/`RES_HEURISTIC`, and any
    /// resolution that was recorded but possibly not applied is re-delivered
    /// to `inner` (idempotently — [`crate::DurableKv`] no-ops outcomes for
    /// transactions it has nothing prepared for).
    ///
    /// # Errors
    ///
    /// [`TxError::Log`] on malformed records; inner redelivery errors.
    pub fn recover(
        inner: Arc<dyn Resource>,
        wal: Arc<dyn Wal>,
        coordinator_node: impl Into<String>,
    ) -> Result<Self, TxError> {
        let name = inner.resource_name().to_owned();
        let mut prepared: BTreeMap<TxId, String> = BTreeMap::new();
        let mut resolved: Vec<(TxId, bool)> = Vec::new();
        for record in wal.scan(Lsn::new(0)).map_err(TxError::from)? {
            match record.kind {
                KIND_RES_PREPARED | KIND_RES_RESOLVED | KIND_RES_HEURISTIC => {}
                _ => continue,
            }
            let value = Value::decode(&record.payload)
                .map_err(|e| TxError::Log(e.to_string()))?;
            let m = value
                .as_map()
                .ok_or_else(|| TxError::Log("resource record must be a map".into()))?;
            if m.get("resource").and_then(Value::as_str) != Some(name.as_str()) {
                continue;
            }
            let tx = txid_from_value(
                m.get("tx").ok_or_else(|| TxError::Log("resource record missing tx".into()))?,
            )?;
            match record.kind {
                KIND_RES_PREPARED => {
                    let coordinator = m
                        .get("coordinator")
                        .and_then(Value::as_str)
                        .ok_or_else(|| TxError::Log("prepared record missing coordinator".into()))?;
                    prepared.insert(tx, coordinator.to_owned());
                }
                _ => {
                    let committed =
                        m.get("committed").and_then(Value::as_bool).unwrap_or(false);
                    prepared.remove(&tx);
                    resolved.push((tx, committed));
                }
            }
        }
        let resource = RecoverableResource {
            inner,
            name,
            wal,
            coordinator_node: coordinator_node.into(),
            failpoints: FailpointSet::new(),
            in_doubt: Mutex::new(prepared),
            heuristics: Mutex::new(Vec::new()),
        };
        // Re-deliver recorded resolutions: the crash may have fallen between
        // forcing the resolution record and applying it to `inner`.
        for (tx, committed) in resolved {
            if committed {
                resource.inner.commit(&tx)?;
            } else {
                resource.inner.rollback(&tx)?;
            }
        }
        Ok(resource)
    }

    /// The transactions currently in doubt, with their coordinators.
    pub fn in_doubt(&self) -> Vec<(TxId, String)> {
        self.in_doubt.lock().iter().map(|(t, c)| (t.clone(), c.clone())).collect()
    }

    /// Heuristic decisions taken so far (tx, detail).
    pub fn heuristics(&self) -> Vec<(TxId, String)> {
        self.heuristics.lock().clone()
    }

    /// The wrapped resource.
    pub fn inner(&self) -> &Arc<dyn Resource> {
        &self.inner
    }

    /// Render the participant's recovery surface for the introspection
    /// plane: every in-doubt transaction with its coordinator, any
    /// heuristic decisions taken, and the WAL watermark the prepared
    /// records sit behind.
    #[must_use]
    pub fn introspect(&self) -> String {
        let in_doubt = self.in_doubt();
        let heuristics = self.heuristics();
        let mut out = format!(
            "resource={} in_doubt={} heuristics={} next_lsn={}\n",
            self.name,
            in_doubt.len(),
            heuristics.len(),
            self.wal.next_lsn(),
        );
        for (tx, coordinator) in in_doubt {
            out.push_str(&format!("in-doubt {tx} (coordinator {coordinator})\n"));
        }
        for (tx, detail) in heuristics {
            out.push_str(&format!("heuristic {tx}: {detail}\n"));
        }
        out
    }

    fn log_resolution(&self, kind: u32, tx: &TxId, committed: bool) -> Result<(), TxError> {
        let mut m = ValueMap::new();
        m.insert("resource".into(), Value::from(self.name.as_str()));
        m.insert("tx".into(), txid_to_value(tx));
        m.insert("committed".into(), Value::Bool(committed));
        self.wal.append_durable(kind, &Value::Map(m).encode())?;
        Ok(())
    }

    /// Record and apply an outcome for an in-doubt transaction; outcomes
    /// for unknown transactions pass straight through (idempotent
    /// redelivery).
    fn deliver(&self, tx: &TxId, committed: bool) -> Result<(), TxError> {
        if !self.in_doubt.lock().contains_key(tx) {
            return if committed { self.inner.commit(tx) } else { self.inner.rollback(tx) };
        }
        self.failpoints.hit(failpoints::BEFORE_APPLY).map_err(TxError::from)?;
        self.log_resolution(KIND_RES_RESOLVED, tx, committed)?;
        if committed {
            self.inner.commit(tx)?;
        } else {
            self.inner.rollback(tx)?;
        }
        self.in_doubt.lock().remove(tx);
        Ok(())
    }

    /// Interrogate the coordinator for every in-doubt transaction and apply
    /// what it answers. Interrogations that keep failing (or answer
    /// `unknown`) leave the transaction in doubt until the virtual clock
    /// passes [`ResolutionConfig::heuristic_deadline`], at which point it is
    /// heuristically rolled back and the decision recorded durably.
    ///
    /// # Errors
    ///
    /// Log failures and injected crashes; interrogation *transport* failures
    /// are not errors (the transaction just stays in doubt).
    pub fn resolve_in_doubt(
        &self,
        orb: &Orb,
        from: &str,
        locate: &CoordinatorLocator,
        config: &ResolutionConfig,
    ) -> Result<ResolutionReport, TxError> {
        let mut report = ResolutionReport::default();
        for (tx, coordinator) in self.in_doubt() {
            self.failpoints.hit(failpoints::BEFORE_RESOLVE).map_err(TxError::from)?;
            let answer = match locate(&coordinator) {
                Some(object) => {
                    let request = Request::new("replay_completion")
                        .with_arg("tx", txid_to_value(&tx));
                    match orb.invoke_with_policy(from, &object, request, &config.policy, config.deadline)
                    {
                        Ok(reply) => reply
                            .result
                            .as_str()
                            .and_then(ReplayStatus::parse)
                            .ok_or_else(|| format!("unparseable answer for {tx}")),
                        Err(e) => Err(format!("interrogation failed: {e}")),
                    }
                }
                None => Err(format!("no RecoveryCoordinator for node {coordinator:?}")),
            };
            match answer {
                Ok(ReplayStatus::Committed) => {
                    self.deliver(&tx, true)?;
                    report.committed.push(tx);
                }
                Ok(ReplayStatus::RolledBack) => {
                    self.deliver(&tx, false)?;
                    report.rolled_back.push(tx);
                }
                Ok(ReplayStatus::Unknown) | Err(_) => {
                    let detail = match answer {
                        Ok(_) => format!("coordinator {coordinator:?} answered unknown"),
                        Err(e) => e,
                    };
                    if orb.clock().now() > config.heuristic_deadline {
                        // Past the deadline: unilateral rollback, recorded.
                        self.log_resolution(KIND_RES_HEURISTIC, &tx, false)?;
                        self.inner.rollback(&tx)?;
                        self.in_doubt.lock().remove(&tx);
                        self.heuristics.lock().push((tx.clone(), detail));
                        report.heuristic.push(tx);
                    } else {
                        report.unresolved.push(tx);
                    }
                }
            }
        }
        Ok(report)
    }

    /// Wire a [`orb::FailureDetector`] quarantine of this resource's
    /// coordinator to an immediate resolution pass: the participant does
    /// not wait for a restart to start interrogating. Resolution failures
    /// inside the hook are swallowed (the next pass retries).
    pub fn resolve_on_quarantine(
        resource: &Arc<RecoverableResource>,
        detector: &orb::FailureDetector,
        orb: Orb,
        from: impl Into<String>,
        locate: CoordinatorLocator,
        config: ResolutionConfig,
    ) {
        let resource = Arc::clone(resource);
        let from = from.into();
        detector.on_quarantine(move |node| {
            if resource.in_doubt().iter().any(|(_, c)| c == node) {
                let _ = resource.resolve_in_doubt(&orb, &from, &locate, &config);
            }
        });
    }
}

impl Resource for RecoverableResource {
    fn prepare(&self, tx: &TxId) -> Result<Vote, TxError> {
        let vote = self.inner.prepare(tx)?;
        if vote == Vote::Commit {
            let mut m = ValueMap::new();
            m.insert("resource".into(), Value::from(self.name.as_str()));
            m.insert("tx".into(), txid_to_value(tx));
            m.insert("coordinator".into(), Value::from(self.coordinator_node.as_str()));
            // Forced BEFORE the vote returns: a restarted participant must
            // know both that it is in doubt and whom to interrogate.
            self.wal.append_durable(KIND_RES_PREPARED, &Value::Map(m).encode())?;
            self.in_doubt.lock().insert(tx.clone(), self.coordinator_node.clone());
            self.failpoints.hit(failpoints::AFTER_PREPARED).map_err(TxError::from)?;
        }
        Ok(vote)
    }

    fn commit(&self, tx: &TxId) -> Result<(), TxError> {
        self.deliver(tx, true)
    }

    fn rollback(&self, tx: &TxId) -> Result<(), TxError> {
        self.deliver(tx, false)
    }

    fn forget(&self, tx: &TxId) {
        self.inner.forget(tx);
    }

    fn resource_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::DurableKv;
    use crate::factory::TransactionFactory;
    use crate::txlog;
    use orb::{DetectorConfig, FailureDetector, NetworkConfig, SimClock};
    use recovery_log::MemWal;

    fn wal() -> Arc<dyn Wal> {
        Arc::new(MemWal::new())
    }

    fn orb_with_coordinator(
        rc: RecoveryCoordinator,
    ) -> (Orb, ObjectRef, SimClock) {
        let clock = SimClock::new();
        let orb = Orb::builder().network(NetworkConfig::reliable()).clock(clock.clone()).build();
        let coord = orb.add_node("coordinator").unwrap();
        orb.add_node("participant").unwrap();
        let object = coord.activate(RECOVERY_COORDINATOR_INTERFACE, rc).unwrap();
        (orb, object, clock)
    }

    fn locator(object: ObjectRef) -> CoordinatorLocator {
        Arc::new(move |node: &str| {
            (node == "coordinator").then(|| object.clone())
        })
    }

    #[test]
    fn decided_tx_answers_committed_even_after_completion() {
        let log = wal();
        let tx = TxId::top_level(1);
        txlog::log_prepared(log.as_ref(), &tx, &["store"]).unwrap();
        txlog::log_decision_commit(log.as_ref(), &tx).unwrap();
        let rc = RecoveryCoordinator::new(Arc::clone(&log));
        assert_eq!(rc.replay_completion(&tx).unwrap(), ReplayStatus::Committed);
        // Completion (Forget) does not change a committed answer.
        txlog::log_completed(log.as_ref(), &tx, crate::TxStatus::Committed).unwrap();
        assert_eq!(rc.replay_completion(&tx).unwrap(), ReplayStatus::Committed);
    }

    #[test]
    fn unknown_and_undecided_txs_answer_rolled_back() {
        let log = wal();
        let rc = RecoveryCoordinator::new(Arc::clone(&log));
        // Completely unknown (forgotten) transaction: presumed abort.
        assert_eq!(
            rc.replay_completion(&TxId::top_level(9)).unwrap(),
            ReplayStatus::RolledBack
        );
        // Prepared but never decided: still presumed abort.
        let tx = TxId::top_level(2);
        txlog::log_begun(log.as_ref(), &tx).unwrap();
        txlog::log_prepared(log.as_ref(), &tx, &["store"]).unwrap();
        assert_eq!(rc.replay_completion(&tx).unwrap(), ReplayStatus::RolledBack);
    }

    #[test]
    fn forgetful_fixture_answers_unknown_where_spec_says_rollback() {
        let log = wal();
        let rc = RecoveryCoordinator::forgetful(Arc::clone(&log));
        assert_eq!(
            rc.replay_completion(&TxId::top_level(3)).unwrap(),
            ReplayStatus::Unknown
        );
        // It still answers decided transactions correctly: the bug is
        // precisely the forgotten presumed-abort default.
        let tx = TxId::top_level(4);
        txlog::log_decision_commit(log.as_ref(), &tx).unwrap();
        assert_eq!(rc.replay_completion(&tx).unwrap(), ReplayStatus::Committed);
    }

    #[test]
    fn servant_answers_over_the_orb_and_is_idempotent() {
        let log = wal();
        let tx = TxId::top_level(5);
        txlog::log_decision_commit(log.as_ref(), &tx).unwrap();
        let (orb, object, _clock) = orb_with_coordinator(RecoveryCoordinator::new(log));
        let ask = || {
            let request =
                Request::new("replay_completion").with_arg("tx", txid_to_value(&tx));
            orb.invoke_from("participant", &object, request).unwrap().result
        };
        assert_eq!(ask(), Value::from("committed"));
        assert_eq!(ask(), Value::from("committed"), "redelivery changes nothing");
    }

    #[test]
    fn prepared_participant_resolves_to_commit_after_restart() {
        let coord_log = wal();
        let part_log = wal();
        let tx = TxId::top_level(6);
        // Participant prepares durably; coordinator decides commit; the
        // outcome delivery is lost (participant "crashed").
        {
            let kv = DurableKv::new("store", Arc::clone(&part_log));
            let res = RecoverableResource::new(
                Arc::clone(&kv) as Arc<dyn Resource>,
                Arc::clone(&part_log),
                "coordinator",
            );
            kv.store().write(&tx, "k", Value::I64(7)).unwrap();
            assert_eq!(res.prepare(&tx).unwrap(), Vote::Commit);
        }
        txlog::log_decision_commit(coord_log.as_ref(), &tx).unwrap();
        // Restart: rebuild both layers from the participant log, then
        // interrogate.
        let kv = DurableKv::recover("store", Arc::clone(&part_log)).unwrap();
        let res = Arc::new(
            RecoverableResource::recover(
                Arc::clone(&kv) as Arc<dyn Resource>,
                Arc::clone(&part_log),
                "coordinator",
            )
            .unwrap(),
        );
        assert_eq!(res.in_doubt().len(), 1);
        let (orb, object, _clock) = orb_with_coordinator(RecoveryCoordinator::new(coord_log));
        let config =
            ResolutionConfig::new(RetryPolicy::new(3), Duration::from_secs(10));
        let report = res
            .resolve_in_doubt(&orb, "participant", &locator(object), &config)
            .unwrap();
        assert_eq!(report.committed, vec![tx.clone()]);
        assert!(res.in_doubt().is_empty());
        assert_eq!(kv.store().read_committed("k"), Some(Value::I64(7)));
        // The resolution is durable: a second restart finds nothing in
        // doubt and the committed state intact.
        let kv2 = DurableKv::recover("store", Arc::clone(&part_log)).unwrap();
        let res2 = RecoverableResource::recover(
            Arc::clone(&kv2) as Arc<dyn Resource>,
            part_log,
            "coordinator",
        )
        .unwrap();
        assert!(res2.in_doubt().is_empty());
        assert_eq!(kv2.store().read_committed("k"), Some(Value::I64(7)));
    }

    #[test]
    fn undecided_participant_presumed_aborts_after_restart() {
        let coord_log = wal();
        let part_log = wal();
        let tx = TxId::top_level(7);
        {
            let kv = DurableKv::new("store", Arc::clone(&part_log));
            let res = RecoverableResource::new(
                Arc::clone(&kv) as Arc<dyn Resource>,
                Arc::clone(&part_log),
                "coordinator",
            );
            kv.store().write(&tx, "k", Value::I64(1)).unwrap();
            assert_eq!(res.prepare(&tx).unwrap(), Vote::Commit);
        }
        // No decision was ever forced on the coordinator side.
        let kv = DurableKv::recover("store", Arc::clone(&part_log)).unwrap();
        let res = RecoverableResource::recover(
            Arc::clone(&kv) as Arc<dyn Resource>,
            part_log,
            "coordinator",
        )
        .unwrap();
        let (orb, object, _clock) = orb_with_coordinator(RecoveryCoordinator::new(coord_log));
        let config =
            ResolutionConfig::new(RetryPolicy::new(3), Duration::from_secs(10));
        let report = res
            .resolve_in_doubt(&orb, "participant", &locator(object), &config)
            .unwrap();
        assert_eq!(report.rolled_back, vec![tx]);
        assert!(res.in_doubt().is_empty());
        assert_eq!(kv.store().read_committed("k"), None);
    }

    #[test]
    fn unreachable_coordinator_escalates_to_heuristic_past_deadline() {
        let part_log = wal();
        let tx = TxId::top_level(8);
        let kv = DurableKv::new("store", Arc::clone(&part_log));
        let res = RecoverableResource::new(
            Arc::clone(&kv) as Arc<dyn Resource>,
            Arc::clone(&part_log),
            "coordinator",
        );
        kv.store().write(&tx, "k", Value::I64(2)).unwrap();
        res.prepare(&tx).unwrap();
        let clock = SimClock::new();
        let orb =
            Orb::builder().network(NetworkConfig::reliable()).clock(clock.clone()).build();
        orb.add_node("participant").unwrap();
        // No servant anywhere: the locator comes up empty.
        let locate: CoordinatorLocator = Arc::new(|_| None);
        let config =
            ResolutionConfig::new(RetryPolicy::new(2), Duration::from_millis(500));
        // Before the deadline: stays in doubt, no heuristic.
        let report =
            res.resolve_in_doubt(&orb, "participant", &locate, &config).unwrap();
        assert_eq!(report.unresolved, vec![tx.clone()]);
        assert!(res.heuristics().is_empty());
        // Past the deadline: heuristic rollback, durably recorded.
        clock.advance(Duration::from_secs(1));
        let report =
            res.resolve_in_doubt(&orb, "participant", &locate, &config).unwrap();
        assert_eq!(report.heuristic, vec![tx.clone()]);
        assert!(res.in_doubt().is_empty());
        assert_eq!(res.heuristics().len(), 1);
        assert_eq!(kv.store().read_committed("k"), None);
        // Durable across restart: the heuristic record resolves the doubt.
        let kv2 = DurableKv::recover("store", Arc::clone(&part_log)).unwrap();
        let res2 = RecoverableResource::recover(
            Arc::clone(&kv2) as Arc<dyn Resource>,
            part_log,
            "coordinator",
        )
        .unwrap();
        assert!(res2.in_doubt().is_empty());
    }

    #[test]
    fn detector_quarantine_triggers_resolution() {
        let coord_log = wal();
        let part_log = wal();
        let tx = TxId::top_level(9);
        let kv = DurableKv::new("store", Arc::clone(&part_log));
        let res = Arc::new(RecoverableResource::new(
            Arc::clone(&kv) as Arc<dyn Resource>,
            Arc::clone(&part_log),
            "coordinator",
        ));
        kv.store().write(&tx, "k", Value::I64(3)).unwrap();
        res.prepare(&tx).unwrap();
        txlog::log_decision_commit(coord_log.as_ref(), &tx).unwrap();
        let (orb, object, clock) = orb_with_coordinator(RecoveryCoordinator::new(coord_log));
        let detector = FailureDetector::with_config(
            clock,
            DetectorConfig {
                suspect_after: 1,
                quarantine_after: 2,
                probe_interval: Duration::from_millis(100),
            },
        );
        RecoverableResource::resolve_on_quarantine(
            &res,
            &detector,
            orb,
            "participant",
            locator(object),
            ResolutionConfig::new(RetryPolicy::new(3), Duration::from_secs(10)),
        );
        // Evidence mounts until the coordinator is quarantined — the hook
        // interrogates immediately, without waiting for a restart.
        detector.record_failure("coordinator");
        assert_eq!(res.in_doubt().len(), 1, "suspect alone does not resolve");
        detector.record_failure("coordinator");
        assert!(res.in_doubt().is_empty(), "quarantine triggered resolution");
        assert_eq!(kv.store().read_committed("k"), Some(Value::I64(3)));
    }

    #[test]
    fn delivered_outcomes_clear_doubt_inline() {
        // The normal (no-crash) path: phase-two delivery goes through the
        // wrapper, records the resolution and clears the in-doubt entry, so
        // a clean commit leaves nothing to interrogate.
        let log = wal();
        let factory = TransactionFactory::with_wal(Arc::clone(&log));
        let kv = DurableKv::new("store", Arc::clone(&log));
        let witness = DurableKv::new("witness", Arc::clone(&log));
        let store = Arc::new(RecoverableResource::new(
            Arc::clone(&kv) as Arc<dyn Resource>,
            Arc::clone(&log),
            "coordinator",
        ));
        let audit = Arc::new(RecoverableResource::new(
            Arc::clone(&witness) as Arc<dyn Resource>,
            Arc::clone(&log),
            "coordinator",
        ));
        let control = factory.create().unwrap();
        control
            .coordinator()
            .register_resource(Arc::clone(&store) as Arc<dyn Resource>)
            .unwrap();
        control
            .coordinator()
            .register_resource(Arc::clone(&audit) as Arc<dyn Resource>)
            .unwrap();
        kv.store().write(control.id(), "k", Value::I64(4)).unwrap();
        witness.store().write(control.id(), "w", Value::I64(5)).unwrap();
        control.terminator().commit().unwrap();
        assert!(store.in_doubt().is_empty());
        assert!(audit.in_doubt().is_empty());
        assert_eq!(kv.store().read_committed("k"), Some(Value::I64(4)));
    }
}
