//! Error type for transaction operations.

use std::fmt;

use crate::status::TxStatus;
use crate::xid::TxId;

/// Errors raised by the Object Transaction Service.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TxError {
    /// The operation requires an active transaction but the target has
    /// already moved past `Active`.
    Inactive {
        /// Transaction concerned.
        tx: TxId,
        /// Its actual status.
        status: TxStatus,
    },
    /// The transaction was (or had to be) rolled back; the commit request
    /// therefore failed.
    RolledBack(TxId),
    /// The transaction is marked rollback-only; no new work or commit is
    /// allowed.
    RollbackOnly(TxId),
    /// No transaction is associated with the calling thread.
    NoTransaction,
    /// The thread already has a transaction and the operation forbids that.
    AlreadyAssociated(TxId),
    /// A lock could not be acquired (conflict with another transaction).
    LockConflict {
        /// Resource key fought over.
        key: String,
        /// Holder of the conflicting lock.
        holder: TxId,
        /// Requester that lost.
        requester: TxId,
    },
    /// The transaction exceeded its timeout and was marked rollback-only.
    TimedOut(TxId),
    /// A participant failed during completion, leaving a heuristic hazard.
    Heuristic {
        /// Transaction concerned.
        tx: TxId,
        /// Participant detail.
        detail: String,
    },
    /// The durable log failed.
    Log(String),
    /// The referenced transaction is unknown to this factory.
    Unknown(TxId),
    /// A subtransaction operation was attempted on a top-level transaction
    /// or vice versa.
    NestingViolation(String),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Inactive { tx, status } => {
                write!(f, "transaction {tx} is not active (status {status})")
            }
            TxError::RolledBack(tx) => write!(f, "transaction {tx} rolled back"),
            TxError::RollbackOnly(tx) => write!(f, "transaction {tx} is marked rollback-only"),
            TxError::NoTransaction => write!(f, "no transaction associated with this thread"),
            TxError::AlreadyAssociated(tx) => {
                write!(f, "thread already associated with transaction {tx}")
            }
            TxError::LockConflict { key, holder, requester } => write!(
                f,
                "lock conflict on {key:?}: held by {holder}, wanted by {requester}"
            ),
            TxError::TimedOut(tx) => write!(f, "transaction {tx} timed out"),
            TxError::Heuristic { tx, detail } => {
                write!(f, "heuristic hazard in transaction {tx}: {detail}")
            }
            TxError::Log(msg) => write!(f, "transaction log failure: {msg}"),
            TxError::Unknown(tx) => write!(f, "unknown transaction {tx}"),
            TxError::NestingViolation(msg) => write!(f, "nesting violation: {msg}"),
        }
    }
}

impl std::error::Error for TxError {}

impl From<recovery_log::LogError> for TxError {
    fn from(e: recovery_log::LogError) -> Self {
        TxError::Log(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let tx = TxId::top_level(1);
        for e in [
            TxError::Inactive { tx: tx.clone(), status: TxStatus::Committed },
            TxError::RolledBack(tx.clone()),
            TxError::RollbackOnly(tx.clone()),
            TxError::NoTransaction,
            TxError::AlreadyAssociated(tx.clone()),
            TxError::LockConflict {
                key: "k".into(),
                holder: tx.clone(),
                requester: TxId::top_level(2),
            },
            TxError::TimedOut(tx.clone()),
            TxError::Heuristic { tx: tx.clone(), detail: "d".into() },
            TxError::Log("lost".into()),
            TxError::Unknown(tx.clone()),
            TxError::NestingViolation("bad".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn from_log_error() {
        let e: TxError = recovery_log::LogError::Sealed.into();
        assert!(matches!(e, TxError::Log(_)));
    }
}
