//! An Object Transaction Service: the transactional substrate the Activity
//! Service framework is layered beside (fig. 3 of the paper).
//!
//! This crate reproduces the parts of the OMG OTS that the paper's examples
//! rely on:
//!
//! * flat top-level transactions with **two-phase commit** (presumed abort),
//!   one-phase optimisation and read-only voting ([`coordinator`]);
//! * **nested transactions** (subtransactions) whose commits are provisional
//!   and whose resources are inherited by the parent (§1 of the paper);
//! * the CORBA object model: [`control::Control`] /
//!   [`coordinator::Coordinator`] / [`terminator::Terminator`] handed out by
//!   a [`factory::TransactionFactory`];
//! * [`resource::Resource`] and [`resource::Synchronization`] participants;
//! * a thread-associated [`current::Current`] for implicit demarcation;
//! * durable **decision logging** and crash recovery ([`txlog`]) over the
//!   `recovery-log` crate;
//! * a [`lockmgr::LockManager`] and a transactional key-value store
//!   ([`memres::TransactionalKv`]) used by the examples, tests and the
//!   fig. 1 lock-hold-time experiment;
//! * a durable, crash-recoverable participant ([`durable::DurableKv`])
//!   demonstrating the persistence contract §3.4 places on recoverable
//!   objects;
//! * the participant-driven half of §3.4 termination ([`recovery`]): a
//!   `RecoveryCoordinator` servant answering `replay_completion` under
//!   presumed abort, and a `RecoverableResource` wrapper that interrogates
//!   it to resolve in-doubt transactions after restarts or partitions.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ots::{TransactionFactory, TransactionalKv};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let factory = TransactionFactory::new();
//! let store = Arc::new(TransactionalKv::new("accounts"));
//!
//! let control = factory.create()?;
//! let tx = control.coordinator().id().clone();
//! store.enlist(&control)?;
//! store.write(&tx, "alice", orb::Value::I64(100))?;
//! control.terminator().commit()?;
//! assert_eq!(store.read_committed("alice"), Some(orb::Value::I64(100)));
//! # Ok(())
//! # }
//! ```

pub mod control;
pub mod coordinator;
pub mod current;
pub mod durable;
pub mod error;
pub mod factory;
pub mod journal;
pub mod lockmgr;
pub mod memres;
pub mod recovery;
pub mod resource;
pub mod status;
pub mod terminator;
pub mod txlog;
pub mod xid;

pub use control::Control;
pub use orb::pool::DispatchConfig;
pub use coordinator::{failpoints, Coordinator};
pub use current::Current;
pub use durable::DurableKv;
pub use error::TxError;
pub use factory::TransactionFactory;
pub use journal::{ProtocolJournal, TwoPcEvent, VoteKind};
pub use lockmgr::{LockManager, LockMode, WaitDie};
pub use memres::TransactionalKv;
pub use recovery::{
    RecoverableResource, RecoveryCoordinator, ReplayStatus, ResolutionConfig, ResolutionReport,
};
pub use resource::{Resource, SubtransactionAwareResource, Synchronization, Vote};
pub use status::TxStatus;
pub use terminator::Terminator;
pub use xid::TxId;
