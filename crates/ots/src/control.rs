//! The control object tying a coordinator and terminator together.

use std::sync::Arc;

use crate::coordinator::Coordinator;
use crate::error::TxError;
use crate::terminator::Terminator;
use crate::xid::TxId;

/// A transaction's control (mirrors CosTransactions::Control): access to its
/// [`Coordinator`] for registration and its [`Terminator`] for completion.
#[derive(Debug, Clone)]
pub struct Control {
    coordinator: Arc<Coordinator>,
    terminator: Terminator,
}

impl Control {
    pub(crate) fn new(coordinator: Arc<Coordinator>) -> Self {
        let terminator = Terminator::new(Arc::clone(&coordinator));
        Control { coordinator, terminator }
    }

    /// The coordinator: register resources, create subtransactions, inspect
    /// status.
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// The terminator: commit or roll back.
    pub fn terminator(&self) -> &Terminator {
        &self.terminator
    }

    /// The transaction's id (convenience for `coordinator().id()`).
    pub fn id(&self) -> &TxId {
        self.coordinator.id()
    }

    /// Begin a subtransaction, returning its control.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::create_subtransaction`].
    pub fn begin_subtransaction(&self) -> Result<Control, TxError> {
        let child = self.coordinator.create_subtransaction()?;
        Ok(Control::new(child))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TxStatus;
    use recovery_log::FailpointSet;

    #[test]
    fn control_wires_coordinator_and_terminator() {
        let c = Coordinator::new_top_level(
            TxId::top_level(4),
            None,
            FailpointSet::new(),
            None,
            None,
            orb::pool::DispatchConfig::default(),
        );
        let control = Control::new(c);
        assert_eq!(control.id(), &TxId::top_level(4));
        let sub = control.begin_subtransaction().unwrap();
        assert_eq!(sub.id(), &TxId::top_level(4).child(0));
        sub.terminator().commit().unwrap();
        control.terminator().commit().unwrap();
        assert_eq!(control.coordinator().status(), TxStatus::Committed);
    }
}
