//! The transaction factory: creation, bookkeeping and recovery entry point.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use orb::choice::DeliverySequencer;
use orb::detector::FailureDetector;
use orb::pool::DispatchConfig;
use orb::SimClock;
use parking_lot::RwLock;
use recovery_log::{FailpointSet, Wal};

use crate::control::Control;
use crate::coordinator::Coordinator;
use crate::error::TxError;
use crate::journal::ProtocolJournal;
use crate::txlog::{self, ParticipantResolver, TxRecoveryReport};
use crate::xid::TxId;

/// Creates transactions (mirrors CosTransactions::TransactionFactory) and
/// owns the service-wide pieces: the decision log, failpoints, the virtual
/// clock for timeouts, and the registry of in-flight transactions.
pub struct TransactionFactory {
    next_top: AtomicU64,
    wal: Option<Arc<dyn Wal>>,
    failpoints: FailpointSet,
    clock: Option<SimClock>,
    dispatch: DispatchConfig,
    detector: Option<FailureDetector>,
    telemetry: Option<telemetry::Telemetry>,
    sequencer: Option<Arc<dyn DeliverySequencer>>,
    journal: Option<ProtocolJournal>,
    inflight: RwLock<HashMap<TxId, Arc<Coordinator>>>,
}

impl std::fmt::Debug for TransactionFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionFactory")
            .field("next_top", &self.next_top.load(Ordering::Relaxed))
            .field("logged", &self.wal.is_some())
            .field("inflight", &self.inflight.read().len())
            .finish()
    }
}

impl Default for TransactionFactory {
    fn default() -> Self {
        Self::new()
    }
}

impl TransactionFactory {
    /// A factory with no durable log (volatile transactions).
    pub fn new() -> Self {
        TransactionFactory {
            next_top: AtomicU64::new(1),
            wal: None,
            failpoints: FailpointSet::new(),
            clock: None,
            dispatch: DispatchConfig::default(),
            detector: None,
            telemetry: None,
            sequencer: None,
            journal: None,
            inflight: RwLock::new(HashMap::new()),
        }
    }

    /// A factory whose coordinators write decision records to `wal`.
    pub fn with_wal(wal: Arc<dyn Wal>) -> Self {
        TransactionFactory { wal: Some(wal), ..Self::new() }
    }

    /// Attach a virtual clock; required for [`TransactionFactory::create_with_timeout`].
    #[must_use]
    pub fn with_clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Attach a failpoint set for crash-injection tests.
    #[must_use]
    pub fn with_failpoints(mut self, failpoints: FailpointSet) -> Self {
        self.failpoints = failpoints;
        self
    }

    /// Choose how this factory's coordinators fan participant calls out
    /// during two-phase commit: [`DispatchConfig::serial`] reproduces the
    /// legacy one-at-a-time loops exactly; the default solicits votes and
    /// delivers phase-two outcomes concurrently on the shared worker pool.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchConfig) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Attach a participant [`FailureDetector`]: every coordinator this
    /// factory creates consults it during phase one (see
    /// [`Coordinator::set_detector`]). The detector is shared — suspicion
    /// learned in one transaction carries into the next.
    #[must_use]
    pub fn with_detector(mut self, detector: FailureDetector) -> Self {
        self.detector = Some(detector);
        self
    }

    /// Attach a telemetry recorder: every coordinator this factory creates
    /// records its commits as spans and its votes/outcomes as metrics (see
    /// [`Coordinator::set_telemetry`]). Shared, like the detector.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: telemetry::Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attach a [`DeliverySequencer`]: every coordinator this factory
    /// creates consults it for the order of its serial delivery rounds
    /// (see [`Coordinator::set_sequencer`]). A model-checking explorer uses
    /// this to own delivery order; without one, registration order rules.
    #[must_use]
    pub fn with_sequencer(mut self, sequencer: Arc<dyn DeliverySequencer>) -> Self {
        self.sequencer = Some(sequencer);
        self
    }

    /// Attach a [`ProtocolJournal`]: every coordinator this factory creates
    /// records its protocol steps into it (see
    /// [`Coordinator::set_journal`]). Shared, like the detector.
    #[must_use]
    pub fn with_journal(mut self, journal: ProtocolJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The factory's failpoints (shared handle).
    pub fn failpoints(&self) -> &FailpointSet {
        &self.failpoints
    }

    /// Begin a new top-level transaction with no timeout.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Log`] when the begin record cannot be written.
    pub fn create(&self) -> Result<Control, TxError> {
        self.create_inner(None)
    }

    /// Begin a new top-level transaction that is doomed once the virtual
    /// clock passes `timeout` from now.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Log`] when the begin record cannot be written.
    pub fn create_with_timeout(&self, timeout: Duration) -> Result<Control, TxError> {
        let deadline = self.clock.as_ref().map(|c| c.now() + timeout);
        self.create_inner(deadline)
    }

    fn create_inner(&self, deadline: Option<Duration>) -> Result<Control, TxError> {
        let id = TxId::top_level(self.next_top.fetch_add(1, Ordering::Relaxed));
        if let Some(wal) = &self.wal {
            txlog::log_begun(wal.as_ref(), &id)?;
        }
        let coordinator = Coordinator::new_top_level(
            id.clone(),
            self.wal.clone(),
            self.failpoints.clone(),
            self.clock.clone(),
            deadline,
            self.dispatch,
        );
        if let Some(detector) = &self.detector {
            coordinator.set_detector(detector.clone());
        }
        if let Some(telemetry) = &self.telemetry {
            coordinator.set_telemetry(telemetry.clone());
        }
        if let Some(sequencer) = &self.sequencer {
            coordinator.set_sequencer(Arc::clone(sequencer));
        }
        if let Some(journal) = &self.journal {
            coordinator.set_journal(journal.clone());
        }
        self.inflight.write().insert(id, Arc::clone(&coordinator));
        Ok(Control::new(coordinator))
    }

    /// Look up an in-flight transaction by id.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Unknown`] for ids this factory never issued or has
    /// forgotten.
    pub fn lookup(&self, id: &TxId) -> Result<Arc<Coordinator>, TxError> {
        self.inflight
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| TxError::Unknown(id.clone()))
    }

    /// Drop terminal transactions from the in-flight table; returns how many
    /// were reaped.
    pub fn reap_completed(&self) -> usize {
        let mut inflight = self.inflight.write();
        let before = inflight.len();
        inflight.retain(|_, c| !c.status().is_terminal());
        before - inflight.len()
    }

    /// Run crash recovery against this factory's log: re-deliver outcomes
    /// for every in-doubt transaction found there.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Log`] when there is no log or it cannot be read.
    pub fn recover(&self, resolver: &dyn ParticipantResolver) -> Result<TxRecoveryReport, TxError> {
        let wal = self.wal.as_ref().ok_or_else(|| TxError::Log("factory has no log".into()))?;
        let report = txlog::recover(wal.as_ref(), resolver)?;
        // Make sure new ids never collide with logged ones.
        let mut max_seen = 0;
        for tx in report.recommitted.iter().chain(report.presumed_aborted.iter()) {
            max_seen = max_seen.max(tx.top_seq());
        }
        let next = self.next_top.load(Ordering::Relaxed);
        if max_seen >= next {
            self.next_top.store(max_seen + 1, Ordering::Relaxed);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::test_support::ScriptedResource;
    use crate::resource::{Resource, Vote};
    use crate::status::TxStatus;
    use recovery_log::MemWal;

    #[test]
    fn factory_issues_unique_ids() {
        let f = TransactionFactory::new();
        let a = f.create().unwrap();
        let b = f.create().unwrap();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn lookup_and_reap() {
        let f = TransactionFactory::new();
        let c = f.create().unwrap();
        let id = c.id().clone();
        assert!(f.lookup(&id).is_ok());
        c.terminator().commit().unwrap();
        assert_eq!(f.reap_completed(), 1);
        assert!(matches!(f.lookup(&id), Err(TxError::Unknown(_))));
    }

    #[test]
    fn crash_between_decision_and_completion_recovers_commit() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let failpoints = FailpointSet::new();
        let f = TransactionFactory::with_wal(Arc::clone(&wal)).with_failpoints(failpoints.clone());

        let store = ScriptedResource::voting("store", Vote::Commit);
        let witness = ScriptedResource::voting("witness", Vote::Commit);
        let control = f.create().unwrap();
        control.coordinator().register_resource(store.clone()).unwrap();
        control.coordinator().register_resource(witness.clone()).unwrap();
        failpoints.arm("ots.after_decision", 0);
        let err = control.terminator().commit().unwrap_err();
        assert!(matches!(err, TxError::Log(_)));
        // The decision is durable but phase two never ran.
        assert_eq!(store.calls(), vec!["prepare"]);

        // "Restart": a new factory over the same log.
        failpoints.clear();
        let f2 = TransactionFactory::with_wal(wal);
        let store2 = store.clone();
        let witness2 = witness.clone();
        let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
            match name {
                "store" => Some(store2.clone()),
                "witness" => Some(witness2.clone()),
                _ => None,
            }
        };
        let report = f2.recover(&resolver).unwrap();
        assert_eq!(report.recommitted.len(), 1);
        assert_eq!(store.calls(), vec!["prepare", "commit"]);
        assert_eq!(witness.calls(), vec!["prepare", "commit"]);
        // Ids continue past the recovered transaction.
        let fresh = f2.create().unwrap();
        assert!(fresh.id().top_seq() > report.recommitted[0].top_seq());
    }

    #[test]
    fn crash_before_decision_recovers_rollback() {
        let wal: Arc<dyn Wal> = Arc::new(MemWal::new());
        let failpoints = FailpointSet::new();
        let f = TransactionFactory::with_wal(Arc::clone(&wal)).with_failpoints(failpoints.clone());
        let store = ScriptedResource::voting("store", Vote::Commit);
        let other = ScriptedResource::voting("other", Vote::Commit);
        let control = f.create().unwrap();
        control.coordinator().register_resource(store.clone()).unwrap();
        control.coordinator().register_resource(other.clone()).unwrap();
        failpoints.arm("ots.before_decision", 0);
        control.terminator().commit().unwrap_err();

        failpoints.clear();
        let f2 = TransactionFactory::with_wal(wal);
        let store2 = store.clone();
        let other2 = other.clone();
        let resolver = move |name: &str| -> Option<Arc<dyn Resource>> {
            match name {
                "store" => Some(store2.clone()),
                "other" => Some(other2.clone()),
                _ => None,
            }
        };
        let report = f2.recover(&resolver).unwrap();
        assert_eq!(report.presumed_aborted.len(), 1);
        assert_eq!(store.calls(), vec!["prepare", "rollback"]);
    }

    #[test]
    fn timeout_via_virtual_clock() {
        let clock = SimClock::new();
        let f = TransactionFactory::new().with_clock(clock.clone());
        let c = f.create_with_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(c.coordinator().status(), TxStatus::Active);
        clock.advance(Duration::from_millis(20));
        assert_eq!(c.coordinator().status(), TxStatus::MarkedRollback);
    }

    #[test]
    fn recover_without_log_fails() {
        let f = TransactionFactory::new();
        let resolver = |_: &str| -> Option<Arc<dyn Resource>> { None };
        assert!(matches!(f.recover(&resolver), Err(TxError::Log(_))));
    }
}
