//! Object identity, references and the servant trait.

use std::fmt;
use std::sync::Arc;

use crate::error::OrbError;
use crate::message::Request;
use crate::value::Value;

/// Globally unique identity of an object registered with the ORB.
///
/// The high half identifies the node the object was activated on; the low
/// half is a per-node sequence number. The pair is stable across the object's
/// lifetime, which is what lets the recovery machinery *rebind* references
/// after a crash (§3.4 of the paper: "rebinding of the activity structure").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId {
    node_seq: u64,
    object_seq: u64,
}

impl ObjectId {
    /// Create an identity from its node and object sequence numbers.
    pub fn new(node_seq: u64, object_seq: u64) -> Self {
        ObjectId { node_seq, object_seq }
    }

    /// Sequence number of the node the object lives on.
    pub fn node_seq(&self) -> u64 {
        self.node_seq
    }

    /// Per-node sequence number of the object.
    pub fn object_seq(&self) -> u64 {
        self.object_seq
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node_seq, self.object_seq)
    }
}

/// A location-transparent reference to a remote (or local) object.
///
/// `ObjectRef` is cheap to clone and safe to ship across the simulated
/// network (see [`ObjectRef::to_value`] / [`ObjectRef::from_value`]); it is
/// the analogue of a CORBA IOR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectRef {
    id: ObjectId,
    node: String,
    interface: String,
}

impl ObjectRef {
    /// Build a reference from its parts. Normally produced by
    /// [`crate::Node::activate`], not constructed by hand.
    pub fn new(id: ObjectId, node: impl Into<String>, interface: impl Into<String>) -> Self {
        ObjectRef { id, node: node.into(), interface: interface.into() }
    }

    /// The referenced object's identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Name of the node hosting the object.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Interface (repository id) the object was activated under.
    pub fn interface(&self) -> &str {
        &self.interface
    }

    /// Serialise into a [`Value`] so the reference can ride inside signal
    /// payloads and log records (the paper's §4.2 Propagate signal carries
    /// "the identity of an Activity it should register itself with").
    pub fn to_value(&self) -> Value {
        let mut m = crate::value::ValueMap::new();
        m.insert("node_seq".into(), Value::U64(self.id.node_seq));
        m.insert("object_seq".into(), Value::U64(self.id.object_seq));
        m.insert("node".into(), Value::Str(self.node.clone()));
        m.insert("interface".into(), Value::Str(self.interface.clone()));
        Value::Map(m)
    }

    /// Inverse of [`ObjectRef::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::Codec`] if the value is not a well-formed
    /// reference map.
    pub fn from_value(value: &Value) -> Result<Self, OrbError> {
        let map = value
            .as_map()
            .ok_or_else(|| OrbError::Codec("object ref must be a map".into()))?;
        let field = |name: &str| {
            map.get(name)
                .ok_or_else(|| OrbError::Codec(format!("object ref missing field {name:?}")))
        };
        let node_seq = field("node_seq")?
            .as_u64()
            .ok_or_else(|| OrbError::Codec("node_seq must be u64".into()))?;
        let object_seq = field("object_seq")?
            .as_u64()
            .ok_or_else(|| OrbError::Codec("object_seq must be u64".into()))?;
        let node = field("node")?
            .as_str()
            .ok_or_else(|| OrbError::Codec("node must be a string".into()))?;
        let interface = field("interface")?
            .as_str()
            .ok_or_else(|| OrbError::Codec("interface must be a string".into()))?;
        Ok(ObjectRef::new(ObjectId::new(node_seq, object_seq), node, interface))
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}#{}", self.interface, self.node, self.id)
    }
}

/// A server-side object implementation.
///
/// Servants receive fully decoded [`Request`]s and return a single [`Value`]
/// result. They must be `Send + Sync`: the simulated network may deliver
/// concurrent (and, with duplication faults enabled, repeated) requests, so
/// servants that act on the outside world are expected to be idempotent —
/// exactly the requirement the paper places on Actions under at-least-once
/// signal delivery (§3.4).
pub trait Servant: Send + Sync {
    /// Handle one request.
    ///
    /// # Errors
    ///
    /// Implementations should return [`OrbError::BadOperation`] for unknown
    /// operations and [`OrbError::Application`] for domain failures.
    fn dispatch(&self, request: &Request) -> Result<Value, OrbError>;
}

impl<T: Servant + ?Sized> Servant for Arc<T> {
    fn dispatch(&self, request: &Request) -> Result<Value, OrbError> {
        (**self).dispatch(request)
    }
}

impl<F> Servant for F
where
    F: Fn(&Request) -> Result<Value, OrbError> + Send + Sync,
{
    fn dispatch(&self, request: &Request) -> Result<Value, OrbError> {
        self(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_ref_value_roundtrip() {
        let r = ObjectRef::new(ObjectId::new(3, 99), "node-a", "IDL:Action:1.0");
        let v = r.to_value();
        let back = ObjectRef::from_value(&v).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn object_ref_from_bad_value() {
        assert!(ObjectRef::from_value(&Value::Null).is_err());
        let mut m = crate::value::ValueMap::new();
        m.insert("node_seq".into(), Value::U64(1));
        assert!(ObjectRef::from_value(&Value::Map(m)).is_err());
    }

    #[test]
    fn closure_is_a_servant() {
        let servant = |req: &Request| Ok(Value::Str(req.operation().to_owned()));
        let reply = servant.dispatch(&Request::new("ping")).unwrap();
        assert_eq!(reply.as_str(), Some("ping"));
    }

    #[test]
    fn display_forms() {
        let id = ObjectId::new(1, 2);
        assert_eq!(id.to_string(), "1:2");
        let r = ObjectRef::new(id, "n", "I");
        assert_eq!(r.to_string(), "I@n#1:2");
    }
}
