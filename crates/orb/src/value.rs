//! A self-describing dynamic value: the stand-in for CORBA's `any`.
//!
//! The paper's `Signal` struct carries `any application_specific_data`; every
//! layer of this reproduction (service contexts, signal payloads, workflow
//! task parameters, BTP qualifiers) uses [`Value`] for the same purpose.
//! Values encode to a compact self-describing binary form ([`Value::encode`])
//! so that they can cross the simulated network and be written to the
//! recovery log.

use std::collections::BTreeMap;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::OrbError;

/// An ordered attribute→value map; the tuple-space representation used by
/// the paper's `PropertyGroup` (§3.3) and by signal payloads.
pub type ValueMap = BTreeMap<String, Value>;

/// A dynamically typed value, analogous to CORBA's `any`.
///
/// `Value` deliberately supports a small closed set of shapes: everything the
/// Activity Service framework, the transaction models and the workflow engine
/// need to exchange, and nothing more.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer.
    I64(i64),
    /// Unsigned 64-bit integer.
    U64(u64),
    /// Double-precision float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Ordered list.
    List(Vec<Value>),
    /// String-keyed map.
    Map(ValueMap),
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_MAP: u8 = 8;

impl Value {
    /// Encode into a self-describing binary representation.
    ///
    /// The encoding is a tag byte followed by a type-specific body; strings,
    /// byte arrays, lists and maps are length-prefixed with a `u32`.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                buf.put_u8(u8::from(*b));
            }
            Value::I64(v) => {
                buf.put_u8(TAG_I64);
                buf.put_i64(*v);
            }
            Value::U64(v) => {
                buf.put_u8(TAG_U64);
                buf.put_u64(*v);
            }
            Value::F64(v) => {
                buf.put_u8(TAG_F64);
                buf.put_f64(*v);
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                buf.put_u8(TAG_BYTES);
                buf.put_u32(b.len() as u32);
                buf.put_slice(b);
            }
            Value::List(items) => {
                buf.put_u8(TAG_LIST);
                buf.put_u32(items.len() as u32);
                for item in items {
                    item.encode_into(buf);
                }
            }
            Value::Map(map) => {
                buf.put_u8(TAG_MAP);
                buf.put_u32(map.len() as u32);
                for (k, v) in map {
                    buf.put_u32(k.len() as u32);
                    buf.put_slice(k.as_bytes());
                    v.encode_into(buf);
                }
            }
        }
    }

    /// Decode a value previously produced by [`Value::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::Codec`] when the input is truncated, contains an
    /// unknown tag or has a malformed UTF-8 string.
    pub fn decode(bytes: &[u8]) -> Result<Value, OrbError> {
        let mut cursor = bytes;
        let value = Self::decode_from(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(OrbError::Codec(format!(
                "{} trailing bytes after value",
                cursor.len()
            )));
        }
        Ok(value)
    }

    fn decode_from(buf: &mut &[u8]) -> Result<Value, OrbError> {
        fn need(buf: &&[u8], n: usize) -> Result<(), OrbError> {
            if buf.len() < n {
                return Err(OrbError::Codec(format!(
                    "truncated value: need {n} bytes, have {}",
                    buf.len()
                )));
            }
            Ok(())
        }
        need(buf, 1)?;
        let tag = buf.get_u8();
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => {
                need(buf, 1)?;
                Ok(Value::Bool(buf.get_u8() != 0))
            }
            TAG_I64 => {
                need(buf, 8)?;
                Ok(Value::I64(buf.get_i64()))
            }
            TAG_U64 => {
                need(buf, 8)?;
                Ok(Value::U64(buf.get_u64()))
            }
            TAG_F64 => {
                need(buf, 8)?;
                Ok(Value::F64(buf.get_f64()))
            }
            TAG_STR => {
                need(buf, 4)?;
                let len = buf.get_u32() as usize;
                need(buf, len)?;
                let raw = buf[..len].to_vec();
                buf.advance(len);
                String::from_utf8(raw)
                    .map(Value::Str)
                    .map_err(|e| OrbError::Codec(format!("invalid utf-8 in string: {e}")))
            }
            TAG_BYTES => {
                need(buf, 4)?;
                let len = buf.get_u32() as usize;
                need(buf, len)?;
                let raw = buf[..len].to_vec();
                buf.advance(len);
                Ok(Value::Bytes(raw))
            }
            TAG_LIST => {
                need(buf, 4)?;
                let len = buf.get_u32() as usize;
                let mut items = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    items.push(Self::decode_from(buf)?);
                }
                Ok(Value::List(items))
            }
            TAG_MAP => {
                need(buf, 4)?;
                let len = buf.get_u32() as usize;
                let mut map = ValueMap::new();
                for _ in 0..len {
                    need(buf, 4)?;
                    let klen = buf.get_u32() as usize;
                    need(buf, klen)?;
                    let kraw = buf[..klen].to_vec();
                    buf.advance(klen);
                    let key = String::from_utf8(kraw)
                        .map_err(|e| OrbError::Codec(format!("invalid utf-8 in key: {e}")))?;
                    let value = Self::decode_from(buf)?;
                    map.insert(key, value);
                }
                Ok(Value::Map(map))
            }
            other => Err(OrbError::Codec(format!("unknown value tag {other}"))),
        }
    }

    /// View as a string slice if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as a bool if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// View as an `i64`, converting from `U64` when it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// View as a `u64`, converting from non-negative `I64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// View as an `f64` if this is a [`Value::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// View as a map if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&ValueMap> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// View as a list if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}
impl From<ValueMap> for Value {
    fn from(v: ValueMap) -> Self {
        Value::Map(v)
    }
}
impl FromIterator<Value> for Value {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Value::List(iter.into_iter().collect())
    }
}
impl FromIterator<(String, Value)> for Value {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Value::Map(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let encoded = v.encode();
        let decoded = Value::decode(&encoded).expect("decode");
        assert_eq!(&decoded, v);
    }

    #[test]
    fn roundtrip_scalars() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::I64(-42));
        roundtrip(&Value::I64(i64::MIN));
        roundtrip(&Value::U64(u64::MAX));
        roundtrip(&Value::F64(3.125));
        roundtrip(&Value::Str(String::new()));
        roundtrip(&Value::Str("héllo wörld".into()));
        roundtrip(&Value::Bytes(vec![0, 255, 1, 2]));
    }

    #[test]
    fn roundtrip_nested() {
        let mut map = ValueMap::new();
        map.insert("list".into(), Value::List(vec![Value::I64(1), Value::Str("x".into())]));
        map.insert("inner".into(), Value::Map(ValueMap::new()));
        roundtrip(&Value::Map(map));
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut encoded = Value::Bool(true).encode().to_vec();
        encoded.push(9);
        assert!(matches!(Value::decode(&encoded), Err(OrbError::Codec(_))));
    }

    #[test]
    fn decode_rejects_truncation() {
        let encoded = Value::Str("hello".into()).encode();
        for cut in 0..encoded.len() {
            assert!(
                Value::decode(&encoded[..cut]).is_err(),
                "prefix of length {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert!(matches!(Value::decode(&[200]), Err(OrbError::Codec(_))));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(7i64).as_i64(), Some(7));
        assert_eq!(Value::from(7u64).as_i64(), Some(7));
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert!(Value::Null.is_null());
        assert!(Value::default().is_null());
        assert!(Value::from("x").as_map().is_none());
    }

    #[test]
    fn display_never_empty() {
        for v in [
            Value::Null,
            Value::List(vec![]),
            Value::Map(ValueMap::new()),
            Value::Str(String::new()),
            Value::Bytes(vec![]),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn collect_into_value() {
        let l: Value = vec![Value::I64(1), Value::I64(2)].into_iter().collect();
        assert_eq!(l.as_list().unwrap().len(), 2);
        let m: Value = vec![("a".to_string(), Value::I64(1))].into_iter().collect();
        assert_eq!(m.as_map().unwrap().len(), 1);
    }
}
