//! A deterministic, fault-injecting message "network".
//!
//! Every inter-node invocation consults this network, which can
//!
//! * charge a latency (advancing the shared [`SimClock`] instead of
//!   sleeping),
//! * **drop** the message (the caller observes a timeout),
//! * **duplicate** the message (the servant runs twice — this is what makes
//!   the paper's at-least-once Signal delivery observable and forces Actions
//!   to be idempotent, §3.4), and
//! * **partition** groups of nodes from one another.
//!
//! All randomness is drawn from a seeded PRNG, so a given
//! ([`NetworkConfig::seed`], workload) pair replays identically.
//!
//! On top of the probabilistic model sits a **scripted** one: a
//! [`FaultScript`] names individual messages by their sequence number
//! ("drop the 3rd remote message", "duplicate the 7th") so a simulation
//! harness can *enumerate* fault events, sweep over them, and shrink a
//! failing schedule to a minimal reproducer. Scripted events take
//! precedence over the probabilistic model for the messages they name.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use telemetry::Telemetry;

use crate::clock::SimClock;

/// Tunable fault and latency model for the simulated network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Fixed one-way latency charged to every delivered message.
    pub base_latency: Duration,
    /// Maximum additional uniformly distributed latency.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a delivered message is delivered twice.
    pub duplicate_probability: f64,
    /// Seed for the deterministic PRNG driving drops, duplicates and jitter.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            base_latency: Duration::from_micros(100),
            jitter: Duration::ZERO,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 0,
        }
    }
}

impl NetworkConfig {
    /// A perfectly reliable, zero-latency network (unit-test default).
    pub fn reliable() -> Self {
        NetworkConfig { base_latency: Duration::ZERO, ..Self::default() }
    }

    /// A lossy network dropping and duplicating messages with the given
    /// probabilities.
    pub fn lossy(drop_probability: f64, duplicate_probability: f64, seed: u64) -> Self {
        NetworkConfig { drop_probability, duplicate_probability, seed, ..Self::default() }
    }
}

/// A deterministic per-message fault plan.
///
/// Remote messages are numbered `0, 1, 2, …` in transmission order (local,
/// same-node calls are not counted — they bypass the fault model entirely).
/// A script names the sequence numbers to drop and to duplicate; everything
/// else falls through to the probabilistic [`NetworkConfig`] model.
///
/// Because the events are discrete and enumerable, a simulation harness can
/// generate schedules from a seed, replay them exactly, and *shrink* a
/// failing schedule by removing events one at a time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    drops: BTreeSet<u64>,
    duplicates: BTreeSet<u64>,
}

impl FaultScript {
    /// An empty script: every message follows the probabilistic model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the `nth` remote message (0-based).
    #[must_use]
    pub fn drop_nth(mut self, nth: u64) -> Self {
        self.drops.insert(nth);
        self
    }

    /// Deliver the `nth` remote message (0-based) twice.
    #[must_use]
    pub fn duplicate_nth(mut self, nth: u64) -> Self {
        self.duplicates.insert(nth);
        self
    }

    /// Whether the script names no messages at all.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty() && self.duplicates.is_empty()
    }

    /// Message numbers scheduled to be dropped.
    pub fn drops(&self) -> impl Iterator<Item = u64> + '_ {
        self.drops.iter().copied()
    }

    /// Message numbers scheduled to be duplicated.
    pub fn duplicates(&self) -> impl Iterator<Item = u64> + '_ {
        self.duplicates.iter().copied()
    }
}

/// What the network decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Message lost; the caller sees a timeout.
    Dropped,
    /// Message (and possibly a duplicate) delivered after `latency`.
    Delivered {
        /// Number of copies handed to the servant (1 or 2).
        copies: u32,
        /// One-way latency charged to the virtual clock.
        latency: Duration,
    },
    /// Source and destination are in different partitions.
    Partitioned,
}

/// Running message counters, readable at any time.
#[derive(Debug, Default)]
pub struct NetworkStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    partitioned: AtomicU64,
}

/// A point-in-time copy of [`NetworkStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkStatsSnapshot {
    /// Messages submitted for transmission.
    pub sent: u64,
    /// Messages delivered at least once.
    pub delivered: u64,
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages refused due to a partition.
    pub partitioned: u64,
}

/// A partition scheduled against the virtual clock: between `from`
/// (inclusive) and `until` (exclusive) the named groups cannot reach each
/// other; once the clock passes `until` the window heals itself without
/// anyone calling [`SimulatedNetwork::heal`].
///
/// Because activation is a pure function of [`SimClock::now`], scheduled
/// partitions are exactly as deterministic and replayable as scripted
/// message faults.
#[derive(Debug, Clone)]
pub struct PartitionWindow {
    /// Virtual time at which the partition takes effect (inclusive).
    pub from: Duration,
    /// Virtual time at which the partition heals (exclusive).
    pub until: Duration,
    /// node name → group id for the window; unmentioned nodes share the
    /// implicit group 0.
    groups: HashMap<String, u32>,
}

impl PartitionWindow {
    fn active_at(&self, now: Duration) -> bool {
        self.from <= now && now < self.until
    }

    fn severs(&self, from: &str, to: &str) -> bool {
        let ga = self.groups.get(from).copied().unwrap_or(0);
        let gb = self.groups.get(to).copied().unwrap_or(0);
        ga != gb
    }
}

/// The simulated network shared by all nodes of an [`crate::Orb`].
pub struct SimulatedNetwork {
    config: NetworkConfig,
    rng: Mutex<StdRng>,
    clock: SimClock,
    /// node name → partition group id; empty map means fully connected.
    groups: RwLock<HashMap<String, u32>>,
    /// Virtual-time partition windows; active iff the clock is inside one.
    windows: RwLock<Vec<PartitionWindow>>,
    stats: NetworkStats,
    /// Scripted per-message faults; consulted before the probabilistic model.
    script: RwLock<FaultScript>,
    /// Sequence number of the next remote (non-local) message.
    remote_seq: AtomicU64,
    /// Metrics sink for partition/heal events (None until installed).
    telemetry: RwLock<Option<Telemetry>>,
    /// When the current manual partition began, for duration accounting.
    partition_started_at: Mutex<Option<Duration>>,
}

impl std::fmt::Debug for SimulatedNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedNetwork")
            .field("config", &self.config)
            .field("groups", &*self.groups.read())
            .field("windows", &*self.windows.read())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SimulatedNetwork {
    /// Build a network with the given fault model, sharing `clock`.
    pub fn new(config: NetworkConfig, clock: SimClock) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SimulatedNetwork {
            config,
            rng: Mutex::new(rng),
            clock,
            groups: RwLock::new(HashMap::new()),
            windows: RwLock::new(Vec::new()),
            stats: NetworkStats::default(),
            script: RwLock::new(FaultScript::new()),
            remote_seq: AtomicU64::new(0),
            telemetry: RwLock::new(None),
            partition_started_at: Mutex::new(None),
        }
    }

    /// Attach a telemetry recorder: partition events bump the
    /// `net_partitioned_total` counter and partition durations (in virtual
    /// time) feed the `net_partition_duration` histogram.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.write() = Some(telemetry);
    }

    fn record_partition_start(&self) {
        if let Some(t) = self.telemetry.read().as_ref() {
            t.metrics().incr("net_partitioned_total");
        }
    }

    fn record_partition_duration(&self, duration: Duration) {
        if let Some(t) = self.telemetry.read().as_ref() {
            t.metrics().observe("net_partition_duration", duration);
        }
    }

    /// Install a scripted fault plan. Replaces any previous script; the
    /// remote-message sequence counter keeps running (it is never reset, so
    /// message numbers are stable for the network's lifetime).
    pub fn install_script(&self, script: FaultScript) {
        *self.script.write() = script;
    }

    /// How many remote (fault-model-eligible) messages have been
    /// transmitted so far. Harnesses probe a fault-free run with this to
    /// learn the valid range of [`FaultScript`] message numbers.
    pub fn remote_messages(&self) -> u64 {
        self.remote_seq.load(Ordering::Relaxed)
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Split the network into named groups. Nodes not mentioned in any group
    /// stay together in an implicit group 0 and remain mutually reachable.
    pub fn partition(&self, partition_groups: &[&[&str]]) {
        let mut groups = self.groups.write();
        groups.clear();
        for (i, members) in partition_groups.iter().enumerate() {
            for member in *members {
                groups.insert((*member).to_owned(), (i + 1) as u32);
            }
        }
        self.record_partition_start();
        *self.partition_started_at.lock() = Some(self.clock.now());
    }

    /// Remove all partitions; every node can reach every other again.
    pub fn heal(&self) {
        self.groups.write().clear();
        if let Some(started) = self.partition_started_at.lock().take() {
            self.record_partition_duration(self.clock.now().saturating_sub(started));
        }
    }

    /// Schedule a partition window against the virtual clock: the named
    /// groups become mutually unreachable while `from <= now < until`, then
    /// the window heals itself. The whole lifecycle is known up front, so
    /// the partition counter and duration histogram are fed immediately —
    /// virtual time makes the duration exact, not an estimate.
    pub fn schedule_partition(&self, from: Duration, until: Duration, groups: &[&[&str]]) {
        let mut map = HashMap::new();
        for (i, members) in groups.iter().enumerate() {
            for member in *members {
                map.insert((*member).to_owned(), (i + 1) as u32);
            }
        }
        self.windows.write().push(PartitionWindow { from, until, groups: map });
        self.record_partition_start();
        self.record_partition_duration(until.saturating_sub(from));
    }

    /// Drop every scheduled partition window (active or not).
    pub fn clear_partitions(&self) {
        self.windows.write().clear();
    }

    /// The scheduled partition windows, in insertion order.
    pub fn partition_windows(&self) -> Vec<PartitionWindow> {
        self.windows.read().clone()
    }

    /// Whether a message from `from` can currently reach `to`: both the
    /// manual partition groups and any clock-active scheduled window must
    /// agree the pair is connected.
    pub fn reachable(&self, from: &str, to: &str) -> bool {
        {
            let groups = self.groups.read();
            let ga = groups.get(from).copied().unwrap_or(0);
            let gb = groups.get(to).copied().unwrap_or(0);
            if ga != gb {
                return false;
            }
        }
        let now = self.clock.now();
        !self
            .windows
            .read()
            .iter()
            .any(|w| w.active_at(now) && w.severs(from, to))
    }

    /// Decide the fate of one message from `from` to `to`, advancing the
    /// virtual clock by the charged latency when the message is delivered.
    pub fn transmit(&self, from: &str, to: &str) -> Delivery {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        if !self.reachable(from, to) {
            self.stats.partitioned.fetch_add(1, Ordering::Relaxed);
            return Delivery::Partitioned;
        }
        // Local (same-node) calls bypass the fault model entirely: they are
        // plain method invocations, as in a real ORB's collocation path.
        if from == to {
            self.stats.delivered.fetch_add(1, Ordering::Relaxed);
            return Delivery::Delivered { copies: 1, latency: Duration::ZERO };
        }
        // Scripted faults name messages by remote sequence number and take
        // precedence over the probabilistic model. Under a zero-probability
        // config (the harness default) the PRNG is never consulted at all,
        // so removing one scripted event leaves every other message's fate
        // unchanged — the property schedule shrinking depends on.
        let seq = self.remote_seq.fetch_add(1, Ordering::Relaxed);
        {
            let script = self.script.read();
            if script.drops.contains(&seq) {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                return Delivery::Dropped;
            }
            if script.duplicates.contains(&seq) {
                let latency = self.config.base_latency;
                self.clock.advance(latency);
                self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                return Delivery::Delivered { copies: 2, latency };
            }
        }
        let (dropped, duplicated, jitter_nanos) = {
            let mut rng = self.rng.lock();
            let dropped =
                self.config.drop_probability > 0.0 && rng.gen::<f64>() < self.config.drop_probability;
            let duplicated = !dropped
                && self.config.duplicate_probability > 0.0
                && rng.gen::<f64>() < self.config.duplicate_probability;
            let jitter_nanos = if self.config.jitter.is_zero() {
                0
            } else {
                rng.gen_range(0..=self.config.jitter.as_nanos() as u64)
            };
            (dropped, duplicated, jitter_nanos)
        };
        if dropped {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return Delivery::Dropped;
        }
        let latency = self.config.base_latency + Duration::from_nanos(jitter_nanos);
        self.clock.advance(latency);
        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
        if duplicated {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            Delivery::Delivered { copies: 2, latency }
        } else {
            Delivery::Delivered { copies: 1, latency }
        }
    }

    /// A consistent snapshot of the message counters.
    pub fn stats(&self) -> NetworkStatsSnapshot {
        NetworkStatsSnapshot {
            sent: self.stats.sent.load(Ordering::Relaxed),
            delivered: self.stats.delivered.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            duplicated: self.stats.duplicated.load(Ordering::Relaxed),
            partitioned: self.stats.partitioned.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(config: NetworkConfig) -> SimulatedNetwork {
        SimulatedNetwork::new(config, SimClock::new())
    }

    #[test]
    fn reliable_network_always_delivers_once() {
        let n = net(NetworkConfig::reliable());
        for _ in 0..100 {
            match n.transmit("a", "b") {
                Delivery::Delivered { copies: 1, .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        let s = n.stats();
        assert_eq!(s.sent, 100);
        assert_eq!(s.delivered, 100);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.duplicated, 0);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let n = net(NetworkConfig::lossy(1.0, 0.0, 7));
        for _ in 0..50 {
            assert_eq!(n.transmit("a", "b"), Delivery::Dropped);
        }
        assert_eq!(n.stats().dropped, 50);
    }

    #[test]
    fn duplicate_probability_one_duplicates_everything() {
        let n = net(NetworkConfig::lossy(0.0, 1.0, 7));
        match n.transmit("a", "b") {
            Delivery::Delivered { copies: 2, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(n.stats().duplicated, 1);
    }

    #[test]
    fn same_seed_same_fate_sequence() {
        let observe = |seed| {
            let n = net(NetworkConfig::lossy(0.3, 0.3, seed));
            (0..64).map(|_| n.transmit("a", "b")).collect::<Vec<_>>()
        };
        assert_eq!(observe(42), observe(42));
        assert_ne!(observe(42), observe(43));
    }

    #[test]
    fn latency_advances_clock() {
        let clock = SimClock::new();
        let n = SimulatedNetwork::new(
            NetworkConfig { base_latency: Duration::from_millis(2), ..NetworkConfig::default() },
            clock.clone(),
        );
        n.transmit("a", "b");
        n.transmit("b", "a");
        assert_eq!(clock.now(), Duration::from_millis(4));
    }

    #[test]
    fn local_calls_bypass_faults_and_latency() {
        let clock = SimClock::new();
        let n = SimulatedNetwork::new(NetworkConfig::lossy(1.0, 0.0, 1), clock.clone());
        assert!(matches!(n.transmit("a", "a"), Delivery::Delivered { copies: 1, .. }));
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn partitions_isolate_and_heal() {
        let n = net(NetworkConfig::reliable());
        n.partition(&[&["a", "b"], &["c"]]);
        assert!(n.reachable("a", "b"));
        assert!(!n.reachable("a", "c"));
        assert!(!n.reachable("c", "b"));
        // Unmentioned nodes share the implicit group and reach each other,
        // but not the named groups.
        assert!(n.reachable("x", "y"));
        assert!(!n.reachable("x", "a"));
        assert_eq!(n.transmit("a", "c"), Delivery::Partitioned);
        n.heal();
        assert!(n.reachable("a", "c"));
        assert!(matches!(n.transmit("a", "c"), Delivery::Delivered { .. }));
    }

    #[test]
    fn jitter_draws_from_prng_and_advances_clock() {
        // Regression for the "dead config" suspicion: jitter must actually
        // consume the seeded PRNG (two seeds ⇒ different latency sequences)
        // and charge the virtual clock (latencies are observable), while
        // staying replayable (same seed ⇒ identical latency sequence).
        let observe = |seed: u64| {
            let clock = SimClock::new();
            let n = SimulatedNetwork::new(
                NetworkConfig {
                    base_latency: Duration::from_micros(10),
                    jitter: Duration::from_micros(500),
                    seed,
                    ..NetworkConfig::default()
                },
                clock.clone(),
            );
            (0..32)
                .map(|_| {
                    let before = clock.now();
                    n.transmit("a", "b");
                    clock.now() - before
                })
                .collect::<Vec<_>>()
        };
        let run_a = observe(1);
        let run_a_again = observe(1);
        let run_b = observe(2);
        assert_eq!(run_a, run_a_again, "same seed must replay identical jitter");
        assert_ne!(run_a, run_b, "different seeds must draw different jitter");
        // The clock was genuinely advanced past the base latency at least
        // once (jitter is uniform in [0, 500µs]; 32 draws all being zero
        // would mean the PRNG is not consulted).
        assert!(
            run_a.iter().any(|l| *l > Duration::from_micros(10)),
            "jitter never advanced the clock beyond base latency: dead config"
        );
        // And every charge stays within the configured bound.
        for l in &run_a {
            assert!(*l >= Duration::from_micros(10) && *l <= Duration::from_micros(510));
        }
    }

    #[test]
    fn scripted_drops_and_duplicates_hit_exact_messages() {
        let n = net(NetworkConfig::reliable());
        n.install_script(FaultScript::new().drop_nth(1).duplicate_nth(3));
        let fates: Vec<Delivery> = (0..5).map(|_| n.transmit("a", "b")).collect();
        assert!(matches!(fates[0], Delivery::Delivered { copies: 1, .. }));
        assert_eq!(fates[1], Delivery::Dropped);
        assert!(matches!(fates[2], Delivery::Delivered { copies: 1, .. }));
        assert!(matches!(fates[3], Delivery::Delivered { copies: 2, .. }));
        assert!(matches!(fates[4], Delivery::Delivered { copies: 1, .. }));
        assert_eq!(n.remote_messages(), 5);
    }

    #[test]
    fn local_messages_do_not_consume_script_numbers() {
        let n = net(NetworkConfig::reliable());
        n.install_script(FaultScript::new().drop_nth(0));
        assert!(matches!(n.transmit("a", "a"), Delivery::Delivered { .. }));
        assert_eq!(n.remote_messages(), 0, "collocated calls are unnumbered");
        assert_eq!(n.transmit("a", "b"), Delivery::Dropped);
    }

    #[test]
    fn script_overrides_probabilistic_model() {
        // A 100%-drop network still delivers (twice) the message a script
        // names as a duplicate: scripted events take precedence.
        let n = net(NetworkConfig::lossy(1.0, 0.0, 11));
        n.install_script(FaultScript::new().duplicate_nth(0));
        assert!(matches!(n.transmit("a", "b"), Delivery::Delivered { copies: 2, .. }));
        assert_eq!(n.transmit("a", "b"), Delivery::Dropped);
    }

    #[test]
    fn scheduled_windows_partition_and_self_heal_with_the_clock() {
        let clock = SimClock::new();
        let n = SimulatedNetwork::new(NetworkConfig::reliable(), clock.clone());
        n.schedule_partition(
            Duration::from_millis(5),
            Duration::from_millis(10),
            &[&["a"], &["b"]],
        );
        // Before the window opens: connected.
        assert!(n.reachable("a", "b"));
        clock.advance(Duration::from_millis(5));
        // Inside the window: severed, but bystanders are untouched.
        assert!(!n.reachable("a", "b"));
        assert!(n.reachable("x", "y"));
        assert_eq!(n.transmit("a", "b"), Delivery::Partitioned);
        // At `until` the window has healed itself — no heal() call needed.
        clock.advance(Duration::from_millis(5));
        assert!(n.reachable("a", "b"));
        assert!(matches!(n.transmit("a", "b"), Delivery::Delivered { .. }));
    }

    #[test]
    fn partition_events_feed_telemetry() {
        let clock = SimClock::new();
        let n = SimulatedNetwork::new(NetworkConfig::reliable(), clock.clone());
        let t = Telemetry::new();
        n.set_telemetry(t.clone());
        // A scheduled window records its (a-priori exact) duration at once.
        n.schedule_partition(
            Duration::from_millis(1),
            Duration::from_millis(4),
            &[&["a"], &["b"]],
        );
        // A manual partition measures start→heal on the virtual clock.
        n.partition(&[&["a"], &["c"]]);
        clock.advance(Duration::from_millis(7));
        n.heal();
        assert_eq!(t.metrics().counter_value("net_partitioned_total"), 2);
        assert_eq!(t.metrics().histogram_count("net_partition_duration"), 2);
        let rendered = t.metrics().render_prometheus();
        assert!(rendered.contains("net_partitioned_total 2"));
        assert!(rendered.contains("net_partition_duration"));
    }

    #[test]
    fn jitter_bounded_by_config() {
        let clock = SimClock::new();
        let n = SimulatedNetwork::new(
            NetworkConfig {
                base_latency: Duration::from_micros(10),
                jitter: Duration::from_micros(5),
                seed: 3,
                ..NetworkConfig::default()
            },
            clock.clone(),
        );
        for i in 1..=100u32 {
            let before = clock.now();
            n.transmit("a", "b");
            let charged = clock.now() - before;
            assert!(charged >= Duration::from_micros(10), "message {i} too fast");
            assert!(charged <= Duration::from_micros(15), "message {i} too slow");
        }
    }
}
