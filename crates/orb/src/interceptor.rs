//! Request interceptors: the hook that lets middleware services piggyback
//! state on every invocation without application cooperation.
//!
//! The Activity Service registers a client interceptor that stamps the
//! current activity context into each outgoing request and a server
//! interceptor that establishes that context on the receiving node before
//! the servant runs (paper §3: "permitting such transactions to span a
//! network of systems connected indirectly by some distribution
//! infrastructure").

use crate::error::OrbError;
use crate::message::{Reply, Request};

/// Client-side interception points.
///
/// Interceptors run in registration order on the way out and in reverse
/// order on the way back.
pub trait ClientRequestInterceptor: Send + Sync {
    /// Name used in diagnostics.
    fn name(&self) -> &str;

    /// Called before the request leaves the client node. May attach service
    /// contexts or veto the call by returning an error.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the invocation with
    /// [`OrbError::InterceptorVeto`].
    fn send_request(&self, request: &mut Request) -> Result<(), OrbError> {
        let _ = request;
        Ok(())
    }

    /// Called after a reply (successful or not) returns to the client node.
    fn receive_reply(&self, request: &Request, reply: &mut Reply) {
        let _ = (request, reply);
    }
}

/// Server-side interception points.
pub trait ServerRequestInterceptor: Send + Sync {
    /// Name used in diagnostics.
    fn name(&self) -> &str;

    /// Called on the server node before the servant dispatches. May read
    /// service contexts and establish thread/ambient state.
    ///
    /// # Errors
    ///
    /// Returning an error rejects the request with
    /// [`OrbError::InterceptorVeto`].
    fn receive_request(&self, request: &Request) -> Result<(), OrbError> {
        let _ = request;
        Ok(())
    }

    /// Called after the servant ran (even when it failed); may attach reply
    /// contexts and must tear down whatever `receive_request` established.
    fn send_reply(&self, request: &Request, reply: &mut Reply) {
        let _ = (request, reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    struct Stamp;
    impl ClientRequestInterceptor for Stamp {
        fn name(&self) -> &str {
            "stamp"
        }
        fn send_request(&self, request: &mut Request) -> Result<(), OrbError> {
            request.contexts_mut().set("stamp", Value::Bool(true));
            Ok(())
        }
    }

    struct Veto;
    impl ClientRequestInterceptor for Veto {
        fn name(&self) -> &str {
            "veto"
        }
        fn send_request(&self, _request: &mut Request) -> Result<(), OrbError> {
            Err(OrbError::InterceptorVeto("no".into()))
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        struct Passive;
        impl ClientRequestInterceptor for Passive {
            fn name(&self) -> &str {
                "passive"
            }
        }
        impl ServerRequestInterceptor for Passive {
            fn name(&self) -> &str {
                "passive"
            }
        }
        let mut req = Request::new("x");
        assert!(ClientRequestInterceptor::send_request(&Passive, &mut req).is_ok());
        assert!(ServerRequestInterceptor::receive_request(&Passive, &req).is_ok());
    }

    #[test]
    fn stamping_interceptor_mutates_request() {
        let mut req = Request::new("x");
        Stamp.send_request(&mut req).unwrap();
        assert_eq!(req.contexts().get("stamp").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn veto_returns_error() {
        let mut req = Request::new("x");
        assert!(Veto.send_request(&mut req).is_err());
    }
}
