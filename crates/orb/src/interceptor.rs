//! Request interceptors: the hook that lets middleware services piggyback
//! state on every invocation without application cooperation.
//!
//! The Activity Service registers a client interceptor that stamps the
//! current activity context into each outgoing request and a server
//! interceptor that establishes that context on the receiving node before
//! the servant runs (paper §3: "permitting such transactions to span a
//! network of systems connected indirectly by some distribution
//! infrastructure").

use crate::error::OrbError;
use crate::message::{Reply, Request};
use crate::value::Value;
use telemetry::{
    parse_wire_stamp, wire_stamp, CausalityPlane, RecordKind, SpanContext, Telemetry,
    LAMPORT_CONTEXT_KEY, SPAN_CONTEXT_KEY,
};

/// Client-side interception points.
///
/// Interceptors run in registration order on the way out and in reverse
/// order on the way back.
pub trait ClientRequestInterceptor: Send + Sync {
    /// Name used in diagnostics.
    fn name(&self) -> &str;

    /// Called before the request leaves the client node. May attach service
    /// contexts or veto the call by returning an error.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the invocation with
    /// [`OrbError::InterceptorVeto`].
    fn send_request(&self, request: &mut Request) -> Result<(), OrbError> {
        let _ = request;
        Ok(())
    }

    /// Called after a reply (successful or not) returns to the client node.
    fn receive_reply(&self, request: &Request, reply: &mut Reply) {
        let _ = (request, reply);
    }

    /// Called when the invocation fails without a reply leg (transport
    /// loss, partition, servant failure, or a later interceptor's veto) —
    /// the counterpart of `receive_reply` for the error path, so
    /// interceptors that open per-request state in `send_request` can
    /// always close it.
    fn receive_exception(&self, request: &Request, error: &OrbError) {
        let _ = (request, error);
    }
}

/// Server-side interception points.
pub trait ServerRequestInterceptor: Send + Sync {
    /// Name used in diagnostics.
    fn name(&self) -> &str;

    /// Called on the server node before the servant dispatches. May read
    /// service contexts and establish thread/ambient state.
    ///
    /// # Errors
    ///
    /// Returning an error rejects the request with
    /// [`OrbError::InterceptorVeto`].
    fn receive_request(&self, request: &Request) -> Result<(), OrbError> {
        let _ = request;
        Ok(())
    }

    /// Called after the servant ran (even when it failed); may attach reply
    /// contexts and must tear down whatever `receive_request` established.
    fn send_reply(&self, request: &Request, reply: &mut Reply) {
        let _ = (request, reply);
    }
}

/// Client half of distributed-span propagation: opens a `call:` span per
/// attempt (a child of the calling thread's ambient span, so retries nest
/// under their logical call) and stamps its [`SpanContext`] into the
/// request's service contexts under [`SPAN_CONTEXT_KEY`] — the same §3
/// piggybacking mechanism the Activity Service uses for activity
/// contexts. The span closes in `receive_reply` on success and in
/// `receive_exception` on every failure path.
pub struct SpanClientInterceptor {
    telemetry: Telemetry,
}

impl SpanClientInterceptor {
    pub fn new(telemetry: Telemetry) -> Self {
        SpanClientInterceptor { telemetry }
    }

    fn stamped_span(&self, request: &Request) -> Option<SpanContext> {
        request
            .contexts()
            .get(SPAN_CONTEXT_KEY)
            .and_then(Value::as_str)
            .and_then(SpanContext::from_wire)
    }
}

impl ClientRequestInterceptor for SpanClientInterceptor {
    fn name(&self) -> &str {
        "telemetry-span-client"
    }

    fn send_request(&self, request: &mut Request) -> Result<(), OrbError> {
        if !self.telemetry.is_enabled() {
            return Ok(());
        }
        let span = self
            .telemetry
            .start_span(&format!("call:{}", request.operation()));
        if let Some(id) = request.delivery_id() {
            self.telemetry.set_attr(&span, "delivery_id", id);
        }
        if span.is_recording() {
            request
                .contexts_mut()
                .set(SPAN_CONTEXT_KEY, Value::Str(span.to_wire()));
        }
        Ok(())
    }

    fn receive_reply(&self, request: &Request, _reply: &mut Reply) {
        if let Some(span) = self.stamped_span(request) {
            self.telemetry.end(&span);
        }
    }

    fn receive_exception(&self, request: &Request, error: &OrbError) {
        if let Some(span) = self.stamped_span(request) {
            self.telemetry.set_attr(&span, "error", &error.to_string());
            self.telemetry.end(&span);
        }
    }
}

/// Server half of distributed-span propagation: reads the propagated
/// [`SpanContext`] before the servant dispatches, opens a `serve:` span
/// *continuing the caller's trace id*, and makes it the receiving
/// thread's ambient parent — so whatever the servant does (nested
/// invocations, subordinate-coordinator fan-out under interposition)
/// stays in the superior's trace. `send_reply` tears the ambient state
/// down and closes the span, mirroring the activity-context server
/// interceptor.
pub struct SpanServerInterceptor {
    telemetry: Telemetry,
}

impl SpanServerInterceptor {
    pub fn new(telemetry: Telemetry) -> Self {
        SpanServerInterceptor { telemetry }
    }

    fn remote_span(&self, request: &Request) -> Option<SpanContext> {
        request
            .contexts()
            .get(SPAN_CONTEXT_KEY)
            .and_then(Value::as_str)
            .and_then(SpanContext::from_wire)
    }
}

impl ServerRequestInterceptor for SpanServerInterceptor {
    fn name(&self) -> &str {
        "telemetry-span-server"
    }

    fn receive_request(&self, request: &Request) -> Result<(), OrbError> {
        if !self.telemetry.is_enabled() {
            return Ok(());
        }
        let Some(remote) = self.remote_span(request) else {
            return Ok(());
        };
        let span = self
            .telemetry
            .adopt(&remote, &format!("serve:{}", request.operation()));
        if let Some(id) = request.delivery_id() {
            self.telemetry.set_attr(&span, "delivery_id", id);
        }
        self.telemetry.enter(span);
        Ok(())
    }

    fn send_reply(&self, request: &Request, _reply: &mut Reply) {
        if !self.telemetry.is_enabled() || self.remote_span(request).is_none() {
            return;
        }
        if let Some(span) = self.telemetry.current() {
            self.telemetry.end(&span);
        }
        self.telemetry.exit();
    }
}

/// Client half of the §16 causal plane: ticks the source node's Lamport
/// clock once per send, stamps `"{lamport} {token}"` into the request's
/// service contexts under [`LAMPORT_CONTEXT_KEY`], and mirrors a
/// `wire-send` event (carrying the exact on-wire stamp) into the source
/// node's flight recorder. The token — `{delivery_id}@{lamport}` — is
/// what [`telemetry::CausalMerge`] matches send→receive pairs by: the
/// delivery id names the logical call, the send stamp disambiguates
/// retries so no cross-attempt edges arise. `receive_reply` observes the
/// reply leg's stamp (receive = max + 1).
pub struct LamportClientInterceptor {
    plane: CausalityPlane,
}

impl LamportClientInterceptor {
    pub fn new(plane: CausalityPlane) -> Self {
        LamportClientInterceptor { plane }
    }
}

impl ClientRequestInterceptor for LamportClientInterceptor {
    fn name(&self) -> &str {
        "telemetry-lamport-client"
    }

    fn send_request(&self, request: &mut Request) -> Result<(), OrbError> {
        let (Some(from), Some(to)) = (
            request.source().map(str::to_owned),
            request.target().map(str::to_owned),
        ) else {
            // Unrouted request (constructed outside the invoke path):
            // nothing to stamp against.
            return Ok(());
        };
        let lamport = self.plane.clock(&from).tick();
        let token = format!("{}@{lamport}", request.delivery_id().unwrap_or("-"));
        request
            .contexts_mut()
            .set(LAMPORT_CONTEXT_KEY, Value::Str(wire_stamp(lamport, &token)));
        if let Some(recorder) = self.plane.recorder(&from) {
            let operation = request.operation().to_owned();
            recorder.record_stamped(RecordKind::WireSend, lamport, || {
                format!("{token} {operation} {from}->{to}")
            });
        }
        Ok(())
    }

    fn receive_reply(&self, request: &Request, reply: &mut Reply) {
        let Some(from) = request.source() else { return };
        let Some((remote, token)) = reply
            .contexts
            .get(LAMPORT_CONTEXT_KEY)
            .and_then(Value::as_str)
            .and_then(parse_wire_stamp)
        else {
            return;
        };
        let lamport = self.plane.clock(from).observe(remote);
        if let Some(recorder) = self.plane.recorder(from) {
            let token = token.to_owned();
            let operation = request.operation().to_owned();
            let to = request.target().unwrap_or("?").to_owned();
            recorder.record_stamped(RecordKind::WireRecv, lamport, || {
                format!("{token} reply:{operation} {to}->{from}")
            });
        }
    }
}

/// Server half of the §16 causal plane. `receive_request` observes the
/// request's wire stamp on the target node's clock (receive = max + 1)
/// and mirrors a `wire-recv` carrying the same token, so the merge can
/// pair it with the client's `wire-send`. `send_reply` ticks the target
/// node's clock and stamps the reply leg with a fresh token
/// (`{delivery_id}@{lamport}r`): each redelivered copy stamps its own
/// reply send, but only the copy whose contexts ride back is matched by
/// the client's receive — duplicated reply sends stay unmatched, exactly
/// like replies that never traveled.
pub struct LamportServerInterceptor {
    plane: CausalityPlane,
}

impl LamportServerInterceptor {
    pub fn new(plane: CausalityPlane) -> Self {
        LamportServerInterceptor { plane }
    }

    fn request_stamp(request: &Request) -> Option<(u64, &str)> {
        request
            .contexts()
            .get(LAMPORT_CONTEXT_KEY)
            .and_then(Value::as_str)
            .and_then(parse_wire_stamp)
    }
}

impl ServerRequestInterceptor for LamportServerInterceptor {
    fn name(&self) -> &str {
        "telemetry-lamport-server"
    }

    fn receive_request(&self, request: &Request) -> Result<(), OrbError> {
        let Some(to) = request.target() else { return Ok(()) };
        let Some((remote, token)) = Self::request_stamp(request) else {
            return Ok(());
        };
        let lamport = self.plane.clock(to).observe(remote);
        if let Some(recorder) = self.plane.recorder(to) {
            let token = token.to_owned();
            let operation = request.operation().to_owned();
            let from = request.source().unwrap_or("?").to_owned();
            let to = to.to_owned();
            recorder.record_stamped(RecordKind::WireRecv, lamport, || {
                format!("{token} {operation} {from}->{to}")
            });
        }
        Ok(())
    }

    fn send_reply(&self, request: &Request, reply: &mut Reply) {
        let (Some(from), Some(to)) = (request.source(), request.target()) else {
            return;
        };
        // Only stamp replies to requests that carried a stamp: the causal
        // plane is end-to-end or not at all.
        if Self::request_stamp(request).is_none() {
            return;
        }
        let lamport = self.plane.clock(to).tick();
        let token = format!("{}@{lamport}r", request.delivery_id().unwrap_or("-"));
        reply
            .contexts
            .set(LAMPORT_CONTEXT_KEY, Value::Str(wire_stamp(lamport, &token)));
        if let Some(recorder) = self.plane.recorder(to) {
            let operation = request.operation().to_owned();
            let (from, to) = (from.to_owned(), to.to_owned());
            recorder.record_stamped(RecordKind::WireSend, lamport, || {
                format!("{token} reply:{operation} {to}->{from}")
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    struct Stamp;
    impl ClientRequestInterceptor for Stamp {
        fn name(&self) -> &str {
            "stamp"
        }
        fn send_request(&self, request: &mut Request) -> Result<(), OrbError> {
            request.contexts_mut().set("stamp", Value::Bool(true));
            Ok(())
        }
    }

    struct Veto;
    impl ClientRequestInterceptor for Veto {
        fn name(&self) -> &str {
            "veto"
        }
        fn send_request(&self, _request: &mut Request) -> Result<(), OrbError> {
            Err(OrbError::InterceptorVeto("no".into()))
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        struct Passive;
        impl ClientRequestInterceptor for Passive {
            fn name(&self) -> &str {
                "passive"
            }
        }
        impl ServerRequestInterceptor for Passive {
            fn name(&self) -> &str {
                "passive"
            }
        }
        let mut req = Request::new("x");
        assert!(ClientRequestInterceptor::send_request(&Passive, &mut req).is_ok());
        assert!(ServerRequestInterceptor::receive_request(&Passive, &req).is_ok());
    }

    #[test]
    fn stamping_interceptor_mutates_request() {
        let mut req = Request::new("x");
        Stamp.send_request(&mut req).unwrap();
        assert_eq!(req.contexts().get("stamp").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn veto_returns_error() {
        let mut req = Request::new("x");
        assert!(Veto.send_request(&mut req).is_err());
    }
}
