//! A reusable worker pool for parallel fan-out with deterministic,
//! in-order result collation.
//!
//! Both coordination hot paths in this repo — the Activity Service's
//! fig. 5 signal loop and the OTS two-phase commit — transmit to a set
//! of independent participants and then consume the results *in
//! registration order* so protocol decisions and traces stay
//! deterministic. This module provides the shared machinery:
//!
//! * [`DispatchConfig`] — how wide to fan out (`1` = exact serial
//!   legacy behaviour, the default is the machine's available
//!   parallelism);
//! * [`WorkerPool`] — long-lived worker threads behind a global,
//!   lazily-created instance ([`WorkerPool::global`]), so short-lived
//!   coordinators never pay thread spawn/teardown;
//! * [`WorkerPool::scatter`] — submit a batch of indexed tasks and get
//!   an [`OrderedResults`] iterator that yields outcomes in submission
//!   order as they become available;
//! * [`CancelToken`] — cooperative cancellation: tasks not yet started
//!   when the token fires are skipped (the `EarlyBreak` optimisation:
//!   once a protocol engine asks for the next signal, outstanding
//!   deliveries of the current one are abandoned).
//!
//! Waiting collators **help**: while blocked on a result, the waiting
//! thread pulls queued jobs (from any batch) and runs them itself. This
//! makes nested dispatch — an action or resource that itself drives
//! another coordinator — deadlock-free even when every worker thread is
//! busy, and lets a zero-contention benchmark saturate the machine.
//!
//! Panic semantics mirror serial execution: a task panic is captured on
//! the worker and re-raised on the collating thread at the panicking
//! task's position in the order. Panics in tasks past a cancellation
//! point are discarded along with their results (speculative deliveries
//! are covered by the at-least-once/idempotence contract, §3.4 of the
//! paper).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// How a coordinator fans work out to its participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchConfig {
    workers: usize,
}

impl DispatchConfig {
    /// Fan out across the machine's available parallelism.
    pub fn parallel() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        DispatchConfig { workers }
    }

    /// Exact legacy serial behaviour: everything runs inline on the
    /// calling thread, in registration order, stopping at the first
    /// early break. Deterministic-replay tests use this.
    pub fn serial() -> Self {
        DispatchConfig { workers: 1 }
    }

    /// Fan out across at most `workers` concurrent tasks (`1` = serial).
    pub fn with_workers(workers: usize) -> Self {
        DispatchConfig { workers: workers.max(1) }
    }

    /// Configured fan-out width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether this config requests the inline serial path.
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig::parallel()
    }
}

/// Cooperative cancellation flag shared between a collator and the
/// batch's not-yet-started tasks.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire the token: tasks that have not started yet are skipped.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// What became of one scattered task.
pub enum TaskOutcome<T> {
    /// The task ran to completion.
    Done(T),
    /// The task was skipped because its batch was cancelled first.
    Cancelled,
    /// The task panicked; the payload re-raises at the collation point.
    Panicked(Box<dyn std::any::Any + Send>),
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A set of long-lived worker threads consuming a shared job queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers).finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orb-dispatch-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn dispatch worker")
            })
            .collect();
        WorkerPool { shared, workers, handles: Mutex::new(handles) }
    }

    /// The process-wide shared pool, created on first use and sized to
    /// the machine's available parallelism. Coordinators use this so
    /// that creating a coordinator never spawns threads.
    pub fn global() -> &'static WorkerPool {
        WorkerPool::shared(DispatchConfig::parallel().workers())
    }

    /// A process-wide pool with exactly `workers` threads, created on
    /// first use and cached for the process lifetime. Dispatch honours
    /// [`DispatchConfig::workers`] through this: participant calls model
    /// *remote invocations*, so a fan-out wider than the core count is
    /// meaningful — the threads overlap latency, not CPU.
    pub fn shared(workers: usize) -> &'static WorkerPool {
        static POOLS: OnceLock<Mutex<HashMap<usize, &'static WorkerPool>>> = OnceLock::new();
        let workers = workers.max(1);
        let mut pools = POOLS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        pools
            .entry(workers)
            .or_insert_with(|| Box::leak(Box::new(WorkerPool::new(workers))))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueue one job.
    fn submit(&self, job: Job) {
        let mut queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.push_back(job);
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Pop and run one queued job on the calling thread, if any is
    /// waiting. Used by collators to help while they block, which keeps
    /// nested dispatch deadlock-free.
    fn try_run_one(&self) -> bool {
        let job = {
            let mut queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.pop_front()
        };
        match job {
            Some(job) => {
                job();
                true
            }
            None => false,
        }
    }

    /// Run every task on the pool, tagged with its index. The returned
    /// [`OrderedResults`] yields one [`TaskOutcome`] per task **in
    /// submission order**, blocking (and helping with queued work) as
    /// needed. Tasks observe `cancel` before starting: once it fires,
    /// unstarted tasks report [`TaskOutcome::Cancelled`] without running.
    pub fn scatter<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
        cancel: &CancelToken,
    ) -> OrderedResults<'_, T> {
        let total = tasks.len();
        let (tx, rx): (Sender<(usize, TaskOutcome<T>)>, Receiver<_>) = std::sync::mpsc::channel();
        for (index, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            let cancel = cancel.clone();
            self.submit(Box::new(move || {
                let outcome = if cancel.is_cancelled() {
                    TaskOutcome::Cancelled
                } else {
                    match catch_unwind(AssertUnwindSafe(task)) {
                        Ok(value) => TaskOutcome::Done(value),
                        Err(payload) => TaskOutcome::Panicked(payload),
                    }
                };
                // The collator may have stopped listening (early break);
                // a closed channel is expected then.
                let _ = tx.send((index, outcome));
            }));
        }
        OrderedResults { pool: self, rx, buffer: BTreeMap::new(), next: 0, total }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let handles = std::mem::take(
            &mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Jobs catch their own panics; this is a backstop so a worker
        // never dies and strands the queue.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// In-order consumer for one [`WorkerPool::scatter`] batch.
///
/// Dropping it early (after a cancellation) is fine: outstanding tasks
/// find the channel closed and their results are discarded.
pub struct OrderedResults<'p, T> {
    pool: &'p WorkerPool,
    rx: Receiver<(usize, TaskOutcome<T>)>,
    buffer: BTreeMap<usize, TaskOutcome<T>>,
    next: usize,
    total: usize,
}

impl<T> Iterator for OrderedResults<'_, T> {
    type Item = TaskOutcome<T>;

    /// The next task's outcome, in submission order. Returns `None`
    /// once every task has been yielded. Blocks until the outcome is
    /// available, running queued pool jobs on this thread while waiting.
    fn next(&mut self) -> Option<TaskOutcome<T>> {
        if self.next >= self.total {
            return None;
        }
        loop {
            if let Some(outcome) = self.buffer.remove(&self.next) {
                self.next += 1;
                return Some(outcome);
            }
            match self.rx.try_recv() {
                Ok((index, outcome)) => {
                    self.buffer.insert(index, outcome);
                }
                Err(TryRecvError::Empty) => {
                    // Help with queued work instead of spinning; park
                    // briefly only when the queue is dry too.
                    if !self.pool.try_run_one() {
                        match self.rx.recv_timeout(Duration::from_micros(100)) {
                            Ok((index, outcome)) => {
                                self.buffer.insert(index, outcome);
                            }
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => {
                                unreachable!(
                                    "scatter task {} vanished without reporting", self.next
                                );
                            }
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    unreachable!("scatter task {} vanished without reporting", self.next);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scatter_collates_in_submission_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| {
                Box::new(move || {
                    // Finish later tasks first to force reorder buffering.
                    std::thread::sleep(Duration::from_micros(((32 - i) * 50) as u64));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let mut results = pool.scatter(tasks, &CancelToken::new());
        for expect in 0..32 {
            match results.next() {
                Some(TaskOutcome::Done(i)) => assert_eq!(i, expect),
                _ => panic!("task {expect} did not complete"),
            }
        }
        assert!(results.next().is_none());
    }

    #[test]
    fn cancellation_skips_unstarted_tasks() {
        let pool = WorkerPool::new(1);
        let cancel = CancelToken::new();
        let ran = Arc::new(AtomicUsize::new(0));
        // One slow task holds the single worker; the rest are queued
        // behind it when the token fires.
        let mut tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = Vec::new();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            let started = Arc::clone(&started);
            tasks.push(Box::new(move || {
                started.store(true, Ordering::SeqCst);
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                ran.fetch_add(1, Ordering::SeqCst);
                0
            }));
        }
        for i in 1..8usize {
            let ran = Arc::clone(&ran);
            tasks.push(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
                i
            }));
        }
        let mut results = pool.scatter(tasks, &cancel);
        // Only cancel once the worker is inside task 0, so index 0 is
        // deterministically Done and the rest deterministically queued.
        while !started.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        cancel.cancel();
        // Release the gate; the queued tasks now see the fired token.
        {
            let (lock, cv) = &*gate.clone();
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        // First task ran (it started before the cancel); collation
        // must still see every index.
        assert!(matches!(results.next(), Some(TaskOutcome::Done(0))));
        let mut cancelled = 0;
        for outcome in results {
            if matches!(outcome, TaskOutcome::Cancelled) {
                cancelled += 1;
            }
        }
        assert!(cancelled > 0, "queued tasks should have been skipped");
        assert!(ran.load(Ordering::SeqCst) < 8, "not every task may run after cancel");
    }

    #[test]
    fn panics_surface_at_the_right_index() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 10),
            Box::new(|| panic!("boom at 1")),
            Box::new(|| 12),
        ];
        let mut results = pool.scatter(tasks, &CancelToken::new());
        assert!(matches!(results.next(), Some(TaskOutcome::Done(10))));
        match results.next() {
            Some(TaskOutcome::Panicked(payload)) => {
                let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "boom at 1");
            }
            _ => panic!("expected the panic at index 1"),
        }
        assert!(matches!(results.next(), Some(TaskOutcome::Done(12))));
    }

    #[test]
    fn nested_scatter_does_not_deadlock() {
        // Every worker blocks in a collation that needs further pool
        // work; progress then relies on collators helping.
        let pool = WorkerPool::global();
        let width = pool.workers() + 2;
        let outer: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..width)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> usize + Send>> =
                        (0..4).map(|j| Box::new(move || i * 10 + j) as _).collect();
                    let mut results = WorkerPool::global().scatter(inner, &CancelToken::new());
                    let mut sum = 0;
                    while let Some(TaskOutcome::Done(v)) = results.next() {
                        sum += v;
                    }
                    sum
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let mut results = pool.scatter(outer, &CancelToken::new());
        for i in 0..width {
            match results.next() {
                Some(TaskOutcome::Done(sum)) => assert_eq!(sum, i * 40 + 6),
                _ => panic!("outer task {i} failed"),
            }
        }
    }

    #[test]
    fn dispatch_config_defaults() {
        assert!(DispatchConfig::serial().is_serial());
        assert_eq!(DispatchConfig::with_workers(0).workers(), 1);
        assert!(DispatchConfig::default().workers() >= 1);
        assert!(!DispatchConfig::with_workers(8).is_serial());
    }
}
