//! A simple naming service binding names to object references.
//!
//! This is the substrate for the paper's §2.1(ii) motivating example: a name
//! server whose updates, performed from inside an application transaction,
//! should *not* be undone if that transaction later aborts.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::error::OrbError;
use crate::object::ObjectRef;

/// A process-wide name → [`ObjectRef`] registry.
#[derive(Debug, Default)]
pub struct NameRegistry {
    bindings: RwLock<BTreeMap<String, ObjectRef>>,
}

impl NameRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `name` to `object`.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::AlreadyBound`] if the name is taken; use
    /// [`NameRegistry::rebind`] to replace.
    pub fn bind(&self, name: impl Into<String>, object: ObjectRef) -> Result<(), OrbError> {
        let name = name.into();
        let mut bindings = self.bindings.write();
        if bindings.contains_key(&name) {
            return Err(OrbError::AlreadyBound(name));
        }
        bindings.insert(name, object);
        Ok(())
    }

    /// Bind `name` to `object`, replacing any existing binding; returns the
    /// previous binding if there was one.
    pub fn rebind(&self, name: impl Into<String>, object: ObjectRef) -> Option<ObjectRef> {
        self.bindings.write().insert(name.into(), object)
    }

    /// Resolve a name.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::NameNotBound`] for unknown names.
    pub fn resolve(&self, name: &str) -> Result<ObjectRef, OrbError> {
        self.bindings
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| OrbError::NameNotBound(name.to_owned()))
    }

    /// Remove a binding, returning it if present.
    pub fn unbind(&self, name: &str) -> Option<ObjectRef> {
        self.bindings.write().remove(name)
    }

    /// All bound names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.bindings.read().keys().cloned().collect()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.read().len()
    }

    /// Whether the registry has no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;

    fn obj(n: u64) -> ObjectRef {
        ObjectRef::new(ObjectId::new(1, n), "node", "I")
    }

    #[test]
    fn bind_resolve_unbind() {
        let reg = NameRegistry::new();
        assert!(reg.is_empty());
        reg.bind("svc/a", obj(1)).unwrap();
        assert_eq!(reg.resolve("svc/a").unwrap(), obj(1));
        assert!(matches!(reg.bind("svc/a", obj(2)), Err(OrbError::AlreadyBound(_))));
        assert_eq!(reg.rebind("svc/a", obj(2)), Some(obj(1)));
        assert_eq!(reg.resolve("svc/a").unwrap(), obj(2));
        assert_eq!(reg.unbind("svc/a"), Some(obj(2)));
        assert!(matches!(reg.resolve("svc/a"), Err(OrbError::NameNotBound(_))));
        assert_eq!(reg.unbind("svc/a"), None);
    }

    #[test]
    fn names_sorted() {
        let reg = NameRegistry::new();
        reg.bind("b", obj(1)).unwrap();
        reg.bind("a", obj(2)).unwrap();
        reg.bind("c", obj(3)).unwrap();
        assert_eq!(reg.names(), vec!["a", "b", "c"]);
        assert_eq!(reg.len(), 3);
    }
}
