//! Nodes, the ORB core, and the invocation path.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::RwLock;

use std::time::Duration;

use telemetry::{CausalityPlane, Telemetry};

use crate::clock::SimClock;
use crate::detector::FailureDetector;
use crate::error::OrbError;
use crate::interceptor::{
    ClientRequestInterceptor, LamportClientInterceptor, LamportServerInterceptor,
    ServerRequestInterceptor, SpanClientInterceptor, SpanServerInterceptor,
};
use crate::message::{Reply, Request};
use crate::network::{Delivery, NetworkConfig, SimulatedNetwork};
use crate::object::{ObjectId, ObjectRef, Servant};
use crate::registry::NameRegistry;
use crate::retry::RetryPolicy;

/// Source name used when a caller invokes straight through [`Orb::invoke`]
/// without identifying a node (e.g. a test driver outside the simulation).
pub const EXTERNAL_CALLER: &str = "<external>";

struct NodeInner {
    name: String,
    seq: u64,
    orb: Weak<OrbInner>,
    servants: RwLock<HashMap<ObjectId, Arc<dyn Servant>>>,
    object_seq: AtomicU64,
}

impl fmt::Debug for NodeInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("seq", &self.seq)
            .field("servants", &self.servants.read().len())
            .finish()
    }
}

/// A handle to one simulated process/host in the distributed system.
///
/// Objects ([`Servant`]s) are activated on a node and invoked through the
/// [`ObjectRef`]s the activation returns. Cloning the handle does not clone
/// the node.
#[derive(Debug, Clone)]
pub struct Node {
    inner: Arc<NodeInner>,
}

impl Node {
    /// This node's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Activate `servant` under the given interface name, returning a
    /// location-transparent reference to it.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::NodeNotFound`] if the owning ORB has been dropped.
    pub fn activate<S: Servant + 'static>(
        &self,
        interface: impl Into<String>,
        servant: S,
    ) -> Result<ObjectRef, OrbError> {
        self.activate_arc(interface, Arc::new(servant))
    }

    /// Like [`Node::activate`] but shares an existing `Arc`-ed servant.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::NodeNotFound`] if the owning ORB has been dropped.
    pub fn activate_arc(
        &self,
        interface: impl Into<String>,
        servant: Arc<dyn Servant>,
    ) -> Result<ObjectRef, OrbError> {
        if self.inner.orb.upgrade().is_none() {
            return Err(OrbError::NodeNotFound(self.inner.name.clone()));
        }
        let id = ObjectId::new(
            self.inner.seq,
            self.inner.object_seq.fetch_add(1, Ordering::Relaxed),
        );
        self.inner.servants.write().insert(id, servant);
        Ok(ObjectRef::new(id, self.inner.name.clone(), interface))
    }

    /// Deactivate the object; later invocations fail with
    /// [`OrbError::ObjectNotFound`]. Returns whether the object was active.
    pub fn deactivate(&self, object: &ObjectRef) -> bool {
        self.inner.servants.write().remove(&object.id()).is_some()
    }

    /// Number of active servants.
    pub fn servant_count(&self) -> usize {
        self.inner.servants.read().len()
    }

    /// Invoke `object` with this node as the network source.
    ///
    /// # Errors
    ///
    /// Propagates transport errors ([`OrbError::Timeout`],
    /// [`OrbError::Partitioned`]) and servant failures.
    pub fn invoke(&self, object: &ObjectRef, request: Request) -> Result<Reply, OrbError> {
        let orb = self
            .inner
            .orb
            .upgrade()
            .ok_or_else(|| OrbError::NodeNotFound(self.inner.name.clone()))?;
        orb.invoke_from(&self.inner.name, object, request)
    }
}

struct OrbInner {
    network: SimulatedNetwork,
    nodes: RwLock<HashMap<String, Arc<NodeInner>>>,
    node_seq: AtomicU64,
    client_interceptors: RwLock<Vec<Arc<dyn ClientRequestInterceptor>>>,
    server_interceptors: RwLock<Vec<Arc<dyn ServerRequestInterceptor>>>,
    registry: NameRegistry,
    retry_budget: u32,
    delivery_seq: AtomicU64,
    detector: RwLock<Option<FailureDetector>>,
    telemetry: RwLock<Option<Telemetry>>,
    causality: RwLock<Option<CausalityPlane>>,
}

impl fmt::Debug for OrbInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Orb")
            .field("nodes", &self.nodes.read().len())
            .field("retry_budget", &self.retry_budget)
            .finish()
    }
}

/// The Object Request Broker: the hub owning nodes, the simulated network,
/// interceptors and the naming service.
///
/// Cheap to clone; all clones share state.
#[derive(Debug, Clone)]
pub struct Orb {
    inner: Arc<OrbInner>,
}

/// Configures and builds an [`Orb`].
#[derive(Default)]
pub struct OrbBuilder {
    config: NetworkConfig,
    clock: Option<SimClock>,
    retry_budget: u32,
    telemetry: Option<Telemetry>,
}

impl fmt::Debug for OrbBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrbBuilder")
            .field("config", &self.config)
            .field("clock", &self.clock)
            .field("retry_budget", &self.retry_budget)
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl OrbBuilder {
    /// Use the given network fault/latency model.
    #[must_use]
    pub fn network(mut self, config: NetworkConfig) -> Self {
        self.config = config;
        self
    }

    /// Share an existing virtual clock instead of creating a fresh one.
    #[must_use]
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Retry budget used by [`Orb::invoke_at_least_once`] (default 8).
    #[must_use]
    pub fn retry_budget(mut self, retries: u32) -> Self {
        self.retry_budget = retries;
        self
    }

    /// Attach a telemetry recorder; `build` registers the span-propagation
    /// interceptor pair automatically (see [`Orb::install_telemetry`]).
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Build the ORB.
    pub fn build(self) -> Orb {
        let clock = self.clock.unwrap_or_default();
        let retry_budget = if self.retry_budget == 0 { 8 } else { self.retry_budget };
        let orb = Orb {
            inner: Arc::new(OrbInner {
                network: SimulatedNetwork::new(self.config, clock),
                nodes: RwLock::new(HashMap::new()),
                node_seq: AtomicU64::new(1),
                client_interceptors: RwLock::new(Vec::new()),
                server_interceptors: RwLock::new(Vec::new()),
                registry: NameRegistry::new(),
                retry_budget,
                delivery_seq: AtomicU64::new(1),
                detector: RwLock::new(None),
                telemetry: RwLock::new(None),
                causality: RwLock::new(None),
            }),
        };
        if let Some(telemetry) = self.telemetry {
            orb.install_telemetry(telemetry);
        }
        orb
    }
}

impl Default for Orb {
    fn default() -> Self {
        Orb::builder().build()
    }
}

impl Orb {
    /// Start configuring an ORB.
    pub fn builder() -> OrbBuilder {
        OrbBuilder::default()
    }

    /// Create a new ORB with a reliable zero-latency network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::DuplicateNode`] if the name is taken.
    pub fn add_node(&self, name: impl Into<String>) -> Result<Node, OrbError> {
        let name = name.into();
        let mut nodes = self.inner.nodes.write();
        if nodes.contains_key(&name) {
            return Err(OrbError::DuplicateNode(name));
        }
        let inner = Arc::new(NodeInner {
            name: name.clone(),
            seq: self.inner.node_seq.fetch_add(1, Ordering::Relaxed),
            orb: Arc::downgrade(&self.inner),
            servants: RwLock::new(HashMap::new()),
            object_seq: AtomicU64::new(1),
        });
        nodes.insert(name, Arc::clone(&inner));
        Ok(Node { inner })
    }

    /// Look up an existing node handle.
    ///
    /// # Errors
    ///
    /// Returns [`OrbError::NodeNotFound`] for unknown names.
    pub fn node(&self, name: &str) -> Result<Node, OrbError> {
        self.inner
            .nodes
            .read()
            .get(name)
            .map(|inner| Node { inner: Arc::clone(inner) })
            .ok_or_else(|| OrbError::NodeNotFound(name.to_owned()))
    }

    /// The simulated network (partitions, fault stats, clock).
    pub fn network(&self) -> &SimulatedNetwork {
        &self.inner.network
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        self.inner.network.clock()
    }

    /// The naming service.
    pub fn registry(&self) -> &NameRegistry {
        &self.inner.registry
    }

    /// Register a client-side interceptor (runs on every outgoing request).
    pub fn add_client_interceptor(&self, interceptor: Arc<dyn ClientRequestInterceptor>) {
        self.inner.client_interceptors.write().push(interceptor);
    }

    /// Register a server-side interceptor (runs on every incoming request).
    pub fn add_server_interceptor(&self, interceptor: Arc<dyn ServerRequestInterceptor>) {
        self.inner.server_interceptors.write().push(interceptor);
    }

    /// Invoke from outside the simulation (source [`EXTERNAL_CALLER`]).
    ///
    /// # Errors
    ///
    /// Propagates transport errors and servant failures; see
    /// [`Node::invoke`].
    pub fn invoke(&self, object: &ObjectRef, request: Request) -> Result<Reply, OrbError> {
        self.inner.invoke_from(EXTERNAL_CALLER, object, request)
    }

    /// Invoke with an explicit source node name.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and servant failures.
    pub fn invoke_from(
        &self,
        from: &str,
        object: &ObjectRef,
        request: Request,
    ) -> Result<Reply, OrbError> {
        self.inner.invoke_from(from, object, request)
    }

    /// One-way (fire-and-forget) invocation: the request leg goes through
    /// the network and the servant runs, but no reply is awaited — the
    /// CORBA `oneway` semantics. Returns whether the request was delivered
    /// at all (a dropped or partitioned request is reported, since the
    /// simulation knows; a real ORB would not).
    pub fn invoke_oneway(&self, from: &str, object: &ObjectRef, request: Request) -> bool {
        self.inner.invoke_oneway(from, object, request)
    }

    /// Invoke with at-least-once semantics: retryable transport failures are
    /// retried up to the configured budget. The servant may therefore run
    /// **more than once** for a single logical call — exactly the delivery
    /// guarantee the paper specifies for Signals (§3.4), which is why Actions
    /// must be idempotent.
    ///
    /// Expressed as [`RetryPolicy::immediate`] over the configured budget:
    /// back-to-back attempts with no backoff and no deadline, so virtual
    /// time and the network trace are exactly what the legacy loop produced.
    ///
    /// # Errors
    ///
    /// Returns the last transport error when the budget is exhausted, or the
    /// servant's failure immediately (application errors are not retried).
    pub fn invoke_at_least_once(
        &self,
        from: &str,
        object: &ObjectRef,
        request: Request,
    ) -> Result<Reply, OrbError> {
        let policy = RetryPolicy::immediate(self.inner.retry_budget.saturating_add(1));
        self.invoke_with_policy(from, object, request, &policy, None)
    }

    /// Invoke under an explicit [`RetryPolicy`] and optional absolute
    /// virtual-time `deadline` (the composition point for
    /// `Activity::set_timeout`: pass the activity's deadline and the retry
    /// loop can never outlive the activity).
    ///
    /// The request is stamped with a [`Request::delivery_id`] — once per
    /// *logical* call, before the first attempt — so every retry shares the
    /// id and dedup-guarded receivers process the call effect-once. Per
    /// attempt, the target node's health is reported to the attached
    /// [`FailureDetector`] (if any).
    ///
    /// # Errors
    ///
    /// Transport errors once the policy's budget is spent,
    /// [`OrbError::DeadlineExceeded`] when the deadline cuts the loop short
    /// (including mid-backoff), and non-retryable failures immediately.
    pub fn invoke_with_policy(
        &self,
        from: &str,
        object: &ObjectRef,
        mut request: Request,
        policy: &RetryPolicy,
        deadline: Option<Duration>,
    ) -> Result<Reply, OrbError> {
        if request.delivery_id().is_none() {
            let seq = self.inner.delivery_seq.fetch_add(1, Ordering::Relaxed);
            request.set_delivery_id(format!("{from}#{seq}"));
        }
        let delivery_id = request.delivery_id().expect("stamped above").to_owned();
        let operation = request.operation().to_owned();
        let detector = self.inner.detector.read().clone();
        let telemetry = self.inner.telemetry.read().clone();
        policy.run(self.clock(), deadline, &operation, &delivery_id, |attempt| {
            // Each attempt is its own span, tagged with the shared logical
            // delivery id; re-attempts (attempt > 0) bump the retry
            // counter. Both are single-atomic-load no-ops when telemetry
            // is absent or disabled.
            let span = telemetry.as_ref().filter(|t| t.is_enabled()).map(|t| {
                if attempt > 0 {
                    t.metrics().incr("retry_attempts_total");
                }
                let span = t.start_span(&format!("attempt:{operation}"));
                t.set_attr(&span, "delivery_id", &delivery_id);
                t.set_attr(&span, "attempt", &attempt.to_string());
                t.set_attr(&span, "to", object.node());
                t.enter(span);
                span
            });
            let result = self.inner.invoke_from(from, object, request.clone());
            if let (Some(telemetry), Some(span)) = (&telemetry, &span) {
                if let Err(e) = &result {
                    telemetry.set_attr(span, "error", &e.to_string());
                }
                telemetry.exit();
                telemetry.end(span);
            }
            if let Some(detector) = &detector {
                match &result {
                    Ok(_) => detector.record_success(object.node()),
                    Err(e) if e.is_retryable() => detector.record_failure(object.node()),
                    Err(_) => {}
                }
            }
            result
        })
    }

    /// Attach a [`FailureDetector`]; every policy-driven invocation feeds it
    /// per-attempt evidence about the target node. If telemetry is
    /// installed, the detector's state transitions are counted in the
    /// metrics registry.
    pub fn set_detector(&self, detector: FailureDetector) {
        if let Some(telemetry) = self.inner.telemetry.read().as_ref() {
            detector.set_telemetry(telemetry.clone());
        }
        *self.inner.detector.write() = Some(detector);
    }

    /// The attached failure detector, if any.
    pub fn detector(&self) -> Option<FailureDetector> {
        self.inner.detector.read().clone()
    }

    /// Install a telemetry recorder: registers the
    /// [`SpanClientInterceptor`]/[`SpanServerInterceptor`] pair so span
    /// contexts ride every request's service contexts, and wires the
    /// metrics registry into the attached failure detector (if any).
    pub fn install_telemetry(&self, telemetry: Telemetry) {
        self.add_client_interceptor(Arc::new(SpanClientInterceptor::new(telemetry.clone())));
        self.add_server_interceptor(Arc::new(SpanServerInterceptor::new(telemetry.clone())));
        if let Some(detector) = self.inner.detector.read().as_ref() {
            detector.set_telemetry(telemetry.clone());
        }
        self.inner.network.set_telemetry(telemetry.clone());
        *self.inner.telemetry.write() = Some(telemetry);
    }

    /// The installed telemetry recorder, if any.
    pub fn telemetry(&self) -> Option<Telemetry> {
        self.inner.telemetry.read().clone()
    }

    /// Install the §16 causal plane: registers the
    /// [`LamportClientInterceptor`]/[`LamportServerInterceptor`] pair so
    /// every request and reply carries a Lamport stamp in its service
    /// contexts, and `wire-send`/`wire-recv` events land in the flight
    /// recorders registered with `plane`. Register each node's recorder
    /// with the plane *before* traffic flows so wire stamps and local
    /// [`telemetry::FlightRecorder::record`] ticks share one clock.
    pub fn install_causality(&self, plane: CausalityPlane) {
        self.add_client_interceptor(Arc::new(LamportClientInterceptor::new(plane.clone())));
        self.add_server_interceptor(Arc::new(LamportServerInterceptor::new(plane.clone())));
        *self.inner.causality.write() = Some(plane);
    }

    /// The installed causal plane, if any.
    pub fn causality(&self) -> Option<CausalityPlane> {
        self.inner.causality.read().clone()
    }
}

impl OrbInner {
    /// Stamp the route and (if absent) a fresh delivery id — once per
    /// logical call, before client interceptors run, so every request on
    /// the wire is dedup-addressable and interceptors know both ends.
    fn prepare_request(&self, from: &str, object: &ObjectRef, request: &mut Request) {
        if request.delivery_id().is_none() {
            let seq = self.delivery_seq.fetch_add(1, Ordering::Relaxed);
            request.set_delivery_id(format!("{from}#{seq}"));
        }
        request.set_route(from, object.node());
    }

    fn invoke_oneway(&self, from: &str, object: &ObjectRef, mut request: Request) -> bool {
        self.prepare_request(from, object, &mut request);
        let client_interceptors: Vec<_> = self.client_interceptors.read().clone();
        for (ran, ci) in client_interceptors.iter().enumerate() {
            if let Err(e) = ci.send_request(&mut request) {
                notify_exception(&client_interceptors[..ran], &request, &e);
                return false;
            }
        }
        let result = self.oneway_transport(from, object, &request);
        match result {
            Ok(()) => {
                // No reply leg exists for a oneway; `receive_reply` fires
                // with a synthetic local reply so per-request interceptor
                // state (e.g. the span opened in `send_request`) closes.
                let mut scratch = Reply::new(crate::value::Value::Null);
                for ci in client_interceptors.iter().rev() {
                    ci.receive_reply(&request, &mut scratch);
                }
                true
            }
            Err(e) => {
                notify_exception(&client_interceptors, &request, &e);
                false
            }
        }
    }

    fn oneway_transport(
        &self,
        from: &str,
        object: &ObjectRef,
        request: &Request,
    ) -> Result<(), OrbError> {
        let node = self
            .nodes
            .read()
            .get(object.node())
            .cloned()
            .ok_or_else(|| OrbError::NodeNotFound(object.node().to_owned()))?;
        let servant = node
            .servants
            .read()
            .get(&object.id())
            .cloned()
            .ok_or(OrbError::ObjectNotFound(object.id()))?;
        let copies = match self.network.transmit(from, object.node()) {
            Delivery::Delivered { copies, .. } => copies,
            Delivery::Dropped => {
                return Err(OrbError::Timeout { operation: request.operation().to_owned() })
            }
            Delivery::Partitioned => {
                return Err(OrbError::Partitioned {
                    from: from.to_owned(),
                    to: object.node().to_owned(),
                })
            }
        };
        let server_interceptors: Vec<_> = self.server_interceptors.read().clone();
        for _ in 0..copies {
            for si in &server_interceptors {
                si.receive_request(request)?;
            }
            let _ = servant.dispatch(request);
            let mut scratch = Reply::new(crate::value::Value::Null);
            for si in server_interceptors.iter().rev() {
                si.send_reply(request, &mut scratch);
            }
        }
        Ok(())
    }

    fn invoke_from(
        &self,
        from: &str,
        object: &ObjectRef,
        mut request: Request,
    ) -> Result<Reply, OrbError> {
        self.prepare_request(from, object, &mut request);
        // 1. Client interceptors stamp the outgoing request. A veto
        //    partway through still notifies the interceptors that already
        //    ran, so their per-request state unwinds.
        let client_interceptors: Vec<_> = self.client_interceptors.read().clone();
        for (ran, ci) in client_interceptors.iter().enumerate() {
            if let Err(e) = ci.send_request(&mut request) {
                let veto = match e {
                    veto @ OrbError::InterceptorVeto(_) => veto,
                    other => OrbError::InterceptorVeto(format!("{}: {other}", ci.name())),
                };
                notify_exception(&client_interceptors[..ran], &request, &veto);
                return Err(veto);
            }
        }

        match self.invoke_transport(from, object, &request) {
            Ok(mut reply) => {
                for ci in client_interceptors.iter().rev() {
                    ci.receive_reply(&request, &mut reply);
                }
                Ok(reply)
            }
            Err(e) => {
                // No reply came back (transport loss, servant failure, or
                // a server-side veto): the error-path counterpart of
                // `receive_reply`.
                notify_exception(&client_interceptors, &request, &e);
                Err(e)
            }
        }
    }

    fn invoke_transport(
        &self,
        from: &str,
        object: &ObjectRef,
        request: &Request,
    ) -> Result<Reply, OrbError> {
        // 2. Locate the target servant.
        let node = self
            .nodes
            .read()
            .get(object.node())
            .cloned()
            .ok_or_else(|| OrbError::NodeNotFound(object.node().to_owned()))?;
        let servant = node
            .servants
            .read()
            .get(&object.id())
            .cloned()
            .ok_or(OrbError::ObjectNotFound(object.id()))?;

        // 3. Request leg through the network.
        let copies = match self.network.transmit(from, object.node()) {
            Delivery::Dropped => {
                return Err(OrbError::Timeout { operation: request.operation().to_owned() })
            }
            Delivery::Partitioned => {
                return Err(OrbError::Partitioned {
                    from: from.to_owned(),
                    to: object.node().to_owned(),
                })
            }
            Delivery::Delivered { copies, .. } => copies,
        };

        // 4. Dispatch (possibly more than once, when duplicated). The first
        //    execution's result — and the reply contexts its server
        //    interceptors attached — is what rides back in the reply;
        //    duplicate executions model redelivery of the same message.
        let server_interceptors: Vec<_> = self.server_interceptors.read().clone();
        let mut outcome: Option<Result<crate::value::Value, OrbError>> = None;
        let mut reply_contexts: Option<crate::context::ServiceContext> = None;
        for _ in 0..copies {
            for si in &server_interceptors {
                si.receive_request(request)?;
            }
            let result = servant.dispatch(request);
            let mut scratch = Reply::new(crate::value::Value::Null);
            for si in server_interceptors.iter().rev() {
                si.send_reply(request, &mut scratch);
            }
            if outcome.is_none() {
                outcome = Some(result);
                reply_contexts = Some(scratch.contexts);
            }
        }
        let result = outcome.expect("at least one delivery");

        // 5. Reply leg through the network: a dropped reply means the caller
        //    times out even though the servant already executed — the classic
        //    at-least-once hazard.
        match self.network.transmit(object.node(), from) {
            Delivery::Dropped => {
                return Err(OrbError::Timeout { operation: request.operation().to_owned() })
            }
            Delivery::Partitioned => {
                return Err(OrbError::Partitioned {
                    from: object.node().to_owned(),
                    to: from.to_owned(),
                })
            }
            Delivery::Delivered { .. } => {}
        }

        let mut reply = Reply::new(result?);
        if let Some(contexts) = reply_contexts {
            reply.contexts = contexts;
        }
        reply.deliveries = copies;
        Ok(reply)
    }
}

/// Tell every interceptor in `ran` (reverse order) that the invocation
/// failed without a reply.
fn notify_exception(ran: &[Arc<dyn ClientRequestInterceptor>], request: &Request, error: &OrbError) {
    for ci in ran.iter().rev() {
        ci.receive_exception(request, error);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::sync::atomic::AtomicU32;

    struct Counter {
        hits: AtomicU32,
    }
    impl Servant for Counter {
        fn dispatch(&self, req: &Request) -> Result<Value, OrbError> {
            match req.operation() {
                "hit" => {
                    let n = self.hits.fetch_add(1, Ordering::SeqCst) + 1;
                    Ok(Value::U64(u64::from(n)))
                }
                "fail" => Err(OrbError::Application("deliberate".into())),
                other => Err(OrbError::BadOperation(other.to_owned())),
            }
        }
    }

    fn counter() -> Arc<Counter> {
        Arc::new(Counter { hits: AtomicU32::new(0) })
    }

    #[test]
    fn basic_invocation() {
        let orb = Orb::new();
        let node = orb.add_node("n1").unwrap();
        let c = counter();
        let obj = node.activate_arc("Counter", c.clone()).unwrap();
        let reply = orb.invoke(&obj, Request::new("hit")).unwrap();
        assert_eq!(reply.result.as_u64(), Some(1));
        assert_eq!(c.hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn node_to_node_invocation() {
        let orb = Orb::new();
        let n1 = orb.add_node("n1").unwrap();
        let n2 = orb.add_node("n2").unwrap();
        let obj = n2.activate_arc("Counter", counter()).unwrap();
        let reply = n1.invoke(&obj, Request::new("hit")).unwrap();
        assert_eq!(reply.result.as_u64(), Some(1));
    }

    #[test]
    fn duplicate_node_rejected() {
        let orb = Orb::new();
        orb.add_node("n").unwrap();
        assert!(matches!(orb.add_node("n"), Err(OrbError::DuplicateNode(_))));
    }

    #[test]
    fn unknown_object_and_node() {
        let orb = Orb::new();
        let node = orb.add_node("n").unwrap();
        let obj = node.activate("C", |_req: &Request| Ok(Value::Null)).unwrap();
        assert!(node.deactivate(&obj));
        assert!(!node.deactivate(&obj));
        assert!(matches!(orb.invoke(&obj, Request::new("x")), Err(OrbError::ObjectNotFound(_))));
        let ghost = ObjectRef::new(ObjectId::new(99, 1), "ghost", "C");
        assert!(matches!(orb.invoke(&ghost, Request::new("x")), Err(OrbError::NodeNotFound(_))));
    }

    #[test]
    fn application_errors_propagate() {
        let orb = Orb::new();
        let node = orb.add_node("n").unwrap();
        let obj = node.activate_arc("Counter", counter()).unwrap();
        assert!(matches!(orb.invoke(&obj, Request::new("fail")), Err(OrbError::Application(_))));
        assert!(matches!(orb.invoke(&obj, Request::new("nope")), Err(OrbError::BadOperation(_))));
    }

    #[test]
    fn dropped_messages_time_out_and_retries_recover() {
        // 50% drop: a single shot will eventually fail, but at-least-once
        // delivery with a healthy budget succeeds.
        let orb = Orb::builder()
            .network(NetworkConfig::lossy(0.5, 0.0, 11))
            .retry_budget(64)
            .build();
        let node = orb.add_node("srv").unwrap();
        let c = counter();
        let obj = node.activate_arc("Counter", c.clone()).unwrap();
        let reply = orb
            .invoke_at_least_once(EXTERNAL_CALLER, &obj, Request::new("hit"))
            .unwrap();
        assert!(reply.result.as_u64().unwrap() >= 1);
        assert!(c.hits.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn duplication_executes_servant_twice() {
        let orb = Orb::builder().network(NetworkConfig::lossy(0.0, 1.0, 5)).build();
        let node = orb.add_node("srv").unwrap();
        let c = counter();
        let obj = node.activate_arc("Counter", c.clone()).unwrap();
        let reply = orb.invoke(&obj, Request::new("hit")).unwrap();
        assert_eq!(reply.deliveries, 2);
        assert_eq!(c.hits.load(Ordering::SeqCst), 2);
        // The reply carries the FIRST execution's result.
        assert_eq!(reply.result.as_u64(), Some(1));
    }

    #[test]
    fn at_least_once_does_not_retry_application_errors() {
        let orb = Orb::builder().retry_budget(10).build();
        let node = orb.add_node("srv").unwrap();
        let c = counter();
        let obj = node.activate_arc("Counter", c.clone()).unwrap();
        let err = orb
            .invoke_at_least_once(EXTERNAL_CALLER, &obj, Request::new("fail"))
            .unwrap_err();
        assert!(matches!(err, OrbError::Application(_)));
    }

    #[test]
    fn policy_invocation_shares_one_delivery_id_across_redeliveries() {
        use crate::network::FaultScript;
        use crate::retry::RetryPolicy;
        use parking_lot::Mutex;

        let orb = Orb::builder().network(NetworkConfig::lossy(0.0, 0.0, 7)).build();
        // Drop the first request leg (forcing a retry), duplicate the
        // retried one (forcing a redelivery): three servant-visible
        // deliveries of ONE logical call.
        orb.network().install_script(FaultScript::new().drop_nth(0).duplicate_nth(1));
        let node = orb.add_node("srv").unwrap();
        let seen: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let obj = node
            .activate("C", move |req: &Request| {
                seen2.lock().push(req.delivery_id().map(str::to_owned));
                Ok(Value::Null)
            })
            .unwrap();
        orb.invoke_with_policy(
            EXTERNAL_CALLER,
            &obj,
            Request::new("x"),
            &RetryPolicy::immediate(3),
            None,
        )
        .unwrap();
        let seen = seen.lock();
        assert_eq!(seen.len(), 2, "dropped attempt never reached the servant");
        assert_eq!(seen[0], seen[1], "retry and duplicate share the logical id");
        assert!(seen[0].as_deref().unwrap().starts_with(EXTERNAL_CALLER));
    }

    #[test]
    fn policy_invocation_feeds_the_failure_detector() {
        use crate::detector::{DetectorConfig, FailureDetector, HealthStatus};
        use crate::retry::RetryPolicy;
        use std::time::Duration;

        let orb = Orb::builder().network(NetworkConfig::lossy(1.0, 0.0, 9)).build();
        let detector = FailureDetector::with_config(
            orb.clock().clone(),
            DetectorConfig {
                suspect_after: 1,
                quarantine_after: 3,
                probe_interval: Duration::from_millis(50),
            },
        );
        orb.set_detector(detector.clone());
        let node = orb.add_node("srv").unwrap();
        let obj = node.activate_arc("Counter", counter()).unwrap();
        let err = orb
            .invoke_with_policy(
                EXTERNAL_CALLER,
                &obj,
                Request::new("hit"),
                &RetryPolicy::immediate(3),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, OrbError::Timeout { .. }));
        assert_eq!(detector.status("srv"), HealthStatus::Quarantined);
        assert_eq!(detector.suspicion("srv"), 3, "one failure per attempt");
    }

    #[test]
    fn policy_invocation_respects_the_deadline() {
        use crate::retry::RetryPolicy;
        use std::time::Duration;

        let orb = Orb::builder().network(NetworkConfig::lossy(1.0, 0.0, 13)).build();
        let node = orb.add_node("srv").unwrap();
        let obj = node.activate_arc("Counter", counter()).unwrap();
        let policy = RetryPolicy::new(64).with_base_backoff(Duration::from_millis(10));
        let deadline = Some(Duration::from_millis(25));
        let err = orb
            .invoke_with_policy(EXTERNAL_CALLER, &obj, Request::new("hit"), &policy, deadline)
            .unwrap_err();
        assert!(matches!(err, OrbError::DeadlineExceeded { .. }), "{err:?}");
        assert!(orb.clock().now() <= Duration::from_millis(25));
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let orb = Orb::new();
        let a = orb.add_node("a").unwrap();
        let b = orb.add_node("b").unwrap();
        let obj = b.activate_arc("Counter", counter()).unwrap();
        orb.network().partition(&[&["a"], &["b"]]);
        assert!(matches!(a.invoke(&obj, Request::new("hit")), Err(OrbError::Partitioned { .. })));
        orb.network().heal();
        assert!(a.invoke(&obj, Request::new("hit")).is_ok());
    }

    #[test]
    fn interceptors_run_in_order_and_veto() {
        use crate::interceptor::ClientRequestInterceptor;
        struct Tag(&'static str);
        impl ClientRequestInterceptor for Tag {
            fn name(&self) -> &str {
                self.0
            }
            fn send_request(&self, request: &mut Request) -> Result<(), OrbError> {
                // Each interceptor appends its tag so order is observable.
                let prior = request
                    .contexts()
                    .get("tags")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_owned();
                request.contexts_mut().set("tags", Value::Str(prior + self.0));
                Ok(())
            }
        }
        let orb = Orb::new();
        orb.add_client_interceptor(Arc::new(Tag("a")));
        orb.add_client_interceptor(Arc::new(Tag("b")));
        let node = orb.add_node("n").unwrap();
        let obj = node
            .activate("Echo", |req: &Request| {
                Ok(req.contexts().get("tags").cloned().unwrap_or(Value::Null))
            })
            .unwrap();
        let reply = orb.invoke(&obj, Request::new("x")).unwrap();
        assert_eq!(reply.result.as_str(), Some("ab"));

        struct Nope;
        impl ClientRequestInterceptor for Nope {
            fn name(&self) -> &str {
                "nope"
            }
            fn send_request(&self, _r: &mut Request) -> Result<(), OrbError> {
                Err(OrbError::InterceptorVeto("blocked".into()))
            }
        }
        orb.add_client_interceptor(Arc::new(Nope));
        assert!(matches!(
            orb.invoke(&obj, Request::new("x")),
            Err(OrbError::InterceptorVeto(_))
        ));
    }

    #[test]
    fn server_interceptor_sees_context() {
        use crate::interceptor::ServerRequestInterceptor;
        struct Require;
        impl ServerRequestInterceptor for Require {
            fn name(&self) -> &str {
                "require"
            }
            fn receive_request(&self, request: &Request) -> Result<(), OrbError> {
                if request.contexts().get("token").is_some() {
                    Ok(())
                } else {
                    Err(OrbError::InterceptorVeto("missing token".into()))
                }
            }
        }
        let orb = Orb::new();
        orb.add_server_interceptor(Arc::new(Require));
        let node = orb.add_node("n").unwrap();
        let obj = node.activate("C", |_r: &Request| Ok(Value::Null)).unwrap();
        assert!(orb.invoke(&obj, Request::new("x")).is_err());
        let mut req = Request::new("x");
        req.contexts_mut().set("token", Value::Bool(true));
        assert!(orb.invoke(&obj, req).is_ok());
    }

    #[test]
    fn span_interceptors_record_propagated_trees() {
        let telemetry = telemetry::Telemetry::new();
        let orb = Orb::builder().telemetry(telemetry.clone()).build();
        let node = orb.add_node("srv").unwrap();
        let obj = node.activate("C", |_r: &Request| Ok(Value::Null)).unwrap();
        orb.invoke(&obj, Request::new("ping")).unwrap();
        let tree = telemetry.span_tree();
        assert!(tree.verify().is_empty(), "{:?}", tree.verify());
        let call = tree.find("call:ping").expect("client span");
        let serve = tree.find("serve:ping").expect("server span");
        assert_eq!(serve.context.trace_id, call.context.trace_id, "one trace end to end");
        assert_eq!(serve.context.parent, Some(call.context.span_id));
    }

    #[test]
    fn retry_attempts_become_tagged_child_spans() {
        use crate::network::FaultScript;
        use crate::retry::RetryPolicy;

        let telemetry = telemetry::Telemetry::new();
        let orb = Orb::builder().telemetry(telemetry.clone()).build();
        orb.network().install_script(FaultScript::new().drop_nth(0));
        let node = orb.add_node("srv").unwrap();
        let obj = node.activate("C", |_r: &Request| Ok(Value::Null)).unwrap();
        orb.invoke_with_policy(
            EXTERNAL_CALLER,
            &obj,
            Request::new("x"),
            &RetryPolicy::immediate(3),
            None,
        )
        .unwrap();
        let tree = telemetry.span_tree();
        assert!(tree.verify().is_empty(), "{:?}", tree.verify());
        let attempts: Vec<_> =
            tree.spans().iter().filter(|s| s.name == "attempt:x").collect();
        assert_eq!(attempts.len(), 2, "dropped first attempt plus the retry");
        assert_eq!(attempts[0].attr("attempt"), Some("0"));
        assert!(attempts[0].attr("error").is_some(), "first attempt timed out");
        assert_eq!(attempts[1].attr("attempt"), Some("1"));
        assert_eq!(
            attempts[0].attr("delivery_id"),
            attempts[1].attr("delivery_id"),
            "attempts share the logical delivery id"
        );
        assert_eq!(telemetry.metrics().counter_value("retry_attempts_total"), 1);
    }

    #[test]
    fn disabled_telemetry_records_nothing_on_the_invoke_path() {
        let telemetry = telemetry::Telemetry::disabled();
        let orb = Orb::builder().telemetry(telemetry.clone()).build();
        let node = orb.add_node("srv").unwrap();
        let obj = node.activate("C", |_r: &Request| Ok(Value::Null)).unwrap();
        orb.invoke(&obj, Request::new("ping")).unwrap();
        assert_eq!(telemetry.span_count(), 0);
    }

    #[test]
    fn causal_plane_stamps_wire_events_end_to_end() {
        use telemetry::{CausalityPlane, FlightRecorder, RecordKind};
        let plane = CausalityPlane::new();
        let rec_a = FlightRecorder::new("a", 64);
        let rec_b = FlightRecorder::new("b", 64);
        plane.register(&rec_a);
        plane.register(&rec_b);
        let orb = Orb::new();
        orb.install_causality(plane.clone());
        assert!(orb.causality().is_some());
        let a = orb.add_node("a").unwrap();
        let b = orb.add_node("b").unwrap();
        let obj = b.activate("C", |_r: &Request| Ok(Value::Null)).unwrap();
        a.invoke(&obj, Request::new("ping")).unwrap();

        // Four wire events: a sends, b receives, b sends the reply, a
        // receives it — two matched edges, each advancing the clock.
        let sends_a = rec_a.details_of_kind(RecordKind::WireSend);
        let recvs_b = rec_b.details_of_kind(RecordKind::WireRecv);
        assert_eq!(sends_a.len(), 1, "{sends_a:?}");
        assert_eq!(recvs_b.len(), 1, "{recvs_b:?}");
        assert_eq!(sends_a[0], recvs_b[0], "send and recv share token + route detail");
        assert!(sends_a[0].contains("ping a->b"), "{sends_a:?}");

        let dag = plane.merge().build();
        assert_eq!(dag.message_edges().len(), 2, "request and reply legs matched");
        assert!(dag.verify().is_empty(), "{:?}", dag.verify());
        for &(s, r) in dag.message_edges() {
            assert!(
                dag.events()[r].lamport > dag.events()[s].lamport,
                "receive stamp exceeds send stamp"
            );
        }
    }

    #[test]
    fn causal_plane_survives_duplication_and_loss() {
        use telemetry::{CausalityPlane, FlightRecorder, RecordKind};
        let plane = CausalityPlane::new();
        let rec = FlightRecorder::new("srv", 64);
        plane.register(&rec);
        // Every message duplicated: the servant runs twice per call.
        let orb = Orb::builder().network(NetworkConfig::lossy(0.0, 1.0, 5)).build();
        orb.install_causality(plane.clone());
        let node = orb.add_node("srv").unwrap();
        let c = counter();
        let obj = node.activate_arc("Counter", c.clone()).unwrap();
        let reply = orb.invoke(&obj, Request::new("hit")).unwrap();
        assert_eq!(reply.deliveries, 2);
        // Two receives of the one send (same token), two reply sends of
        // which only the first matched the caller's receive.
        assert_eq!(rec.details_of_kind(RecordKind::WireRecv).len(), 2);
        assert_eq!(rec.details_of_kind(RecordKind::WireSend).len(), 2);
        let dag = plane.merge().build();
        assert!(dag.verify().is_empty(), "{:?}", dag.verify());
    }

    #[test]
    fn every_invoke_carries_a_delivery_id() {
        use parking_lot::Mutex;
        let orb = Orb::new();
        let node = orb.add_node("srv").unwrap();
        let seen: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let obj = node
            .activate("C", move |req: &Request| {
                seen2.lock().push(req.delivery_id().map(str::to_owned));
                Ok(Value::Null)
            })
            .unwrap();
        // Plain invoke (no policy) now stamps too: dedup-addressable
        // everywhere.
        orb.invoke(&obj, Request::new("x")).unwrap();
        orb.invoke(&obj, Request::new("x")).unwrap();
        let seen = seen.lock();
        assert!(seen[0].as_deref().unwrap().starts_with(EXTERNAL_CALLER));
        assert_ne!(seen[0], seen[1], "distinct logical calls get distinct ids");
    }

    #[test]
    fn orb_handles_are_shared() {
        let orb = Orb::new();
        let orb2 = orb.clone();
        orb.add_node("n").unwrap();
        assert!(orb2.node("n").is_ok());
    }
}

#[cfg(test)]
mod oneway_tests {
    use super::*;
    use crate::value::Value;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn oneway_executes_without_a_reply_leg() {
        let orb = Orb::new();
        let node = orb.add_node("server").unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let hits2 = Arc::clone(&hits);
        let obj = node
            .activate("Notify", move |_r: &Request| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            })
            .unwrap();
        assert!(orb.invoke_oneway(EXTERNAL_CALLER, &obj, Request::new("fire")));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Exactly one network message: the request leg only.
        assert_eq!(orb.network().stats().sent, 1);
    }

    #[test]
    fn oneway_reports_undeliverable_requests() {
        let orb = Orb::builder().network(NetworkConfig::lossy(1.0, 0.0, 3)).build();
        let node = orb.add_node("server").unwrap();
        let obj = node.activate("N", |_r: &Request| Ok(Value::Null)).unwrap();
        assert!(!orb.invoke_oneway(EXTERNAL_CALLER, &obj, Request::new("fire")));

        let orb2 = Orb::new();
        let node2 = orb2.add_node("server").unwrap();
        let obj2 = node2.activate("N", |_r: &Request| Ok(Value::Null)).unwrap();
        orb2.network().partition(&[&["server"], &["island"]]);
        assert!(!orb2.invoke_from_oneway_helper(&obj2));
        // Unknown objects are also reported.
        node2.deactivate(&obj2);
        orb2.network().heal();
        assert!(!orb2.invoke_oneway(EXTERNAL_CALLER, &obj2, Request::new("fire")));
    }

    #[test]
    fn oneway_duplication_runs_servant_twice() {
        let orb = Orb::builder().network(NetworkConfig::lossy(0.0, 1.0, 4)).build();
        let node = orb.add_node("server").unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let hits2 = Arc::clone(&hits);
        let obj = node
            .activate("N", move |_r: &Request| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            })
            .unwrap();
        assert!(orb.invoke_oneway(EXTERNAL_CALLER, &obj, Request::new("fire")));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}

#[cfg(test)]
impl Orb {
    /// Test helper: a oneway from an isolated partition.
    fn invoke_from_oneway_helper(&self, obj: &ObjectRef) -> bool {
        self.invoke_oneway("island", obj, Request::new("fire"))
    }
}
