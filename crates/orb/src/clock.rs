//! A virtual clock for deterministic simulation time.
//!
//! The simulated network charges each message a latency sampled from its
//! configuration; instead of sleeping, it advances this clock. Tests and
//! benchmarks can therefore measure *simulated* durations (lock-hold time in
//! the fig. 1 experiment, workflow makespan in fig. 10) deterministically and
//! instantly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically advancing virtual clock, shared by cloning.
///
/// All methods are lock-free; the clock never goes backwards.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

/// The clock doubles as the telemetry plane's time source, so span trees
/// recorded under the simulation carry deterministic virtual timestamps.
impl telemetry::TimeSource for SimClock {
    fn virtual_now(&self) -> Duration {
        self.now()
    }
}

impl SimClock {
    /// A clock starting at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time since the clock's epoch.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }

    /// Advance the clock by `delta` and return the new time.
    pub fn advance(&self, delta: Duration) -> Duration {
        let d = u64::try_from(delta.as_nanos()).unwrap_or(u64::MAX);
        let new = self.nanos.fetch_add(d, Ordering::AcqRel).saturating_add(d);
        Duration::from_nanos(new)
    }

    /// Advance the clock to at least `target` (no-op if already past it).
    pub fn advance_to(&self, target: Duration) {
        let t = u64::try_from(target.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_max(t, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(10));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(2));
        clock.advance_to(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::from_secs(2));
        clock.advance_to(Duration::from_secs(3));
        assert_eq!(clock.now(), Duration::from_secs(3));
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_nanos(7));
        assert_eq!(b.now(), Duration::from_nanos(7));
    }

    #[test]
    fn concurrent_advances_sum() {
        let clock = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = clock.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(Duration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(clock.now(), Duration::from_nanos(4000));
    }
}
