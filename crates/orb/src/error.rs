//! Error types for ORB operations.

use std::fmt;

use crate::object::ObjectId;

/// Error produced by ORB-level operations: invocation, activation, naming.
///
/// All variants carry enough information to distinguish *transport* failures
/// (which an at-least-once caller should retry) from *semantic* failures
/// (which it should not).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OrbError {
    /// The target object is not registered on any node known to the ORB.
    ObjectNotFound(ObjectId),
    /// The named node does not exist.
    NodeNotFound(String),
    /// A node with this name already exists.
    DuplicateNode(String),
    /// The request was dropped by the (simulated) network and no reply
    /// arrived within the retry budget. Retryable.
    Timeout {
        /// Operation that timed out.
        operation: String,
    },
    /// Source and destination nodes are in different partitions. Retryable
    /// once the partition heals.
    Partitioned {
        /// Node issuing the request.
        from: String,
        /// Node hosting the target object.
        to: String,
    },
    /// A per-call deadline (e.g. one inherited from `Activity::set_timeout`)
    /// passed before the call could complete; the retry loop stopped rather
    /// than attempt past it. Not retryable: the budgeted time is gone.
    DeadlineExceeded {
        /// Operation whose deadline passed.
        operation: String,
    },
    /// The servant rejected the request (application-level failure raised by
    /// the remote object). Not retryable.
    Application(String),
    /// The servant does not understand the requested operation.
    BadOperation(String),
    /// A request or context payload failed to decode.
    Codec(String),
    /// A name-registry lookup failed.
    NameNotBound(String),
    /// A name-registry bind collided with an existing binding.
    AlreadyBound(String),
    /// An interceptor vetoed the invocation.
    InterceptorVeto(String),
}

impl OrbError {
    /// Whether a caller implementing at-least-once semantics should retry
    /// the invocation that produced this error.
    pub fn is_retryable(&self) -> bool {
        matches!(self, OrbError::Timeout { .. } | OrbError::Partitioned { .. })
    }
}

impl fmt::Display for OrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrbError::ObjectNotFound(id) => write!(f, "object {id} not found"),
            OrbError::NodeNotFound(n) => write!(f, "node {n:?} not found"),
            OrbError::DuplicateNode(n) => write!(f, "node {n:?} already exists"),
            OrbError::Timeout { operation } => {
                write!(f, "no reply for operation {operation:?} within retry budget")
            }
            OrbError::Partitioned { from, to } => {
                write!(f, "network partition between {from:?} and {to:?}")
            }
            OrbError::DeadlineExceeded { operation } => {
                write!(f, "deadline exceeded before operation {operation:?} completed")
            }
            OrbError::Application(msg) => write!(f, "application failure: {msg}"),
            OrbError::BadOperation(op) => write!(f, "unknown operation {op:?}"),
            OrbError::Codec(msg) => write!(f, "codec failure: {msg}"),
            OrbError::NameNotBound(n) => write!(f, "name {n:?} not bound"),
            OrbError::AlreadyBound(n) => write!(f, "name {n:?} already bound"),
            OrbError::InterceptorVeto(msg) => write!(f, "interceptor vetoed request: {msg}"),
        }
    }
}

impl std::error::Error for OrbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(OrbError::Timeout { operation: "f".into() }.is_retryable());
        assert!(OrbError::Partitioned { from: "a".into(), to: "b".into() }.is_retryable());
        assert!(!OrbError::Application("x".into()).is_retryable());
        assert!(!OrbError::BadOperation("x".into()).is_retryable());
        assert!(!OrbError::NameNotBound("x".into()).is_retryable());
        assert!(
            !OrbError::DeadlineExceeded { operation: "x".into() }.is_retryable(),
            "the budgeted time is gone; retrying cannot help"
        );
    }

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors: Vec<OrbError> = vec![
            OrbError::ObjectNotFound(ObjectId::new(1, 2)),
            OrbError::NodeNotFound("n".into()),
            OrbError::Timeout { operation: "op".into() },
            OrbError::Application("boom".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OrbError>();
    }
}
