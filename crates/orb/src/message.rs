//! Request and reply messages exchanged between nodes.

use std::fmt;

use crate::context::ServiceContext;
use crate::value::{Value, ValueMap};

/// An invocation request: an operation name, named arguments, and the
/// service contexts that interceptors piggyback on the call.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    operation: String,
    args: ValueMap,
    contexts: ServiceContext,
    delivery_id: Option<String>,
    /// Route stamped by the invoke path before client interceptors run:
    /// source node name and target node name. Interceptors (e.g. the
    /// Lamport pair) read these to pick the right per-node state.
    source: Option<String>,
    target: Option<String>,
}

impl Request {
    /// Create a request for `operation` with no arguments.
    pub fn new(operation: impl Into<String>) -> Self {
        Request {
            operation: operation.into(),
            args: ValueMap::new(),
            contexts: ServiceContext::new(),
            delivery_id: None,
            source: None,
            target: None,
        }
    }

    /// Builder-style: add a named argument.
    #[must_use]
    pub fn with_arg(mut self, name: impl Into<String>, value: Value) -> Self {
        self.args.insert(name.into(), value);
        self
    }

    /// Builder-style: stamp the logical delivery id. Every retry and every
    /// network duplicate of this request carries the same id, so receivers
    /// behind a [`crate::dedup::DedupWindow`] process it effect-once.
    #[must_use]
    pub fn with_delivery_id(mut self, id: impl Into<String>) -> Self {
        self.delivery_id = Some(id.into());
        self
    }

    /// Stamp the logical delivery id in place (the invoke path uses this to
    /// stamp once per logical call, before the first attempt).
    pub fn set_delivery_id(&mut self, id: impl Into<String>) {
        self.delivery_id = Some(id.into());
    }

    /// The logical delivery id, if stamped.
    pub fn delivery_id(&self) -> Option<&str> {
        self.delivery_id.as_deref()
    }

    /// Stamp the route (source and target node names). The invoke path
    /// calls this once, before the client interceptors run.
    pub fn set_route(&mut self, source: impl Into<String>, target: impl Into<String>) {
        self.source = Some(source.into());
        self.target = Some(target.into());
    }

    /// The source node name, once routed.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// The target node name, once routed.
    pub fn target(&self) -> Option<&str> {
        self.target.as_deref()
    }

    /// The operation name.
    pub fn operation(&self) -> &str {
        &self.operation
    }

    /// Look up a named argument.
    pub fn arg(&self, name: &str) -> Option<&Value> {
        self.args.get(name)
    }

    /// All arguments, in name order.
    pub fn args(&self) -> &ValueMap {
        &self.args
    }

    /// The attached service contexts (read-only).
    pub fn contexts(&self) -> &ServiceContext {
        &self.contexts
    }

    /// The attached service contexts (mutable; used by client interceptors).
    pub fn contexts_mut(&mut self) -> &mut ServiceContext {
        &mut self.contexts
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} args)", self.operation, self.args.len())
    }
}

/// A successful reply: the servant's result plus reply-side service contexts.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The servant's return value.
    pub result: Value,
    /// Service contexts attached on the way back (server interceptors).
    pub contexts: ServiceContext,
    /// How many times the request was actually delivered to the servant —
    /// `> 1` when the network duplicated the message. Exposed so tests can
    /// assert at-least-once behaviour.
    pub deliveries: u32,
}

impl Reply {
    /// Wrap a plain result with empty contexts.
    pub fn new(result: Value) -> Self {
        Reply { result, contexts: ServiceContext::new(), deliveries: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder() {
        let req = Request::new("book")
            .with_arg("room", Value::from("101"))
            .with_arg("nights", Value::from(3i64));
        assert_eq!(req.operation(), "book");
        assert_eq!(req.arg("room").and_then(Value::as_str), Some("101"));
        assert_eq!(req.arg("nights").and_then(Value::as_i64), Some(3));
        assert!(req.arg("missing").is_none());
        assert_eq!(req.args().len(), 2);
        assert_eq!(req.to_string(), "book(2 args)");
    }

    #[test]
    fn delivery_id_is_stamped_once_and_survives_clones() {
        let req = Request::new("op");
        assert!(req.delivery_id().is_none());
        let mut req = req.with_delivery_id("coordinator#7");
        assert_eq!(req.delivery_id(), Some("coordinator#7"));
        // Retries clone the stamped request: the id rides along.
        assert_eq!(req.clone().delivery_id(), Some("coordinator#7"));
        req.set_delivery_id("coordinator#8");
        assert_eq!(req.delivery_id(), Some("coordinator#8"));
    }

    #[test]
    fn contexts_are_mutable() {
        let mut req = Request::new("op");
        req.contexts_mut().set("svc", Value::from(1i64));
        assert_eq!(req.contexts().len(), 1);
    }

    #[test]
    fn reply_defaults() {
        let r = Reply::new(Value::from(5i64));
        assert_eq!(r.deliveries, 1);
        assert!(r.contexts.is_empty());
    }
}
