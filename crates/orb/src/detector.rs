//! A per-participant failure detector: suspicion counting, quarantine, and
//! half-open probing.
//!
//! Long-running activities (§2 of the paper) outlive transient participant
//! failures, but a coordinator that keeps soliciting a dead participant burns
//! its whole deadline discovering what it already observed. The detector
//! accumulates *consecutive* failure evidence per participant:
//!
//! ```text
//!            suspect_after             quarantine_after
//! Healthy ──────────────────▶ Suspect ──────────────────▶ Quarantined
//!    ▲                                                        │
//!    └────────────── any recorded success ◀── half-open probe ┘
//! ```
//!
//! * **Healthy → Suspect** after `suspect_after` consecutive failures
//!   (timeouts / NACKs); suspicion is advisory — calls still go through.
//! * **Suspect → Quarantined** after `quarantine_after` consecutive
//!   failures. Coordinators consult [`FailureDetector::should_skip`]:
//!   quarantined read-only participants are skipped outright, quarantined
//!   voters force an early presumed abort.
//! * **Half-open probing**: while quarantined, one call per
//!   `probe_interval` of virtual time is let through
//!   ([`FailureDetector::should_skip`] returns `false` for it). A recorded
//!   success — probe or otherwise — **fully rehabilitates** the participant
//!   to `Healthy` with zero suspicion; a failed probe re-arms the quarantine.
//!
//! The detector is deterministic: its state is a pure function of the
//! recorded event sequence and the [`SimClock`] times at which events and
//! probes occur. Two detectors fed the same sequence agree — a property the
//! workspace pins with vendored-proptest state-machine tests.
//!
//! Higher layers (workflow engines, sagas) that must *reroute or compensate*
//! when a participant is condemned subscribe with
//! [`FailureDetector::on_quarantine`].

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;

use crate::clock::SimClock;

/// A participant's current standing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthStatus {
    /// No outstanding evidence against the participant.
    Healthy,
    /// Consecutive failures at or past `suspect_after`; advisory only.
    Suspect,
    /// Consecutive failures at or past `quarantine_after`; coordinators
    /// route around it except for rate-limited half-open probes.
    Quarantined,
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Suspect => "suspect",
            HealthStatus::Quarantined => "quarantined",
        })
    }
}

/// Thresholds and probe pacing for a [`FailureDetector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Consecutive failures before a participant becomes [`HealthStatus::Suspect`].
    pub suspect_after: u32,
    /// Consecutive failures before quarantine (must be ≥ `suspect_after`).
    pub quarantine_after: u32,
    /// Minimum virtual time between half-open probes of a quarantined
    /// participant.
    pub probe_interval: Duration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            suspect_after: 2,
            quarantine_after: 4,
            probe_interval: Duration::from_millis(100),
        }
    }
}

#[derive(Debug, Clone)]
struct Participant {
    consecutive_failures: u32,
    status: HealthStatus,
    /// While quarantined: earliest virtual time the next half-open probe may
    /// pass.
    next_probe_at: Duration,
}

impl Participant {
    fn new() -> Self {
        Participant {
            consecutive_failures: 0,
            status: HealthStatus::Healthy,
            next_probe_at: Duration::ZERO,
        }
    }
}

type QuarantineHook = Arc<dyn Fn(&str) + Send + Sync>;

struct DetectorInner {
    clock: SimClock,
    config: DetectorConfig,
    participants: Mutex<HashMap<String, Participant>>,
    hooks: Mutex<Vec<QuarantineHook>>,
    telemetry: Mutex<Option<telemetry::Telemetry>>,
    recorder: OnceLock<telemetry::FlightRecorder>,
}

/// The failure detector. Cheap to clone; clones share state, so the ORB,
/// the OTS coordinator and the activity coordinator can all consult (and
/// feed) one detector.
#[derive(Clone)]
pub struct FailureDetector {
    inner: Arc<DetectorInner>,
}

impl std::fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let participants = self.inner.participants.lock();
        f.debug_struct("FailureDetector")
            .field("config", &self.inner.config)
            .field("participants", &participants.len())
            .finish()
    }
}

impl FailureDetector {
    /// A detector with default thresholds, timing probes on `clock`.
    pub fn new(clock: SimClock) -> Self {
        Self::with_config(clock, DetectorConfig::default())
    }

    /// A detector with explicit thresholds.
    pub fn with_config(clock: SimClock, config: DetectorConfig) -> Self {
        let config = DetectorConfig {
            quarantine_after: config.quarantine_after.max(config.suspect_after).max(1),
            suspect_after: config.suspect_after.max(1),
            probe_interval: config.probe_interval,
        };
        FailureDetector {
            inner: Arc::new(DetectorInner {
                clock,
                config,
                participants: Mutex::new(HashMap::new()),
                hooks: Mutex::new(Vec::new()),
                telemetry: Mutex::new(None),
                recorder: OnceLock::new(),
            }),
        }
    }

    /// Count status transitions in the given recorder's metrics registry
    /// as `detector_transitions_total{from=...,to=...}` series.
    pub fn set_telemetry(&self, telemetry: telemetry::Telemetry) {
        *self.inner.telemetry.lock() = Some(telemetry);
    }

    /// Mirror every status transition into `recorder` (kind `detector`).
    /// Write-once so the hot path reads it with a single atomic load
    /// (no lock even when attached-but-disabled); later calls are ignored.
    pub fn set_recorder(&self, recorder: telemetry::FlightRecorder) {
        let _ = self.inner.recorder.set(recorder);
    }

    fn count_transition(&self, who: &str, was: HealthStatus, now: HealthStatus) {
        if was == now {
            return;
        }
        let telemetry = self.inner.telemetry.lock();
        if let Some(telemetry) = telemetry.as_ref().filter(|t| t.is_enabled()) {
            telemetry.metrics().incr(&format!(
                "detector_transitions_total{{from=\"{was}\",to=\"{now}\"}}"
            ));
        }
        drop(telemetry);
        if let Some(recorder) = self.inner.recorder.get() {
            recorder.record(telemetry::RecordKind::Detector, || {
                format!("{who}: {was} -> {now}")
            });
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.inner.config
    }

    /// Record a successful interaction: `who` is fully rehabilitated —
    /// suspicion resets to zero and the status returns to
    /// [`HealthStatus::Healthy`], whether the success was a routine call or
    /// a half-open probe.
    ///
    /// Successes against participants with no failure evidence are no-ops
    /// (an absent entry already means healthy with zero suspicion), so the
    /// fault-free fast path allocates nothing.
    pub fn record_success(&self, who: &str) {
        let was = {
            let mut participants = self.inner.participants.lock();
            match participants.get_mut(who) {
                Some(entry) => {
                    let was = entry.status;
                    *entry = Participant::new();
                    was
                }
                None => return,
            }
        };
        self.count_transition(who, was, HealthStatus::Healthy);
    }

    /// Record a failed interaction (timeout, partition, NACK). Consecutive
    /// failures climb monotonically; crossing `suspect_after` marks the
    /// participant suspect, crossing `quarantine_after` quarantines it and
    /// fires every [`FailureDetector::on_quarantine`] hook (outside the
    /// detector's lock). A failure while quarantined — a failed probe —
    /// pushes the next probe a full `probe_interval` out.
    pub fn record_failure(&self, who: &str) {
        let (was, now) = {
            let mut participants = self.inner.participants.lock();
            let entry = participants.entry(who.to_owned()).or_insert_with(Participant::new);
            entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
            let was = entry.status;
            entry.status = if entry.consecutive_failures >= self.inner.config.quarantine_after {
                HealthStatus::Quarantined
            } else if entry.consecutive_failures >= self.inner.config.suspect_after {
                HealthStatus::Suspect
            } else {
                HealthStatus::Healthy
            };
            if entry.status == HealthStatus::Quarantined {
                entry.next_probe_at = self.inner.clock.now() + self.inner.config.probe_interval;
            }
            (was, entry.status)
        };
        self.count_transition(who, was, now);
        let newly_quarantined = was != HealthStatus::Quarantined && now == HealthStatus::Quarantined;
        if newly_quarantined {
            let hooks: Vec<QuarantineHook> = self.inner.hooks.lock().clone();
            for hook in hooks {
                hook(who);
            }
        }
    }

    /// `who`'s current standing (unknown participants are healthy).
    pub fn status(&self, who: &str) -> HealthStatus {
        self.inner
            .participants
            .lock()
            .get(who)
            .map_or(HealthStatus::Healthy, |p| p.status)
    }

    /// `who`'s consecutive-failure count.
    pub fn suspicion(&self, who: &str) -> u32 {
        self.inner
            .participants
            .lock()
            .get(who)
            .map_or(0, |p| p.consecutive_failures)
    }

    /// Should a coordinator route around `who` right now?
    ///
    /// `false` for healthy and suspect participants. For a quarantined
    /// participant: `false` once per `probe_interval` of virtual time (the
    /// half-open probe — this call *claims* the probe slot and re-arms the
    /// timer), `true` otherwise.
    pub fn should_skip(&self, who: &str) -> bool {
        let mut participants = self.inner.participants.lock();
        let Some(entry) = participants.get_mut(who) else { return false };
        if entry.status != HealthStatus::Quarantined {
            return false;
        }
        let now = self.inner.clock.now();
        if now >= entry.next_probe_at {
            // Half-open: let exactly this call through as a probe.
            entry.next_probe_at = now + self.inner.config.probe_interval;
            false
        } else {
            true
        }
    }

    /// Register a hook fired (synchronously, outside the detector lock) the
    /// moment a participant *enters* quarantine. Workflow and saga layers
    /// use this to reroute pending steps or schedule compensation instead of
    /// waiting out the activity deadline.
    pub fn on_quarantine(&self, hook: impl Fn(&str) + Send + Sync + 'static) {
        self.inner.hooks.lock().push(Arc::new(hook));
    }

    /// Every participant the detector has evidence about, sorted by name —
    /// a deterministic snapshot for diagnostics and property tests.
    pub fn known_participants(&self) -> Vec<(String, HealthStatus, u32)> {
        let participants = self.inner.participants.lock();
        let mut all: Vec<(String, HealthStatus, u32)> = participants
            .iter()
            .map(|(name, p)| (name.clone(), p.status, p.consecutive_failures))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Render the detector's standings for the introspection plane, one
    /// participant per line in name order.
    #[must_use]
    pub fn introspect(&self) -> String {
        let mut out = String::new();
        for (who, status, failures) in self.known_participants() {
            out.push_str(&format!("{who}: {status} (consecutive failures {failures})\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn detector(clock: &SimClock) -> FailureDetector {
        FailureDetector::with_config(
            clock.clone(),
            DetectorConfig {
                suspect_after: 2,
                quarantine_after: 3,
                probe_interval: Duration::from_millis(100),
            },
        )
    }

    #[test]
    fn failures_escalate_healthy_suspect_quarantined() {
        let clock = SimClock::new();
        let d = detector(&clock);
        assert_eq!(d.status("r1"), HealthStatus::Healthy);
        d.record_failure("r1");
        assert_eq!(d.status("r1"), HealthStatus::Healthy);
        d.record_failure("r1");
        assert_eq!(d.status("r1"), HealthStatus::Suspect);
        assert!(!d.should_skip("r1"), "suspicion is advisory");
        d.record_failure("r1");
        assert_eq!(d.status("r1"), HealthStatus::Quarantined);
        assert_eq!(d.suspicion("r1"), 3);
    }

    #[test]
    fn success_fully_rehabilitates() {
        let clock = SimClock::new();
        let d = detector(&clock);
        for _ in 0..5 {
            d.record_failure("r");
        }
        assert_eq!(d.status("r"), HealthStatus::Quarantined);
        d.record_success("r");
        assert_eq!(d.status("r"), HealthStatus::Healthy);
        assert_eq!(d.suspicion("r"), 0, "rehabilitation is total, not partial");
    }

    #[test]
    fn quarantine_skips_until_the_probe_window_opens() {
        let clock = SimClock::new();
        let d = detector(&clock);
        for _ in 0..3 {
            d.record_failure("r");
        }
        // Freshly quarantined: the first probe slot is one interval out.
        assert!(d.should_skip("r"));
        clock.advance(Duration::from_millis(100));
        assert!(!d.should_skip("r"), "probe window open: let one call through");
        assert!(d.should_skip("r"), "the probe slot was claimed; next call waits");
        clock.advance(Duration::from_millis(100));
        assert!(!d.should_skip("r"));
    }

    #[test]
    fn failed_probe_rearms_quarantine_successful_probe_clears_it() {
        let clock = SimClock::new();
        let d = detector(&clock);
        for _ in 0..3 {
            d.record_failure("r");
        }
        clock.advance(Duration::from_millis(100));
        assert!(!d.should_skip("r"));
        d.record_failure("r"); // the probe itself failed
        assert!(d.should_skip("r"), "failed probe re-arms the quarantine");
        clock.advance(Duration::from_millis(100));
        assert!(!d.should_skip("r"));
        d.record_success("r"); // probe answered
        assert_eq!(d.status("r"), HealthStatus::Healthy);
        assert!(!d.should_skip("r"));
    }

    #[test]
    fn quarantine_hook_fires_once_per_transition() {
        let clock = SimClock::new();
        let d = detector(&clock);
        let fired = Arc::new(AtomicU32::new(0));
        let fired2 = Arc::clone(&fired);
        d.on_quarantine(move |who| {
            assert_eq!(who, "flaky");
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        for _ in 0..5 {
            d.record_failure("flaky");
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "only the entering transition fires");
        d.record_success("flaky");
        for _ in 0..3 {
            d.record_failure("flaky");
        }
        assert_eq!(fired.load(Ordering::SeqCst), 2, "re-quarantine fires again");
    }

    #[test]
    fn participants_are_tracked_independently() {
        let clock = SimClock::new();
        let d = detector(&clock);
        for _ in 0..3 {
            d.record_failure("bad");
        }
        d.record_failure("wobbly");
        d.record_success("wobbly");
        d.record_success("good"); // no evidence: stays untracked (and healthy)
        assert_eq!(d.status("bad"), HealthStatus::Quarantined);
        assert_eq!(d.status("wobbly"), HealthStatus::Healthy);
        assert_eq!(d.status("good"), HealthStatus::Healthy);
        assert_eq!(d.status("unknown"), HealthStatus::Healthy);
        let known = d.known_participants();
        assert_eq!(known.len(), 2, "only participants with failure evidence are tracked");
        assert_eq!(known[0].0, "bad");
        assert_eq!(known[1], ("wobbly".to_owned(), HealthStatus::Healthy, 0));
    }

    #[test]
    fn clones_share_state() {
        let clock = SimClock::new();
        let d = detector(&clock);
        let d2 = d.clone();
        for _ in 0..3 {
            d.record_failure("r");
        }
        assert_eq!(d2.status("r"), HealthStatus::Quarantined);
    }
}
