//! Per-request retry policies: bounded attempts, exponential backoff with
//! deterministic jitter, and per-call deadlines.
//!
//! The paper's Signal delivery is *at-least-once* (§3.4); this module is the
//! runtime half of that contract. A [`RetryPolicy`] re-issues a request after
//! retryable transport failures ([`OrbError::is_retryable`]), waiting an
//! exponentially growing backoff between attempts. Three properties keep the
//! simulation harness sound:
//!
//! 1. **Determinism** — backoff jitter is *derived*, not drawn: an FNV-1a
//!    hash of the request's delivery id and the attempt number. Two runs of
//!    the same schedule wait the same nanoseconds, so harness runs stay
//!    bit-reproducible.
//! 2. **Virtual time** — waits advance the shared [`SimClock`] instead of
//!    sleeping, so a thousand-attempt storm simulates instantly.
//! 3. **Invisibility when healthy** — a first-attempt success performs no
//!    clock advance and no extra network traffic, so a fault-free trace with
//!    the retry layer enabled is byte-identical to one without it.
//!
//! Deadlines compose with `Activity::set_timeout` in the activity service:
//! the activity's absolute virtual-time deadline is passed down as the
//! per-call deadline, so a retry loop can never outlive the activity. A
//! deadline that passes *mid-backoff* yields [`OrbError::DeadlineExceeded`]
//! without starting another attempt.

use std::time::Duration;

use crate::clock::SimClock;
use crate::error::OrbError;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// How a single logical request is retried across transport failures.
///
/// Construction is builder-style; [`RetryPolicy::default`] gives 4 attempts
/// with a 1 ms base backoff doubling up to 1 s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_secs(1),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing up to `max_attempts` attempts (at least 1) with the
    /// default backoff curve.
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1), ..Self::default() }
    }

    /// No retries at all: one attempt, the transport error surfaces as-is.
    /// This is the "retry layer compiled out" configuration benchmarks and
    /// ablation runs pin.
    pub fn none() -> Self {
        Self::new(1)
    }

    /// `max_attempts` back-to-back attempts with **zero** backoff — the
    /// legacy `invoke_at_least_once` loop, expressed as a policy. Performs no
    /// clock advances at all, preserving byte-identical virtual-time traces.
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        }
    }

    /// Set the first backoff interval (doubles each further attempt).
    #[must_use]
    pub fn with_base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Cap the exponential growth.
    #[must_use]
    pub fn with_max_backoff(mut self, max: Duration) -> Self {
        self.max_backoff = max;
        self
    }

    /// Disable jitter: backoffs are the raw exponential series.
    #[must_use]
    pub fn without_jitter(mut self) -> Self {
        self.jitter = false;
        self
    }

    /// Maximum number of attempts (including the first).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The wait before attempt `attempt` (1-based: attempt 0 is the initial
    /// try and never waits). Deterministic: the jitter is an FNV-1a hash of
    /// `delivery_id` and the attempt number, folded into the upper half of
    /// the exponential interval ("equal jitter"), so the same logical request
    /// backs off identically in every run.
    pub fn backoff_before(&self, attempt: u32, delivery_id: &str) -> Duration {
        if attempt == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(20))
            .min(self.max_backoff)
            .max(self.base_backoff.min(self.max_backoff));
        if !self.jitter {
            return exp;
        }
        let half = exp / 2;
        let span = u64::try_from(half.as_nanos()).unwrap_or(u64::MAX);
        if span == 0 {
            return exp;
        }
        let hash = fnv1a(FNV_OFFSET ^ u64::from(attempt), delivery_id.as_bytes());
        half + Duration::from_nanos(hash % (span + 1))
    }

    /// Drive `attempt` under this policy: retryable errors are retried with
    /// backoff on the virtual clock; non-retryable errors return immediately.
    /// `deadline` is an **absolute** virtual time (same epoch as `clock`):
    /// once it passes — including mid-backoff — no further attempt starts and
    /// [`OrbError::DeadlineExceeded`] is returned.
    ///
    /// # Errors
    ///
    /// The first non-retryable error, [`OrbError::DeadlineExceeded`] when the
    /// deadline cuts the loop short, or the last retryable error once the
    /// attempt budget is spent.
    pub fn run<T>(
        &self,
        clock: &SimClock,
        deadline: Option<Duration>,
        operation: &str,
        delivery_id: &str,
        mut attempt: impl FnMut(u32) -> Result<T, OrbError>,
    ) -> Result<T, OrbError> {
        let expired = |d: Duration| clock.now() > d;
        let mut last_err: Option<OrbError> = None;
        for n in 0..self.max_attempts {
            if deadline.is_some_and(expired) {
                return Err(OrbError::DeadlineExceeded { operation: operation.to_owned() });
            }
            match attempt(n) {
                Ok(value) => return Ok(value),
                Err(e) if e.is_retryable() => last_err = Some(e),
                Err(e) => return Err(e),
            }
            if n + 1 < self.max_attempts {
                let backoff = self.backoff_before(n + 1, delivery_id);
                if let Some(d) = deadline {
                    // Would the wait outlive the deadline? Then the next
                    // attempt could never be answered in time: report the
                    // timeout now instead of burning another attempt.
                    if clock.now() + backoff > d {
                        return Err(OrbError::DeadlineExceeded {
                            operation: operation.to_owned(),
                        });
                    }
                }
                if !backoff.is_zero() {
                    clock.advance(backoff);
                }
            }
        }
        Err(last_err.unwrap_or(OrbError::Timeout { operation: operation.to_owned() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeout() -> OrbError {
        OrbError::Timeout { operation: "op".into() }
    }

    #[test]
    fn first_attempt_success_leaves_the_clock_untouched() {
        let clock = SimClock::new();
        let policy = RetryPolicy::default();
        let result = policy.run(&clock, None, "op", "id-1", |_n| Ok(7u32));
        assert_eq!(result.unwrap(), 7);
        assert_eq!(clock.now(), Duration::ZERO, "retry layer must be invisible when healthy");
    }

    #[test]
    fn retryable_errors_are_retried_with_growing_backoff() {
        let clock = SimClock::new();
        let policy = RetryPolicy::new(4).without_jitter();
        let mut attempts = 0;
        let result = policy.run(&clock, None, "op", "id", |n| {
            attempts += 1;
            if n < 2 {
                Err(timeout())
            } else {
                Ok(n)
            }
        });
        assert_eq!(result.unwrap(), 2);
        assert_eq!(attempts, 3);
        // 1ms + 2ms waited before attempts 1 and 2.
        assert_eq!(clock.now(), Duration::from_millis(3));
    }

    #[test]
    fn non_retryable_errors_surface_immediately() {
        let clock = SimClock::new();
        let policy = RetryPolicy::new(5);
        let mut attempts = 0;
        let err = policy
            .run::<()>(&clock, None, "op", "id", |_n| {
                attempts += 1;
                Err(OrbError::Application("boom".into()))
            })
            .unwrap_err();
        assert!(matches!(err, OrbError::Application(_)));
        assert_eq!(attempts, 1);
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn budget_exhaustion_returns_the_last_transport_error() {
        let clock = SimClock::new();
        let policy = RetryPolicy::immediate(3);
        let mut attempts = 0;
        let err = policy
            .run::<()>(&clock, None, "op", "id", |_n| {
                attempts += 1;
                Err(OrbError::Partitioned { from: "a".into(), to: "b".into() })
            })
            .unwrap_err();
        assert!(matches!(err, OrbError::Partitioned { .. }));
        assert_eq!(attempts, 3);
        assert_eq!(clock.now(), Duration::ZERO, "immediate policy never advances time");
    }

    #[test]
    fn jitter_is_deterministic_per_delivery_id_and_attempt() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_before(1, "req-a"), policy.backoff_before(1, "req-a"));
        assert_eq!(policy.backoff_before(3, "req-b"), policy.backoff_before(3, "req-b"));
        // Different ids (and different attempts) decorrelate.
        assert_ne!(policy.backoff_before(1, "req-a"), policy.backoff_before(1, "req-b"));
        assert_ne!(policy.backoff_before(2, "req-a"), policy.backoff_before(3, "req-a"));
        // Jitter stays inside the exponential envelope: [exp/2, exp].
        for attempt in 1..10 {
            for id in ["x", "y", "z"] {
                let raw = RetryPolicy::default().without_jitter().backoff_before(attempt, id);
                let jittered = policy.backoff_before(attempt, id);
                assert!(jittered >= raw / 2 && jittered <= raw, "{attempt} {id}");
            }
        }
    }

    #[test]
    fn backoff_is_capped_at_max() {
        let policy = RetryPolicy::new(40)
            .with_base_backoff(Duration::from_millis(10))
            .with_max_backoff(Duration::from_millis(80))
            .without_jitter();
        assert_eq!(policy.backoff_before(1, "id"), Duration::from_millis(10));
        assert_eq!(policy.backoff_before(4, "id"), Duration::from_millis(80));
        assert_eq!(policy.backoff_before(30, "id"), Duration::from_millis(80));
    }

    // Satellite: retry × deadline interaction. The deadline here is the
    // absolute virtual-time deadline `Activity::set_timeout` computes; the
    // integration test in `tests/` drives it through a real activity.

    #[test]
    fn deadline_mid_backoff_yields_deadline_exceeded_not_another_attempt() {
        let clock = SimClock::new();
        // Backoff (100ms) overshoots the 50ms deadline after one failure.
        let policy = RetryPolicy::new(5)
            .with_base_backoff(Duration::from_millis(100))
            .without_jitter();
        let deadline = Some(Duration::from_millis(50));
        let mut attempts = 0;
        let err = policy
            .run::<()>(&clock, deadline, "op", "id", |_n| {
                attempts += 1;
                Err(timeout())
            })
            .unwrap_err();
        assert!(matches!(err, OrbError::DeadlineExceeded { .. }), "{err:?}");
        assert_eq!(attempts, 1, "the wait would outlive the deadline: no second attempt");
        assert_eq!(clock.now(), Duration::ZERO, "no point advancing into a dead wait");
    }

    #[test]
    fn expired_deadline_prevents_even_the_first_attempt() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(10));
        let policy = RetryPolicy::default();
        let mut attempts = 0;
        let err = policy
            .run::<()>(&clock, Some(Duration::from_secs(1)), "op", "id", |_n| {
                attempts += 1;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, OrbError::DeadlineExceeded { .. }));
        assert_eq!(attempts, 0);
    }

    #[test]
    fn retry_loop_never_extends_past_the_deadline() {
        let clock = SimClock::new();
        let policy = RetryPolicy::new(64)
            .with_base_backoff(Duration::from_millis(3))
            .with_max_backoff(Duration::from_millis(3))
            .without_jitter();
        let deadline = Duration::from_millis(10);
        let err = policy
            .run::<()>(&clock, Some(deadline), "op", "id", |_n| Err(timeout()))
            .unwrap_err();
        assert!(matches!(err, OrbError::DeadlineExceeded { .. }));
        assert!(
            clock.now() <= deadline,
            "virtual time {:?} must not pass the deadline {deadline:?}",
            clock.now()
        );
    }

    #[test]
    fn deadline_inside_the_budget_is_invisible() {
        let clock = SimClock::new();
        let policy = RetryPolicy::new(3)
            .with_base_backoff(Duration::from_millis(1))
            .without_jitter();
        let mut attempts = 0;
        let result = policy.run(&clock, Some(Duration::from_secs(1)), "op", "id", |n| {
            attempts += 1;
            if n == 0 {
                Err(timeout())
            } else {
                Ok("done")
            }
        });
        assert_eq!(result.unwrap(), "done");
        assert_eq!(attempts, 2);
    }
}
