//! Deterministic delivery-choice hook: who owns message ordering.
//!
//! The simulated ORB already lets a harness *drop* or *duplicate* the n-th
//! remote message ([`crate::network::FaultScript`]), but the **order** in
//! which a protocol layer fans a round of deliveries out to its peers was
//! fixed (registration order). That hides an entire axis of the
//! interleaving space: a presumed-abort coordinator that stops soliciting
//! votes at the first veto behaves observably differently depending on
//! *when* the vetoing participant is asked.
//!
//! A [`DeliverySequencer`] hands that axis to the caller. A protocol layer
//! with a round of pending deliveries (a 2PC prepare round, a phase-two
//! outcome round, a rollback round) consults the sequencer before each
//! delivery: *given these still-pending peers, which goes next?* The
//! default, [`RegistrationOrder`], always answers "the first", which is
//! byte-for-byte the legacy behaviour — attaching it (or no sequencer at
//! all) changes nothing. A model-checking explorer attaches its own
//! implementation and enumerates every answer, making delivery order a
//! first-class schedule choice instead of an accident of registration.
//!
//! After each delivery the layer reports back through
//! [`DeliverySequencer::report`] whether the delivery was *clean* (the
//! peer answered and the answer kept the round going) or *disruptive* (a
//! veto, an error, a delivery that cut the round short). Clean deliveries
//! to distinct peers commute — the report is what lets a partial-order
//! reducing explorer prune the orderings that cannot matter.

/// Chooses which of a round's still-pending deliveries goes next.
///
/// Implementations must be deterministic functions of their own state and
/// the arguments: the simulation harness replays runs and byte-compares
/// traces.
pub trait DeliverySequencer: Send + Sync {
    /// Pick the next delivery of round `stage` from `pending` (peer labels,
    /// in registration order). Returns an index into `pending`.
    ///
    /// `pending` is never empty. An out-of-range answer is treated as the
    /// last pending index, so a prefix-replaying sequencer can safely
    /// default past the end of its script.
    fn next_delivery(&self, stage: &str, pending: &[&str]) -> usize;

    /// Called after each sequenced delivery: `clean` is false when the
    /// delivery disrupted the round (veto, error, early break). The default
    /// implementation ignores the report.
    fn report(&self, stage: &str, peer: &str, clean: bool) {
        let _ = (stage, peer, clean);
    }
}

/// The do-nothing sequencer: always delivers to the first pending peer,
/// i.e. exact registration order — the behaviour every protocol layer had
/// before the hook existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistrationOrder;

impl DeliverySequencer for RegistrationOrder {
    fn next_delivery(&self, _stage: &str, _pending: &[&str]) -> usize {
        0
    }
}

/// Resolve a sequencer's answer to a safe index: out-of-range choices
/// clamp to the last pending delivery.
#[must_use]
pub fn clamp_choice(choice: usize, pending_len: usize) -> usize {
    debug_assert!(pending_len > 0, "a delivery round is never empty");
    choice.min(pending_len.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_order_always_picks_the_head() {
        let seq = RegistrationOrder;
        assert_eq!(seq.next_delivery("prepare", &["a", "b", "c"]), 0);
        assert_eq!(seq.next_delivery("phase2", &["z"]), 0);
        // The default report is a no-op; it must at least not panic.
        seq.report("prepare", "a", true);
    }

    #[test]
    fn out_of_range_choices_clamp_to_the_tail() {
        assert_eq!(clamp_choice(0, 3), 0);
        assert_eq!(clamp_choice(2, 3), 2);
        assert_eq!(clamp_choice(99, 3), 2);
        assert_eq!(clamp_choice(99, 1), 0);
    }

    #[test]
    fn trait_objects_dispatch() {
        let seq: std::sync::Arc<dyn DeliverySequencer> =
            std::sync::Arc::new(RegistrationOrder);
        assert_eq!(seq.next_delivery("rollback", &["only"]), 0);
    }
}
